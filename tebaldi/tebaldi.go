// Package tebaldi is the public API of Tebaldi, a transactional key-value
// store with hierarchical Modular Concurrency Control (SIGMOD 2017:
// "Bringing Modular Concurrency Control to the Next Level").
//
// Tebaldi federates concurrency control mechanisms in a multi-level tree:
// each node regulates only the data conflicts among the transactions
// delegated to its subtree, so every mechanism can be applied exactly where
// it shines — e.g. snapshot isolation between read-only and update
// transactions, runtime pipelining within a hot transaction group, and
// timestamp ordering per SEATS flight — while the federation as a whole
// guarantees serializability through the consistent-ordering condition.
//
// Quick start:
//
//	db, _ := tebaldi.Open(tebaldi.Options{}, []*tebaldi.Spec{
//	    {Name: "transfer", Tables: []string{"account"}, WriteTables: []string{"account"}},
//	    {Name: "audit", ReadOnly: true, Tables: []string{"account"}},
//	}, tebaldi.Inner(tebaldi.SSI,
//	    tebaldi.Leaf(tebaldi.None, "audit"),
//	    tebaldi.Leaf(tebaldi.TwoPL, "transfer"),
//	))
//	defer db.Close()
//	db.Run("transfer", 0, func(tx *tebaldi.Tx) error {
//	    v, _ := tx.Read(tebaldi.K("account", "alice"))
//	    return tx.Write(tebaldi.K("account", "alice"), newBalance(v))
//	})
package tebaldi

import (
	"time"

	"repro/internal/autoconf"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/wal"
)

// Key addresses one row of one table.
type Key = core.Key

// K builds a Key from table and row.
func K(table, row string) Key { return core.K(table, row) }

// KeyOf builds a Key from integer components.
func KeyOf(table string, parts ...int) Key { return core.KeyOf(table, parts...) }

// Spec statically describes a transaction type (access order for RP's
// analysis, read-only classification, instance-partition domain).
type Spec = core.Spec

// Tx is an executing transaction handle.
type Tx = engine.Tx

// Config is a CC tree configuration.
type Config = engine.NodeSpec

// Kind names a CC mechanism.
type Kind = engine.Kind

// The CC mechanisms Tebaldi federates (§4.4 of the paper).
const (
	None  = engine.KindNone
	TwoPL = engine.Kind2PL
	RP    = engine.KindRP
	SSI   = engine.KindSSI
	TSO   = engine.KindTSO
)

// ReconfigProtocol selects how a live reconfiguration is applied (§5.5).
type ReconfigProtocol = engine.Protocol

// Reconfiguration protocols (§5.5).
const (
	PartialRestart = engine.PartialRestart
	OnlineUpdate   = engine.OnlineUpdate
)

// Errors re-exported for callers.
var (
	ErrAborted   = core.ErrAborted
	ErrUserAbort = core.ErrUserAbort
)

// IsRetryable reports whether err is a system abort that Run would retry.
func IsRetryable(err error) bool { return core.IsRetryable(err) }

// Options tune a DB. The zero value gives sensible defaults: 16 data-server
// shards, 100ms lock timeout, background GC, no durability, no profiling.
type Options struct {
	// Shards is the number of data servers (storage partitions).
	Shards int
	// LockTimeout bounds lock/pipeline/dependency waits (deadlock
	// resolution by timeout).
	LockTimeout time.Duration
	// GCInterval is the version GC period (0 = default, negative =
	// disabled).
	GCInterval time.Duration
	// Profiling enables the blocking-event profiler that powers
	// automatic configuration.
	Profiling bool
	// NetworkDelay simulates the TC<->DS round trip per operation.
	NetworkDelay time.Duration
	// DurabilityDir enables write-ahead logging into this directory.
	DurabilityDir string
	// DurabilitySync makes commits wait for the flush (default:
	// asynchronous GCP-epoch flushing).
	DurabilitySync bool
	// GCPEpoch is the flush-epoch length (default 1s).
	GCPEpoch time.Duration
	// CheckpointEvery, when > 0, periodically snapshots the committed
	// state and compacts the write-ahead logs, bounding both log size and
	// restart time. Requires DurabilityDir. DB.Checkpoint triggers one
	// explicitly at any time.
	CheckpointEvery time.Duration
	// DrainTimeout bounds reconfiguration quiescing.
	DrainTimeout time.Duration
	// BatchAge bounds SSI/TSO consistent-ordering batch lifetimes.
	BatchAge time.Duration
}

func (o Options) engine() engine.Options {
	return engine.Options{
		Shards:          o.Shards,
		LockTimeout:     o.LockTimeout,
		GCInterval:      o.GCInterval,
		Profiling:       o.Profiling,
		NetworkDelay:    o.NetworkDelay,
		DurabilityDir:   o.DurabilityDir,
		DurabilitySync:  o.DurabilitySync,
		GCPEpoch:        o.GCPEpoch,
		CheckpointEvery: o.CheckpointEvery,
		DrainTimeout:    o.DrainTimeout,
		BatchAge:        o.BatchAge,
	}
}

// Leaf builds a leaf group: the given transaction types regulated by kind.
func Leaf(kind Kind, types ...string) *Config {
	return &engine.NodeSpec{Kind: kind, Types: types}
}

// Inner builds a non-leaf node: kind regulates conflicts across children.
func Inner(kind Kind, children ...*Config) *Config {
	return &engine.NodeSpec{Kind: kind, Children: children}
}

// PartitionByInstance builds a node whose children are `clones` copies of
// template, selected by the transaction's instance partition (§5.4.2) —
// e.g. one TSO group per SEATS flight under a 2PL parent.
func PartitionByInstance(kind Kind, clones int, template *Config) *Config {
	return &engine.NodeSpec{Kind: kind, ByInstance: true, Clones: clones, Children: []*Config{template}}
}

// DB is a Tebaldi database instance.
type DB struct {
	eng *engine.Engine
}

// Open creates a database with the given transaction type specs and initial
// CC tree configuration. If config is nil, the initial configuration of
// §5.2 is used: SSI at the root separating a read-only group from a 2PL
// update group.
func Open(opts Options, specs []*Spec, config *Config) (*DB, error) {
	if config == nil {
		config = InitialConfig(specs)
	}
	eng, err := engine.New(opts.engine(), specs, config)
	if err != nil {
		return nil, err
	}
	return &DB{eng: eng}, nil
}

// Recover opens a database whose state is reconstructed from the write-ahead
// logs in opts.DurabilityDir.
func Recover(opts Options, specs []*Spec, config *Config) (*DB, *wal.RecoveredState, error) {
	if config == nil {
		config = InitialConfig(specs)
	}
	eng, st, err := engine.Recover(opts.engine(), specs, config)
	if err != nil {
		return nil, nil, err
	}
	return &DB{eng: eng}, st, nil
}

// InitialConfig returns the general-purpose starting configuration of §5.2:
// SSI at the root with a no-CC read-only group and a 2PL update group.
func InitialConfig(specs []*Spec) *Config {
	var ro, upd []string
	for _, s := range specs {
		if s.ReadOnly {
			ro = append(ro, s.Name)
		} else {
			upd = append(upd, s.Name)
		}
	}
	return Inner(SSI, Leaf(None, ro...), Leaf(TwoPL, upd...))
}

// Begin starts a transaction of a registered type; part is the instance
// partition input (0 when unused).
func (db *DB) Begin(typ string, part uint64) (*Tx, error) { return db.eng.Begin(typ, part) }

// Run executes fn transactionally with automatic retry on system aborts.
func (db *DB) Run(typ string, part uint64, fn func(*Tx) error) error {
	return db.eng.RunTxn(typ, part, fn)
}

// Load bulk-loads a committed key-value pair (initial population).
func (db *DB) Load(k Key, value []byte) { db.eng.Load(k, value) }

// ReadCommitted reads the latest committed value outside any transaction.
func (db *DB) ReadCommitted(k Key) []byte { return db.eng.ReadCommitted(k) }

// Reconfigure switches the live MCC configuration (§5.5).
func (db *DB) Reconfigure(config *Config, protocol engine.Protocol) error {
	return db.eng.Reconfigure(config, protocol)
}

// Config returns a copy of the current CC tree configuration.
func (db *DB) Config() *Config { return db.eng.Config() }

// ConfigString renders the live CC tree, e.g.
// "SSI[ NoCC{order_status,stock_level} 2PL[ RP{new_order,payment} RP{delivery} ] ]".
func (db *DB) ConfigString() string { return db.eng.ConfigString() }

// Checkpoint snapshots the committed state at a consistent cut and compacts
// the write-ahead logs down to the post-cut tail, so restart replays only
// records committed after the newest checkpoint. Requires DurabilityDir;
// safe to call while transactions run.
func (db *DB) Checkpoint() error { return db.eng.Checkpoint() }

// Stats exposes commit/abort counters and per-type latency.
func (db *DB) Stats() *engine.Stats { return db.eng.Stats() }

// Engine exposes the underlying engine for advanced integrations (the
// benchmark harness and the automatic configurator use it).
func (db *DB) Engine() *engine.Engine { return db.eng }

// AutoConfigure runs the automatic configuration algorithm of Chapter 5
// against the live workload: iteratively profile, propose candidate
// configurations for the bottleneck conflict edge, test them, and keep the
// best. It returns the log of iterations. The workload must already be
// running against the database.
func (db *DB) AutoConfigure(opts AutoConfigOptions) (*autoconf.Result, error) {
	return autoconf.Run(db.eng, opts)
}

// AutoConfigOptions re-exports the automatic configurator's options.
type AutoConfigOptions = autoconf.Options

// Close stops background services and flushes logs.
func (db *DB) Close() error { return db.eng.Close() }
