package tebaldi_test

import (
	"encoding/binary"
	"testing"
	"time"

	"repro/tebaldi"
)

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func specs() []*tebaldi.Spec {
	return []*tebaldi.Spec{
		{Name: "put", Tables: []string{"kv"}, WriteTables: []string{"kv"}},
		{Name: "get", ReadOnly: true, Tables: []string{"kv"}},
	}
}

func TestInitialConfigShape(t *testing.T) {
	cfg := tebaldi.InitialConfig(specs())
	want := "ssi[ none{get} 2pl{put} ]"
	if got := cfg.String(); got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestOpenNilConfigUsesInitial(t *testing.T) {
	db, err := tebaldi.Open(tebaldi.Options{}, specs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if got := db.ConfigString(); got != "SSI[ NoCC{get} 2PL{put} ]" {
		t.Fatalf("live tree %q", got)
	}
	if err := db.Run("put", 0, func(tx *tebaldi.Tx) error {
		return tx.Write(tebaldi.K("kv", "a"), u64(1))
	}); err != nil {
		t.Fatal(err)
	}
	var got uint64
	if err := db.Run("get", 0, func(tx *tebaldi.Tx) error {
		v, err := tx.Read(tebaldi.K("kv", "a"))
		if err != nil {
			return err
		}
		got = binary.LittleEndian.Uint64(v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("read %d", got)
	}
}

// TestDurabilityRecoverRoundTrip is the facade-level crash/recovery test:
// everything durable must survive; the recovered DB must be writable.
func TestDurabilityRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := tebaldi.Options{DurabilityDir: dir, GCPEpoch: 10 * time.Millisecond}
	db, err := tebaldi.Open(opts, specs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		i := i
		if err := db.Run("put", 0, func(tx *tebaldi.Tx) error {
			return tx.Write(tebaldi.KeyOf("kv", i), u64(uint64(i)*7))
		}); err != nil {
			t.Fatal(err)
		}
	}
	epoch := db.Engine().Wal().Epoch()
	db.Engine().Wal().WaitDurable(epoch)
	db.Close() // "crash": discard all in-memory state

	db2, state, err := tebaldi.Recover(opts, specs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if state.Committed != n {
		t.Fatalf("recovered %d committed, want %d (discarded %d)",
			state.Committed, n, state.Discarded)
	}
	for i := 0; i < n; i++ {
		v := db2.ReadCommitted(tebaldi.KeyOf("kv", i))
		if binary.LittleEndian.Uint64(v) != uint64(i)*7 {
			t.Fatalf("key %d lost or corrupt", i)
		}
	}
	// The recovered database accepts new transactions and overwrites
	// recovered state correctly.
	if err := db2.Run("put", 0, func(tx *tebaldi.Tx) error {
		return tx.Write(tebaldi.KeyOf("kv", 0), u64(999))
	}); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(db2.ReadCommitted(tebaldi.KeyOf("kv", 0))); got != 999 {
		t.Fatalf("post-recovery write lost: %d", got)
	}
}

func TestRecoverDropsNonDurableTail(t *testing.T) {
	dir := t.TempDir()
	// Very long epochs: nothing flushes unless we say so.
	opts := tebaldi.Options{DurabilityDir: dir, GCPEpoch: time.Hour}
	db, err := tebaldi.Open(opts, specs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		i := i
		if err := db.Run("put", 0, func(tx *tebaldi.Tx) error {
			return tx.Write(tebaldi.KeyOf("kv", i), u64(1))
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Crash without flushing: the epoch never sealed, so per the GCP rule
	// these commits may be lost — but recovery must still succeed.
	db.Close() // Close flushes one final epoch; simulate harder crashes at the kvstore level in internal/wal tests.
	db2, state, err := tebaldi.Recover(opts, specs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if state.Committed+state.Discarded == 0 {
		t.Fatal("no transactions seen in the log")
	}
}

func TestGCPrunesOldVersions(t *testing.T) {
	db, err := tebaldi.Open(tebaldi.Options{GCInterval: 10 * time.Millisecond}, specs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	k := tebaldi.K("kv", "hot")
	for i := 0; i < 200; i++ {
		i := i
		if err := db.Run("put", 0, func(tx *tebaldi.Tx) error {
			return tx.Write(k, u64(uint64(i)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond) // let GC run while idle
	if n := db.Engine().Store().Lookup(k).Len(); n > 5 {
		t.Fatalf("chain not pruned: %d versions", n)
	}
	if got := binary.LittleEndian.Uint64(db.ReadCommitted(k)); got != 199 {
		t.Fatalf("latest value %d", got)
	}
}

// TestCheckpointBoundedRestart is the facade-level checkpoint test: after a
// checkpoint, recovery starts from the snapshot and replays only the tail,
// and every committed write still survives.
func TestCheckpointBoundedRestart(t *testing.T) {
	dir := t.TempDir()
	opts := tebaldi.Options{DurabilityDir: dir, GCPEpoch: 10 * time.Millisecond}
	db, err := tebaldi.Open(opts, specs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	put := func(db *tebaldi.DB, i int, v uint64) {
		t.Helper()
		if err := db.Run("put", 0, func(tx *tebaldi.Tx) error {
			return tx.Write(tebaldi.KeyOf("kv", i), u64(v))
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		put(db, i%32, uint64(i))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap := db.Stats().Snapshot()
	if snap.Checkpoints != 1 || snap.CheckpointTruncatedBytes == 0 {
		t.Fatalf("checkpoints=%d truncated=%d", snap.Checkpoints, snap.CheckpointTruncatedBytes)
	}
	// A short tail, then restart.
	for i := 0; i < 5; i++ {
		put(db, i, uint64(1000+i))
	}
	db.Close()

	db2, state, err := tebaldi.Recover(opts, specs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if state.SnapshotTS == 0 || state.SnapshotKeys == 0 {
		t.Fatalf("recovery ignored the checkpoint: %+v", state)
	}
	if state.Replayed == 0 || state.Replayed > 40 {
		t.Fatalf("replayed %d records, want a small tail", state.Replayed)
	}
	if got := db2.Stats().Snapshot().RecoveryReplayed; got != uint64(state.Replayed) {
		t.Fatalf("stats RecoveryReplayed=%d, state=%d", got, state.Replayed)
	}
	for i := 0; i < 5; i++ {
		if got := binary.LittleEndian.Uint64(db2.ReadCommitted(tebaldi.KeyOf("kv", i))); got != uint64(1000+i) {
			t.Fatalf("tail write kv/%d = %d", i, got)
		}
	}
	for i := 5; i < 32; i++ {
		v := db2.ReadCommitted(tebaldi.KeyOf("kv", i))
		if v == nil {
			t.Fatalf("kv/%d lost across checkpointed restart", i)
		}
	}
}

func TestIsRetryable(t *testing.T) {
	if !tebaldi.IsRetryable(tebaldi.ErrAborted) {
		t.Fatal("ErrAborted should be retryable")
	}
	if tebaldi.IsRetryable(tebaldi.ErrUserAbort) {
		t.Fatal("user abort should not be retryable")
	}
}
