// Durability example: commit transactions with write-ahead logging and
// asynchronous GCP-epoch flushing (§4.5.4), simulate a crash by discarding
// the in-memory state, and recover the database from the logs — verifying
// that every durable transaction survived with its latest committed value.
// Then checkpoint: snapshot the committed state, compact the logs, and show
// that the next restart is bounded — it replays only the post-checkpoint
// tail instead of the whole history.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/tebaldi"
)

func val(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func num(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func main() {
	dir, err := os.MkdirTemp("", "tebaldi-durability-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	specs := []*tebaldi.Spec{
		{Name: "put", Tables: []string{"kv"}, WriteTables: []string{"kv"}},
	}
	opts := tebaldi.Options{
		DurabilityDir: dir,
		GCPEpoch:      20 * time.Millisecond,
	}
	cfg := tebaldi.Leaf(tebaldi.TwoPL, "put")

	db, err := tebaldi.Open(opts, specs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		i := i
		err := db.Run("put", 0, func(tx *tebaldi.Tx) error {
			return tx.Write(tebaldi.KeyOf("kv", i), val(uint64(i)*3))
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	// Wait for the asynchronous flusher to seal the epoch, then "crash"
	// (drop all in-memory state; the logs remain on disk).
	epoch := db.Engine().Wal().Epoch()
	db.Engine().Wal().WaitDurable(epoch)
	db.Close()
	fmt.Printf("committed %d transactions, durable through epoch %d; simulating crash...\n", n, epoch)

	// Recovery: rebuild the database from the write-ahead logs.
	db2, state, err := tebaldi.Recover(opts, specs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	fmt.Printf("recovered %d committed transactions (%d discarded by the GCP/2PC rules)\n",
		state.Committed, state.Discarded)

	missing := 0
	for i := 0; i < n; i++ {
		if got := num(db2.ReadCommitted(tebaldi.KeyOf("kv", i))); got != uint64(i)*3 {
			missing++
		}
	}
	if missing > 0 {
		log.Fatalf("%d durable writes lost", missing)
	}
	fmt.Println("all durable writes recovered correctly")

	// Checkpoint: snapshot the committed state at a consistent cut and
	// compact the logs. The next restart loads the snapshot and replays
	// only records committed after it — bounded restart, however long the
	// database has been running.
	before := dirSize(dir)
	if err := db2.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: logs %d -> %d bytes on disk\n", before, dirSize(dir))
	for i := 0; i < 50; i++ { // a short tail after the checkpoint
		i := i
		if err := db2.Run("put", 0, func(tx *tebaldi.Tx) error {
			return tx.Write(tebaldi.KeyOf("kv", i), val(uint64(i)*7))
		}); err != nil {
			log.Fatal(err)
		}
	}
	db2.Close()

	start := time.Now()
	db3, state, err := tebaldi.Recover(opts, specs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db3.Close()
	fmt.Printf("bounded restart in %v: snapshot seeded %d keys, replayed %d tail records\n",
		time.Since(start).Round(time.Millisecond), state.SnapshotKeys, state.Replayed)
	for i := 0; i < 50; i++ {
		if got := num(db3.ReadCommitted(tebaldi.KeyOf("kv", i))); got != uint64(i)*7 {
			log.Fatalf("tail write kv/%d lost", i)
		}
	}
	fmt.Println("post-checkpoint tail recovered correctly")
}

// dirSize sums the log files' on-disk size.
func dirSize(dir string) int64 {
	var total int64
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, de := range ents {
		if filepath.Ext(de.Name()) != ".log" {
			continue
		}
		if info, err := de.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}
