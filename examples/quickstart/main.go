// Quickstart: a bank with ACID transfers under a federated CC tree.
//
// The workload has two transaction types: money transfers (update) and
// audits (read-only full scans). A monolithic 2PL database would let audits
// block transfers; Tebaldi's initial configuration (§5.2) federates SSI over
// a no-CC read-only group and a 2PL update group, so audits read a snapshot
// and never block anyone — while the total balance stays exact.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sync"

	"repro/tebaldi"
)

const accounts = 64

func val(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func num(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func main() {
	specs := []*tebaldi.Spec{
		{Name: "transfer", Tables: []string{"account"}, WriteTables: []string{"account"}},
		{Name: "audit", ReadOnly: true, Tables: []string{"account"}},
	}
	// nil config = the paper's initial configuration:
	// SSI[ NoCC{audit} 2PL{transfer} ].
	db, err := tebaldi.Open(tebaldi.Options{}, specs, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fmt.Println("CC tree:", db.ConfigString())

	for i := 0; i < accounts; i++ {
		db.Load(tebaldi.KeyOf("account", i), val(1000))
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				amount := uint64(rng.Intn(20))
				err := db.Run("transfer", 0, func(tx *tebaldi.Tx) error {
					f, err := tx.Read(tebaldi.KeyOf("account", from))
					if err != nil {
						return err
					}
					t, err := tx.Read(tebaldi.KeyOf("account", to))
					if err != nil {
						return err
					}
					if num(f) < amount {
						return nil // insufficient funds: no-op commit
					}
					if err := tx.Write(tebaldi.KeyOf("account", from), val(num(f)-amount)); err != nil {
						return err
					}
					return tx.Write(tebaldi.KeyOf("account", to), val(num(t)+amount))
				})
				if err != nil {
					log.Fatal(err)
				}
			}
		}(int64(w))
	}

	// Concurrent snapshot audits: the sum must be exact at every instant.
	auditDone := make(chan struct{})
	go func() {
		defer close(auditDone)
		for i := 0; i < 50; i++ {
			err := db.Run("audit", 0, func(tx *tebaldi.Tx) error {
				var sum uint64
				for a := 0; a < accounts; a++ {
					v, err := tx.Read(tebaldi.KeyOf("account", a))
					if err != nil {
						return err
					}
					sum += num(v)
				}
				if sum != accounts*1000 {
					return fmt.Errorf("audit saw inconsistent total %d", sum)
				}
				return nil
			})
			if err != nil {
				log.Fatal(err)
			}
		}
	}()
	wg.Wait()
	<-auditDone

	var total uint64
	for a := 0; a < accounts; a++ {
		total += num(db.ReadCommitted(tebaldi.KeyOf("account", a)))
	}
	snap := db.Stats().Snapshot()
	fmt.Printf("final total: %d (expected %d)\n", total, accounts*1000)
	fmt.Printf("committed: %d, aborted-and-retried: %d\n", snap.Commits, snap.Aborts)
}
