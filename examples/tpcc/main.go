// TPC-C example: run the full TPC-C mix under the paper's best manual
// configuration (the Tebaldi 3-layer tree of Figure 4.6d) and print
// per-transaction-type results, then verify cross-table invariants.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro/tebaldi"
	"repro/workload/tpcc"
)

func main() {
	clients := flag.Int("clients", 64, "closed-loop clients")
	dur := flag.Duration("duration", 3*time.Second, "measurement duration")
	config := flag.String("config", "3layer", "one of: 2pl, ssi, callas1, callas2, 2layer, 3layer")
	flag.Parse()

	var cfg *tebaldi.Config
	switch *config {
	case "2pl":
		cfg = tpcc.ConfigMono2PL()
	case "ssi":
		cfg = tpcc.ConfigMonoSSI()
	case "callas1":
		cfg = tpcc.ConfigCallas1()
	case "callas2":
		cfg = tpcc.ConfigCallas2()
	case "2layer":
		cfg = tpcc.ConfigTebaldi2Layer()
	case "3layer":
		cfg = tpcc.ConfigTebaldi3Layer()
	default:
		log.Fatalf("unknown config %q", *config)
	}

	db, err := tebaldi.Open(tebaldi.Options{LockTimeout: 1500 * time.Millisecond},
		tpcc.Specs(false), cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	sc := tpcc.DefaultScale()
	fmt.Println("loading", sc.Warehouses, "warehouses ...")
	tpcc.Load(db, sc)
	fmt.Println("CC tree:", db.ConfigString())

	client := tpcc.NewClient(db, sc)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				op := client.Mix(rng)
				if err := client.Execute(op); err != nil {
					log.Printf("txn error: %v", err)
				}
			}
		}(int64(i) + 1)
	}

	time.Sleep(500 * time.Millisecond) // warm up
	snap := db.Stats().Snapshot()
	time.Sleep(*dur)
	w := db.Stats().Since(snap)
	close(stop)
	wg.Wait()

	fmt.Printf("\nthroughput: %.0f txn/s   abort rate: %.1f%%\n", w.Throughput, 100*w.AbortRate)
	for typ, wt := range w.PerType {
		fmt.Printf("  %-13s %8d commits  mean latency %v\n", typ, wt.Commits, wt.MeanLatency.Round(time.Microsecond))
	}
	if err := client.Check(db); err != nil {
		log.Fatalf("invariant violation: %v", err)
	}
	fmt.Println("invariants OK")
}
