// SEATS example: the airline-reservation workload under the per-flight TSO
// configuration (§4.6.2) — partition-by-instance in action. After the run,
// the example verifies the seats-left invariant: for every flight,
// seats_left + active reservations == total seats.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro/tebaldi"
	"repro/workload/seats"
)

func main() {
	clients := flag.Int("clients", 64, "closed-loop clients")
	dur := flag.Duration("duration", 3*time.Second, "measurement duration")
	flag.Parse()

	sc := seats.DefaultScale()
	db, err := tebaldi.Open(tebaldi.Options{LockTimeout: 1500 * time.Millisecond},
		seats.Specs(sc), seats.Config3Layer(sc))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	seats.Load(db, sc)
	fmt.Println("CC tree:", db.ConfigString())

	client := seats.NewClient(db, sc)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				op := client.Mix(rng)
				_ = client.Execute(op)
			}
		}(int64(i) + 1)
	}
	time.Sleep(300 * time.Millisecond)
	snap := db.Stats().Snapshot()
	time.Sleep(*dur)
	w := db.Stats().Since(snap)
	close(stop)
	wg.Wait()

	fmt.Printf("throughput: %.0f txn/s   abort rate: %.1f%%\n", w.Throughput, 100*w.AbortRate)

	// Invariant: per flight, seats_left equals total seats minus active
	// reservations (counted via the committed seat index).
	booked := make([]uint64, sc.Flights)
	for f := 0; f < sc.Flights; f++ {
		for s := 0; s < sc.Seats; s++ {
			v := db.ReadCommitted(tebaldi.KeyOf("seat_idx", f, s))
			if len(v) >= 8 && binary.LittleEndian.Uint64(v) != 0 {
				booked[f]++
			}
		}
	}
	for f := 0; f < sc.Flights; f++ {
		row := db.ReadCommitted(tebaldi.KeyOf("flight", f))
		left := binary.LittleEndian.Uint64(row)
		if left+booked[f] != uint64(sc.Seats) {
			log.Fatalf("flight %d: seats_left %d + booked %d != %d",
				f, left, booked[f], sc.Seats)
		}
	}
	fmt.Println("seats-left invariant OK on all flights")
}
