// Autoconfig example: start TPC-C on the general initial configuration of
// §5.2 and let Tebaldi's automatic configurator (Chapter 5) profile the live
// workload, detect the bottleneck conflict edges, and rewire the CC tree —
// no manual tuning.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro/tebaldi"
	"repro/workload/tpcc"
)

func main() {
	clients := flag.Int("clients", 64, "closed-loop clients")
	window := flag.Duration("window", 1500*time.Millisecond, "measurement window per candidate")
	flag.Parse()

	db, err := tebaldi.Open(tebaldi.Options{
		Profiling:   true,
		LockTimeout: 400 * time.Millisecond,
	}, tpcc.Specs(false), nil) // nil = initial configuration
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	sc := tpcc.DefaultScale()
	tpcc.Load(db, sc)
	client := tpcc.NewClient(db, sc)
	fmt.Println("initial CC tree:", db.ConfigString())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				op := client.Mix(rng)
				_ = client.Execute(op)
			}
		}(int64(i) + 1)
	}
	time.Sleep(2 * time.Second) // warm up past the cold-start conflict burst

	res, err := db.AutoConfigure(tebaldi.AutoConfigOptions{
		MeasureWindow: *window,
		MaxIterations: 6,
		Log: func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	close(stop)
	wg.Wait()

	fmt.Printf("\niterations: %d\n", len(res.Iterations))
	fmt.Printf("final CC tree: %s\n", res.Final)
	fmt.Printf("final throughput: %.0f txn/s\n", res.FinalThroughput)
}
