// Package repro is a from-scratch Go reproduction of "Bringing Modular
// Concurrency Control to the Next Level" (SIGMOD 2017): Tebaldi, a
// transactional key-value store that federates concurrency control
// mechanisms in a multi-level tree, plus its automatic configuration
// machinery (Chapter 5 of the dissertation version).
//
// The public API lives in repro/tebaldi; workloads in repro/workload/...;
// the per-table/figure benchmark harness in cmd/tebaldi-bench and
// bench_test.go. See DESIGN.md for the system inventory and EXPERIMENTS.md
// for paper-vs-measured results.
package repro
