package server

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeFrame hammers the frame decoder with arbitrary payloads.
// Invariants: never panic, never accept input that re-encodes differently
// (decode∘encode must be the identity on accepted frames), and never
// allocate proportionally to a lying length prefix (enforced structurally
// by the decoder, spot-checked in TestDecodeDoesNotOverAllocate).
func FuzzDecodeFrame(f *testing.F) {
	for _, m := range allMessages() {
		f.Add(appendFrame(nil, m)[4:])
	}
	f.Add([]byte{})
	f.Add([]byte{MsgBegin})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(bytes.Repeat([]byte{0x00}, 32))

	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := DecodeFrame(payload)
		if err != nil {
			if m != nil {
				t.Fatal("error with non-nil message")
			}
			return
		}
		// Accepted frames must round-trip byte-exactly: the codec has one
		// canonical encoding per message, so decode(payload) re-encoded
		// must reproduce payload.
		re := appendFrame(nil, m)[4:]
		if !bytes.Equal(re, payload) {
			t.Fatalf("accepted frame is not canonical:\n in: % x\nout: % x", payload, re)
		}
		// And a second decode of the re-encoding must agree.
		m2, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(normalize(m), normalize(m2)) {
			t.Fatalf("re-decode mismatch:\n a: %#v\n b: %#v", m, m2)
		}
	})
}
