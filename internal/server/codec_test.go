package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/core"
)

// allMessages is one representative of every wire message type, exercising
// every field incl. empty strings, empty and non-empty values.
func allMessages() []*Message {
	return []*Message{
		{Type: MsgBegin, SID: 1, TxnType: "update", Part: 42},
		{Type: MsgBegin, SID: 0, TxnType: "", Part: 0},
		{Type: MsgGet, SID: 7, Key: core.K("kv", "k123")},
		{Type: MsgGet, SID: 7, Key: core.K("", "")},
		{Type: MsgPut, SID: 9, Key: core.K("kv", "k1"), Value: []byte("hello")},
		{Type: MsgPut, SID: 9, Key: core.K("kv", "k1"), Value: []byte{}},
		{Type: MsgCommit, SID: 3},
		{Type: MsgAbort, SID: 4},
		{Type: MsgOK, SID: 5},
		{Type: MsgValue, SID: 6, Present: true, Value: []byte("world")},
		{Type: MsgValue, SID: 6, Present: true, Value: []byte{}},
		{Type: MsgValue, SID: 6, Present: false},
		{Type: MsgErr, SID: 8, Code: CodeConflict, ErrMsg: "data conflict"},
		{Type: MsgErr, SID: 8, Code: CodeShutdown, ErrMsg: ""},
	}
}

// normalize maps nil and empty byte slices together for comparison.
func normalize(m *Message) *Message {
	c := *m
	if len(c.Value) == 0 {
		c.Value = nil
	}
	return &c
}

func TestRoundTripEveryMessageType(t *testing.T) {
	for _, m := range allMessages() {
		frame := appendFrame(nil, m)
		got, err := DecodeFrame(frame[4:])
		if err != nil {
			t.Fatalf("decode %#v: %v", m, err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(m)) {
			t.Errorf("round trip mismatch:\n in: %#v\nout: %#v", m, got)
		}
	}
}

func TestReadFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	for _, m := range allMessages() {
		buf.Write(appendFrame(nil, m))
	}
	for _, want := range allMessages() {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(want)) {
			t.Errorf("stream round trip mismatch:\n in: %#v\nout: %#v", want, got)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("trailing read: want io.EOF, got %v", err)
	}
}

func TestDecodeTruncatedAtEveryPrefix(t *testing.T) {
	for _, m := range allMessages() {
		payload := appendFrame(nil, m)[4:]
		for cut := 0; cut < len(payload); cut++ {
			if _, err := DecodeFrame(payload[:cut]); err == nil {
				t.Errorf("type 0x%02x: truncation to %d/%d bytes decoded successfully",
					m.Type, cut, len(payload))
			}
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	for _, m := range allMessages() {
		payload := appendFrame(nil, m)[4:]
		if _, err := DecodeFrame(append(payload, 0xee)); err == nil {
			t.Errorf("type 0x%02x: trailing garbage accepted", m.Type)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},                          // empty
		{0x00},                      // truncated header
		{0xff, 0, 0, 0, 1},          // unknown type
		{MsgBegin, 0, 0, 0, 1},      // begin with no body
		{MsgPut, 0, 0, 0, 1, 0xff},  // put with torn key
		{MsgErr, 0, 0, 0, 1, 0x01},  // err with no message length
		bytes.Repeat([]byte{7}, 64), // noise
	}
	for _, c := range cases {
		if m, err := DecodeFrame(c); err == nil {
			t.Errorf("garbage % x decoded to %#v", c, m)
		} else if !errors.Is(err, ErrFrame) {
			t.Errorf("garbage % x: error %v does not wrap ErrFrame", c, err)
		}
	}
}

// TestDecodeClaimedLengthOverflow feeds inner length prefixes far larger
// than the actual payload: decoding must fail without allocating for the
// claimed length.
func TestDecodeClaimedLengthOverflow(t *testing.T) {
	// PUT with a value length claiming 0xffffffff but 3 bytes present.
	payload := []byte{MsgPut, 0, 0, 0, 1}
	payload = append(payload, 0, 2, 'k', 'v') // table
	payload = append(payload, 0, 1, 'r')      // row
	payload = append(payload, 0xff, 0xff, 0xff, 0xff, 'a', 'b', 'c')
	if _, err := DecodeFrame(payload); err == nil {
		t.Fatal("oversized claimed value length accepted")
	}
	// BEGIN with a string length pointing past the end.
	payload = []byte{MsgBegin, 0, 0, 0, 1, 0xff, 0xff, 'u'}
	if _, err := DecodeFrame(payload); err == nil {
		t.Fatal("oversized claimed string length accepted")
	}
}

func TestReadFrameRejectsOversizedHeader(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	_, err := ReadFrame(bytes.NewReader(hdr[:]))
	if err == nil || !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized frame header: want ErrFrame, got %v", err)
	}
	// Undersized (below the 5-byte type+sid minimum) must fail too.
	binary.BigEndian.PutUint32(hdr[:], 4)
	if _, err := ReadFrame(bytes.NewReader(append(hdr[:], 0, 0, 0, 0))); err == nil || !errors.Is(err, ErrFrame) {
		t.Fatalf("undersized frame header: want ErrFrame, got %v", err)
	}
}

func TestWireErrorMapsToCoreErrors(t *testing.T) {
	cases := []struct {
		code      byte
		want      error
		retryable bool
	}{
		{CodeConflict, core.ErrConflict, true},
		{CodeTimeout, core.ErrTimeout, true},
		{CodeCascade, core.ErrCascade, true},
		{CodePivot, core.ErrPivot, true},
		{CodeReconfig, core.ErrReconfiguring, true},
		{CodeAborted, core.ErrAborted, true},
		{CodeUser, core.ErrUserAbort, false},
		{CodeBadRequest, nil, false},
		{CodeNoTxn, nil, false},
		{CodeTxnOpen, nil, false},
		{CodeShutdown, nil, false},
	}
	for _, c := range cases {
		we := &WireError{Code: c.code, Msg: "x"}
		if c.want != nil && !errors.Is(we, c.want) {
			t.Errorf("code 0x%02x: errors.Is(%v) = false", c.code, c.want)
		}
		if got := core.IsRetryable(we); got != c.retryable {
			t.Errorf("code 0x%02x: IsRetryable = %v, want %v", c.code, got, c.retryable)
		}
		if got := Retryable(c.code); got != c.retryable {
			t.Errorf("code 0x%02x: Retryable = %v, want %v", c.code, got, c.retryable)
		}
	}
}

func TestErrorCodeRoundTrip(t *testing.T) {
	for _, err := range []error{
		core.ErrConflict, core.ErrTimeout, core.ErrCascade,
		core.ErrPivot, core.ErrReconfiguring, core.ErrUserAbort,
	} {
		code := ErrorCode(err)
		if back := CodeError(code); !errors.Is(err, back) {
			t.Errorf("ErrorCode(%v) = 0x%02x, CodeError back = %v", err, code, back)
		}
	}
	if code := ErrorCode(errors.New("weird")); code != CodeInternal {
		t.Errorf("unknown error mapped to 0x%02x, want CodeInternal", code)
	}
}

// TestDecodeDoesNotOverAllocate bounds allocation while decoding frames
// whose inner lengths lie: the decoder must size buffers by bytes present,
// never by the claimed length.
func TestDecodeDoesNotOverAllocate(t *testing.T) {
	payload := []byte{MsgPut, 0, 0, 0, 1}
	payload = append(payload, 0, 2, 'k', 'v')
	payload = append(payload, 0, 1, 'r')
	payload = append(payload, 0xff, 0xff, 0xff, 0xff) // claims 4 GiB, has 0
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := DecodeFrame(payload); err == nil {
			t.Fatal("lying length accepted")
		}
	})
	// A handful of small allocations (message struct, error) are fine;
	// a 4 GiB make([]byte) would explode this number's cost long before
	// the count mattered.
	if allocs > 20 {
		t.Errorf("decode of lying frame allocates %v objects", allocs)
	}
}
