package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
)

// Metrics are the server-side counters, exported (with the engine, WAL and
// checkpoint counters) at the /metrics endpoint in the Prometheus text
// exposition format. All fields are atomics; gauges use Int64.
type Metrics struct {
	ConnsAccepted    atomic.Uint64
	ConnsActive      atomic.Int64
	SessionsActive   atomic.Int64
	FramesRead       atomic.Uint64
	FramesWritten    atomic.Uint64
	ProtocolErrors   atomic.Uint64
	TxnBegins        atomic.Uint64
	TxnCommits       atomic.Uint64
	TxnAborts        atomic.Uint64
	DisconnectAborts atomic.Uint64
	Reads            atomic.Uint64
	Writes           atomic.Uint64
}

// Metrics exposes the server counters (tests and embedding binaries).
func (s *Server) Metrics() *Metrics { return &s.metrics }

// metricPoint is one exposition line: name, type, help, value.
type metricPoint struct {
	name  string
	typ   string // "counter" or "gauge"
	help  string
	value float64
}

// collect gathers every exported series at one instant.
func (s *Server) collect() []metricPoint {
	m := &s.metrics
	pts := []metricPoint{
		{"tebaldi_server_connections_total", "counter", "TCP connections accepted", float64(m.ConnsAccepted.Load())},
		{"tebaldi_server_connections_active", "gauge", "currently open connections", float64(m.ConnsActive.Load())},
		{"tebaldi_server_sessions_active", "gauge", "currently open sessions", float64(m.SessionsActive.Load())},
		{"tebaldi_server_frames_read_total", "counter", "protocol frames decoded", float64(m.FramesRead.Load())},
		{"tebaldi_server_frames_written_total", "counter", "protocol frames written", float64(m.FramesWritten.Load())},
		{"tebaldi_server_protocol_errors_total", "counter", "malformed frames and out-of-place requests", float64(m.ProtocolErrors.Load())},
		{"tebaldi_server_txn_begins_total", "counter", "transactions opened over the wire", float64(m.TxnBegins.Load())},
		{"tebaldi_server_txn_commits_total", "counter", "transactions committed over the wire", float64(m.TxnCommits.Load())},
		{"tebaldi_server_txn_aborts_total", "counter", "wire transactions aborted (any cause)", float64(m.TxnAborts.Load())},
		{"tebaldi_server_disconnect_aborts_total", "counter", "transactions rolled back because the client disconnected", float64(m.DisconnectAborts.Load())},
		{"tebaldi_server_reads_total", "counter", "GET operations served", float64(m.Reads.Load())},
		{"tebaldi_server_writes_total", "counter", "PUT operations served", float64(m.Writes.Load())},
		{"tebaldi_server_txns_open", "gauge", "wire transactions currently open", float64(s.txnsOpen.Load())},
	}

	eng := s.db.Engine()
	snap := s.db.Stats().Snapshot()
	pts = append(pts,
		metricPoint{"tebaldi_engine_commits_total", "counter", "engine transaction commits", float64(snap.Commits)},
		metricPoint{"tebaldi_engine_aborts_total", "counter", "engine transaction aborts", float64(snap.Aborts)},
		metricPoint{"tebaldi_engine_abort_timeout_total", "counter", "aborts by lock/dependency timeout", float64(snap.AbortTimeout)},
		metricPoint{"tebaldi_engine_abort_conflict_total", "counter", "aborts by data conflict", float64(snap.AbortConflict)},
		metricPoint{"tebaldi_engine_abort_pivot_total", "counter", "aborts by SSI pivot", float64(snap.AbortPivot)},
		metricPoint{"tebaldi_engine_abort_cascade_total", "counter", "cascading aborts", float64(snap.AbortCascade)},
		metricPoint{"tebaldi_engine_txns_active", "gauge", "transactions registered in the engine", float64(eng.ActiveTxns())},
		metricPoint{"tebaldi_wal_batches_total", "counter", "group-commit batches flushed", float64(snap.WalBatches)},
		metricPoint{"tebaldi_wal_batch_records_total", "counter", "records coalesced into group-commit batches", float64(snap.WalBatchRecords)},
		metricPoint{"tebaldi_wal_flush_seconds_total", "counter", "cumulative append+flush time", float64(snap.WalFlushNs) / 1e9},
		metricPoint{"tebaldi_wal_errors_total", "counter", "failed WAL batch flushes", float64(snap.WalErrors)},
		metricPoint{"tebaldi_checkpoints_total", "counter", "checkpoints completed", float64(snap.Checkpoints)},
		metricPoint{"tebaldi_checkpoint_errors_total", "counter", "failed checkpoint attempts", float64(snap.CheckpointErrors)},
		metricPoint{"tebaldi_checkpoint_snapshot_bytes", "gauge", "size of the newest checkpoint snapshot", float64(snap.CheckpointSnapshotBytes)},
		metricPoint{"tebaldi_checkpoint_truncated_bytes_total", "counter", "log bytes reclaimed by compaction", float64(snap.CheckpointTruncatedBytes)},
	)

	types := make([]string, 0, len(snap.PerType))
	for typ := range snap.PerType {
		types = append(types, typ)
	}
	sort.Strings(types)
	for _, typ := range types {
		pts = append(pts, metricPoint{fmt.Sprintf("tebaldi_engine_type_commits_total{type=%q}", typ),
			"counter", "per-type commits", float64(snap.PerType[typ].Commits)})
	}
	for _, typ := range types {
		pts = append(pts, metricPoint{fmt.Sprintf("tebaldi_engine_type_aborts_total{type=%q}", typ),
			"counter", "per-type aborts", float64(snap.PerType[typ].Aborts)})
	}
	return pts
}

// MetricsHandler serves the Prometheus text exposition format:
//
//	# HELP <name> <help>
//	# TYPE <name> <counter|gauge>
//	<name> <value>
//
// Mount it on any mux (cmd/tebaldi-server serves it on its own port).
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		seen := map[string]bool{}
		for _, p := range s.collect() {
			// HELP/TYPE take the bare family name (labels stripped),
			// once per family.
			family := p.name
			if i := strings.IndexByte(family, '{'); i >= 0 {
				family = family[:i]
			}
			if !seen[family] {
				seen[family] = true
				fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", family, p.help, family, p.typ)
			}
			fmt.Fprintf(w, "%s %g\n", p.name, p.value)
		}
	})
}
