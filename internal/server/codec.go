package server

import (
	"encoding/binary"
	"io"
)

// appendFrame encodes m as a complete frame (length prefix included) onto
// buf and returns the extended slice.
func appendFrame(buf []byte, m *Message) []byte {
	lenAt := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length back-patched below
	buf = append(buf, m.Type)
	buf = binary.BigEndian.AppendUint32(buf, m.SID)
	switch m.Type {
	case MsgBegin:
		buf = appendString16(buf, m.TxnType)
		buf = binary.BigEndian.AppendUint64(buf, m.Part)
	case MsgGet:
		buf = appendString16(buf, m.Key.Table)
		buf = appendString16(buf, m.Key.Row)
	case MsgPut:
		buf = appendString16(buf, m.Key.Table)
		buf = appendString16(buf, m.Key.Row)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Value)))
		buf = append(buf, m.Value...)
	case MsgCommit, MsgAbort, MsgOK:
		// Empty body.
	case MsgValue:
		if m.Present {
			buf = append(buf, 1)
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Value)))
			buf = append(buf, m.Value...)
		} else {
			buf = append(buf, 0)
		}
	case MsgErr:
		buf = append(buf, m.Code)
		buf = appendString16(buf, m.ErrMsg)
	}
	binary.BigEndian.PutUint32(buf[lenAt:], uint32(len(buf)-lenAt-4))
	return buf
}

func appendString16(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// DecodeFrame decodes one frame payload (the bytes after the u32 length
// prefix). It never panics and never allocates proportionally to claimed —
// rather than actual — input size; string/value fields alias or copy only
// bytes that are really present. Trailing garbage after a well-formed body
// is rejected.
func DecodeFrame(payload []byte) (*Message, error) {
	d := decoder{buf: payload}
	m := &Message{}
	m.Type = d.u8()
	m.SID = d.u32()
	switch m.Type {
	case MsgBegin:
		m.TxnType = d.string16()
		m.Part = d.u64()
	case MsgGet:
		m.Key.Table = d.string16()
		m.Key.Row = d.string16()
	case MsgPut:
		m.Key.Table = d.string16()
		m.Key.Row = d.string16()
		m.Value = d.bytes32()
	case MsgCommit, MsgAbort, MsgOK:
		// Empty body.
	case MsgValue:
		switch d.u8() {
		case 0:
		case 1:
			m.Present = true
			m.Value = d.bytes32()
		default:
			if d.err == nil {
				return nil, frameErr("VALUE present flag must be 0 or 1")
			}
		}
	case MsgErr:
		m.Code = d.u8()
		m.ErrMsg = d.string16()
	default:
		if d.err == nil {
			return nil, frameErr("unknown message type 0x%02x", m.Type)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, frameErr("%d trailing bytes after 0x%02x body", len(d.buf), m.Type)
	}
	return m, nil
}

// ReadFrame reads one length-prefixed frame from r. The length prefix is
// validated against MaxFrame before the payload buffer is allocated.
func ReadFrame(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, frameErr("frame length %d exceeds MaxFrame %d", n, MaxFrame)
	}
	if n < 5 { // type + sid minimum
		return nil, frameErr("frame length %d below minimum header", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return DecodeFrame(payload)
}

// decoder is a cursor over a frame payload; the first failure sticks and
// subsequent reads are no-ops, so callers can check err once at the end.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = frameErr("truncated %s (%d bytes left)", what, len(d.buf))
	}
}

func (d *decoder) u8() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 1 {
		d.fail("u8")
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 4 {
		d.fail("u32")
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.fail("u64")
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.fail(what)
		return nil
	}
	v := d.buf[:n]
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) string16() string {
	n := int(d.u16())
	return string(d.take(n, "string body"))
}

func (d *decoder) u16() uint16 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 2 {
		d.fail("u16")
		return 0
	}
	v := binary.BigEndian.Uint16(d.buf)
	d.buf = d.buf[2:]
	return v
}

// bytes32 reads a u32-length-prefixed byte field. The declared length is
// checked against the bytes actually present before any slicing, and the
// result aliases the payload (callers copy if they retain).
func (d *decoder) bytes32() []byte {
	n := d.u32()
	if d.err == nil && uint64(n) > uint64(len(d.buf)) {
		d.fail("bytes body")
		return nil
	}
	return d.take(int(n), "bytes body")
}
