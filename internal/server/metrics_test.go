package server

import (
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/tebaldi"
)

// scrape hits the /metrics handler and parses the exposition into a
// name→value map, failing the test on any line that is not a comment or a
// well-formed `name value` sample.
func scrape(t *testing.T, srv *Server) map[string]float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}

	nameRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})?$`)
	helpRe := regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	out := map[string]float64{}
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(rec.Body.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !helpRe.MatchString(line) {
				t.Errorf("malformed comment line %q", line)
			}
			if f := strings.Fields(line); f[1] == "TYPE" {
				if f[3] != "counter" && f[3] != "gauge" {
					t.Errorf("bad TYPE %q in %q", f[3], line)
				}
				if typed[f[2]] {
					t.Errorf("duplicate TYPE for family %s", f[2])
				}
				typed[f[2]] = true
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		if !nameRe.MatchString(name) {
			t.Errorf("malformed series name %q", name)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Errorf("unparseable value in %q: %v", line, err)
		}
		if _, dup := out[name]; dup {
			t.Errorf("duplicate series %q", name)
		}
		family := name
		if i := strings.IndexByte(family, '{'); i >= 0 {
			family = family[:i]
		}
		if !typed[family] {
			t.Errorf("series %q has no preceding TYPE for its family", name)
		}
		out[name] = v
	}
	return out
}

func TestMetricsEndpoint(t *testing.T) {
	srv, addr := newTestServer(t, tebaldi.Options{})
	base := scrape(t, srv)

	// Every advertised family is present from the first scrape.
	for _, name := range []string{
		"tebaldi_server_connections_total",
		"tebaldi_server_connections_active",
		"tebaldi_server_sessions_active",
		"tebaldi_server_frames_read_total",
		"tebaldi_server_frames_written_total",
		"tebaldi_server_protocol_errors_total",
		"tebaldi_server_txn_begins_total",
		"tebaldi_server_txn_commits_total",
		"tebaldi_server_txn_aborts_total",
		"tebaldi_server_disconnect_aborts_total",
		"tebaldi_server_reads_total",
		"tebaldi_server_writes_total",
		"tebaldi_server_txns_open",
		"tebaldi_engine_commits_total",
		"tebaldi_engine_aborts_total",
		"tebaldi_engine_txns_active",
		"tebaldi_wal_batches_total",
		"tebaldi_checkpoints_total",
	} {
		if _, ok := base[name]; !ok {
			t.Errorf("series %s missing from /metrics", name)
		}
	}

	// Run a known operation mix: 3 commits (2 with a write, 1 read-only
	// with a read), 1 client abort.
	c := dialTest(t, addr)
	defer c.Close()
	s := c.Session()
	for i := 0; i < 2; i++ {
		if err := s.Begin("update", 0); err != nil {
			t.Fatal(err)
		}
		if err := s.Put("kv", "m", []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Begin("readonly", 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("kv", "m"); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin("update", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Abort(); err != nil {
		t.Fatal(err)
	}

	after := scrape(t, srv)

	// Exact deltas for the wire-level txn counters.
	for name, delta := range map[string]float64{
		"tebaldi_server_connections_total": 1,
		"tebaldi_server_txn_begins_total":  4,
		"tebaldi_server_txn_commits_total": 3,
		"tebaldi_server_txn_aborts_total":  1,
		"tebaldi_server_reads_total":       1,
		"tebaldi_server_writes_total":      2,
		"tebaldi_engine_commits_total":     3,
	} {
		if got := after[name] - base[name]; got != delta {
			t.Errorf("%s delta = %v, want %v", name, got, delta)
		}
	}
	// 11 requests + 11 responses crossed the wire for the mix above:
	// 2×(BEGIN,PUT,COMMIT) + (BEGIN,GET,COMMIT) + (BEGIN,ABORT).
	if got := after["tebaldi_server_frames_read_total"] - base["tebaldi_server_frames_read_total"]; got != 11 {
		t.Errorf("frames_read delta = %v, want 11", got)
	}
	if got := after["tebaldi_server_frames_written_total"] - base["tebaldi_server_frames_written_total"]; got != 11 {
		t.Errorf("frames_written delta = %v, want 11", got)
	}
	// Per-type series appear once the types have committed/aborted.
	if v := after[`tebaldi_engine_type_commits_total{type="update"}`]; v != 2 {
		t.Errorf(`type_commits{update} = %v, want 2`, v)
	}
	if v := after[`tebaldi_engine_type_commits_total{type="readonly"}`]; v != 1 {
		t.Errorf(`type_commits{readonly} = %v, want 1`, v)
	}

	// Counters never decrease across scrapes (monotone), gauges may.
	third := scrape(t, srv)
	for name, v := range after {
		if strings.HasSuffix(name, "_total") || strings.Contains(name, "_total{") {
			if third[name] < v {
				t.Errorf("counter %s went backwards: %v -> %v", name, v, third[name])
			}
		}
	}
	if got := third["tebaldi_server_txns_open"]; got != 0 {
		t.Errorf("txns_open gauge = %v with nothing open", got)
	}
}
