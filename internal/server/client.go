package server

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
)

// Client is a multiplexing protocol client: one TCP connection carrying any
// number of concurrent sessions. Each session is synchronous (one request
// outstanding at a time, from one goroutine); different sessions may be
// driven from different goroutines concurrently.
type Client struct {
	nc net.Conn

	// wmu serializes frame writes. Declared inner to the session-table
	// lock so a future register-and-write path has one legal order.
	// tebaldi:locks after server.Client.mu
	wmu sync.Mutex
	bw  *bufio.Writer

	// mu guards pending (sid -> response slot) and the terminal error.
	// Never held while blocking on the network; ordered before wmu.
	mu      sync.Mutex
	pending map[uint32]chan *Message
	err     error
	nextSID uint32

	readerDone chan struct{}
}

// Dial connects to a tebaldi-server at addr.
func Dial(addr string) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, 10*time.Second)
	return wrap(nc, err)
}

// NewClient wraps an established connection (tests use net.Pipe or an
// in-process listener).
func NewClient(nc net.Conn) *Client {
	c, _ := wrap(nc, nil)
	return c
}

func wrap(nc net.Conn, err error) (*Client, error) {
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &Client{
		nc:         nc,
		bw:         bufio.NewWriter(nc),
		pending:    make(map[uint32]chan *Message),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close tears the connection down; blocked calls fail with the close error.
func (c *Client) Close() error {
	err := c.nc.Close()
	<-c.readerDone
	return err
}

// readLoop dispatches response frames to their pending request channels.
//
// tebaldi:worker Close closes the conn; the blocked read fails and the loop returns, closing readerDone
func (c *Client) readLoop() {
	defer close(c.readerDone)
	br := bufio.NewReader(c.nc)
	for {
		m, err := ReadFrame(br)
		if err != nil {
			c.mu.Lock()
			c.err = fmt.Errorf("server: connection lost: %w", err)
			for sid, ch := range c.pending {
				close(ch)
				delete(c.pending, sid)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch := c.pending[m.SID]
		delete(c.pending, m.SID)
		c.mu.Unlock()
		if ch != nil {
			ch <- m
		}
		// A response for a session with no waiter (e.g. a protocol error
		// the server attributed to sid 0) is dropped; the affected call
		// fails via the connection error path when the server hangs up.
	}
}

// Session opens a new session (one transaction at a time) on the
// connection. Sessions are cheap: a client id and a response slot.
func (c *Client) Session() *Sess {
	c.mu.Lock()
	c.nextSID++
	sid := c.nextSID
	c.mu.Unlock()
	return &Sess{c: c, id: sid, resp: make(chan *Message, 1)}
}

// Sess is one session. Methods must be called from a single goroutine.
type Sess struct {
	c    *Client
	id   uint32
	resp chan *Message
}

// roundTrip sends req and waits for this session's response.
func (s *Sess) roundTrip(req *Message) (*Message, error) {
	c := s.c
	req.SID = s.id
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.pending[s.id] = s.resp
	c.mu.Unlock()

	c.wmu.Lock()
	buf := appendFrame(nil, req)
	_, err := c.bw.Write(buf)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, s.id)
		c.mu.Unlock()
		return nil, err
	}

	m, ok := <-s.resp
	if !ok {
		// Reader closed the slot: surface the terminal connection error.
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		s.resp = make(chan *Message, 1) // slot is spent; arm a fresh one
		return nil, err
	}
	if m.Type == MsgErr {
		return nil, &WireError{Code: m.Code, Msg: m.ErrMsg}
	}
	return m, nil
}

// Begin opens a transaction of the given registered type on this session.
func (s *Sess) Begin(typ string, part uint64) error {
	_, err := s.roundTrip(&Message{Type: MsgBegin, TxnType: typ, Part: part})
	return err
}

// Get reads a key; found is false when the key is absent at the snapshot.
func (s *Sess) Get(table, row string) (value []byte, found bool, err error) {
	m, err := s.roundTrip(&Message{Type: MsgGet, Key: core.K(table, row)})
	if err != nil {
		return nil, false, err
	}
	return m.Value, m.Present, nil
}

// Put writes a key.
func (s *Sess) Put(table, row string, value []byte) error {
	_, err := s.roundTrip(&Message{Type: MsgPut, Key: core.K(table, row), Value: value})
	return err
}

// Commit commits the session's transaction. On error the transaction is
// gone either way; retryable errors satisfy core.IsRetryable via WireError.
func (s *Sess) Commit() error {
	_, err := s.roundTrip(&Message{Type: MsgCommit})
	return err
}

// Abort rolls the session's transaction back.
func (s *Sess) Abort() error {
	_, err := s.roundTrip(&Message{Type: MsgAbort})
	return err
}
