// Package server is Tebaldi's networked front end: a TCP listener speaking a
// length-prefixed binary protocol (BEGIN/GET/PUT/COMMIT/ABORT) with
// connection multiplexing — many independent sessions per connection, each
// holding at most one open transaction — plus a Prometheus-style /metrics
// endpoint and graceful drain. cmd/tebaldi-server wraps it as a binary;
// internal/loadgen drives it open-loop.
//
// Wire format (all integers big-endian):
//
//	frame   := u32 length | payload            (length = len(payload), ≤ MaxFrame)
//	payload := u8 msgType | u32 sessionID | body
//
// Client→server bodies:
//
//	BEGIN  := u16 len | type bytes | u64 part
//	GET    := key
//	PUT    := key | u32 len | value bytes
//	COMMIT := (empty)
//	ABORT  := (empty)
//	key    := u16 len | table bytes | u16 len | row bytes
//
// Server→client bodies:
//
//	OK    := (empty)
//	VALUE := u8 present | [u32 len | value bytes]
//	ERR   := u8 code | u16 len | message bytes
//
// Each session processes its requests in order with one response per
// request; responses from different sessions interleave freely on the
// connection. Error codes map back to the engine's abort reasons so a
// remote client can make the same retry decision an in-process one would
// (see CodeError / core.IsRetryable).
package server

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// MaxFrame bounds a frame payload. A decoder must reject larger length
// prefixes before allocating, so a malicious header cannot balloon memory.
const MaxFrame = 1 << 20

// Message types. Requests have the high bit clear, responses set.
const (
	MsgBegin  = 0x01
	MsgGet    = 0x02
	MsgPut    = 0x03
	MsgCommit = 0x04
	MsgAbort  = 0x05

	MsgOK    = 0x81
	MsgValue = 0x82
	MsgErr   = 0x83
)

// Error codes carried by MsgErr. Codes below 0x10 are transaction aborts
// mirroring internal/core's reasons; codes from 0x10 up are protocol or
// server-state errors (never retryable).
const (
	CodeConflict = 0x01 // core.ErrConflict — retryable
	CodeTimeout  = 0x02 // core.ErrTimeout — retryable
	CodeCascade  = 0x03 // core.ErrCascade — retryable
	CodePivot    = 0x04 // core.ErrPivot — retryable
	CodeReconfig = 0x05 // core.ErrReconfiguring — retryable
	CodeAborted  = 0x06 // other core.ErrAborted — retryable
	CodeUser     = 0x07 // core.ErrUserAbort — not retried

	CodeBadRequest  = 0x10 // malformed or out-of-place message
	CodeNoTxn       = 0x11 // GET/PUT/COMMIT/ABORT without an open transaction
	CodeTxnOpen     = 0x12 // BEGIN while the session already has a transaction
	CodeUnknownType = 0x13 // BEGIN with an unregistered transaction type
	CodeShutdown    = 0x14 // server is draining; no new transactions
	CodeInternal    = 0x15 // unexpected server-side failure
)

// Message is one decoded frame. Fields beyond Type and SID are populated
// per message type; unused ones are zero.
type Message struct {
	Type byte
	SID  uint32

	// BEGIN.
	TxnType string
	Part    uint64

	// GET / PUT.
	Key core.Key

	// PUT / VALUE. For decoded frames Value aliases the input buffer;
	// copy before retaining.
	Value   []byte
	Present bool

	// ERR.
	Code   byte
	ErrMsg string
}

// ErrFrame reports a malformed frame. Decoders return it (never panic) for
// truncated, oversized, or otherwise garbage input.
var ErrFrame = errors.New("server: malformed frame")

func frameErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrFrame, fmt.Sprintf(format, args...))
}

// WireError is the client-side representation of a MsgErr response. It
// unwraps to the matching engine abort reason, so errors.Is(err,
// core.ErrConflict) and core.IsRetryable work across the wire.
type WireError struct {
	Code byte
	Msg  string
}

// Error implements error.
func (e *WireError) Error() string {
	return fmt.Sprintf("server error 0x%02x: %s", e.Code, e.Msg)
}

// Unwrap maps the code back to the core error it was encoded from, nil for
// protocol-level codes.
func (e *WireError) Unwrap() error { return CodeError(e.Code) }

// ErrorCode maps a transaction error to its wire code.
func ErrorCode(err error) byte {
	switch {
	case errors.Is(err, core.ErrUserAbort):
		return CodeUser
	case errors.Is(err, core.ErrTimeout):
		return CodeTimeout
	case errors.Is(err, core.ErrCascade):
		return CodeCascade
	case errors.Is(err, core.ErrPivot):
		return CodePivot
	case errors.Is(err, core.ErrReconfiguring):
		return CodeReconfig
	case errors.Is(err, core.ErrConflict):
		return CodeConflict
	case errors.Is(err, core.ErrAborted):
		return CodeAborted
	default:
		return CodeInternal
	}
}

// CodeError maps a wire code back to the engine error it stands for (nil
// for protocol-level codes, which have no engine counterpart).
func CodeError(code byte) error {
	switch code {
	case CodeConflict:
		return core.ErrConflict
	case CodeTimeout:
		return core.ErrTimeout
	case CodeCascade:
		return core.ErrCascade
	case CodePivot:
		return core.ErrPivot
	case CodeReconfig:
		return core.ErrReconfiguring
	case CodeAborted:
		return core.ErrAborted
	case CodeUser:
		return core.ErrUserAbort
	default:
		return nil
	}
}

// Retryable reports whether a wire code stands for a system abort the
// client should retry (the remote analogue of core.IsRetryable).
func Retryable(code byte) bool {
	switch code {
	case CodeConflict, CodeTimeout, CodeCascade, CodePivot, CodeReconfig, CodeAborted:
		return true
	}
	return false
}
