package server

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/tebaldi"
)

// kvSpecs is the generic schema the tests serve: a 2PL-regulated update
// type and a no-CC read-only type under an SSI root (tebaldi.InitialConfig).
func kvSpecs() []*tebaldi.Spec {
	return []*tebaldi.Spec{
		{Name: "update", Tables: []string{"kv"}, WriteTables: []string{"kv"}},
		{Name: "readonly", ReadOnly: true, Tables: []string{"kv"}},
	}
}

// newTestServer starts a server over a fresh database on a loopback
// listener and tears both down with the test.
func newTestServer(t *testing.T, opts tebaldi.Options) (*Server, string) {
	t.Helper()
	if opts.LockTimeout == 0 {
		opts.LockTimeout = 300 * time.Millisecond
	}
	db, err := tebaldi.Open(opts, kvSpecs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Shutdown(2 * time.Second)
		db.Close()
	})
	return srv, ln.Addr().String()
}

func dialTest(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestCommitVisibleAcrossConnections(t *testing.T) {
	srv, addr := newTestServer(t, tebaldi.Options{})
	c1 := dialTest(t, addr)
	defer c1.Close()
	s := c1.Session()
	if err := s.Begin("update", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("kv", "a", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	c2 := dialTest(t, addr)
	defer c2.Close()
	s2 := c2.Session()
	if err := s2.Begin("readonly", 0); err != nil {
		t.Fatal(err)
	}
	v, found, err := s2.Get("kv", "a")
	if err != nil || !found || string(v) != "v1" {
		t.Fatalf("Get = %q, %v, %v; want v1", v, found, err)
	}
	if err := s2.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Metrics().TxnCommits.Load(); got != 2 {
		t.Errorf("TxnCommits = %d, want 2", got)
	}
}

// TestDisconnectMidTxnReleasesState is the session-lifecycle core: a client
// that vanishes mid-transaction must have its transaction aborted (engine
// stats) and its 2PL locks released (a second client can write the same key
// promptly).
func TestDisconnectMidTxnReleasesState(t *testing.T) {
	srv, addr := newTestServer(t, tebaldi.Options{})
	eng := srv.DB().Engine()

	c1 := dialTest(t, addr)
	s1 := c1.Session()
	if err := s1.Begin("update", 0); err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("kv", "hot", []byte("mine")); err != nil {
		t.Fatal(err)
	}
	if n := eng.ActiveTxns(); n != 1 {
		t.Fatalf("ActiveTxns = %d with one open wire txn", n)
	}
	abortsBefore := eng.Stats().Snapshot().Aborts

	// Vanish without COMMIT/ABORT: the server must roll the transaction
	// back on the disconnect path.
	c1.Close()
	waitFor(t, 2*time.Second, "disconnect rollback", func() bool {
		return eng.Stats().Snapshot().Aborts == abortsBefore+1 && eng.ActiveTxns() == 0
	})
	if got := srv.Metrics().DisconnectAborts.Load(); got != 1 {
		t.Errorf("DisconnectAborts = %d, want 1", got)
	}

	// The 2PL X-lock on kv/hot must be free: a fresh writer commits well
	// inside the lock timeout.
	c2 := dialTest(t, addr)
	defer c2.Close()
	s2 := c2.Session()
	start := time.Now()
	if err := s2.Begin("update", 0); err != nil {
		t.Fatal(err)
	}
	if err := s2.Put("kv", "hot", []byte("theirs")); err != nil {
		t.Fatalf("write after disconnect: %v", err)
	}
	if err := s2.Commit(); err != nil {
		t.Fatalf("commit after disconnect: %v", err)
	}
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Errorf("post-disconnect write took %v — lock was not released promptly", d)
	}
	if got := srv.Metrics().SessionsActive.Load(); got != 1 {
		t.Errorf("SessionsActive = %d after first conn torn down, want 1", got)
	}
}

func TestDoubleBeginRejected(t *testing.T) {
	srv, addr := newTestServer(t, tebaldi.Options{})
	c := dialTest(t, addr)
	defer c.Close()
	s := c.Session()
	if err := s.Begin("update", 0); err != nil {
		t.Fatal(err)
	}
	err := s.Begin("update", 0)
	var we *WireError
	if !errors.As(err, &we) || we.Code != CodeTxnOpen {
		t.Fatalf("double BEGIN: got %v, want WireError CodeTxnOpen", err)
	}
	// The original transaction is unharmed by the protocol error.
	if err := s.Put("kv", "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Metrics().ProtocolErrors.Load(); got != 1 {
		t.Errorf("ProtocolErrors = %d, want 1", got)
	}
}

func TestOpsWithoutBeginRejected(t *testing.T) {
	_, addr := newTestServer(t, tebaldi.Options{})
	c := dialTest(t, addr)
	defer c.Close()

	check := func(what string, err error) {
		t.Helper()
		var we *WireError
		if !errors.As(err, &we) || we.Code != CodeNoTxn {
			t.Errorf("%s without BEGIN: got %v, want WireError CodeNoTxn", what, err)
		}
		if err != nil && tebaldi.IsRetryable(err) {
			t.Errorf("%s without BEGIN must not be retryable", what)
		}
	}
	s := c.Session()
	check("COMMIT", s.Commit())
	_, _, err := s.Get("kv", "a")
	check("GET", err)
	check("PUT", s.Put("kv", "a", []byte("v")))
	check("ABORT", s.Abort())

	// COMMIT right after a committed transaction (session now idle) is
	// equally invalid.
	if err := s.Begin("update", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	check("COMMIT after COMMIT", s.Commit())
}

func TestBeginUnknownTypeRejected(t *testing.T) {
	_, addr := newTestServer(t, tebaldi.Options{})
	c := dialTest(t, addr)
	defer c.Close()
	err := c.Session().Begin("no-such-type", 0)
	var we *WireError
	if !errors.As(err, &we) || we.Code != CodeUnknownType {
		t.Fatalf("unknown type: got %v, want WireError CodeUnknownType", err)
	}
}

// TestSessionMultiplexing proves per-session concurrency on ONE connection:
// a session stuck in a 2PL lock wait must not stall a sibling session.
func TestSessionMultiplexing(t *testing.T) {
	_, addr := newTestServer(t, tebaldi.Options{LockTimeout: 2 * time.Second})
	c := dialTest(t, addr)
	defer c.Close()

	holder := c.Session()
	if err := holder.Begin("update", 0); err != nil {
		t.Fatal(err)
	}
	if err := holder.Put("kv", "contended", []byte("h")); err != nil {
		t.Fatal(err)
	}

	// blocked waits on holder's X-lock from a goroutine.
	blocked := c.Session()
	if err := blocked.Begin("update", 0); err != nil {
		t.Fatal(err)
	}
	blockedDone := make(chan error, 1)
	go func() {
		if err := blocked.Put("kv", "contended", []byte("b")); err != nil {
			blockedDone <- err
			return
		}
		blockedDone <- blocked.Commit()
	}()

	// A third session on the SAME connection must make progress while the
	// second is parked in the lock manager.
	free := c.Session()
	if err := free.Begin("update", 0); err != nil {
		t.Fatal(err)
	}
	if err := free.Put("kv", "elsewhere", []byte("f")); err != nil {
		t.Fatal(err)
	}
	if err := free.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-blockedDone:
		t.Fatalf("blocked session finished (%v) before the lock was released", err)
	default:
	}

	if err := holder.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-blockedDone; err != nil {
		t.Fatalf("blocked session after lock release: %v", err)
	}
}

// TestDrainWaitsForInFlightCommits: Shutdown must reject new transactions
// but let open ones finish — and only then close connections.
func TestDrainWaitsForInFlightCommits(t *testing.T) {
	srv, addr := newTestServer(t, tebaldi.Options{})
	c := dialTest(t, addr)
	defer c.Close()

	s := c.Session()
	if err := s.Begin("update", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("kv", "d", []byte("v")); err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(5 * time.Second) }()

	// Draining: new BEGINs are rejected with CodeShutdown (poll: the flag
	// flips on the shutdown goroutine).
	other := c.Session()
	waitFor(t, 2*time.Second, "drain to start rejecting BEGIN", func() bool {
		err := other.Begin("update", 0)
		if err == nil {
			// Raced ahead of the drain flag; clean up and retry.
			if err := other.Abort(); err != nil {
				return false
			}
			return false
		}
		var we *WireError
		return errors.As(err, &we) && we.Code == CodeShutdown
	})

	// The drain must still be waiting on our open transaction.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) with a transaction still open", err)
	case <-time.After(100 * time.Millisecond):
	}

	// Finish the in-flight transaction: the commit must succeed and the
	// drain must then complete cleanly.
	if err := s.Commit(); err != nil {
		t.Fatalf("commit during drain: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown after commit: %v", err)
	}
	if got := srv.DB().Engine().ActiveTxns(); got != 0 {
		t.Errorf("ActiveTxns = %d after drain", got)
	}
	// The committed write survived the drain.
	if v := srv.DB().ReadCommitted(tebaldi.K("kv", "d")); string(v) != "v" {
		t.Errorf("drained commit lost: ReadCommitted = %q", v)
	}
}

// TestDrainTimesOutOnAbandonedTxn: a client that holds a transaction open
// forever cannot wedge shutdown; the drain reports a timeout and the
// abandoned transaction is rolled back by the forced disconnect.
func TestDrainTimesOutOnAbandonedTxn(t *testing.T) {
	srv, addr := newTestServer(t, tebaldi.Options{})
	c := dialTest(t, addr)
	defer c.Close()
	s := c.Session()
	if err := s.Begin("update", 0); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(150 * time.Millisecond); err == nil {
		t.Fatal("Shutdown returned nil with an abandoned open transaction")
	}
	waitFor(t, 2*time.Second, "forced rollback of abandoned txn", func() bool {
		return srv.DB().Engine().ActiveTxns() == 0
	})
}

// TestRawProtocolErrors drives the wire directly: garbage framing must
// produce an ERR frame and a hangup, response-typed messages a CodeBadRequest.
func TestRawProtocolErrors(t *testing.T) {
	t.Run("garbage length prefix", func(t *testing.T) {
		srv, addr := newTestServer(t, tebaldi.Options{})
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		if _, err := nc.Write([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		m, err := ReadFrame(nc)
		if err != nil || m.Type != MsgErr || m.Code != CodeBadRequest {
			t.Fatalf("garbage framing: got %v / %+v, want ERR CodeBadRequest", err, m)
		}
		if _, err := ReadFrame(nc); err == nil {
			t.Fatal("connection stayed open after unrecoverable framing error")
		}
		if got := srv.Metrics().ProtocolErrors.Load(); got != 1 {
			t.Errorf("ProtocolErrors = %d, want 1", got)
		}
	})

	t.Run("response type from client", func(t *testing.T) {
		srv, addr := newTestServer(t, tebaldi.Options{})
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		if _, err := nc.Write(appendFrame(nil, &Message{Type: MsgOK, SID: 9})); err != nil {
			t.Fatal(err)
		}
		m, err := ReadFrame(nc)
		if err != nil || m.Type != MsgErr || m.Code != CodeBadRequest || m.SID != 9 {
			t.Fatalf("client-sent OK: got %v / %+v, want ERR CodeBadRequest sid 9", err, m)
		}
		// Recoverable: the framing is intact, so the connection survives.
		if _, err := nc.Write(appendFrame(nil, &Message{Type: MsgBegin, SID: 1, TxnType: "update"})); err != nil {
			t.Fatal(err)
		}
		if m, err := ReadFrame(nc); err != nil || m.Type != MsgOK {
			t.Fatalf("BEGIN after recoverable protocol error: %v / %+v", err, m)
		}
		if got := srv.Metrics().ProtocolErrors.Load(); got != 1 {
			t.Errorf("ProtocolErrors = %d, want 1", got)
		}
	})
}

// TestConflictMapsAcrossWire: a genuine CC conflict must arrive as a
// retryable wire error that still satisfies errors.Is against core errors.
func TestConflictMapsAcrossWire(t *testing.T) {
	_, addr := newTestServer(t, tebaldi.Options{LockTimeout: 100 * time.Millisecond})
	c := dialTest(t, addr)
	defer c.Close()

	holder := c.Session()
	if err := holder.Begin("update", 0); err != nil {
		t.Fatal(err)
	}
	if err := holder.Put("kv", "w", []byte("h")); err != nil {
		t.Fatal(err)
	}
	victim := c.Session()
	if err := victim.Begin("update", 0); err != nil {
		t.Fatal(err)
	}
	err := victim.Put("kv", "w", []byte("v")) // lock wait -> timeout abort
	if err == nil {
		t.Fatal("second writer succeeded while the lock was held")
	}
	if !tebaldi.IsRetryable(err) {
		t.Fatalf("wire conflict %v is not retryable via tebaldi.IsRetryable", err)
	}
	var we *WireError
	if !errors.As(err, &we) || !Retryable(we.Code) {
		t.Fatalf("wire conflict %v: code not retryable", err)
	}
	if err := holder.Commit(); err != nil {
		t.Fatal(err)
	}
}
