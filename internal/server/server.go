package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/tebaldi"
)

// Options tune a Server. The zero value is usable.
type Options struct {
	// MaxSessionsPerConn bounds the session table of one connection
	// (default 1024). A BEGIN beyond the cap is rejected with
	// CodeBadRequest.
	MaxSessionsPerConn int
	// SessionQueue is the per-session request buffer (default 16). The
	// connection reader blocks once a single session has this many
	// requests outstanding, bounding memory without stalling other
	// connections.
	SessionQueue int
}

func (o Options) withDefaults() Options {
	if o.MaxSessionsPerConn <= 0 {
		o.MaxSessionsPerConn = 1024
	}
	if o.SessionQueue <= 0 {
		o.SessionQueue = 16
	}
	return o
}

// Server serves the Tebaldi wire protocol over a listener. One Server
// multiplexes any number of connections, each multiplexing any number of
// sessions; a session holds at most one open transaction and processes its
// requests in order on a dedicated goroutine, so a lock wait in one session
// never stalls another.
type Server struct {
	db      *tebaldi.DB
	opts    Options
	metrics Metrics

	// mu guards conns, draining, and listener installation. Leaf lock: no
	// other server lock is acquired under it.
	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool

	// txnsOpen and reqsInFlight drive drain: shutdown completes once both
	// reach zero (every accepted transaction resolved, every response
	// written).
	txnsOpen     atomic.Int64
	reqsInFlight atomic.Int64

	acceptDone chan struct{}
}

// New builds a Server over an open database. The caller owns db; Shutdown
// does not close it.
func New(db *tebaldi.DB, opts Options) *Server {
	return &Server{
		db:         db,
		opts:       opts.withDefaults(),
		conns:      make(map[*conn]struct{}),
		acceptDone: make(chan struct{}),
	}
}

// DB returns the database the server fronts.
func (s *Server) DB() *tebaldi.DB { return s.db }

// Serve accepts connections on ln until Shutdown closes it. It blocks; run
// it on its own goroutine. The listener is owned by the server from this
// point on.
//
// tebaldi:worker Shutdown closes the listener; Accept fails with net.ErrClosed and the loop returns
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	defer close(s.acceptDone)
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		c := &conn{
			s:        s,
			nc:       nc,
			bw:       bufio.NewWriter(nc),
			sessions: make(map[uint32]*session),
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.metrics.ConnsAccepted.Add(1)
		s.metrics.ConnsActive.Add(1)
		go c.readLoop()
	}
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown drains the server: stop accepting, reject new BEGINs with
// CodeShutdown, wait until every in-flight request has its response written
// and every open transaction commits or aborts — then close the remaining
// connections. Sessions idle at the deadline with a transaction still open
// are force-disconnected (their transactions roll back through the normal
// disconnect path). Returns nil on a clean drain, an error on timeout.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
		<-s.acceptDone
	}

	deadline := time.Now().Add(timeout)
	drained := false
	for time.Now().Before(deadline) {
		if s.txnsOpen.Load() == 0 && s.reqsInFlight.Load() == 0 {
			drained = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Close every connection; readers exit, session workers roll back
	// whatever is still open and drain.
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.nc.Close()
	}
	for _, c := range conns {
		c.wg.Wait()
	}
	if !drained {
		return fmt.Errorf("server: drain timed out with %d open txns, %d in-flight requests",
			s.txnsOpen.Load(), s.reqsInFlight.Load())
	}
	return nil
}

func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.metrics.ConnsActive.Add(-1)
}

// conn is one accepted connection: a reader goroutine that decodes frames
// and routes them to per-session workers, plus a write path serialized by
// wmu (workers write their responses directly).
type conn struct {
	s  *Server
	nc net.Conn

	// wmu serializes frame writes from the session workers and the
	// reader's protocol-error responses. Held only around
	// appendFrame/Write/Flush; declared inner to the connection registry
	// lock so a future broadcast-under-registry path stays deadlock-free.
	// tebaldi:locks after server.Server.mu
	wmu sync.Mutex
	bw  *bufio.Writer

	// sessions is touched only by the reader goroutine (creation,
	// lookup, teardown), so it needs no lock.
	sessions map[uint32]*session

	// wg counts session workers; conn teardown and server drain wait on
	// it. The reader is not counted — it is the goroutine that closes the
	// worker queues, so it strictly outlives every enqueue.
	wg sync.WaitGroup
}

// session is one multiplexed stream on a connection. Its worker goroutine
// owns tx exclusively, satisfying the engine's one-goroutine-per-Tx rule.
type session struct {
	cn *conn
	id uint32
	q  chan *Message
	tx *tebaldi.Tx
}

// readLoop drains frames from the connection until it fails.
//
// tebaldi:worker Shutdown (or the peer) closes the conn; ReadFrame fails and the loop returns
func (c *conn) readLoop() {
	br := bufio.NewReader(c.nc)
	for {
		m, err := ReadFrame(br)
		if err != nil {
			if errors.Is(err, ErrFrame) {
				// Malformed frame: the length prefix may itself be
				// garbage, so the stream cannot be resynchronized —
				// report and hang up.
				c.s.metrics.ProtocolErrors.Add(1)
				c.writeMsg(&Message{Type: MsgErr, Code: CodeBadRequest, ErrMsg: err.Error()})
			}
			break
		}
		c.s.metrics.FramesRead.Add(1)
		if !c.dispatch(m) {
			break
		}
	}
	c.nc.Close()
	// Stop every session worker: closing q makes the worker roll back any
	// open transaction and exit. Only the reader sends on q, so closing
	// here is race-free.
	for _, ss := range c.sessions {
		close(ss.q)
	}
	c.wg.Wait()
	c.s.removeConn(c)
}

// dispatch routes one decoded request; false tears the connection down.
func (c *conn) dispatch(m *Message) bool {
	switch m.Type {
	case MsgBegin, MsgGet, MsgPut, MsgCommit, MsgAbort:
	default:
		// A response type from a client is a protocol violation.
		c.s.metrics.ProtocolErrors.Add(1)
		c.writeMsg(&Message{Type: MsgErr, SID: m.SID, Code: CodeBadRequest,
			ErrMsg: fmt.Sprintf("unexpected message type 0x%02x from client", m.Type)})
		return true
	}
	ss := c.sessions[m.SID]
	if ss == nil {
		if m.Type != MsgBegin {
			c.s.metrics.ProtocolErrors.Add(1)
			c.writeMsg(&Message{Type: MsgErr, SID: m.SID, Code: CodeNoTxn,
				ErrMsg: "no transaction: session not started with BEGIN"})
			return true
		}
		if len(c.sessions) >= c.s.opts.MaxSessionsPerConn {
			c.s.metrics.ProtocolErrors.Add(1)
			c.writeMsg(&Message{Type: MsgErr, SID: m.SID, Code: CodeBadRequest,
				ErrMsg: "session limit reached on this connection"})
			return true
		}
		ss = &session{cn: c, id: m.SID, q: make(chan *Message, c.s.opts.SessionQueue)}
		c.sessions[m.SID] = ss
		c.s.metrics.SessionsActive.Add(1)
		c.wg.Add(1)
		go ss.run()
	}
	// PUT values alias the read buffer only until the next frame is
	// decoded in this goroutine; each frame gets a fresh payload slice, so
	// handing m to the worker is safe without copying.
	c.s.reqsInFlight.Add(1)
	ss.q <- m
	return true
}

func (ss *session) run() {
	c := ss.cn
	defer c.wg.Done()
	for m := range ss.q {
		resp := ss.handle(m)
		resp.SID = ss.id
		c.writeMsg(resp)
		c.s.reqsInFlight.Add(-1)
	}
	if ss.tx != nil {
		// Client vanished mid-transaction: release locks and CC state.
		ss.tx.Rollback(nil)
		ss.tx = nil
		c.s.txnsOpen.Add(-1)
		c.s.metrics.DisconnectAborts.Add(1)
	}
	c.s.metrics.SessionsActive.Add(-1)
}

// handle executes one request against the engine and builds the response.
func (ss *session) handle(m *Message) *Message {
	s := ss.cn.s
	switch m.Type {
	case MsgBegin:
		if ss.tx != nil {
			s.metrics.ProtocolErrors.Add(1)
			return errMsg(CodeTxnOpen, "BEGIN with a transaction already open on this session")
		}
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return errMsg(CodeShutdown, "server is draining")
		}
		if s.db.Engine().Spec(m.TxnType) == nil {
			s.metrics.ProtocolErrors.Add(1)
			return errMsg(CodeUnknownType, fmt.Sprintf("unknown transaction type %q", m.TxnType))
		}
		tx, err := s.db.Begin(m.TxnType, m.Part)
		if err != nil {
			s.metrics.TxnAborts.Add(1)
			return errMsg(ErrorCode(err), err.Error())
		}
		ss.tx = tx
		s.txnsOpen.Add(1)
		s.metrics.TxnBegins.Add(1)
		return &Message{Type: MsgOK}

	case MsgGet:
		if ss.tx == nil {
			s.metrics.ProtocolErrors.Add(1)
			return errMsg(CodeNoTxn, "GET without BEGIN")
		}
		v, err := ss.tx.Read(m.Key)
		if err != nil {
			return ss.txnError(err)
		}
		s.metrics.Reads.Add(1)
		return &Message{Type: MsgValue, Present: v != nil, Value: v}

	case MsgPut:
		if ss.tx == nil {
			s.metrics.ProtocolErrors.Add(1)
			return errMsg(CodeNoTxn, "PUT without BEGIN")
		}
		// The decoded value aliases the frame buffer; the engine retains
		// it in the version chain, so copy.
		val := make([]byte, len(m.Value))
		copy(val, m.Value)
		if err := ss.tx.Write(m.Key, val); err != nil {
			return ss.txnError(err)
		}
		s.metrics.Writes.Add(1)
		return &Message{Type: MsgOK}

	case MsgCommit:
		if ss.tx == nil {
			s.metrics.ProtocolErrors.Add(1)
			return errMsg(CodeNoTxn, "COMMIT without BEGIN")
		}
		err := ss.tx.Commit()
		ss.tx = nil
		s.txnsOpen.Add(-1)
		if err != nil {
			s.metrics.TxnAborts.Add(1)
			return errMsg(ErrorCode(err), err.Error())
		}
		s.metrics.TxnCommits.Add(1)
		return &Message{Type: MsgOK}

	case MsgAbort:
		if ss.tx == nil {
			s.metrics.ProtocolErrors.Add(1)
			return errMsg(CodeNoTxn, "ABORT without BEGIN")
		}
		ss.tx.Rollback(nil)
		ss.tx = nil
		s.txnsOpen.Add(-1)
		s.metrics.TxnAborts.Add(1)
		return &Message{Type: MsgOK}
	}
	s.metrics.ProtocolErrors.Add(1)
	return errMsg(CodeBadRequest, fmt.Sprintf("unhandled message type 0x%02x", m.Type))
}

// txnError finishes the session's transaction state after an engine abort
// (the engine already rolled the transaction back) and maps the error.
func (ss *session) txnError(err error) *Message {
	ss.tx = nil
	ss.cn.s.txnsOpen.Add(-1)
	ss.cn.s.metrics.TxnAborts.Add(1)
	return errMsg(ErrorCode(err), err.Error())
}

func errMsg(code byte, msg string) *Message {
	return &Message{Type: MsgErr, Code: code, ErrMsg: msg}
}

// writeMsg encodes and writes one frame. Write errors only mark the
// connection: the reader will notice the broken pipe on its next read and
// tear the connection down through the single teardown path.
func (c *conn) writeMsg(m *Message) {
	c.wmu.Lock()
	buf := appendFrame(nil, m)
	_, err := c.bw.Write(buf)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.nc.Close()
		return
	}
	c.s.metrics.FramesWritten.Add(1)
}
