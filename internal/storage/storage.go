// Package storage implements Tebaldi's multiversion storage module: a store
// of version chains partitioned over data-server shards (§4.5.1), plus the
// background garbage collector that prunes stale versions (§4.5.3).
//
// The storage module is deliberately CC-agnostic: it keeps all committed and
// uncommitted writes of each object, and the CC tree decides which version a
// read returns (§4.3). CC metadata (locks, timestamps, version lists) is
// transient state in the concurrency control module, so reconfiguration and
// recovery can rebuild it without touching data (§5.5.1).
package storage

import (
	"sync"

	"repro/internal/core"
)

// Store is a sharded multiversion key-value store. Each shard models one
// data server's partition.
type Store struct {
	shards []*Shard
}

// Shard holds one data server's version chains, plus the list of chains
// flagged as needing garbage collection (see MarkGC).
type Shard struct {
	mu     sync.RWMutex
	chains map[core.Key]*core.Chain
	gcq    []*core.Chain
}

// New creates a store with n shards (n >= 1).
func New(n int) *Store {
	if n < 1 {
		n = 1
	}
	s := &Store{shards: make([]*Shard, n)}
	for i := range s.shards {
		s.shards[i] = &Shard{chains: make(map[core.Key]*core.Chain)}
	}
	return s
}

// NumShards returns the shard (data server) count.
func (s *Store) NumShards() int { return len(s.shards) }

// ShardIndex returns the data server owning key k. The FNV-1a hash is
// inlined (core.Key.Hash32) so the lookup is allocation-free; it computes
// the same placement as the previous hash/fnv implementation.
func (s *Store) ShardIndex(k core.Key) int {
	return int(k.Hash32()) % len(s.shards)
}

// Chain returns the version chain for k, creating it if absent.
func (s *Store) Chain(k core.Key) *core.Chain {
	idx := s.ShardIndex(k)
	sh := s.shards[idx]
	sh.mu.RLock()
	c := sh.chains[k]
	sh.mu.RUnlock()
	if c != nil {
		return c
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c = sh.chains[k]; c == nil {
		c = core.NewChain(k)
		c.Shard = idx
		sh.chains[k] = c
	}
	return c
}

// Lookup returns the chain for k without creating it.
func (s *Store) Lookup(k core.Key) *core.Chain {
	sh := s.shards[s.ShardIndex(k)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.chains[k]
}

// ForEach visits every chain (full GC, recovery, checkpointing). The callback
// must not create new chains on this store.
func (s *Store) ForEach(f func(*core.Chain)) {
	for _, sh := range s.shards {
		sh.mu.RLock()
		chains := make([]*core.Chain, 0, len(sh.chains))
		for _, c := range sh.chains {
			chains = append(chains, c)
		}
		sh.mu.RUnlock()
		for _, c := range chains {
			f(c)
		}
	}
}

// MarkGC flags a chain as holding (or about to hold) more than one version,
// enqueuing it for the next incremental GC pass. The engine calls it after
// releasing the chain mutex (never while holding it — the shard mutex is
// ordered after the chain mutex here). Duplicate marks are absorbed by the
// chain's pending flag, so the queue holds each chain at most once per drain
// cycle.
func (s *Store) MarkGC(c *core.Chain) {
	if !c.TryEnqueueGC() {
		return
	}
	sh := s.shards[c.Shard]
	sh.mu.Lock()
	sh.gcq = append(sh.gcq, c)
	sh.mu.Unlock()
}

// GCPending prunes only the chains flagged by MarkGC since the last pass,
// re-flagging any that still hold multiple versions (a pending writer or a
// committed version above the watermark may become prunable later). This is
// what the background collector runs: its cost is proportional to the hot
// write set, not the keyspace — the previous full-keyspace scan every
// interval was the single largest CPU consumer in YCSB profiles. Returns
// versions pruned.
func (s *Store) GCPending(watermark uint64) int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		q := sh.gcq
		sh.gcq = nil
		sh.mu.Unlock()
		for _, c := range q {
			// Clear before scanning: an install racing with this scan
			// either lands before it (and is seen) or re-enqueues the
			// chain afterwards.
			c.ClearGCPending()
			pruned, remaining := c.GCStep(watermark)
			total += pruned
			if remaining > 1 {
				s.MarkGC(c)
			}
		}
	}
	return total
}

// GC prunes every chain against the given watermark (the minimum begin
// timestamp among active transactions): a committed version is reclaimed
// when a newer committed version exists at or below the watermark, so no
// active or future snapshot can reach it. Returns versions pruned.
//
// This is the epoch rule of §4.5.3 with the epoch boundary expressed as a
// timestamp watermark: all CCs in this codebase order reads by oracle
// timestamps, so "every CC confirms it will never order a transaction before
// the epoch" reduces to the watermark comparison. The background collector
// uses the incremental GCPending instead; this full sweep remains for tests
// and explicit maintenance.
func (s *Store) GC(watermark uint64) int {
	total := 0
	s.ForEach(func(c *core.Chain) { total += c.GC(watermark) })
	return total
}

// Keys returns the number of distinct keys stored.
func (s *Store) Keys() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.chains)
		sh.mu.RUnlock()
	}
	return n
}
