package storage

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

func TestChainCreateAndLookup(t *testing.T) {
	s := New(4)
	k := core.K("t", "x")
	if s.Lookup(k) != nil {
		t.Fatal("lookup created a chain")
	}
	c := s.Chain(k)
	if c == nil || s.Chain(k) != c {
		t.Fatal("chain not stable")
	}
	if s.Lookup(k) != c {
		t.Fatal("lookup missed")
	}
	if s.Keys() != 1 {
		t.Fatalf("keys %d", s.Keys())
	}
}

func TestShardIndexStable(t *testing.T) {
	s := New(8)
	k := core.K("a", "b")
	i := s.ShardIndex(k)
	for n := 0; n < 10; n++ {
		if s.ShardIndex(k) != i {
			t.Fatal("unstable shard index")
		}
	}
	if i < 0 || i >= 8 {
		t.Fatalf("out of range %d", i)
	}
}

func TestForEachVisitsAll(t *testing.T) {
	s := New(3)
	for i := 0; i < 50; i++ {
		s.Chain(core.KeyOf("t", i))
	}
	n := 0
	s.ForEach(func(*core.Chain) { n++ })
	if n != 50 {
		t.Fatalf("visited %d", n)
	}
}

func TestConcurrentChainCreation(t *testing.T) {
	s := New(4)
	var wg sync.WaitGroup
	chains := make([]*core.Chain, 32)
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			chains[i] = s.Chain(core.K("t", "same"))
		}(w)
	}
	wg.Wait()
	for _, c := range chains {
		if c != chains[0] {
			t.Fatal("duplicate chain for one key")
		}
	}
}

// TestForEachVisitsEachChainExactlyOnce: shard iteration must neither skip
// nor double-count a chain even when keys collide onto few shards.
func TestForEachVisitsEachChainExactlyOnce(t *testing.T) {
	s := New(2) // few shards: many keys per shard
	const n = 200
	want := make(map[*core.Chain]int, n)
	for i := 0; i < n; i++ {
		want[s.Chain(core.KeyOf("t", i))] = 0
	}
	s.ForEach(func(c *core.Chain) {
		if _, ok := want[c]; !ok {
			t.Fatal("ForEach produced an unknown chain")
		}
		want[c]++
	})
	for c, seen := range want {
		if seen != 1 {
			t.Fatalf("chain %p visited %d times", c, seen)
		}
	}
	if s.Keys() != n {
		t.Fatalf("Keys() = %d, want %d", s.Keys(), n)
	}
}

// TestForEachDuringConcurrentCreation: iterating while other goroutines
// create chains must not deadlock or miss pre-existing chains (ForEach
// snapshots each shard; chains created mid-iteration may or may not appear).
func TestForEachDuringConcurrentCreation(t *testing.T) {
	s := New(4)
	const pre = 64
	existing := make(map[*core.Chain]bool, pre)
	for i := 0; i < pre; i++ {
		existing[s.Chain(core.KeyOf("pre", i))] = true
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			// Bounded creation: enough churn to overlap every ForEach
			// pass without ballooning the store.
			for i := 0; i < 5000; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.Chain(core.KeyOf(fmt.Sprintf("new%d", base), i%500))
			}
		}(w)
	}
	for round := 0; round < 20; round++ {
		seen := make(map[*core.Chain]bool)
		s.ForEach(func(c *core.Chain) {
			if seen[c] {
				t.Error("chain visited twice in one pass")
			}
			seen[c] = true
		})
		for c := range existing {
			if !seen[c] {
				t.Fatal("pre-existing chain missed during concurrent creation")
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestStoreGC(t *testing.T) {
	s := New(2)
	for i := 0; i < 10; i++ {
		c := s.Chain(core.KeyOf("t", i))
		c.Lock()
		for v := uint64(1); v <= 5; v++ {
			w := core.NewTxn(uint64(i)*10+v, "w", 0, 0)
			w.MarkCommitted(v * 10)
			c.Install(&core.Version{Writer: w, Value: []byte(fmt.Sprint(v))})
		}
		c.Unlock()
	}
	pruned := s.GC(35) // newest <= 35 is ts 30: ts 10, 20 reclaimable
	if pruned != 10*2 {
		t.Fatalf("pruned %d, want 20", pruned)
	}
	// Idempotent.
	if again := s.GC(35); again != 0 {
		t.Fatalf("second GC pruned %d", again)
	}
}

// TestGCKeepsPendingAndWatermarkVersion: GC must preserve (a) every pending
// version regardless of age, and (b) the newest committed version at or
// below the watermark — the version a reader snapshotted at the watermark
// still needs.
func TestGCKeepsPendingAndWatermarkVersion(t *testing.T) {
	s := New(1)
	c := s.Chain(core.K("t", "x"))
	c.Lock()
	for _, ts := range []uint64{10, 20, 30} {
		w := core.NewTxn(ts, "w", 0, 0)
		w.MarkCommitted(ts)
		c.Install(&core.Version{Writer: w, Value: []byte(fmt.Sprint(ts))})
	}
	pending := &core.Version{Writer: core.NewTxn(99, "w", 0, 40), Value: []byte("pending")}
	c.Install(pending)
	c.Unlock()

	// Watermark below every commit: nothing reclaimable.
	if pruned := s.GC(5); pruned != 0 {
		t.Fatalf("GC(5) pruned %d, want 0", pruned)
	}
	// Watermark at 25: newest committed <= 25 is ts 20, so only ts 10 goes.
	if pruned := s.GC(25); pruned != 1 {
		t.Fatalf("GC(25) pruned %d, want 1", pruned)
	}
	if n := c.Len(); n != 3 {
		t.Fatalf("after GC(25): %d versions, want 3 (20, 30, pending)", n)
	}
	// Watermark above everything: ts 30 is the snapshot floor, ts 20 goes;
	// the pending version must survive any watermark.
	if pruned := s.GC(100); pruned != 1 {
		t.Fatalf("GC(100) pruned %d, want 1", pruned)
	}
	if n := c.Len(); n != 2 {
		t.Fatalf("after GC(100): %d versions, want 2 (30, pending)", n)
	}
	c.Lock()
	v := c.LatestCommitted()
	c.Unlock()
	if v == nil || string(v.Value) != "30" {
		t.Fatalf("latest committed after GC = %v", v)
	}
	if !pending.Pending() {
		t.Fatal("pending version lost its state")
	}
}

func TestZeroShardsClamped(t *testing.T) {
	s := New(0)
	if s.NumShards() != 1 {
		t.Fatalf("shards %d", s.NumShards())
	}
	s.Chain(core.K("a", "b")) // must not panic
}
