package storage

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

func TestChainCreateAndLookup(t *testing.T) {
	s := New(4)
	k := core.K("t", "x")
	if s.Lookup(k) != nil {
		t.Fatal("lookup created a chain")
	}
	c := s.Chain(k)
	if c == nil || s.Chain(k) != c {
		t.Fatal("chain not stable")
	}
	if s.Lookup(k) != c {
		t.Fatal("lookup missed")
	}
	if s.Keys() != 1 {
		t.Fatalf("keys %d", s.Keys())
	}
}

func TestShardIndexStable(t *testing.T) {
	s := New(8)
	k := core.K("a", "b")
	i := s.ShardIndex(k)
	for n := 0; n < 10; n++ {
		if s.ShardIndex(k) != i {
			t.Fatal("unstable shard index")
		}
	}
	if i < 0 || i >= 8 {
		t.Fatalf("out of range %d", i)
	}
}

func TestForEachVisitsAll(t *testing.T) {
	s := New(3)
	for i := 0; i < 50; i++ {
		s.Chain(core.KeyOf("t", i))
	}
	n := 0
	s.ForEach(func(*core.Chain) { n++ })
	if n != 50 {
		t.Fatalf("visited %d", n)
	}
}

func TestConcurrentChainCreation(t *testing.T) {
	s := New(4)
	var wg sync.WaitGroup
	chains := make([]*core.Chain, 32)
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			chains[i] = s.Chain(core.K("t", "same"))
		}(w)
	}
	wg.Wait()
	for _, c := range chains {
		if c != chains[0] {
			t.Fatal("duplicate chain for one key")
		}
	}
}

func TestStoreGC(t *testing.T) {
	s := New(2)
	for i := 0; i < 10; i++ {
		c := s.Chain(core.KeyOf("t", i))
		c.Lock()
		for v := uint64(1); v <= 5; v++ {
			w := core.NewTxn(uint64(i)*10+v, "w", 0, 0)
			w.MarkCommitted(v * 10)
			c.Install(&core.Version{Writer: w, Value: []byte(fmt.Sprint(v))})
		}
		c.Unlock()
	}
	pruned := s.GC(35) // newest <= 35 is ts 30: ts 10, 20 reclaimable
	if pruned != 10*2 {
		t.Fatalf("pruned %d, want 20", pruned)
	}
	// Idempotent.
	if again := s.GC(35); again != 0 {
		t.Fatalf("second GC pruned %d", again)
	}
}

func TestZeroShardsClamped(t *testing.T) {
	s := New(0)
	if s.NumShards() != 1 {
		t.Fatalf("shards %d", s.NumShards())
	}
	s.Chain(core.K("a", "b")) // must not panic
}
