package storage

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// fill installs n committed versions at timestamps 10, 20, ... into a fresh
// chain for key (table, i) and returns it.
func fill(s *Store, i, n int) *core.Chain {
	c := s.Chain(core.KeyOf("t", i))
	c.Lock()
	for v := uint64(1); v <= uint64(n); v++ {
		w := core.NewTxn(uint64(i)*100+v, "w", 0, 0)
		w.MarkCommitted(v * 10)
		c.Install(&core.Version{Writer: w, Value: []byte(fmt.Sprint(v))})
	}
	c.Unlock()
	return c
}

// TestGCPendingScansOnlyMarkedChains: the incremental collector visits only
// chains enqueued via MarkGC; unmarked stale chains are left to the full
// sweep. This is the property that keeps the background GC from re-scanning
// the whole store every tick.
func TestGCPendingScansOnlyMarkedChains(t *testing.T) {
	s := New(2)
	marked := fill(s, 0, 5)
	unmarked := fill(s, 1, 5)
	s.MarkGC(marked)

	if pruned := s.GCPending(100); pruned != 4 {
		t.Fatalf("GCPending pruned %d, want 4 (marked chain only)", pruned)
	}
	if n := marked.Len(); n != 1 {
		t.Fatalf("marked chain has %d versions, want 1", n)
	}
	if n := unmarked.Len(); n != 5 {
		t.Fatalf("unmarked chain has %d versions, want 5 (untouched)", n)
	}
	// The full sweep still covers everything.
	if pruned := s.GC(100); pruned != 4 {
		t.Fatalf("full GC pruned %d, want 4 (the unmarked chain)", pruned)
	}
}

// TestMarkGCDeduplicates: marking the same chain repeatedly before a
// collection enqueues it once — the pending flag is the dedup.
func TestMarkGCDeduplicates(t *testing.T) {
	s := New(1)
	c := fill(s, 0, 3)
	for i := 0; i < 10; i++ {
		s.MarkGC(c)
	}
	if pruned := s.GCPending(100); pruned != 2 {
		t.Fatalf("GCPending pruned %d, want 2", pruned)
	}
	// Queue fully drained: nothing left for a second pass.
	if pruned := s.GCPending(100); pruned != 0 {
		t.Fatalf("second GCPending pruned %d, want 0", pruned)
	}
}

// TestGCPendingRequeuesMultiVersionChains: a chain that still holds more
// than one version after a collection pass stays on the dirty queue, so a
// later pass (with an advanced watermark) prunes it without a fresh MarkGC.
func TestGCPendingRequeuesMultiVersionChains(t *testing.T) {
	s := New(1)
	c := fill(s, 0, 3) // commits at ts 10, 20, 30
	s.MarkGC(c)

	// Watermark 25: newest committed <= 25 is ts 20, only ts 10 reclaimable.
	if pruned := s.GCPending(25); pruned != 1 {
		t.Fatalf("GCPending(25) pruned %d, want 1", pruned)
	}
	// Two versions remain, so the chain must have been re-enqueued: the next
	// pass at a higher watermark prunes ts 20 with no new MarkGC call.
	if pruned := s.GCPending(100); pruned != 1 {
		t.Fatalf("GCPending(100) pruned %d, want 1 (chain should have been requeued)", pruned)
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("chain has %d versions, want 1", n)
	}
	// Down to a single version the chain finally leaves the queue.
	if pruned := s.GCPending(1000); pruned != 0 {
		t.Fatalf("GCPending(1000) pruned %d, want 0 (single-version chain must drop off the queue)", pruned)
	}
}

// TestMarkGCDuringCollection: a chain marked while a collection pass is
// mid-scan (flag already cleared) lands on the queue for the next pass
// rather than being lost — the install-vs-collect race the clear-before-scan
// ordering exists for.
func TestMarkGCDuringCollection(t *testing.T) {
	s := New(1)
	c := fill(s, 0, 2) // ts 10, 20
	s.MarkGC(c)
	if pruned := s.GCPending(100); pruned != 1 {
		t.Fatalf("GCPending pruned %d, want 1", pruned)
	}

	// New version arrives after the pass; its installer re-marks the chain.
	c.Lock()
	w := core.NewTxn(999, "w", 0, 0)
	w.MarkCommitted(30)
	c.Install(&core.Version{Writer: w, Value: []byte("3")})
	c.Unlock()
	s.MarkGC(c)

	if pruned := s.GCPending(100); pruned != 1 {
		t.Fatalf("GCPending after re-mark pruned %d, want 1", pruned)
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("chain has %d versions, want 1", n)
	}
}
