// Package kvstore is a minimal persistent key-value store used as Tebaldi's
// underlying durable storage. The paper outsources persistence to Redis or
// RocksDB through a plain key-value interface (§4.5.4); this package is the
// stdlib-only substitute: an append-only log file with an in-memory index.
// Tebaldi stores transaction logs — not materialized rows — in this store,
// exactly as described in the paper ("the underlying storage has all the
// data ... in the form of transaction logs").
package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Store is an append-only persistent key-value store. Writes append records;
// the latest record for a key wins. Sync flushes and fsyncs. Rewrite
// compacts the log in place (Tebaldi's checkpoint truncation, §4.5.4): the
// file is atomically replaced by one holding only the records the caller
// keeps, so the log stays bounded across checkpoints.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	path string
	// index maps key -> latest value.
	index map[string][]byte
	// crashHook, when set, is invoked at durability-critical boundaries
	// (compaction write/sync/rename). Crash-point tests snapshot the
	// on-disk state inside the hook to simulate a process kill there.
	crashHook func(point string)
}

// Open opens (creating if necessary) the store at path, replaying any
// existing records into the index.
func Open(path string) (*Store, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: %w", err)
	}
	// A leftover rewrite temp file means a crash hit mid-compaction before
	// the rename: the original log is still the authoritative one.
	os.Remove(path + compactSuffix)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: %w", err)
	}
	s := &Store{f: f, path: path, index: make(map[string][]byte)}
	valid, err := s.replay()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Truncate a torn tail (crash mid-append).
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("kvstore: truncate: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("kvstore: seek: %w", err)
	}
	s.w = bufio.NewWriterSize(f, 1<<16)
	return s, nil
}

// replay loads all complete records, returning the byte offset of the last
// complete record's end.
func (s *Store) replay() (int64, error) {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	r := bufio.NewReaderSize(s.f, 1<<16)
	var off int64
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return off, nil // clean EOF or torn header: stop here
		}
		klen := binary.LittleEndian.Uint32(hdr[0:4])
		vlen := binary.LittleEndian.Uint32(hdr[4:8])
		if klen > 1<<20 || vlen > 1<<26 {
			return off, nil // corrupt length: treat as torn tail
		}
		buf := make([]byte, int(klen)+int(vlen))
		if _, err := io.ReadFull(r, buf); err != nil {
			return off, nil
		}
		key := string(buf[:klen])
		val := buf[klen:]
		if vlen == 0 {
			delete(s.index, key)
		} else {
			s.index[key] = val
		}
		off += 8 + int64(klen) + int64(vlen)
	}
}

// Set stores value under key (buffered; call Sync for durability).
func (s *Store) Set(key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return errors.New("kvstore: closed")
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(value)))
	if _, err := s.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := s.w.WriteString(key); err != nil {
		return err
	}
	if _, err := s.w.Write(value); err != nil {
		return err
	}
	cp := make([]byte, len(value))
	copy(cp, value)
	s.index[key] = cp
	return nil
}

// Get returns the latest value for key (nil if absent).
func (s *Store) Get(key string) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.index[key]
}

// ForEach visits every live key-value pair.
func (s *Store) ForEach(f func(key string, value []byte) error) error {
	s.mu.Lock()
	snapshot := make(map[string][]byte, len(s.index))
	for k, v := range s.index {
		snapshot[k] = v
	}
	s.mu.Unlock()
	for k, v := range snapshot {
		if err := f(k, v); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Sync flushes buffered writes and fsyncs the file. The fsync happens
// outside the store mutex so concurrent Sets are not stalled for the disk's
// latency (asynchronous flushing would otherwise block the commit path).
func (s *Store) Sync() error {
	s.mu.Lock()
	if s.w == nil {
		s.mu.Unlock()
		return errors.New("kvstore: closed")
	}
	err := s.w.Flush()
	f := s.f
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return f.Sync()
}

// SetCrashHook installs a crash-injection hook (tests only; see crashHook).
func (s *Store) SetCrashHook(h func(point string)) {
	s.mu.Lock()
	s.crashHook = h
	s.mu.Unlock()
}

// hook must be called with s.mu held (it reads crashHook); the hook itself
// only inspects the filesystem, never the store, so no lock ordering issue.
func (s *Store) hook(point string) {
	if s.crashHook != nil {
		s.crashHook(point)
	}
}

// Size returns the current on-disk log size in bytes (buffered writes
// included, since they are counted by the writer even before the flush).
func (s *Store) Size() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return 0, errors.New("kvstore: closed")
	}
	if err := s.w.Flush(); err != nil {
		return 0, err
	}
	st, err := s.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

const compactSuffix = ".compact"

// Rewrite compacts the log: every live key is offered to transform, which
// returns the value to keep (possibly rewritten; must be non-empty) and
// whether to keep the key at all. The surviving records are written to a
// temp file, fsynced, and atomically renamed over the log, so a crash at any
// point leaves either the complete old log or the complete new one — never a
// mix. Returns the log size before and after.
//
// The store mutex is held for the duration: concurrent Sets block until the
// rewrite completes, which keeps the index and the file in lockstep.
func (s *Store) Rewrite(transform func(key string, value []byte) ([]byte, bool)) (before, after int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return 0, 0, errors.New("kvstore: closed")
	}
	if err := s.w.Flush(); err != nil {
		return 0, 0, err
	}
	if st, err := s.f.Stat(); err == nil {
		before = st.Size()
	}

	tmpPath := s.path + compactSuffix
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return before, before, fmt.Errorf("kvstore: rewrite: %w", err)
	}
	tw := bufio.NewWriterSize(tmp, 1<<16)
	next := make(map[string][]byte, len(s.index))
	var hdr [8]byte
	for k, v := range s.index {
		nv, keep := transform(k, v)
		if !keep {
			continue
		}
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(k)))
		binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(nv)))
		if _, err = tw.Write(hdr[:]); err == nil {
			if _, err = tw.WriteString(k); err == nil {
				_, err = tw.Write(nv)
			}
		}
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return before, before, fmt.Errorf("kvstore: rewrite: %w", err)
		}
		cp := make([]byte, len(nv))
		copy(cp, nv)
		next[k] = cp
		after += 8 + int64(len(k)) + int64(len(nv))
	}
	if err = tw.Flush(); err == nil {
		s.hook("compact.written")
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpPath)
		return before, before, fmt.Errorf("kvstore: rewrite: %w", err)
	}
	s.hook("compact.synced")
	if err = os.Rename(tmpPath, s.path); err != nil {
		os.Remove(tmpPath)
		return before, before, fmt.Errorf("kvstore: rewrite rename: %w", err)
	}
	s.hook("compact.renamed")
	// Persist the rename itself. Failing to open the directory is tolerated
	// (some filesystems refuse it), but once we hold the handle a failed
	// fsync means the rename may not survive a crash — the old, compacted-
	// away log could resurface with its latest-wins duplicates gone.
	var dirErr error
	if d, derr := os.Open(filepath.Dir(s.path)); derr == nil {
		dirErr = d.Sync()
		if cerr := d.Close(); dirErr == nil {
			dirErr = cerr
		}
	}

	f, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err == nil {
		if _, serr := f.Seek(0, io.SeekEnd); serr != nil {
			f.Close()
			err = serr
		}
	}
	if err != nil {
		// The old file object points at the renamed-over inode; writing
		// through it would be silent data loss. Fail the store instead.
		s.f.Close()
		s.w = nil
		return before, after, fmt.Errorf("kvstore: rewrite reopen: %w", err)
	}
	s.f.Close()
	s.f = f
	s.w = bufio.NewWriterSize(f, 1<<16)
	s.index = next
	// Report the directory-sync failure only after the in-memory swap: the
	// store keeps working against the renamed file either way.
	if dirErr != nil {
		return before, after, fmt.Errorf("kvstore: rewrite dir sync: %w", dirErr)
	}
	return before, after, nil
}

// Close flushes and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	s.w = nil
	return s.f.Close()
}
