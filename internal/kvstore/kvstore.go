// Package kvstore is a minimal persistent key-value store used as Tebaldi's
// underlying durable storage. The paper outsources persistence to Redis or
// RocksDB through a plain key-value interface (§4.5.4); this package is the
// stdlib-only substitute: an append-only log file with an in-memory index.
// Tebaldi stores transaction logs — not materialized rows — in this store,
// exactly as described in the paper ("the underlying storage has all the
// data ... in the form of transaction logs").
package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Store is an append-only persistent key-value store. Writes append records;
// the latest record for a key wins. Sync flushes and fsyncs.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	path string
	// index maps key -> latest value (kept in memory; Tebaldi's logs are
	// pruned by log truncation at checkpoints in a full system — out of
	// scope here).
	index map[string][]byte
}

// Open opens (creating if necessary) the store at path, replaying any
// existing records into the index.
func Open(path string) (*Store, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: %w", err)
	}
	s := &Store{f: f, path: path, index: make(map[string][]byte)}
	valid, err := s.replay()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Truncate a torn tail (crash mid-append).
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("kvstore: truncate: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("kvstore: seek: %w", err)
	}
	s.w = bufio.NewWriterSize(f, 1<<16)
	return s, nil
}

// replay loads all complete records, returning the byte offset of the last
// complete record's end.
func (s *Store) replay() (int64, error) {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	r := bufio.NewReaderSize(s.f, 1<<16)
	var off int64
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return off, nil // clean EOF or torn header: stop here
		}
		klen := binary.LittleEndian.Uint32(hdr[0:4])
		vlen := binary.LittleEndian.Uint32(hdr[4:8])
		if klen > 1<<20 || vlen > 1<<26 {
			return off, nil // corrupt length: treat as torn tail
		}
		buf := make([]byte, int(klen)+int(vlen))
		if _, err := io.ReadFull(r, buf); err != nil {
			return off, nil
		}
		key := string(buf[:klen])
		val := buf[klen:]
		if vlen == 0 {
			delete(s.index, key)
		} else {
			s.index[key] = val
		}
		off += 8 + int64(klen) + int64(vlen)
	}
}

// Set stores value under key (buffered; call Sync for durability).
func (s *Store) Set(key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return errors.New("kvstore: closed")
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(value)))
	if _, err := s.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := s.w.WriteString(key); err != nil {
		return err
	}
	if _, err := s.w.Write(value); err != nil {
		return err
	}
	cp := make([]byte, len(value))
	copy(cp, value)
	s.index[key] = cp
	return nil
}

// Get returns the latest value for key (nil if absent).
func (s *Store) Get(key string) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.index[key]
}

// ForEach visits every live key-value pair.
func (s *Store) ForEach(f func(key string, value []byte) error) error {
	s.mu.Lock()
	snapshot := make(map[string][]byte, len(s.index))
	for k, v := range s.index {
		snapshot[k] = v
	}
	s.mu.Unlock()
	for k, v := range snapshot {
		if err := f(k, v); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Sync flushes buffered writes and fsyncs the file. The fsync happens
// outside the store mutex so concurrent Sets are not stalled for the disk's
// latency (asynchronous flushing would otherwise block the commit path).
func (s *Store) Sync() error {
	s.mu.Lock()
	if s.w == nil {
		s.mu.Unlock()
		return errors.New("kvstore: closed")
	}
	err := s.w.Flush()
	f := s.f
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return f.Sync()
}

// Close flushes and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	s.w = nil
	return s.f.Close()
}
