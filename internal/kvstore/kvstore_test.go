package kvstore

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func tempStore(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "s.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

func TestSetGet(t *testing.T) {
	s, _ := tempStore(t)
	defer s.Close()
	if err := s.Set("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if got := string(s.Get("a")); got != "1" {
		t.Fatalf("got %q", got)
	}
	if s.Get("missing") != nil {
		t.Fatal("missing key returned value")
	}
	if err := s.Set("a", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if got := string(s.Get("a")); got != "2" {
		t.Fatalf("overwrite: got %q", got)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	s, path := tempStore(t)
	s.Set("x", []byte("abc"))
	s.Set("y", []byte("def"))
	s.Set("x", []byte("xyz"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := string(s2.Get("x")); got != "xyz" {
		t.Fatalf("x = %q", got)
	}
	if got := string(s2.Get("y")); got != "def" {
		t.Fatalf("y = %q", got)
	}
	if s2.Len() != 2 {
		t.Fatalf("len %d", s2.Len())
	}
}

func TestTornTailTruncated(t *testing.T) {
	s, path := tempStore(t)
	s.Set("good", []byte("value"))
	s.Close()
	// Append garbage simulating a torn write.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{9, 0, 0, 0, 200}) // header promises more than present
	f.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := string(s2.Get("good")); got != "value" {
		t.Fatalf("good = %q", got)
	}
	// The store must still accept writes after truncation.
	if err := s2.Set("more", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestForEach(t *testing.T) {
	s, _ := tempStore(t)
	defer s.Close()
	s.Set("a", []byte("1"))
	s.Set("b", []byte("2"))
	seen := map[string]string{}
	s.ForEach(func(k string, v []byte) error {
		seen[k] = string(v)
		return nil
	})
	if len(seen) != 2 || seen["a"] != "1" || seen["b"] != "2" {
		t.Fatalf("seen %v", seen)
	}
}

func TestRewriteCompacts(t *testing.T) {
	s, path := tempStore(t)
	for i := 0; i < 100; i++ {
		s.Set("hot", []byte("version-with-some-length-"+string(rune('a'+i%26))))
	}
	s.Set("keep", []byte("kept"))
	s.Set("drop", []byte("dropped"))
	before, after, err := s.Rewrite(func(key string, value []byte) ([]byte, bool) {
		if key == "drop" {
			return nil, false
		}
		if key == "hot" {
			return []byte("rewritten"), true
		}
		return value, true
	})
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("rewrite did not shrink the log: before=%d after=%d", before, after)
	}
	if got := string(s.Get("hot")); got != "rewritten" {
		t.Fatalf("hot = %q", got)
	}
	if s.Get("drop") != nil {
		t.Fatal("dropped key survived in the index")
	}
	// The rewritten log must still accept and persist writes.
	if err := s.Set("post", []byte("after-rewrite")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := string(s2.Get("hot")); got != "rewritten" {
		t.Fatalf("reopened hot = %q", got)
	}
	if got := string(s2.Get("post")); got != "after-rewrite" {
		t.Fatalf("reopened post = %q", got)
	}
	if s2.Get("drop") != nil {
		t.Fatal("dropped key resurrected on reopen")
	}
	if s2.Len() != 3 {
		t.Fatalf("len %d", s2.Len())
	}
}

func TestRewriteLeftoverTempIgnoredOnOpen(t *testing.T) {
	s, path := tempStore(t)
	s.Set("a", []byte("1"))
	s.Close()
	// Simulate a crash mid-compaction: a temp file exists but the rename
	// never happened. The original log must stay authoritative.
	if err := os.WriteFile(path+compactSuffix, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := string(s2.Get("a")); got != "1" {
		t.Fatalf("a = %q", got)
	}
	if _, err := os.Stat(path + compactSuffix); !os.IsNotExist(err) {
		t.Fatal("leftover compaction temp file not removed")
	}
}

func TestRewriteCrashHookPoints(t *testing.T) {
	s, _ := tempStore(t)
	defer s.Close()
	s.Set("k", []byte("v"))
	var points []string
	s.SetCrashHook(func(p string) { points = append(points, p) })
	if _, _, err := s.Rewrite(func(key string, value []byte) ([]byte, bool) {
		return value, true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"compact.written", "compact.synced", "compact.renamed"}
	if len(points) != len(want) {
		t.Fatalf("points %v", points)
	}
	for i := range want {
		if points[i] != want[i] {
			t.Fatalf("points %v", points)
		}
	}
}

// Property: any sequence of sets survives a close/reopen with last-write-wins
// semantics.
func TestRoundTripProperty(t *testing.T) {
	type op struct {
		Key byte
		Val []byte
	}
	f := func(ops []op) bool {
		dir := t.TempDir()
		path := filepath.Join(dir, "p.log")
		s, err := Open(path)
		if err != nil {
			return false
		}
		want := map[string][]byte{}
		for _, o := range ops {
			k := string('a' + o.Key%8)
			v := o.Val
			if len(v) == 0 {
				continue // empty value = tombstone semantics, skip
			}
			if err := s.Set(k, v); err != nil {
				return false
			}
			want[k] = v
		}
		s.Close()
		s2, err := Open(path)
		if err != nil {
			return false
		}
		defer s2.Close()
		for k, v := range want {
			if string(s2.Get(k)) != string(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
