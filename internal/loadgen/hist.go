package loadgen

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is an HDR-style latency histogram: logarithmic major buckets (one
// per power of two) split into linear sub-buckets, giving a bounded
// relative error of 1/subBuckets (~1.6%) over the full tracked range with
// a fixed, allocation-free footprint. Recording is a single atomic add, so
// it is safe from any number of connection workers.
type Hist struct {
	counts [nBuckets]atomic.Uint64
	total  atomic.Uint64
	maxNs  atomic.Uint64
}

const (
	subBits    = 6 // 64 linear sub-buckets per power of two
	subBuckets = 1 << subBits
	majors     = 38 // 2^37 ns ≈ 137s tracked range
	nBuckets   = majors * subBuckets
	maxNsValue = uint64(1)<<(majors-1) - 1
)

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v uint64) int {
	if v < subBuckets {
		// Values below one sub-bucket resolution land in the linear
		// bottom range.
		return int(v)
	}
	// The major bucket is the position of the highest set bit; the
	// sub-bucket takes the next subBits bits below it.
	major := bits.Len64(v) - 1
	sub := (v >> (uint(major) - subBits)) & (subBuckets - 1)
	return (major-subBits+1)*subBuckets + int(sub)
}

// bucketValue returns a representative (midpoint) value for a bucket.
func bucketValue(idx int) uint64 {
	if idx < subBuckets {
		return uint64(idx)
	}
	major := idx/subBuckets + subBits - 1
	sub := uint64(idx % subBuckets)
	lo := (uint64(1) << uint(major)) | (sub << (uint(major) - subBits))
	return lo + (uint64(1)<<(uint(major)-subBits))/2
}

// Record adds one latency observation. Negative durations clamp to zero
// (an arrival can complete "before" its intended time only by clock skew).
func (h *Hist) Record(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d.Nanoseconds())
	}
	if v > maxNsValue {
		v = maxNsValue
	}
	h.counts[bucketIndex(v)].Add(1)
	h.total.Add(1)
	for {
		cur := h.maxNs.Load()
		if v <= cur || h.maxNs.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.total.Load() }

// Max returns the largest recorded latency (bucket-exact).
func (h *Hist) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Quantile returns the latency at quantile q in [0,1], e.g. 0.999 for
// p999. Zero observations yield zero.
func (h *Hist) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := 0; i < nBuckets; i++ {
		seen += h.counts[i].Load()
		if seen > rank {
			return time.Duration(bucketValue(i))
		}
	}
	return time.Duration(h.maxNs.Load())
}
