package loadgen

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Exec performs the i-th transaction on one connection, returning nil on
// commit. It is called from the connection's worker goroutine only.
type Exec func(i int) error

// Options configure a run.
type Options struct {
	// Workers is the number of connections (one worker goroutine each).
	Workers int
	// Rate is the target arrival rate in transactions/second across all
	// workers. Ignored in closed-loop mode.
	Rate float64
	// Count is the total number of arrivals.
	Count int
	// ClosedLoop, when true, skips the pacer: each worker issues its next
	// transaction as soon as the previous one completes and latency is
	// measured from the ACTUAL send time. This is the coordinated-omission
	//-blind number the open-loop run is compared against.
	ClosedLoop bool
	// Clock defaults to the wall clock; tests inject FakeClock.
	Clock Clock
}

// Report is the outcome of a run. Latency quantiles are measured from each
// arrival's intended send time (open loop) or actual send time (closed
// loop).
type Report struct {
	Arrivals  uint64
	Committed uint64
	Failed    uint64
	Elapsed   time.Duration
	Rate      float64 // achieved committed txn/sec
	Hist      *Hist
	P50       time.Duration
	P99       time.Duration
	P999      time.Duration
	Max       time.Duration
}

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("%d txns  %.0f txn/s  p50 %v  p99 %v  p999 %v  max %v  (%d failed)",
		r.Committed, r.Rate, r.P50, r.P99, r.P999, r.Max, r.Failed)
}

// arrival is one scheduled transaction: its index and intended send time.
type arrival struct {
	i        int
	intended time.Time
}

// queue is an unbounded MPSC arrival queue. The pacer must NEVER block on a
// slow worker — blocking would re-introduce the coordinated omission the
// open loop exists to expose — so the queue grows instead.
type queue struct {
	mu     sync.Mutex
	items  []arrival
	signal chan struct{} // 1-buffered wakeup
	closed bool
}

func newQueue() *queue {
	return &queue{signal: make(chan struct{}, 1)}
}

func (q *queue) push(a arrival) {
	q.mu.Lock()
	q.items = append(q.items, a)
	q.mu.Unlock()
	select {
	case q.signal <- struct{}{}:
	default:
	}
}

func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	select {
	case q.signal <- struct{}{}:
	default:
	}
}

// pop blocks for the next arrival; ok=false when the queue is closed and
// drained.
func (q *queue) pop() (arrival, bool) {
	for {
		q.mu.Lock()
		if len(q.items) > 0 {
			a := q.items[0]
			q.items = q.items[1:]
			q.mu.Unlock()
			return a, true
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			return arrival{}, false
		}
		<-q.signal
	}
}

// pace emits Count arrival times at Rate, calling emit(i, intended) for
// each; emit runs on the pacer goroutine at (or immediately after) the
// intended instant. Exposed to tests via the package-internal name.
func pace(clock Clock, start time.Time, rate float64, count int, emit func(i int, intended time.Time)) {
	interval := time.Duration(float64(time.Second) / rate)
	for i := 0; i < count; i++ {
		intended := start.Add(time.Duration(i) * interval)
		clock.SleepUntil(intended)
		emit(i, intended)
	}
}

// Run drives Count transactions over Workers connections. setup is called
// once per worker (dial the connection, capture workload state) and must
// return the worker's Exec; a setup error aborts the run.
//
// Open loop: a single pacer emits arrivals at Rate, round-robin across
// workers; each worker executes its queued arrivals in order and records
// completion-minus-INTENDED-time into the histogram. Closed loop: workers
// split Count evenly and fire back-to-back, recording completion minus
// actual send time.
func Run(opts Options, setup func(worker int) (Exec, error)) (*Report, error) {
	if opts.Workers <= 0 {
		return nil, fmt.Errorf("loadgen: Workers must be positive")
	}
	if opts.Count <= 0 {
		return nil, fmt.Errorf("loadgen: Count must be positive")
	}
	if !opts.ClosedLoop && opts.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: open loop needs a positive Rate")
	}
	clock := opts.Clock
	if clock == nil {
		clock = RealClock{}
	}

	// Set workers up with bounded parallelism: 10k+ sequential dials would
	// dominate the run. setup must therefore be safe to call concurrently.
	execs := make([]Exec, opts.Workers)
	{
		sem := make(chan struct{}, 128)
		errs := make(chan error, opts.Workers)
		var swg sync.WaitGroup
		for w := range execs {
			swg.Add(1)
			sem <- struct{}{}
			go func(w int) {
				defer swg.Done()
				defer func() { <-sem }()
				e, err := setup(w)
				if err != nil {
					errs <- fmt.Errorf("loadgen: worker %d setup: %w", w, err)
					return
				}
				execs[w] = e
			}(w)
		}
		swg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return nil, err
		}
	}

	rep := &Report{Hist: &Hist{}}
	var committed, failed atomic.Uint64
	start := clock.Now()
	var wg sync.WaitGroup

	if opts.ClosedLoop {
		per := opts.Count / opts.Workers
		extra := opts.Count % opts.Workers
		next := 0
		for w := 0; w < opts.Workers; w++ {
			n := per
			if w < extra {
				n++
			}
			lo := next
			next += n
			wg.Add(1)
			go func(w, lo, n int) {
				defer wg.Done()
				for i := lo; i < lo+n; i++ {
					sent := clock.Now()
					err := execs[w](i)
					rep.Hist.Record(clock.Now().Sub(sent))
					if err != nil {
						failed.Add(1)
					} else {
						committed.Add(1)
					}
				}
			}(w, lo, n)
		}
		wg.Wait()
	} else {
		queues := make([]*queue, opts.Workers)
		for w := range queues {
			queues[w] = newQueue()
			wg.Add(1)
			// tebaldi:worker the feeder closes the queue when the run ends; pop returns ok=false and the worker exits
			go func(w int) {
				defer wg.Done()
				for {
					a, ok := queues[w].pop()
					if !ok {
						return
					}
					err := execs[w](a.i)
					rep.Hist.Record(clock.Now().Sub(a.intended))
					if err != nil {
						failed.Add(1)
					} else {
						committed.Add(1)
					}
				}
			}(w)
		}
		pace(clock, start, opts.Rate, opts.Count, func(i int, intended time.Time) {
			queues[i%opts.Workers].push(arrival{i: i, intended: intended})
		})
		for _, q := range queues {
			q.close()
		}
		wg.Wait()
	}

	rep.Elapsed = clock.Now().Sub(start)
	rep.Arrivals = uint64(opts.Count)
	rep.Committed = committed.Load()
	rep.Failed = failed.Load()
	if secs := rep.Elapsed.Seconds(); secs > 0 {
		rep.Rate = float64(rep.Committed) / secs
	}
	rep.P50 = rep.Hist.Quantile(0.50)
	rep.P99 = rep.Hist.Quantile(0.99)
	rep.P999 = rep.Hist.Quantile(0.999)
	rep.Max = rep.Hist.Max()
	return rep, nil
}
