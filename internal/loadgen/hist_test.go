package loadgen

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestHistQuantileAccuracy records a known uniform distribution and checks
// every reported quantile against the exact answer within the histogram's
// designed relative error (1/64 per power of two, midpoint-corrected; 3% is
// comfortable headroom).
func TestHistQuantileAccuracy(t *testing.T) {
	h := &Hist{}
	const n = 100000
	for i := 1; i <= n; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != n {
		t.Fatalf("Count = %d, want %d", h.Count(), n)
	}
	for _, q := range []float64{0.10, 0.50, 0.90, 0.99, 0.999} {
		exact := time.Duration(q*n) * time.Microsecond
		got := h.Quantile(q)
		lo := time.Duration(float64(exact) * 0.97)
		hi := time.Duration(float64(exact) * 1.03)
		if got < lo || got > hi {
			t.Errorf("Quantile(%v) = %v, want %v ± 3%%", q, got, exact)
		}
	}
	if got, want := h.Max(), time.Duration(n)*time.Microsecond; got != want {
		t.Errorf("Max = %v, want exact %v", got, want)
	}
}

func TestHistEdgeCases(t *testing.T) {
	h := &Hist{}
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile not zero")
	}
	// Negative durations clamp to zero instead of corrupting a bucket.
	h.Record(-time.Second)
	if h.Count() != 1 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Errorf("negative record: count %d q50 %v max %v, want 1/0/0",
			h.Count(), h.Quantile(0.5), h.Max())
	}
	// Values beyond the tracked range clamp to the ceiling, not overflow.
	h.Record(10 * time.Hour)
	if got := h.Max(); got > 138*time.Second || got < 130*time.Second {
		t.Errorf("over-range record: Max = %v, want clamped to ~137s", got)
	}
	// Out-of-range q values clamp.
	if h.Quantile(-1) > h.Quantile(2) {
		t.Error("clamped quantiles out of order")
	}
}

// TestHistBucketRoundTrip: bucketValue(bucketIndex(v)) stays within one
// sub-bucket of v across the whole range.
func TestHistBucketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200000; trial++ {
		v := uint64(rng.Int63()) % maxNsValue
		idx := bucketIndex(v)
		if idx < 0 || idx >= nBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		back := bucketValue(idx)
		var width uint64 = 1
		if v >= subBuckets {
			width = v >> subBits // one sub-bucket at v's scale
		}
		diff := back - v
		if back < v {
			diff = v - back
		}
		if diff > width {
			t.Fatalf("bucketValue(bucketIndex(%d)) = %d, off by %d > sub-bucket width %d",
				v, back, diff, width)
		}
	}
}

// TestHistConcurrentRecord hammers Record from many goroutines; run under
// -race this pins the lock-free recording path.
func TestHistConcurrentRecord(t *testing.T) {
	h := &Hist{}
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < per; i++ {
				h.Record(time.Duration(rng.Intn(1e6)) * time.Nanosecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Errorf("Count = %d, want %d", h.Count(), goroutines*per)
	}
	if h.Max() >= time.Millisecond {
		t.Errorf("Max = %v beyond any recorded value", h.Max())
	}
}
