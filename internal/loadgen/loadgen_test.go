package loadgen

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// drivePacer runs AdvanceToNextSleeper until done closes, yielding real time
// between attempts so pacer/worker goroutines can run.
func drivePacer(clock *FakeClock, done <-chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
		}
		if !clock.AdvanceToNextSleeper() {
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// TestPaceEmitsOnSchedule pins the open-loop scheduler's contract: under a
// fake clock, arrival i is emitted exactly at start + i/rate, and the clock
// reads exactly that instant when emit runs.
func TestPaceEmitsOnSchedule(t *testing.T) {
	clock := NewFakeClock(t0)
	const rate, count = 200.0, 50 // 5ms interval
	type emission struct {
		i        int
		intended time.Time
		now      time.Time
	}
	var got []emission
	done := make(chan struct{})
	go func() {
		defer close(done)
		pace(clock, t0, rate, count, func(i int, intended time.Time) {
			got = append(got, emission{i, intended, clock.Now()})
		})
	}()
	drivePacer(clock, done)
	<-done

	if len(got) != count {
		t.Fatalf("emitted %d arrivals, want %d", len(got), count)
	}
	interval := 5 * time.Millisecond
	for _, e := range got {
		want := t0.Add(time.Duration(e.i) * interval)
		if !e.intended.Equal(want) {
			t.Errorf("arrival %d intended %v, want %v", e.i, e.intended, want)
		}
		if !e.now.Equal(want) {
			t.Errorf("arrival %d emitted at %v, want exactly %v", e.i, e.now, want)
		}
	}
}

// TestOpenLoopRateUnderFakeClock runs the whole Run() machinery under a fake
// clock and checks the offered schedule: the run spans exactly
// (count-1)*interval of fake time and achieves the configured rate.
func TestOpenLoopRateUnderFakeClock(t *testing.T) {
	clock := NewFakeClock(t0)
	const rate, count = 1000.0, 200
	done := make(chan struct{})
	var rep *Report
	var runErr error
	go func() {
		defer close(done)
		rep, runErr = Run(Options{Workers: 4, Rate: rate, Count: count, Clock: clock},
			func(worker int) (Exec, error) { return func(i int) error { return nil }, nil })
	}()
	drivePacer(clock, done)
	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	if rep.Arrivals != count || rep.Committed != count || rep.Failed != 0 {
		t.Fatalf("arrivals %d committed %d failed %d, want %d/%d/0",
			rep.Arrivals, rep.Committed, rep.Failed, count, count)
	}
	// Last arrival is scheduled at (count-1)*1ms and executes instantly, so
	// the fake-time span is exactly that.
	if want := time.Duration(count-1) * time.Millisecond; rep.Elapsed != want {
		t.Errorf("Elapsed = %v, want %v", rep.Elapsed, want)
	}
	// 200 txns / 199ms ≈ 1005 txn/s: within 5% of the configured rate.
	if rep.Rate < rate*0.95 || rep.Rate > rate*1.05 {
		t.Errorf("achieved rate %.1f not within 5%% of configured %.0f", rep.Rate, rate)
	}
	if s := rep.String(); !strings.Contains(s, "p999") {
		t.Errorf("Report.String() = %q missing quantiles", s)
	}
}

// TestStalledWorkerShowsCoordinatedOmission is the point of the open loop: a
// stalled connection must surface as tail latency measured from INTENDED
// send time, not vanish from the histogram. Worker 0 blocks until every
// arrival has been scheduled; its backlog then drains with latencies that
// stretch back across the stall, pushing p999 near the full stall duration
// while p50 (the healthy worker) stays low.
func TestStalledWorkerShowsCoordinatedOmission(t *testing.T) {
	clock := NewFakeClock(t0)
	const rate, count = 1000.0, 1000 // 1ms interval, ~999ms of fake time
	block := make(chan struct{})
	var healthy atomic.Uint64

	done := make(chan struct{})
	var rep *Report
	var runErr error
	go func() {
		defer close(done)
		rep, runErr = Run(Options{Workers: 2, Rate: rate, Count: count, Clock: clock},
			func(worker int) (Exec, error) {
				if worker == 0 {
					return func(i int) error { <-block; return nil }, nil
				}
				return func(i int) error { healthy.Add(1); return nil }, nil
			})
	}()

	// Drive the pacer through the full schedule, then release the stalled
	// worker so its backlog drains at t = (count-1)*interval.
	end := t0.Add(time.Duration(count-1) * time.Millisecond)
	for clock.Now().Before(end) {
		if !clock.AdvanceToNextSleeper() {
			time.Sleep(50 * time.Microsecond)
		}
	}
	close(block)
	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}

	if rep.Committed != count {
		t.Fatalf("committed %d, want %d", rep.Committed, count)
	}
	if healthy.Load() != count/2 {
		t.Fatalf("healthy worker ran %d txns, want %d", healthy.Load(), count/2)
	}
	// The earliest stalled arrival waited ~999ms; coordinated omission makes
	// that visible at the tail.
	if rep.P999 < 400*time.Millisecond {
		t.Errorf("p999 = %v; a ~1s stall must dominate the tail (want > 400ms)", rep.P999)
	}
	if rep.Max < 900*time.Millisecond {
		t.Errorf("max = %v; earliest stalled arrival waited ~999ms", rep.Max)
	}
	// The healthy half keeps the median low.
	if rep.P50 > 50*time.Millisecond {
		t.Errorf("p50 = %v; healthy worker latencies should keep the median low", rep.P50)
	}
}

// TestClosedLoopAccounting checks the closed-loop path splits Count across
// workers and tallies failures.
func TestClosedLoopAccounting(t *testing.T) {
	var calls atomic.Uint64
	rep, err := Run(Options{Workers: 3, Count: 10, ClosedLoop: true},
		func(worker int) (Exec, error) {
			return func(i int) error {
				calls.Add(1)
				if i%5 == 0 {
					return errors.New("boom")
				}
				return nil
			}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 10 || rep.Arrivals != 10 {
		t.Fatalf("calls %d arrivals %d, want 10/10", calls.Load(), rep.Arrivals)
	}
	if rep.Committed != 8 || rep.Failed != 2 { // i = 0 and 5 fail
		t.Errorf("committed %d failed %d, want 8/2", rep.Committed, rep.Failed)
	}
}

func TestRunValidation(t *testing.T) {
	exec := func(worker int) (Exec, error) { return func(int) error { return nil }, nil }
	if _, err := Run(Options{Workers: 0, Count: 1, Rate: 1}, exec); err == nil {
		t.Error("Workers=0 accepted")
	}
	if _, err := Run(Options{Workers: 1, Count: 0, Rate: 1}, exec); err == nil {
		t.Error("Count=0 accepted")
	}
	if _, err := Run(Options{Workers: 1, Count: 1}, exec); err == nil {
		t.Error("open loop with Rate=0 accepted")
	}
	wantErr := errors.New("no dice")
	_, err := Run(Options{Workers: 4, Count: 4, Rate: 1, Clock: NewFakeClock(t0)},
		func(worker int) (Exec, error) {
			if worker == 2 {
				return nil, wantErr
			}
			return func(int) error { return nil }, nil
		})
	if !errors.Is(err, wantErr) {
		t.Errorf("setup error not propagated: %v", err)
	}
}

func TestFakeClock(t *testing.T) {
	clock := NewFakeClock(t0)
	if !clock.Now().Equal(t0) {
		t.Fatal("clock does not start at start")
	}
	// SleepUntil a past instant returns immediately.
	clock.SleepUntil(t0.Add(-time.Second))

	woke := make(chan struct{})
	go func() {
		clock.SleepUntil(t0.Add(10 * time.Millisecond))
		close(woke)
	}()
	for clock.Sleepers() == 0 {
		time.Sleep(10 * time.Microsecond)
	}
	clock.Advance(5 * time.Millisecond)
	select {
	case <-woke:
		t.Fatal("sleeper woke before its deadline")
	case <-time.After(time.Millisecond):
	}
	clock.Advance(5 * time.Millisecond)
	<-woke
	if clock.AdvanceToNextSleeper() {
		t.Error("AdvanceToNextSleeper with no sleepers returned true")
	}
}
