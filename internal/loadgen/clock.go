// Package loadgen is an open-loop (arrival-rate-driven) load generator for
// the networked front end. Unlike the closed-loop clients in internal/bench
// — which wait for each response before sending the next request, so a slow
// server quietly slows the *offered* load — the pacer here emits arrivals
// on a fixed schedule and measures every transaction's latency from its
// INTENDED send time. A stalled connection therefore accumulates queued
// arrivals whose latencies grow by the backlog, making coordinated omission
// visible in p99/p999 instead of silently excluded.
package loadgen

import (
	"sync"
	"time"
)

// Clock abstracts time so the scheduler is testable under a fake clock.
type Clock interface {
	Now() time.Time
	// SleepUntil returns at or after t (immediately if t has passed).
	SleepUntil(t time.Time)
}

// RealClock is the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// SleepUntil implements Clock.
func (RealClock) SleepUntil(t time.Time) {
	if d := time.Until(t); d > 0 {
		time.Sleep(d)
	}
}

// FakeClock is a manually advanced clock for deterministic scheduler tests.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	t  time.Time
	ch chan struct{}
}

// NewFakeClock starts a fake clock at the given instant.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// SleepUntil implements Clock: it parks the caller until Advance moves the
// clock to or past t.
func (c *FakeClock) SleepUntil(t time.Time) {
	c.mu.Lock()
	if !c.now.Before(t) {
		c.mu.Unlock()
		return
	}
	w := fakeWaiter{t: t, ch: make(chan struct{})}
	c.waiters = append(c.waiters, w)
	c.mu.Unlock()
	<-w.ch
}

// Advance moves the clock forward and wakes every sleeper whose deadline
// has been reached.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if !c.now.Before(w.t) {
			close(w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
	c.mu.Unlock()
}

// AdvanceToNextSleeper jumps to the earliest pending deadline and wakes its
// sleeper(s), returning true; false when nobody is sleeping.
func (c *FakeClock) AdvanceToNextSleeper() bool {
	c.mu.Lock()
	if len(c.waiters) == 0 {
		c.mu.Unlock()
		return false
	}
	earliest := c.waiters[0].t
	for _, w := range c.waiters[1:] {
		if w.t.Before(earliest) {
			earliest = w.t
		}
	}
	if earliest.After(c.now) {
		c.now = earliest
	}
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if !c.now.Before(w.t) {
			close(w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
	c.mu.Unlock()
	return true
}

// Sleepers reports how many goroutines are parked in SleepUntil (test
// synchronization helper).
func (c *FakeClock) Sleepers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}
