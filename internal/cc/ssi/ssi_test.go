// Tests for the SSI mechanism, driven through the public API (an external
// test package may import repro/tebaldi even though tebaldi transitively
// imports this package — only the test binary sees the cycle).
package ssi_test

import (
	"testing"
	"time"

	"repro/tebaldi"
)

func openSSI(t *testing.T) *tebaldi.DB {
	t.Helper()
	specs := []*tebaldi.Spec{
		{Name: "w", Tables: []string{"t"}, WriteTables: []string{"t"}},
	}
	db, err := tebaldi.Open(tebaldi.Options{Shards: 4, LockTimeout: 2 * time.Second},
		specs, tebaldi.Leaf(tebaldi.SSI, "w"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// TestSnapshotIsolationRead: a transaction reads from its begin snapshot —
// a write committed after its begin is invisible to it.
func TestSnapshotIsolationRead(t *testing.T) {
	db := openSSI(t)
	k := tebaldi.K("t", "x")
	db.Load(k, []byte("old"))

	reader, err := db.Begin("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Commit a newer version after the reader's snapshot was taken.
	if err := db.Run("w", 0, func(tx *tebaldi.Tx) error {
		return tx.Write(tebaldi.K("t", "unrelated"), []byte("warm"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Run("w", 0, func(tx *tebaldi.Tx) error {
		return tx.Write(k, []byte("new"))
	}); err != nil {
		t.Fatal(err)
	}
	v, err := reader.Read(k)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "old" {
		t.Fatalf("snapshot read saw %q, want \"old\"", v)
	}
	// Read-only snapshot use commits fine (no dangerous structure).
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestFirstUpdaterWins: two concurrent writers of the same key — the second
// write aborts with a retryable conflict at install time.
func TestFirstUpdaterWins(t *testing.T) {
	db := openSSI(t)
	k := tebaldi.K("t", "x")
	db.Load(k, []byte("0"))

	t1, err := db.Begin("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := db.Begin("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := t1.Write(k, []byte("1")); err != nil {
		t.Fatal(err)
	}
	err = t2.Write(k, []byte("2"))
	if err == nil {
		t.Fatal("second concurrent writer succeeded")
	}
	if !tebaldi.IsRetryable(err) {
		t.Fatalf("write-write conflict not retryable: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteAfterCommittedSnapshotConflict: a writer whose snapshot predates
// a committed version of the key aborts (lost-update prevention).
func TestWriteAfterCommittedSnapshotConflict(t *testing.T) {
	db := openSSI(t)
	k := tebaldi.K("t", "x")
	db.Load(k, []byte("0"))

	stale, err := db.Begin("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Run("w", 0, func(tx *tebaldi.Tx) error {
		return tx.Write(k, []byte("1"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := stale.Write(k, []byte("2")); err == nil {
		t.Fatal("stale writer overwrote a version committed after its snapshot")
	} else if !tebaldi.IsRetryable(err) {
		t.Fatalf("not retryable: %v", err)
	}
}

// TestPivotAborted: the dangerous structure of §4.4.3 — a transaction with
// both an incoming and an outgoing rw anti-dependency — is broken by a
// retryable abort. T3 -rw-> T2 (T3 read Y that T2 writes) gives T2 an
// in-edge; T2's snapshot missing T1's committed write of X gives T2 an
// out-edge; T2 becomes a pivot.
func TestPivotAborted(t *testing.T) {
	db := openSSI(t)
	x, y := tebaldi.K("t", "x"), tebaldi.K("t", "y")
	db.Load(x, []byte("0"))
	db.Load(y, []byte("0"))

	t2, err := db.Begin("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(y, []byte("2")); err != nil {
		t.Fatal(err)
	}
	// T3 reads Y, anti-depending on T2's pending write: T2 gains in.
	t3, err := db.Begin("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := t3.Read(y); err != nil {
		t.Fatal(err)
	}
	// T1 writes X and commits: T2's snapshot misses it.
	if err := db.Run("w", 0, func(tx *tebaldi.Tx) error {
		return tx.Write(x, []byte("1"))
	}); err != nil {
		t.Fatal(err)
	}
	// T2 reads X: out-edge to committed T1 completes the pivot.
	_, rerr := t2.Read(x)
	cerr := error(nil)
	if rerr == nil {
		cerr = t2.Commit()
	}
	if rerr == nil && cerr == nil {
		t.Fatal("pivot committed: dangerous structure left intact")
	}
	for _, err := range []error{rerr, cerr} {
		if err != nil && !tebaldi.IsRetryable(err) {
			t.Fatalf("pivot abort not retryable: %v", err)
		}
	}
	if err := t3.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestOptimizedModeReadOnlyUpdateSplit: the §5.2 initial configuration (SSI
// root over a no-CC read-only group and a 2PL update group) runs in
// optimized mode: read-only transactions see a stable snapshot while
// updates read latest-committed and never false-abort.
func TestOptimizedModeReadOnlyUpdateSplit(t *testing.T) {
	specs := []*tebaldi.Spec{
		{Name: "audit", ReadOnly: true, Tables: []string{"t"}},
		{Name: "upd", Tables: []string{"t"}, WriteTables: []string{"t"}},
	}
	db, err := tebaldi.Open(tebaldi.Options{Shards: 4, LockTimeout: 2 * time.Second},
		specs, nil) // nil config = InitialConfig = SSI(None(audit), 2PL(upd))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	k := tebaldi.K("t", "x")
	db.Load(k, []byte("0"))

	audit, err := db.Begin("audit", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Run("upd", 0, func(tx *tebaldi.Tx) error {
		return tx.Write(k, []byte("1"))
	}); err != nil {
		t.Fatal(err)
	}
	// The read-only transaction keeps its snapshot...
	if v, err := audit.Read(k); err != nil || string(v) != "0" {
		t.Fatalf("audit read %q/%v, want \"0\"", v, err)
	}
	if err := audit.Commit(); err != nil {
		t.Fatal(err)
	}
	// ...while a fresh update sees latest-committed.
	if err := db.Run("upd", 0, func(tx *tebaldi.Tx) error {
		v, err := tx.Read(k)
		if err != nil {
			return err
		}
		if string(v) != "1" {
			t.Fatalf("update read %q, want \"1\"", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
