// Package ssi implements serializable snapshot isolation (§4.4.3).
//
// Transactions read from a snapshot at their start timestamp and make their
// writes visible at their commit timestamp. Write-write conflicts between
// concurrent transactions abort the later writer (first-updater-wins,
// checked at version-install time under the chain mutex). Serializability is
// enforced by aborting "pivots": transactions (batches) with both an
// incoming and an outgoing read-write anti-dependency.
//
// Consistent ordering in the CC tree requires care because SSI decides part
// of the ordering at start time (the snapshot). As a non-leaf, SSI batches:
// transactions of the same child group share one start timestamp, delaying
// their relative order until commit so the child CC is free to order them.
// Batching deliberately "promotes" same-group conflicts that span two
// batches to cross-group conflicts — the paper's observed cost of batched
// SSI under write-heavy workloads.
//
// When SSI sits at the root with at most one updating child (the common
// read-only/update split, §4.4.3 and the initial configuration of §5.2), the
// protocol runs in optimized mode: no batching, no pivot checks; update
// transactions read latest-committed state, read-only transactions read
// their begin snapshot, and commit order follows the in-group order via the
// engine's dependency wait.
package ssi

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// DefaultBatchSize bounds how many transactions share one batch timestamp
// before the batch rotates.
const DefaultBatchSize = 64

// DefaultBatchAge rotates a batch after this duration even if not full.
const DefaultBatchAge = 2 * time.Millisecond

// marks carries the anti-dependency flags of one batch (or of one
// transaction when SSI runs unbatched), plus a count of committed members:
// once a member has committed the batch can no longer be aborted, so a
// transaction that would turn it into a pivot must abort itself instead
// (Cahill-style SSI at batch granularity).
type marks struct {
	in        atomic.Bool
	out       atomic.Bool
	committed atomic.Int32
}

func (m *marks) pivot() bool { return m.in.Load() && m.out.Load() }

// immutable reports that some member already committed, so aborting this
// batch is no longer possible.
func (m *marks) immutable() bool { return m.committed.Load() > 0 }

// batch groups same-child transactions under one start timestamp.
type batch struct {
	marks
	startTS uint64
	count   int
	active  int
	created time.Time
}

// SSI is a serializable-snapshot-isolation CC node.
type SSI struct {
	env       *core.Env
	node      *core.Node
	optimized bool
	batchSize int
	batchAge  time.Duration

	mu      sync.Mutex
	current map[*core.Node]*batch // per-child current batch (batched mode)
	// live holds batches with unfinished members in creation (= startTS)
	// order: their snapshots bound what GC and reader-record pruning may
	// discard.
	live []*batch
}

type slot struct {
	// snapTS is the snapshot timestamp; math.MaxUint64 means
	// "latest committed" (optimized-mode update transactions).
	snapTS uint64
	batch  *batch // nil in optimized mode and for leaf transactions
	own    marks  // per-transaction marks when batch == nil (value: one allocation per Begin, not two)
	// readChains are the chains this transaction read (batched mode):
	// Validate rescans them so anti-dependencies to writers that
	// committed after the read are not missed.
	readChains []*core.Chain
}

func (s *slot) flags() *marks {
	if s.batch != nil {
		return &s.batch.marks
	}
	return &s.own
}

// Options tune an SSI node.
type Options struct {
	BatchSize int
	BatchAge  time.Duration
	// ForceBatched disables optimized-mode detection (tests).
	ForceBatched bool
}

// New creates an SSI mechanism for node. Optimized mode engages
// automatically when at most one child subtree contains updating transaction
// types.
func New(env *core.Env, node *core.Node, opt Options) *SSI {
	s := &SSI{
		env:       env,
		node:      node,
		batchSize: opt.BatchSize,
		batchAge:  opt.BatchAge,
		current:   make(map[*core.Node]*batch),
	}
	if s.batchSize <= 0 {
		s.batchSize = DefaultBatchSize
	}
	if s.batchAge <= 0 {
		s.batchAge = DefaultBatchAge
	}
	if len(node.Children) > 0 && !opt.ForceBatched {
		updating := 0
		for _, c := range node.Children {
			upd := false
			for _, typ := range append(c.SubtreeTypes(), c.Types...) {
				if sp := env.Specs[typ]; sp == nil || !sp.ReadOnly {
					upd = true
				}
			}
			if upd {
				updating++
			}
		}
		s.optimized = updating <= 1
	}
	return s
}

// Name implements core.CC.
func (s *SSI) Name() string { return "SSI" }

// Optimized reports whether the node runs in the batching-free
// read-only/update optimized mode.
func (s *SSI) Optimized() bool { return s.optimized }

func (s *SSI) slotOf(t *core.Txn) *slot {
	if len(t.Slots) <= s.node.Depth {
		return nil
	}
	sl, _ := t.Slots[s.node.Depth].(*slot)
	return sl
}

// sameGroup reports whether a conflict between t and writer is delegated to
// a descendant (and hence exempt from this node's regulation): same batch in
// batched mode, same child subtree in optimized mode, never for a leaf.
func (s *SSI) sameGroup(t, writer *core.Txn) bool {
	if s.optimized {
		return s.node.SameChild(t, writer)
	}
	st, sw := s.slotOf(t), s.slotOf(writer)
	if st == nil || sw == nil {
		return false
	}
	return st.batch != nil && st.batch == sw.batch
}

// Begin implements core.CC: assign the snapshot timestamp — per transaction
// for leaves, per batch for batched non-leaf mode, and "latest" for
// optimized-mode update transactions.
func (s *SSI) Begin(t *core.Txn) error {
	sl := &slot{}
	switch {
	case s.optimized:
		sp := s.env.Specs[t.Type]
		if sp != nil && sp.ReadOnly {
			sl.snapTS = t.BeginTS
		} else {
			sl.snapTS = math.MaxUint64
		}
	case len(s.node.Children) == 0:
		sl.snapTS = t.BeginTS
	default:
		child := s.node.ChildFor(t)
		s.mu.Lock()
		b := s.current[child]
		if b == nil || b.count >= s.batchSize || time.Since(b.created) > s.batchAge {
			b = &batch{startTS: s.env.Oracle.Next(), created: time.Now()}
			s.current[child] = b
			s.live = append(s.live, b)
		}
		b.count++
		b.active++
		s.mu.Unlock()
		sl.batch = b
		sl.snapTS = b.startTS
	}
	t.Slots[s.node.Depth] = sl
	return nil
}

// PreRead implements core.CC: snapshot reads never block.
func (s *SSI) PreRead(t *core.Txn, k core.Key) error { return nil }

// PreWrite implements core.CC: conflicts are detected at install time.
func (s *SSI) PreWrite(t *core.Txn, k core.Key) error { return nil }

// AmendRead implements core.CC. SSI accepts the child's proposal if its
// writer is delegated together with the reader; otherwise it returns the
// newest committed version within the reader's snapshot, recording an
// outgoing anti-dependency if the snapshot missed a newer committed write.
func (s *SSI) AmendRead(t *core.Txn, k core.Key, ch *core.Chain, proposal *core.Version) (*core.Version, error) {
	sl := s.slotOf(t)
	if proposal != nil && s.sameGroup(t, proposal.Writer) {
		// Delegated read (same batch / same child): accept the child's
		// choice — but in batched mode the read must still be
		// registered, because it can anti-depend on OTHER children's
		// writers of this key (writers consult the reader records, and
		// Validate rescans the chain).
		if !s.optimized {
			wm := uint64(0)
			if s.env.Watermark != nil {
				wm = s.env.Watermark()
			}
			//lint:allow poolescape -- RecordReader marks rec.T shared before linking the record into the reader list
			ch.RecordReader(core.ReadRec{T: t, SnapshotTS: sl.snapTS, Batch: sl.flags()}, wm)
			last := len(sl.readChains) - 1
			if last < 0 || sl.readChains[last] != ch {
				sl.readChains = append(sl.readChains, ch)
			}
		}
		return proposal, nil
	}
	// Batching hazard (§4.4.3): a same-child writer from an *earlier
	// batch* may already have been ordered before us by the child CC
	// (locks, pipeline). If our batch snapshot would miss its value, the
	// snapshot read would invert the child's order — a consistent-ordering
	// violation. The batched protocol resolves it by aborting the reader:
	// this is exactly how batching "promotes in-group conflicts to
	// cross-group conflicts, causing aborts".
	if !s.optimized && proposal != nil && proposal.Pending() &&
		s.node.SameChild(t, proposal.Writer) {
		return nil, core.ErrConflict
	}
	var best *core.Version
	if proposal != nil && proposal.Committed() && proposal.CommitTS() <= sl.snapTS {
		best = proposal
	}
	for _, v := range ch.Versions() {
		if v.Writer == t || v.Promise {
			continue
		}
		if v.Pending() {
			// The same-group exemption applies only to PENDING
			// versions: those conflicts are the descendant's to
			// regulate, surfaced through the proposal.
			if s.sameGroup(t, v.Writer) || s.optimized {
				continue
			}
			if cts := v.Writer.CommitTS(); cts != 0 && cts <= sl.snapTS {
				// The writer is mid-commit with a timestamp our
				// snapshot must include: wait for it to finish,
				// then re-run the read.
				return nil, &core.WaitFor{V: v}
			}
			if s.node.InSubtree(v.Writer) {
				// A concurrent pending write this snapshot will
				// miss. The out-edge only becomes dangerous if
				// that writer commits first; flag the writer's
				// incoming side now and re-examine at Validate.
				if err := s.flagAntiDep(sl, v.Writer, false); err != nil {
					return nil, err
				}
			}
			continue
		}
		// Committed versions are history: they participate in the
		// snapshot rule regardless of batch.
		cts := v.CommitTS()
		if cts <= sl.snapTS {
			if best == nil || cts > best.CommitTS() {
				best = v
			}
			continue
		}
		if !s.optimized && s.node.SameChild(t, v.Writer) {
			// A same-child writer committed past our (batch)
			// snapshot. The child CC serializes same-child
			// transactions and may have ordered us after it;
			// reading an older version would invert that order.
			// Abort: the retry joins a fresh batch whose snapshot
			// covers the write — this is how batching "promotes
			// in-group conflicts to cross-group conflicts".
			return nil, core.ErrConflict
		}
		// The snapshot misses this committed write: an
		// anti-dependency t -rw-> v.Writer with a committed
		// out-neighbor — the dangerous kind.
		if err := s.flagAntiDep(sl, v.Writer, true); err != nil {
			return nil, err
		}
	}
	if !s.optimized {
		wm := uint64(0)
		if s.env.Watermark != nil {
			wm = s.env.Watermark()
		}
		//lint:allow poolescape -- RecordReader marks rec.T shared before linking the record into the reader list
		ch.RecordReader(core.ReadRec{T: t, SnapshotTS: sl.snapTS, Batch: sl.flags()}, wm)
		last := len(sl.readChains) - 1
		if last < 0 || sl.readChains[last] != ch {
			sl.readChains = append(sl.readChains, ch)
		}
	}
	return best, nil
}

// flagAntiDep records the anti-dependency reader(sl) -rw-> writer. The
// writer's group gains an incoming edge; the reader's group gains an
// outgoing edge only when the writer has committed (Cahill's rule: the
// dangerous structure requires the out-neighbor to commit first — this is
// also what guarantees progress, since the first committer of a conflicting
// clique never sees a committed out-neighbor). If a group that already has a
// committed member would become a pivot, the caller aborts itself instead.
func (s *SSI) flagAntiDep(sl *slot, writer *core.Txn, writerCommitted bool) error {
	if s.optimized {
		return nil
	}
	mine := sl.flags()
	var theirs *marks
	if ws := s.slotOf(writer); ws != nil {
		theirs = ws.flags()
	}
	if theirs != nil && mine != theirs {
		if theirs.out.Load() && theirs.immutable() && !theirs.in.Load() {
			// Setting `in` would turn an unabortable group into a
			// pivot: break the structure here instead.
			return core.ErrPivot
		}
		theirs.in.Store(true)
		if theirs.pivot() && theirs.immutable() {
			return core.ErrPivot
		}
	}
	if writerCommitted {
		mine.out.Store(true)
		if mine.pivot() {
			return core.ErrPivot
		}
	}
	return nil
}

// PostWrite implements core.CC: first-updater-wins under the chain mutex —
// abort if a non-delegated pending write exists or a non-delegated write
// committed after the snapshot — and flag anti-dependencies from readers
// that missed this write.
func (s *SSI) PostWrite(t *core.Txn, k core.Key, ch *core.Chain, v *core.Version) error {
	if s.optimized {
		// A single updating child: all update-update conflicts are
		// delegated; read-only children never write.
		return nil
	}
	sl := s.slotOf(t)
	for _, old := range ch.Versions() {
		if old == v || old.Writer == t || s.sameGroup(t, old.Writer) {
			continue
		}
		if old.Pending() && s.node.InSubtree(old.Writer) {
			return core.ErrConflict
		}
		if old.Committed() && old.CommitTS() > sl.snapTS {
			return core.ErrConflict
		}
	}
	myFlags := sl.flags()
	for _, r := range ch.Readers() {
		if r.T == t || r.T.State() == core.Aborted {
			continue
		}
		// Only concurrent readers matter — concurrency in SI terms:
		// the reader committed before this transaction's SNAPSHOT was
		// taken (a batch snapshot can long predate the member's own
		// begin, so t.BeginTS would be wrong here).
		if r.T.State() == core.Committed && r.T.CommitTS() < sl.snapTS {
			continue
		}
		f, ok := r.Batch.(*marks)
		if !ok || f == myFlags {
			continue
		}
		// r read a version this write supersedes: r -rw-> t — an
		// incoming anti-dependency for our group. The reader's
		// outgoing side becomes dangerous only if we commit first;
		// its Validate rescan detects that case.
		myFlags.in.Store(true)
	}
	if myFlags.pivot() {
		return core.ErrPivot
	}
	return nil
}

// Validate implements core.CC: rescan the read set for writes that
// committed after they were read (completing out-edges whose writers were
// still pending at read time), then abort pivots — groups with both an
// incoming and an outgoing anti-dependency (§4.4.3).
func (s *SSI) Validate(t *core.Txn) error {
	if s.optimized {
		return nil
	}
	sl := s.slotOf(t)
	for _, ch := range sl.readChains {
		ch.Lock()
		var err error
		for _, v := range ch.Versions() {
			if v.Writer == t || v.Promise {
				continue
			}
			if v.Pending() {
				continue
			}
			if v.CommitTS() > sl.snapTS {
				if s.node.SameChild(t, v.Writer) {
					err = core.ErrConflict
					break
				}
				if err = s.flagAntiDep(sl, v.Writer, true); err != nil {
					break
				}
			}
		}
		ch.Unlock()
		if err != nil {
			return err
		}
	}
	if sl.flags().pivot() {
		return core.ErrPivot
	}
	return nil
}

// SnapshotLowerBound reports the oldest snapshot any current (or future,
// via an open batch) transaction of this node may read at. The engine's
// watermark takes the minimum over all CC nodes, so version GC and
// reader-record pruning never discard state a live batch snapshot still
// needs.
func (s *SSI) SnapshotLowerBound() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.live) > 0 && s.live[0].active == 0 && time.Since(s.live[0].created) > s.batchAge {
		s.live = s.live[1:]
	}
	if len(s.live) == 0 {
		return ^uint64(0)
	}
	return s.live[0].startTS
}

func (s *SSI) release(t *core.Txn) {
	if sl := s.slotOf(t); sl != nil && sl.batch != nil {
		s.mu.Lock()
		sl.batch.active--
		s.mu.Unlock()
	}
}

// Commit implements core.CC: record that the batch now has a committed
// member (it can no longer be chosen as a pivot victim).
func (s *SSI) Commit(t *core.Txn) {
	if sl := s.slotOf(t); sl != nil && !s.optimized {
		sl.flags().committed.Add(1)
	}
	s.release(t)
}

// Abort implements core.CC.
func (s *SSI) Abort(t *core.Txn) { s.release(t) }

// String renders the slot for diagnostics.
func (s *slot) String() string {
	f := s.flags()
	return fmt.Sprintf("ssi{snap=%d batch=%p in=%v out=%v}", s.snapTS, s.batch, f.in.Load(), f.out.Load())
}
