// Package tso implements multiversioned timestamp ordering (§4.4.4).
//
// Every transaction receives a timestamp at start; the serialization order
// IS timestamp order. A read returns the latest version with a smaller
// timestamp — including uncommitted versions from other groups (TSO
// pipelines by exposing uncommitted writes). A writer aborts if a reader
// with a larger timestamp already read the version it would supersede
// (read-timestamp rule). To prevent aborted reads, readers of uncommitted
// versions record write-read dependencies and commit only after those
// commit (the engine's dependency wait).
//
// Promises (Faleiro-style early write visibility): a transaction may declare
// at start time the keys it will write; readers that select the promised
// version block until the value arrives instead of eventually aborting the
// writer.
//
// As a non-leaf, TSO preserves consistent ordering by batching: transactions
// of the same child share a timestamp, their in-batch order is delegated to
// the child, and batches commit in timestamp order. As in the paper, TSO is
// most efficient as a leaf (no batching needed) — e.g. one TSO instance per
// SEATS flight under a 2PL cross-group parent.
package tso

import (
	"sync"
	"time"

	"repro/internal/core"
)

// DefaultBatchSize bounds a non-leaf batch.
const DefaultBatchSize = 64

// DefaultBatchAge rotates a non-leaf batch after this duration.
const DefaultBatchAge = 2 * time.Millisecond

type batch struct {
	ts      uint64
	joined  int // total transactions ever assigned (size limit)
	active  int // not-yet-finished transactions
	created time.Time
	drained chan struct{}
}

// TSO is a multiversion timestamp ordering CC node.
type TSO struct {
	env       *core.Env
	node      *core.Node
	batchSize int
	batchAge  time.Duration

	mu      sync.Mutex
	current map[*core.Node]*batch
	// order is the live batch list in ascending timestamp order, used to
	// commit batches in timestamp order.
	order []*batch
}

type slot struct {
	ts    uint64
	batch *batch // nil at leaves
	// promises are placeholder versions installed at start; unfulfilled
	// ones are removed at finish.
	promises []promiseRef
}

type promiseRef struct {
	ch *core.Chain
	v  *core.Version
}

// Options tune a TSO node.
type Options struct {
	BatchSize int
	BatchAge  time.Duration
}

// New creates a TSO mechanism for node.
func New(env *core.Env, node *core.Node, opt Options) *TSO {
	t := &TSO{
		env:       env,
		node:      node,
		batchSize: opt.BatchSize,
		batchAge:  opt.BatchAge,
		current:   make(map[*core.Node]*batch),
	}
	if t.batchSize <= 0 {
		t.batchSize = DefaultBatchSize
	}
	if t.batchAge <= 0 {
		t.batchAge = DefaultBatchAge
	}
	return t
}

// Name implements core.CC.
func (o *TSO) Name() string { return "TSO" }

func (o *TSO) slotOf(t *core.Txn) *slot {
	if len(t.Slots) <= o.node.Depth {
		return nil
	}
	s, _ := t.Slots[o.node.Depth].(*slot)
	return s
}

func (o *TSO) sameGroup(t, w *core.Txn) bool {
	st, sw := o.slotOf(t), o.slotOf(w)
	if st == nil || sw == nil {
		return false
	}
	return st.batch != nil && st.batch == sw.batch
}

// Begin implements core.CC: assign the TSO timestamp — per transaction at a
// leaf, per same-child batch otherwise.
func (o *TSO) Begin(t *core.Txn) error {
	s := &slot{}
	if len(o.node.Children) == 0 {
		s.ts = t.BeginTS
	} else {
		child := o.node.ChildFor(t)
		o.mu.Lock()
		b := o.current[child]
		if b == nil || b.joined >= o.batchSize || time.Since(b.created) > o.batchAge {
			b = &batch{ts: o.env.Oracle.Next(), created: time.Now(), drained: make(chan struct{})}
			o.current[child] = b
			o.order = append(o.order, b)
		}
		b.joined++
		b.active++
		o.mu.Unlock()
		s.batch = b
		s.ts = b.ts
	}
	t.Slots[o.node.Depth] = s
	return nil
}

// Promise installs a placeholder version for a key the transaction declared
// it will write, so readers wait instead of aborting the writer. Called by
// the engine with the chain locked.
func (o *TSO) Promise(t *core.Txn, ch *core.Chain) {
	s := o.slotOf(t)
	v := ch.InstallPromise(t, s.ts)
	s.promises = append(s.promises, promiseRef{ch: ch, v: v})
}

// PreRead implements core.CC: TSO never blocks before reading; waiting for
// promised values is signalled from AmendRead.
func (o *TSO) PreRead(t *core.Txn, k core.Key) error { return nil }

// PreWrite implements core.CC.
func (o *TSO) PreWrite(t *core.Txn, k core.Key) error { return nil }

// orderTS is the position of a version in TSO's serialization order:
// its TSO timestamp for versions written in this node's subtree, its commit
// timestamp for (committed) cross-group versions. Both come from the global
// oracle, so they are comparable. Returns 0 for versions TSO must ignore
// (pending cross-subtree writes — an ancestor's business).
func (o *TSO) orderTS(v *core.Version) uint64 {
	if o.node.InSubtree(v.Writer) && v.TS != 0 {
		return v.TS
	}
	if v.Committed() {
		return v.CommitTS()
	}
	return 0
}

// AmendRead implements core.CC: accept a same-batch proposal, else return
// the version with the largest order timestamp below the reader's, blocking
// on unfulfilled promises (via core.WaitFor).
func (o *TSO) AmendRead(t *core.Txn, k core.Key, ch *core.Chain, proposal *core.Version) (*core.Version, error) {
	s := o.slotOf(t)
	if proposal != nil && o.sameGroup(t, proposal.Writer) {
		return proposal, nil
	}
	var best *core.Version
	var bestTS uint64
	consider := func(v *core.Version) {
		if v == nil || v.Writer == t {
			return
		}
		ts := o.orderTS(v)
		if ts == 0 || ts >= s.ts {
			return
		}
		if best == nil || ts > bestTS {
			best, bestTS = v, ts
		}
	}
	consider(proposal)
	for _, v := range ch.Versions() {
		if o.sameGroup(t, v.Writer) {
			continue
		}
		consider(v)
	}
	if best == nil {
		return nil, nil
	}
	if best.Promise {
		return nil, &core.WaitFor{V: best}
	}
	// Read-timestamp maintenance: a later writer slotting in between
	// best and us would invalidate this read.
	if best.RTS < s.ts {
		best.RTS = s.ts
	}
	return best, nil
}

// PostWrite implements core.CC: stamp the version with the writer's TSO
// timestamp, apply the read-timestamp rule (abort if a larger-timestamped
// reader already read the version this write supersedes), and record
// write-write ordering on smaller-timestamped pending versions.
func (o *TSO) PostWrite(t *core.Txn, k core.Key, ch *core.Chain, v *core.Version) error {
	s := o.slotOf(t)
	if v.TS == 0 {
		v.TS = s.ts
	}
	for _, old := range ch.Versions() {
		if old == v || old.Writer == t {
			continue
		}
		if o.sameGroup(t, old.Writer) {
			// Same batch ⇒ same timestamp, and v (installed last, under
			// the chain lock) supersedes old in the serialization order.
			// A cross-batch reader with a larger timestamp that read old
			// missed this write.
			if old.RTS > v.TS {
				return core.ErrConflict
			}
			continue
		}
		ts := o.orderTS(old)
		if ts == 0 || ts >= v.TS {
			continue
		}
		// old precedes v, so any reader of old with a timestamp above
		// v's missed this write: the write arrives too late. Every
		// predecessor must be checked, not just the maximal one — an
		// aborting (not yet removed) intermediate version would
		// otherwise mask the RTS of the version the reader actually
		// read.
		if old.RTS > v.TS {
			return core.ErrConflict
		}
		if old.Pending() && o.node.InSubtree(old.Writer) {
			// Smaller-timestamped pending write precedes us.
			if err := t.AddDep(old.Writer, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// SnapshotLowerBound reports the oldest batch timestamp still live at this
// node (non-leaf batching), bounding what GC may discard.
func (o *TSO) SnapshotLowerBound() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	for len(o.order) > 0 && o.order[0].active == 0 {
		o.order = o.order[1:]
	}
	if len(o.order) == 0 {
		return ^uint64(0)
	}
	return o.order[0].ts
}

// Validate implements core.CC: at a non-leaf, commit batches in timestamp
// order — wait until every earlier batch has drained.
func (o *TSO) Validate(t *core.Txn) error {
	s := o.slotOf(t)
	if s.batch == nil {
		return nil
	}
	deadline := time.Now().Add(o.env.LockTimeout)
	for {
		var waitOn *batch
		o.mu.Lock()
		// Prune drained batches from the head.
		for len(o.order) > 0 && o.order[0].active == 0 {
			o.order = o.order[1:]
		}
		for _, b := range o.order {
			if b.ts >= s.batch.ts {
				break
			}
			if b.active > 0 {
				waitOn = b
				break
			}
		}
		o.mu.Unlock()
		if waitOn == nil {
			return nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return core.ErrTimeout
		}
		timer := time.NewTimer(remain)
		select {
		case <-waitOn.drained:
			timer.Stop()
		case <-timer.C:
			return core.ErrTimeout
		}
	}
}

// Commit implements core.CC.
func (o *TSO) Commit(t *core.Txn) { o.finish(t) }

// Abort implements core.CC.
func (o *TSO) Abort(t *core.Txn) { o.finish(t) }

func (o *TSO) finish(t *core.Txn) {
	s := o.slotOf(t)
	if s == nil {
		return
	}
	// Remove unfulfilled promises (a fulfilled promise became an ordinary
	// write tracked by the engine).
	for _, p := range s.promises {
		p.ch.Lock()
		if p.v.Promise {
			p.ch.Remove(p.v)
		}
		p.ch.Unlock()
	}
	s.promises = nil
	if s.batch != nil {
		o.mu.Lock()
		s.batch.active--
		if s.batch.active == 0 {
			close(s.batch.drained)
			if o.current[o.node.ChildFor(t)] == s.batch {
				delete(o.current, o.node.ChildFor(t))
			}
		}
		o.mu.Unlock()
	}
}
