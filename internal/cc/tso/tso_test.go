// Tests for the TSO mechanism, driven through the public API (an external
// test package may import repro/tebaldi even though tebaldi transitively
// imports this package — only the test binary sees the cycle).
package tso_test

import (
	"testing"
	"time"

	"repro/tebaldi"
)

func openTSO(t *testing.T) *tebaldi.DB {
	t.Helper()
	specs := []*tebaldi.Spec{
		{Name: "w", Tables: []string{"t"}, WriteTables: []string{"t"}},
	}
	db, err := tebaldi.Open(tebaldi.Options{Shards: 4, LockTimeout: 2 * time.Second},
		specs, tebaldi.Leaf(tebaldi.TSO, "w"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// TestPipelinedReadOfUncommittedWrite: TSO exposes uncommitted writes — a
// later-timestamped reader sees an earlier transaction's pending value, and
// its commit waits for the writer (write-read dependency).
func TestPipelinedReadOfUncommittedWrite(t *testing.T) {
	db := openTSO(t)
	k := tebaldi.K("t", "x")
	db.Load(k, []byte("old"))

	t1, err := db.Begin("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := t1.Write(k, []byte("new")); err != nil {
		t.Fatal(err)
	}
	t2, err := db.Begin("w", 0) // later timestamp
	if err != nil {
		t.Fatal(err)
	}
	v, err := t2.Read(k)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "new" {
		t.Fatalf("pipelined read saw %q, want uncommitted \"new\"", v)
	}
	// t2's commit must wait for t1 (consistent ordering).
	done := make(chan error, 1)
	go func() { done <- t2.Commit() }()
	select {
	case err := <-done:
		t.Fatalf("dependent committed before its writer: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestTimestampOrderExcludesLaterWrites: a reader never sees a version
// written by a LARGER timestamp, committed or not — the serialization order
// is timestamp order.
func TestTimestampOrderExcludesLaterWrites(t *testing.T) {
	db := openTSO(t)
	k := tebaldi.K("t", "x")
	db.Load(k, []byte("old"))

	early, err := db.Begin("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	late, err := db.Begin("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := late.Write(k, []byte("future")); err != nil {
		t.Fatal(err)
	}
	v, err := early.Read(k)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "old" {
		t.Fatalf("early reader saw %q, want \"old\"", v)
	}
	if err := early.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := late.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestReadTimestampRule: once a later-timestamped reader has read a
// version, an earlier-timestamped writer of the same key arrives too late
// and aborts (it would invalidate the read).
func TestReadTimestampRule(t *testing.T) {
	db := openTSO(t)
	k := tebaldi.K("t", "x")
	db.Load(k, []byte("old"))

	writer, err := db.Begin("w", 0) // smaller timestamp
	if err != nil {
		t.Fatal(err)
	}
	reader, err := db.Begin("w", 0) // larger timestamp
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reader.Read(k); err != nil {
		t.Fatal(err)
	}
	err = writer.Write(k, []byte("late"))
	if err == nil {
		t.Fatal("late write slotted in under an already-served read")
	}
	if !tebaldi.IsRetryable(err) {
		t.Fatalf("read-timestamp abort not retryable: %v", err)
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestPromiseBlocksReaderUntilFulfilled: a declared write (§4.4.4)
// installs a placeholder; a later reader blocks on it instead of aborting
// the writer, and wakes with the fulfilled value.
func TestPromiseBlocksReaderUntilFulfilled(t *testing.T) {
	db := openTSO(t)
	k := tebaldi.K("t", "x")
	db.Load(k, []byte("old"))

	writer, err := db.Begin("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := writer.Promise(k); err != nil {
		t.Fatal(err)
	}
	reader, err := db.Begin("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan []byte, 1)
	errc := make(chan error, 1)
	go func() {
		v, err := reader.Read(k)
		errc <- err
		got <- v
	}()
	select {
	case err := <-errc:
		t.Fatalf("reader did not block on the promise (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := writer.Write(k, []byte("fulfilled")); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if v := <-got; string(v) != "fulfilled" {
		t.Fatalf("reader woke with %q, want \"fulfilled\"", v)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestUnfulfilledPromiseRemovedOnAbort: aborting a promising transaction
// removes the placeholder so readers fall back to the committed version.
func TestUnfulfilledPromiseRemovedOnAbort(t *testing.T) {
	db := openTSO(t)
	k := tebaldi.K("t", "x")
	db.Load(k, []byte("old"))

	writer, err := db.Begin("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := writer.Promise(k); err != nil {
		t.Fatal(err)
	}
	writer.Rollback(nil)

	if err := db.Run("w", 0, func(tx *tebaldi.Tx) error {
		v, err := tx.Read(k)
		if err != nil {
			return err
		}
		if string(v) != "old" {
			t.Fatalf("read %q after promise abort, want \"old\"", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
