// Package nocc provides the empty concurrency control used for groups that
// need no regulation — typically the read-only group of the initial
// configuration (§5.2) and of the TPC-C / SEATS trees (§4.6): read-only
// transactions never conflict with each other, so all their conflicts are
// cross-group and handled by ancestors (usually SSI snapshots).
package nocc

import "repro/internal/core"

// NoCC is a no-op concurrency control. As a leaf it proposes no read version
// (ancestors decide); it never blocks or aborts.
type NoCC struct{}

// New returns the empty CC.
func New() *NoCC { return &NoCC{} }

// Name implements core.CC.
func (n *NoCC) Name() string { return "NoCC" }

// Begin implements core.CC.
func (n *NoCC) Begin(*core.Txn) error { return nil }

// PreRead implements core.CC.
func (n *NoCC) PreRead(*core.Txn, core.Key) error { return nil }

// PreWrite implements core.CC.
func (n *NoCC) PreWrite(*core.Txn, core.Key) error { return nil }

// AmendRead implements core.CC: the proposal passes through unchanged.
func (n *NoCC) AmendRead(t *core.Txn, k core.Key, ch *core.Chain, proposal *core.Version) (*core.Version, error) {
	return proposal, nil
}

// PostWrite implements core.CC.
func (n *NoCC) PostWrite(*core.Txn, core.Key, *core.Chain, *core.Version) error { return nil }

// Validate implements core.CC.
func (n *NoCC) Validate(*core.Txn) error { return nil }

// Commit implements core.CC.
func (n *NoCC) Commit(*core.Txn) {}

// Abort implements core.CC.
func (n *NoCC) Abort(*core.Txn) {}
