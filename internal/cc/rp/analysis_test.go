package rp

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestAnalyzeChain(t *testing.T) {
	a := Analyze([][]string{{"w", "d", "c", "o"}})
	want := map[string]int{"w": 0, "d": 1, "c": 2, "o": 3}
	if !reflect.DeepEqual(a.Rank, want) {
		t.Fatalf("ranks %v", a.Rank)
	}
	if a.MaxRank != 3 {
		t.Fatalf("max %d", a.MaxRank)
	}
}

func TestAnalyzeCycleMergesIntoOneStep(t *testing.T) {
	// s -> ol in one type, ol -> s in the other: SCC{s, ol}.
	a := Analyze([][]string{
		{"d", "s", "ol"},
		{"d", "ol", "s"},
	})
	if a.Rank["s"] != a.Rank["ol"] {
		t.Fatalf("cycle not merged: %v", a.Rank)
	}
	if a.Rank["d"] >= a.Rank["s"] {
		t.Fatalf("d must precede the merged step: %v", a.Rank)
	}
}

func TestAnalyzeRevisitMergesSpan(t *testing.T) {
	// a -> b -> a revisit forces {a, b} together.
	a := Analyze([][]string{{"a", "b", "a"}})
	if a.Rank["a"] != a.Rank["b"] {
		t.Fatalf("revisit not merged: %v", a.Rank)
	}
}

func TestAnalyzeIndependentChainsGetDistinctRanks(t *testing.T) {
	a := Analyze([][]string{{"a", "b"}, {"c", "d"}})
	// Four tables, no cross edges: all four get individual ranks with
	// a<b and c<d.
	if !(a.Rank["a"] < a.Rank["b"] && a.Rank["c"] < a.Rank["d"]) {
		t.Fatalf("order lost: %v", a.Rank)
	}
}

func TestAnalyzeTPCCShape(t *testing.T) {
	// The Figure 3.1 scenario: new_order and stock_level create a cycle
	// between stock and order_line, coarsening the pipeline.
	no := []string{"warehouse", "district", "customer", "order", "new_order", "item", "stock", "order_line"}
	sl := []string{"district", "order", "order_line", "stock"}
	a := Analyze([][]string{no, sl})
	if a.Rank["stock"] != a.Rank["order_line"] {
		t.Fatalf("expected stock/order_line SCC: %v", a.Rank)
	}
	if a.Rank["district"] >= a.Rank["order"] {
		t.Fatalf("district must precede order: %v", a.Rank)
	}
	// Alone, new_order pipelines fully.
	alone := Analyze([][]string{no})
	if alone.MaxRank != len(no)-1 {
		t.Fatalf("solo new_order pipeline coarse: %v", alone.Groups)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil)
	if len(a.Rank) != 0 || a.MaxRank != 0 {
		t.Fatalf("%+v", a)
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	orders := [][]string{
		{"a", "b", "c"}, {"c", "a"}, {"d", "b"},
	}
	first := Analyze(orders)
	for i := 0; i < 20; i++ {
		if got := Analyze(orders); !reflect.DeepEqual(got.Rank, first.Rank) {
			t.Fatalf("nondeterministic: %v vs %v", got.Rank, first.Rank)
		}
	}
}

// Property: every transaction's declared access order is monotone
// non-decreasing in the computed ranks — the invariant the runtime pipeline
// relies on (enterStep aborts on rank regression).
func TestAnalyzeMonotoneProperty(t *testing.T) {
	tables := []string{"t0", "t1", "t2", "t3", "t4", "t5"}
	f := func(seqs [][]byte) bool {
		var orders [][]string
		for _, seq := range seqs {
			if len(seq) == 0 {
				continue
			}
			if len(seq) > 8 {
				seq = seq[:8]
			}
			var order []string
			for _, b := range seq {
				order = append(order, tables[int(b)%len(tables)])
			}
			orders = append(orders, order)
		}
		a := Analyze(orders)
		for _, order := range orders {
			cur := -1
			for _, tbl := range order {
				r := a.Rank[tbl]
				if r < cur {
					return false
				}
				cur = r
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: ranks are a valid topological order of the SCC condensation —
// table pairs in distinct components never both precede each other.
func TestAnalyzeRanksContiguous(t *testing.T) {
	a := Analyze([][]string{
		{"a", "b", "c", "d"},
		{"b", "e"},
		{"e", "c"},
	})
	seen := map[int]bool{}
	for _, r := range a.Rank {
		seen[r] = true
	}
	for i := 0; i <= a.MaxRank; i++ {
		if !seen[i] {
			t.Fatalf("rank %d unused: %v", i, a.Rank)
		}
	}
}
