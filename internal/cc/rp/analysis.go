// Package rp implements Runtime Pipelining (§4.4.2, [Xie et al., Callas]),
// the aggressive lock-based mechanism that chops transactions into pipeline
// steps derived from a static analysis of their table access order.
//
// Static analysis (preprocessing, §5.4.2): build a directed graph whose
// nodes are the tables accessed by the group's transaction types, with an
// edge A -> B whenever some type accesses A before B. Strongly connected
// components are condensed (tables in a cycle must share a step — the
// "coarser pipeline" of §3.1) and topologically sorted; a table's step rank
// is its SCC's topological position.
//
// Runtime: a transaction executes steps in rank order. Within a step,
// operations are isolated by ordinary S/X locks. When a transaction advances
// past a step it step-commits: its writes in that step become visible to
// pipeline successors (still uncommitted!) and its step locks are released.
// Once T2 depends on T1, T2 may execute step i only after T1 has finished
// step i or terminated — enforced by per-transaction step counters.
package rp

import "sort"

// Analysis is the result of Runtime Pipelining's static preprocessing.
type Analysis struct {
	// Rank maps each table to its pipeline step.
	Rank map[string]int
	// MaxRank is the largest step index.
	MaxRank int
	// Groups lists the tables of each step (diagnostics; the pipeline is
	// "fine" when most steps hold one table).
	Groups [][]string
}

// Analyze runs the static analysis over the table access orders of the
// transaction types in a group. orders[i] is the i-th type's table access
// sequence (repeats allowed; a revisit of an earlier table forces the tables
// in between into one step).
func Analyze(orders [][]string) *Analysis {
	// Collect tables and adjacency from consecutive distinct accesses.
	idx := map[string]int{}
	var tables []string
	add := func(t string) int {
		if i, ok := idx[t]; ok {
			return i
		}
		i := len(tables)
		idx[t] = i
		tables = append(tables, t)
		return i
	}
	adj := map[int]map[int]bool{}
	edge := func(a, b int) {
		if a == b {
			return
		}
		if adj[a] == nil {
			adj[a] = map[int]bool{}
		}
		adj[a][b] = true
	}
	for _, order := range orders {
		prev := -1
		for _, tbl := range order {
			cur := add(tbl)
			if prev >= 0 {
				edge(prev, cur)
			}
			prev = cur
		}
	}

	n := len(tables)
	// Tarjan's strongly connected components, iterative-friendly sizes
	// here (table counts are tiny), recursive implementation.
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var stack []int
	counter := 0
	ncomp := 0
	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		// Deterministic neighbor order.
		var ns []int
		for w := range adj[v] {
			ns = append(ns, w)
		}
		sort.Ints(ns)
		for _, w := range ns {
			if index[w] == unvisited {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = ncomp
				if w == v {
					break
				}
			}
			ncomp++
		}
	}
	// Deterministic root order: table name order.
	rootOrder := make([]int, n)
	for i := range rootOrder {
		rootOrder[i] = i
	}
	sort.Slice(rootOrder, func(a, b int) bool { return tables[rootOrder[a]] < tables[rootOrder[b]] })
	for _, v := range rootOrder {
		if index[v] == unvisited {
			strongconnect(v)
		}
	}

	// Condensation topological order. Tarjan emits SCCs in reverse
	// topological order of the condensation, so rank = ncomp-1-comp in a
	// DAG sense; verify with a Kahn pass for determinism instead.
	cadj := map[int]map[int]bool{}
	indeg := make([]int, ncomp)
	for a, ns := range adj {
		for b := range ns {
			ca, cb := comp[a], comp[b]
			if ca == cb {
				continue
			}
			if cadj[ca] == nil {
				cadj[ca] = map[int]bool{}
			}
			if !cadj[ca][cb] {
				cadj[ca][cb] = true
				indeg[cb]++
			}
		}
	}
	var frontier []int
	for c := 0; c < ncomp; c++ {
		if indeg[c] == 0 {
			frontier = append(frontier, c)
		}
	}
	sort.Ints(frontier)
	rankOf := make([]int, ncomp)
	next := 0
	for len(frontier) > 0 {
		c := frontier[0]
		frontier = frontier[1:]
		rankOf[c] = next
		next++
		var succ []int
		for d := range cadj[c] {
			indeg[d]--
			if indeg[d] == 0 {
				succ = append(succ, d)
			}
		}
		sort.Ints(succ)
		frontier = append(frontier, succ...)
	}

	a := &Analysis{Rank: make(map[string]int, n)}
	groups := make([][]string, next)
	for i, tbl := range tables {
		r := rankOf[comp[i]]
		a.Rank[tbl] = r
		groups[r] = append(groups[r], tbl)
		if r > a.MaxRank {
			a.MaxRank = r
		}
	}
	for i := range groups {
		sort.Strings(groups[i])
	}
	a.Groups = groups
	return a
}
