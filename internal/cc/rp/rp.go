package rp

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lockmgr"
)

// RP is a Runtime Pipelining CC node. As a leaf it pipelines all
// transactions of its group; as a non-leaf it pipelines across child
// subtrees while exempting same-child pairs (the child regulates those).
type RP struct {
	env      *core.Env
	node     *core.Node
	locks    *lockmgr.Table
	analysis *Analysis
}

// slot is the per-transaction pipeline state.
type slot struct {
	mu   sync.Mutex
	cur  int32 // current step (atomic via Load/Store on curAtomic)
	gen  chan struct{}
	held map[core.Key]lockmgr.Mode
	// written tracks versions installed in the current (not yet
	// step-committed) step.
	written []*core.Version

	curAtomic atomic.Int32
}

// step returns the transaction's current pipeline step.
func (s *slot) step() int { return int(s.curAtomic.Load()) }

// exposeWrites marks the current step's writes step-committed. Must run
// BEFORE the step's locks are released, or a successor could acquire the
// lock and miss the write.
func (s *slot) exposeWrites() {
	s.mu.Lock()
	for _, v := range s.written {
		v.MarkStepCommitted()
	}
	s.written = s.written[:0]
	s.mu.Unlock()
}

// advanceTo publishes the new step and wakes entry waiters.
func (s *slot) advanceTo(r int) {
	s.exposeWrites()
	s.mu.Lock()
	s.curAtomic.Store(int32(r))
	old := s.gen
	s.gen = make(chan struct{})
	s.mu.Unlock()
	close(old)
}

func (s *slot) waitCh() chan struct{} {
	s.mu.Lock()
	ch := s.gen
	s.mu.Unlock()
	return ch
}

// New creates a Runtime Pipelining mechanism for node, running its static
// analysis over the access orders of the transaction types in node's
// subtree.
func New(env *core.Env, node *core.Node) *RP {
	var orders [][]string
	for _, typ := range node.SubtreeTypes() {
		if sp := env.Specs[typ]; sp != nil {
			orders = append(orders, sp.Tables)
		}
	}
	var exempt func(a, b *core.Txn) bool
	if len(node.Children) > 0 {
		exempt = node.SameChild
	}
	return &RP{
		env:      env,
		node:     node,
		locks:    lockmgr.New(env, exempt),
		analysis: Analyze(orders),
	}
}

// Name implements core.CC.
func (r *RP) Name() string { return "RP" }

// Pipeline exposes the analysis result (diagnostics, tests).
func (r *RP) Pipeline() *Analysis { return r.analysis }

// Begin implements core.CC.
func (r *RP) Begin(t *core.Txn) error {
	s := &slot{gen: make(chan struct{}), held: make(map[core.Key]lockmgr.Mode, 8)}
	t.Slots[r.node.Depth] = s
	return nil
}

func (r *RP) slotOf(t *core.Txn) *slot {
	s, _ := t.Slots[r.node.Depth].(*slot)
	return s
}

// enterStep advances t's pipeline to the step of table tbl: it step-commits
// completed steps (exposing their writes, releasing their locks) and then
// waits for every pipeline predecessor to have finished executing the target
// step (§4.4.2).
func (r *RP) enterStep(t *core.Txn, tbl string) error {
	target, ok := r.analysis.Rank[tbl]
	if !ok {
		// Table unknown to the static analysis (type registered
		// without it): treat as the current step.
		return nil
	}
	s := r.slotOf(t)
	if target < s.step() {
		// The static analysis guarantees monotone ranks when the
		// transaction follows its declared access order; a violation
		// means the spec lied. Abort rather than risk isolation.
		return core.ErrConflict
	}
	if target > s.step() {
		// Step-commit everything below target: expose writes first,
		// then release step locks so successors may proceed.
		s.exposeWrites()
		s.mu.Lock()
		held := make([]core.Key, 0, len(s.held))
		for k := range s.held {
			held = append(held, k)
		}
		s.mu.Unlock()
		for _, k := range held {
			if kr := r.analysis.Rank[k.Table]; kr < target {
				r.locks.Release(t, k)
				s.mu.Lock()
				delete(s.held, k)
				s.mu.Unlock()
			}
		}
		s.advanceTo(target)
	}

	// Pipeline ordering: every in-subtree dependency must have finished
	// executing this step (advanced past it or terminated).
	deadline := time.Now().Add(r.env.LockTimeout)
	for {
		blocked := r.firstBlockingDep(t, target)
		if blocked == nil {
			return nil
		}
		ds := r.slotOf(blocked)
		if ds == nil {
			return nil
		}
		ch := ds.waitCh()
		// Re-check under the fresh channel to avoid lost wakeups.
		if blocked.Finished() || ds.step() > target {
			continue
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return core.ErrTimeout
		}
		start := time.Now()
		timer := time.NewTimer(remain)
		select {
		case <-ch:
			timer.Stop()
		case <-blocked.Done():
			timer.Stop()
		case <-timer.C:
			r.env.Report(t, blocked, start, time.Now())
			return core.ErrTimeout
		}
		r.env.Report(t, blocked, start, time.Now())
	}
}

// firstBlockingDep returns a dependency of t, managed by this node, that has
// not yet finished executing step target.
func (r *RP) firstBlockingDep(t *core.Txn, target int) *core.Txn {
	for _, d := range t.Deps() {
		if d.T.Finished() || !r.node.InSubtree(d.T) {
			continue
		}
		ds := r.slotOf(d.T)
		if ds == nil {
			continue
		}
		if ds.step() <= target {
			//lint:allow poolescape -- d.T was marked shared when AddDep recorded it; returning an already-shared txn adds no escape
			return d.T
		}
	}
	return nil
}

// PreRead implements core.CC: enter the table's step, then take an intra-step
// shared lock.
func (r *RP) PreRead(t *core.Txn, k core.Key) error {
	if err := r.enterStep(t, k.Table); err != nil {
		return err
	}
	return r.acquire(t, k, lockmgr.Shared)
}

// PreWrite implements core.CC: enter the table's step, then take an
// intra-step exclusive lock.
func (r *RP) PreWrite(t *core.Txn, k core.Key) error {
	if err := r.enterStep(t, k.Table); err != nil {
		return err
	}
	return r.acquire(t, k, lockmgr.Exclusive)
}

func (r *RP) acquire(t *core.Txn, k core.Key, m lockmgr.Mode) error {
	s := r.slotOf(t)
	s.mu.Lock()
	held, ok := s.held[k]
	s.mu.Unlock()
	if ok && (held == lockmgr.Exclusive || held == m) {
		return nil
	}
	if err := r.locks.Acquire(t, k, m); err != nil {
		return err
	}
	s.mu.Lock()
	s.held[k] = m
	s.mu.Unlock()
	return nil
}

// AmendRead implements core.CC. RP accepts the child's proposal if it is a
// pending write from the reader's own child subtree — whether or not it is
// step-committed, the child chose it and conflicts between the reader and
// that writer are delegated (substituting committed history here would hand
// the reader a stale value and lose the predecessor's update; exactly that
// happened in the hot-4layer RP-over-(RP|2PL) nesting). Otherwise it returns
// the latest step-committed (or fully committed) value written in this
// node's subtree, exposing pipeline predecessors' uncommitted state. If the
// subtree never wrote the key the proposal (or nil) passes through for
// ancestors to amend.
func (r *RP) AmendRead(t *core.Txn, k core.Key, ch *core.Chain, proposal *core.Version) (*core.Version, error) {
	if proposal != nil && proposal.Pending() && !proposal.StepCommitted() &&
		r.node.SameChild(t, proposal.Writer) {
		// Not yet exposed: only the child can justify reading it.
		return proposal, nil
	}
	// Candidates: committed history from anywhere (a committed version is
	// just data — but same-child versions stay the child's choice: only
	// the version the child proposed may represent them), plus
	// step-committed pending writes from this subtree. A step-committed
	// pending write supersedes all committed versions: it will commit
	// after them. Install order equals pipeline order for writes this
	// node regulates (same-child writes are serialized by the child, and
	// cross-child writes by this node's step X lock), so the last
	// eligible pending version is the latest.
	var bestCommitted, bestPending *core.Version
	if proposal != nil && proposal.Committed() {
		bestCommitted = proposal
	}
	for _, v := range ch.Versions() {
		if v.Writer == t || v.Promise {
			continue
		}
		if r.node.SameChild(t, v.Writer) && v != proposal {
			continue
		}
		switch {
		case v.Committed():
			if bestCommitted == nil || v.CommitTS() > bestCommitted.CommitTS() {
				bestCommitted = v
			}
		case v.Pending() && (v.StepCommitted() || v == proposal) && r.node.InSubtree(v.Writer):
			bestPending = v
		}
	}
	if bestPending != nil {
		return bestPending, nil
	}
	if bestCommitted != nil {
		return bestCommitted, nil
	}
	return proposal, nil
}

// PostWrite implements core.CC: remember the version for step-commit
// exposure and record write-write ordering on pending in-subtree versions.
func (r *RP) PostWrite(t *core.Txn, k core.Key, ch *core.Chain, v *core.Version) error {
	s := r.slotOf(t)
	s.mu.Lock()
	s.written = append(s.written, v)
	s.mu.Unlock()
	for _, old := range ch.Versions() {
		if old == v || old.Writer == t || !old.Pending() {
			continue
		}
		if r.node.InSubtree(old.Writer) {
			if err := t.AddDep(old.Writer, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// Validate implements core.CC: RP delays commit until the dependency set has
// committed, which the engine's consistent-ordering wait performs.
func (r *RP) Validate(t *core.Txn) error { return nil }

// Commit implements core.CC: release remaining locks and wake step waiters.
func (r *RP) Commit(t *core.Txn) { r.finish(t) }

// Abort implements core.CC. Aborting a transaction that already exposed
// step-committed writes cascades to readers via the engine's read-from
// dependency tracking.
func (r *RP) Abort(t *core.Txn) { r.finish(t) }

func (r *RP) finish(t *core.Txn) {
	s := r.slotOf(t)
	if s == nil {
		return
	}
	s.mu.Lock()
	keys := make([]core.Key, 0, len(s.held))
	for k := range s.held {
		keys = append(keys, k)
	}
	s.held = map[core.Key]lockmgr.Mode{}
	s.mu.Unlock()
	for _, k := range keys {
		r.locks.Release(t, k)
	}
	s.advanceTo(r.analysis.MaxRank + 1)
}
