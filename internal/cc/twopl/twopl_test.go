// Tests for the 2PL mechanism, driven through the public API (an external
// test package may import repro/tebaldi even though tebaldi transitively
// imports this package — only the test binary sees the cycle).
package twopl_test

import (
	"sync"
	"testing"
	"time"

	"repro/tebaldi"
)

func open2PL(t *testing.T, timeout time.Duration) *tebaldi.DB {
	t.Helper()
	specs := []*tebaldi.Spec{
		{Name: "w", Tables: []string{"t"}, WriteTables: []string{"t"}},
	}
	db, err := tebaldi.Open(tebaldi.Options{Shards: 4, LockTimeout: timeout},
		specs, tebaldi.Leaf(tebaldi.TwoPL, "w"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// TestExclusiveLockBlocksReaderUntilCommit: strict 2PL — a reader of a
// write-locked key blocks until the writer commits, then sees the new value.
func TestExclusiveLockBlocksReaderUntilCommit(t *testing.T) {
	db := open2PL(t, 2*time.Second)
	k := tebaldi.K("t", "x")
	db.Load(k, []byte("old"))

	w, err := db.Begin("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(k, []byte("new")); err != nil {
		t.Fatal(err)
	}

	got := make(chan []byte, 1)
	errc := make(chan error, 1)
	go func() {
		r, err := db.Begin("w", 0)
		if err != nil {
			errc <- err
			return
		}
		v, err := r.Read(k)
		if err != nil {
			errc <- err
			return
		}
		errc <- r.Commit()
		got <- v
	}()

	// The reader must be blocked on the exclusive lock.
	select {
	case <-got:
		t.Fatal("reader returned while writer held the exclusive lock")
	case err := <-errc:
		t.Fatalf("reader errored instead of blocking: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if v := <-got; string(v) != "new" {
		t.Fatalf("reader saw %q, want \"new\"", v)
	}
}

// TestSharedLocksAllowConcurrentReaders: two transactions hold shared locks
// on the same key simultaneously.
func TestSharedLocksAllowConcurrentReaders(t *testing.T) {
	db := open2PL(t, 500*time.Millisecond)
	k := tebaldi.K("t", "x")
	db.Load(k, []byte("v"))

	r1, err := db.Begin("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db.Begin("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Read(k); err != nil {
		t.Fatal(err)
	}
	// r2's shared lock must not block behind r1's.
	done := make(chan error, 1)
	go func() {
		_, err := r2.Read(k)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(200 * time.Millisecond):
		t.Fatal("second shared reader blocked")
	}
	if err := r1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := r2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlockResolvedByTimeout: two transactions lock a and b in opposite
// orders; the timeout breaks the deadlock with a retryable abort (§4.4.1).
func TestDeadlockResolvedByTimeout(t *testing.T) {
	db := open2PL(t, 100*time.Millisecond)
	a, b := tebaldi.K("t", "a"), tebaldi.K("t", "b")
	db.Load(a, []byte("0"))
	db.Load(b, []byte("0"))

	t1, err := db.Begin("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := db.Begin("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := t1.Write(a, []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(b, []byte("2")); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs[0] = t1.Write(b, []byte("1")) }()
	go func() { defer wg.Done(); errs[1] = t2.Write(a, []byte("2")) }()
	wg.Wait()

	aborted := 0
	for _, err := range errs {
		if err != nil {
			if !tebaldi.IsRetryable(err) {
				t.Fatalf("deadlock abort not retryable: %v", err)
			}
			aborted++
		}
	}
	if aborted == 0 {
		t.Fatal("opposite-order lock acquisition did not abort either transaction")
	}
	// The survivors (if any) can still finish.
	for i, tx := range []*tebaldi.Tx{t1, t2} {
		if errs[i] == nil {
			if err := tx.Commit(); err != nil {
				t.Fatalf("survivor %d: %v", i, err)
			}
		}
	}
}

// TestLocksReleasedOnAbort: an aborted writer's locks free immediately and
// its version is gone.
func TestLocksReleasedOnAbort(t *testing.T) {
	db := open2PL(t, 2*time.Second)
	k := tebaldi.K("t", "x")
	db.Load(k, []byte("old"))

	w, err := db.Begin("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(k, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	w.Rollback(nil)

	err = db.Run("w", 0, func(tx *tebaldi.Tx) error {
		v, err := tx.Read(k)
		if err != nil {
			return err
		}
		if string(v) != "old" {
			t.Fatalf("read %q after abort, want \"old\"", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNexusSameChildExemption: as a non-leaf (Callas nexus locks, §3.3.2),
// 2PL exempts same-child pairs — two transactions of types delegated to the
// same (pipelining TSO) child don't conflict on the parent's lock table,
// while a different-child transaction still blocks.
func TestNexusSameChildExemption(t *testing.T) {
	specs := []*tebaldi.Spec{
		{Name: "a1", Tables: []string{"t"}, WriteTables: []string{"t"}},
		{Name: "a2", Tables: []string{"t"}, WriteTables: []string{"t"}},
		{Name: "b", Tables: []string{"t"}, WriteTables: []string{"t"}},
	}
	cfg := tebaldi.Inner(tebaldi.TwoPL,
		tebaldi.Leaf(tebaldi.TSO, "a1", "a2"),
		tebaldi.Leaf(tebaldi.TwoPL, "b"))
	db, err := tebaldi.Open(tebaldi.Options{Shards: 4, LockTimeout: 300 * time.Millisecond}, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	k := tebaldi.K("t", "x")
	db.Load(k, []byte("0"))

	t1, err := db.Begin("a1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := t1.Write(k, []byte("1")); err != nil {
		t.Fatal(err)
	}
	// Same child: no nexus-lock conflict (RP regulates the pair).
	t2, err := db.Begin("a2", 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- t2.Write(k, []byte("2")) }()
	select {
	case <-done:
		// Proceeded (possibly with an RP-level dependency) — the nexus
		// lock did not block it.
	case <-time.After(200 * time.Millisecond):
		t.Fatal("same-child writer blocked on the nexus lock")
	}
	// Different child: must block on the nexus lock until timeout.
	t3, err := db.Begin("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := t3.Write(k, []byte("3")); err == nil {
		t.Fatal("different-child writer acquired a held nexus lock")
	} else if !tebaldi.IsRetryable(err) {
		t.Fatalf("expected retryable timeout, got %v", err)
	}
	t1.Rollback(nil)
	t2.Rollback(nil)
}
