// Package twopl implements two-phase locking (§4.4.1), Tebaldi's most
// general CC mechanism.
//
// As a leaf, this is textbook strict 2PL: shared locks for reads, exclusive
// locks for writes, all held until commit/abort; deadlocks resolve by
// timeout.
//
// As a non-leaf it becomes the nexus-lock mechanism of Callas (§3.3.2):
// transactions delegated to the same child never conflict on a lock — their
// conflicts are the child's responsibility — and the Nexus Lock Release
// Order (release only after in-group dependencies commit) is enforced by the
// engine's consistent-ordering commit wait, since locks are released in the
// Commit phase which runs only after the transaction's recorded dependencies
// have committed.
package twopl

import (
	"repro/internal/core"
	"repro/internal/lockmgr"
)

// TwoPL is a two-phase locking CC node.
type TwoPL struct {
	env   *core.Env
	node  *core.Node
	locks *lockmgr.Table
}

type slot struct {
	held map[core.Key]lockmgr.Mode
}

// New creates a 2PL mechanism for node. For non-leaf nodes the lock table
// exempts same-child pairs (nexus semantics).
func New(env *core.Env, node *core.Node) *TwoPL {
	p := &TwoPL{env: env, node: node}
	var exempt func(a, b *core.Txn) bool
	if len(node.Children) > 0 {
		exempt = node.SameChild
	}
	p.locks = lockmgr.New(env, exempt)
	return p
}

// Name implements core.CC.
func (p *TwoPL) Name() string { return "2PL" }

// Begin implements core.CC. The held map is allocated lazily on the first
// lock acquisition, so transactions that never reach this node's lock table
// pay one slot allocation only.
func (p *TwoPL) Begin(t *core.Txn) error {
	t.Slots[p.node.Depth] = &slot{}
	return nil
}

func (p *TwoPL) slotOf(t *core.Txn) *slot {
	s, _ := t.Slots[p.node.Depth].(*slot)
	return s
}

func (p *TwoPL) acquire(t *core.Txn, k core.Key, m lockmgr.Mode) error {
	s := p.slotOf(t)
	if held, ok := s.held[k]; ok && (held == lockmgr.Exclusive || held == m) {
		return nil
	}
	if err := p.locks.Acquire(t, k, m); err != nil {
		return err
	}
	if s.held == nil {
		s.held = make(map[core.Key]lockmgr.Mode, 8)
	}
	s.held[k] = m
	return nil
}

// PreRead implements core.CC: acquire a shared lock, held to commit.
func (p *TwoPL) PreRead(t *core.Txn, k core.Key) error {
	return p.acquire(t, k, lockmgr.Shared)
}

// PreWrite implements core.CC: acquire an exclusive lock, held to commit.
func (p *TwoPL) PreWrite(t *core.Txn, k core.Key) error {
	return p.acquire(t, k, lockmgr.Exclusive)
}

// AmendRead implements core.CC. 2PL accepts the child's proposal if it is an
// uncommitted value from the reader's own child subtree (delegated conflict);
// otherwise it returns the latest committed version — correct because the
// shared lock guarantees no conflicting non-exempt writer is active.
func (p *TwoPL) AmendRead(t *core.Txn, k core.Key, ch *core.Chain, proposal *core.Version) (*core.Version, error) {
	if proposal != nil && proposal.Pending() && p.node.SameChild(t, proposal.Writer) {
		return proposal, nil
	}
	// Choose the latest committed version among those this node (or a
	// descendant) regulates, or keep a newer committed proposal.
	best := proposal
	if best != nil && best.Pending() {
		// A pending proposal from a non-same-child subtree cannot
		// exist under our lock; defensively fall back to committed.
		best = nil
	}
	if lc := ch.LatestCommitted(); lc != nil {
		if best == nil || lc.CommitTS() >= best.CommitTS() {
			best = lc
		}
	}
	return best, nil
}

// PostWrite implements core.CC: record write-write ordering dependencies on
// pending same-child versions of the key (their writers must commit first;
// the exclusive lock already excludes non-exempt pending writers).
func (p *TwoPL) PostWrite(t *core.Txn, k core.Key, ch *core.Chain, v *core.Version) error {
	for _, old := range ch.Versions() {
		if old == v || old.Writer == t || !old.Pending() {
			continue
		}
		if p.node.InSubtree(old.Writer) {
			if err := t.AddDep(old.Writer, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// Validate implements core.CC: trivial for 2PL — holding all locks suffices.
func (p *TwoPL) Validate(t *core.Txn) error { return nil }

// Commit implements core.CC: release all locks. The engine has already
// waited for the transaction's dependency set (nexus release order).
func (p *TwoPL) Commit(t *core.Txn) { p.releaseAll(t) }

// Abort implements core.CC.
func (p *TwoPL) Abort(t *core.Txn) { p.releaseAll(t) }

func (p *TwoPL) releaseAll(t *core.Txn) {
	s := p.slotOf(t)
	if s == nil {
		return
	}
	for k := range s.held {
		p.locks.Release(t, k)
	}
	s.held = nil
}
