// Package lockmgr implements the lock tables used by Tebaldi's lock-based CC
// mechanisms (two-phase locking and the intra-step locks of Runtime
// Pipelining).
//
// A lock table supports shared/exclusive row locks with three Tebaldi
// specifics:
//
//   - an exemption predicate: transactions delegated to the same child of
//     the owning CC node never conflict (nexus-lock semantics, §3.3.2) —
//     their conflicts are the child's responsibility;
//   - timeout-based deadlock resolution (§4.4.1): waits abort with
//     core.ErrTimeout when they exceed the configured bound;
//   - blocking-event reporting to the performance profiler (§5.3.2).
//
// Acquiring a lock after a wait records ordering dependencies on the owners
// that were waited for, feeding the engine's consistent-ordering commit wait.
package lockmgr

import (
	"sync"
	"time"

	"repro/internal/core"
)

// Mode is a lock mode.
type Mode int

const (
	// Shared is a read lock; shared locks are mutually compatible.
	Shared Mode = iota
	// Exclusive is a write lock; it conflicts with every mode.
	Exclusive
)

const numShards = 64

// Table is a sharded lock table. One table serves one CC node.
type Table struct {
	env *core.Env
	// exempt reports that two transactions never conflict at this table
	// (same-child delegation). May be nil.
	exempt func(a, b *core.Txn) bool
	shards [numShards]shard
}

type shard struct {
	mu    sync.Mutex
	locks map[core.Key]*lock
}

type lock struct {
	owners  map[*core.Txn]Mode
	waiters int
	// upgrading marks owners currently waiting to upgrade Shared ->
	// Exclusive. Two such owners deadlock unresolvably (each waits for the
	// other's Shared hold); the set lets the conflict be detected and
	// killed instantly instead of burning the full lock timeout — under
	// retry-loop clients the timeout path livelocks: both upgraders time
	// out together, retry, re-read (Shared never blocks), and re-deadlock,
	// while every other transaction touching the row piles up behind them.
	upgrading map[*core.Txn]bool
	// gen is closed and replaced whenever the owner set shrinks (or an
	// upgrader joins the wait), waking waiters to re-check compatibility.
	gen chan struct{}
}

// New creates a lock table. exempt may be nil (no exemption: leaf 2PL).
func New(env *core.Env, exempt func(a, b *core.Txn) bool) *Table {
	t := &Table{env: env, exempt: exempt}
	for i := range t.shards {
		t.shards[i].locks = make(map[core.Key]*lock)
	}
	return t
}

func (t *Table) shardFor(k core.Key) *shard {
	// Inlined FNV-1a (core.Key.Hash32): hash/fnv allocated a hasher and
	// three byte-slice conversions on every call; placement is unchanged.
	return &t.shards[k.Hash32()%numShards]
}

// conflicts reports whether owner's hold in mode om conflicts with txn
// requesting mode m.
func (t *Table) conflicts(owner *core.Txn, om Mode, txn *core.Txn, m Mode) bool {
	if owner == txn {
		return false
	}
	if t.exempt != nil && t.exempt(owner, txn) {
		return false
	}
	return om == Exclusive || m == Exclusive
}

// Acquire takes the lock on k in mode m for txn, blocking until compatible
// or until the table's lock timeout expires (returning core.ErrTimeout).
// Re-acquiring an already-held lock is a no-op; Shared->Exclusive upgrades
// are supported. Ordering dependencies on the owners waited for are recorded
// on txn.
func (t *Table) Acquire(txn *core.Txn, k core.Key, m Mode) error {
	// The lock table retains the pointer (owner map; waiters hold it as
	// their recorded blocker) past this call: the txn must never be pooled.
	txn.MarkShared()
	s := t.shardFor(k)
	// Deadline for the wait path, computed on first conflict only: the
	// uncontended grant never queries the clock.
	var deadline time.Time

	var blockStart time.Time
	var blocker *core.Txn
	flush := func(end time.Time) {
		if blocker != nil {
			t.env.Report(txn, blocker, blockStart, end)
			blocker = nil
		}
	}

	cleanupUpgrade := func(l *lock) {
		if l.upgrading != nil {
			delete(l.upgrading, txn)
		}
	}

	for {
		s.mu.Lock()
		l := s.locks[k]
		if l == nil {
			l = &lock{owners: make(map[*core.Txn]Mode, 2), gen: make(chan struct{})}
			s.locks[k] = l
		}
		if held, ok := l.owners[txn]; ok && (held == Exclusive || held == m) {
			cleanupUpgrade(l)
			s.mu.Unlock()
			flush(time.Now())
			return nil
		}
		upgrade := false
		if held, ok := l.owners[txn]; ok && held == Shared && m == Exclusive {
			upgrade = true
		}
		var conflictOwner *core.Txn
		for o, om := range l.owners {
			if t.conflicts(o, om, txn, m) {
				conflictOwner = o
				break
			}
		}
		if upgrade && conflictOwner != nil {
			// Another Shared holder also waiting to upgrade means an
			// unresolvable deadlock: kill the younger upgrader now
			// (ErrConflict is retryable; the retry re-reads and re-queues
			// with a fresh, larger ID, so the oldest upgrader always
			// wins and the pair resolves in microseconds, not timeouts).
			for o, om := range l.owners {
				if o != txn && om == Shared && l.upgrading[o] &&
					t.conflicts(o, om, txn, m) && txn.ID > o.ID {
					cleanupUpgrade(l)
					s.mu.Unlock()
					flush(time.Now())
					return core.ErrConflict
				}
			}
			// We will wait: publish the upgrade and wake current waiters
			// so a younger sleeping upgrader re-checks and kills itself.
			if l.upgrading == nil {
				l.upgrading = make(map[*core.Txn]bool, 2)
			}
			if !l.upgrading[txn] {
				l.upgrading[txn] = true
				close(l.gen)
				l.gen = make(chan struct{})
			}
		}
		if conflictOwner == nil {
			cleanupUpgrade(l)
			// Grant; record ordering dependencies on remaining
			// non-exempt owners (pure rw compatibility: S after S
			// needs no edge).
			if held, ok := l.owners[txn]; !ok || m == Exclusive && held == Shared {
				l.owners[txn] = m
			}
			s.mu.Unlock()
			now := time.Now()
			flush(now)
			return nil
		}
		gen := l.gen
		l.waiters++
		s.mu.Unlock()

		now := time.Now()
		if blocker != conflictOwner {
			flush(now)
			blocker, blockStart = conflictOwner, now
		}
		// The conflicting owner must finish (or step-release) before
		// us: a lock-order dependency.
		if err := txn.AddDep(conflictOwner, false); err != nil {
			t.doneWaiting(s, k, txn, true)
			flush(time.Now())
			return err
		}

		if deadline.IsZero() {
			deadline = time.Now().Add(t.env.LockTimeout)
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			t.doneWaiting(s, k, txn, true)
			flush(time.Now())
			return core.ErrTimeout
		}
		timer := time.NewTimer(remain)
		select {
		case <-gen:
			timer.Stop()
		case <-timer.C:
			t.doneWaiting(s, k, txn, true)
			flush(time.Now())
			return core.ErrTimeout
		}
		// Keep any upgrade mark across the re-check loop: the wait
		// continues until granted or terminal.
		t.doneWaiting(s, k, txn, false)
	}
}

// doneWaiting retires one wait registration; terminal additionally clears
// txn's published upgrade-wait mark (the wait will not resume).
func (t *Table) doneWaiting(s *shard, k core.Key, txn *core.Txn, terminal bool) {
	s.mu.Lock()
	if l := s.locks[k]; l != nil {
		l.waiters--
		if terminal && l.upgrading != nil {
			delete(l.upgrading, txn)
		}
		if l.waiters == 0 && len(l.owners) == 0 {
			delete(s.locks, k)
		}
	}
	s.mu.Unlock()
}

// Release drops txn's lock on k, waking waiters.
func (t *Table) Release(txn *core.Txn, k core.Key) {
	s := t.shardFor(k)
	s.mu.Lock()
	l := s.locks[k]
	if l != nil {
		if _, ok := l.owners[txn]; ok {
			delete(l.owners, txn)
			if l.upgrading != nil {
				delete(l.upgrading, txn)
			}
			close(l.gen)
			l.gen = make(chan struct{})
			if l.waiters == 0 && len(l.owners) == 0 {
				delete(s.locks, k)
			}
		}
	}
	s.mu.Unlock()
}

// ReleaseAll drops every lock in keys held by txn.
func (t *Table) ReleaseAll(txn *core.Txn, keys []core.Key) {
	for _, k := range keys {
		t.Release(txn, k)
	}
}

// Holds reports whether txn currently owns a lock on k (any mode).
func (t *Table) Holds(txn *core.Txn, k core.Key) bool {
	s := t.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.locks[k]
	if l == nil {
		return false
	}
	_, ok := l.owners[txn]
	return ok
}
