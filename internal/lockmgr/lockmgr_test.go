package lockmgr

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func env(timeout time.Duration) *core.Env {
	return &core.Env{LockTimeout: timeout}
}

func txn(id uint64, typ string) *core.Txn {
	t := core.NewTxn(id, typ, 0, id)
	return t
}

func TestSharedLocksCompatible(t *testing.T) {
	tbl := New(env(time.Second), nil)
	k := core.K("t", "x")
	a, b := txn(1, "a"), txn(2, "b")
	if err := tbl.Acquire(a, k, Shared); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Acquire(b, k, Shared); err != nil {
		t.Fatal(err)
	}
	if !tbl.Holds(a, k) || !tbl.Holds(b, k) {
		t.Fatal("both should hold")
	}
}

func TestExclusiveBlocksAndWakes(t *testing.T) {
	tbl := New(env(time.Second), nil)
	k := core.K("t", "x")
	a, b := txn(1, "a"), txn(2, "b")
	if err := tbl.Acquire(a, k, Exclusive); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() { acquired <- tbl.Acquire(b, k, Exclusive) }()
	select {
	case <-acquired:
		t.Fatal("b acquired while a held X")
	case <-time.After(20 * time.Millisecond):
	}
	tbl.Release(a, k)
	if err := <-acquired; err != nil {
		t.Fatal(err)
	}
	// b must now have an ordering dependency on a.
	deps := b.Deps()
	if len(deps) != 1 || deps[0].T != a {
		t.Fatalf("deps = %+v", deps)
	}
}

func TestTimeoutResolvesDeadlock(t *testing.T) {
	tbl := New(env(50*time.Millisecond), nil)
	k1, k2 := core.K("t", "1"), core.K("t", "2")
	a, b := txn(1, "a"), txn(2, "b")
	if err := tbl.Acquire(a, k1, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Acquire(b, k2, Exclusive); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var timeouts atomic.Int32
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := tbl.Acquire(a, k2, Exclusive); errors.Is(err, core.ErrTimeout) {
			timeouts.Add(1)
			tbl.Release(a, k1)
		}
	}()
	go func() {
		defer wg.Done()
		if err := tbl.Acquire(b, k1, Exclusive); errors.Is(err, core.ErrTimeout) {
			timeouts.Add(1)
			tbl.Release(b, k2)
		}
	}()
	wg.Wait()
	if timeouts.Load() == 0 {
		t.Fatal("deadlock not resolved by timeout")
	}
}

func TestUpgrade(t *testing.T) {
	tbl := New(env(time.Second), nil)
	k := core.K("t", "x")
	a := txn(1, "a")
	if err := tbl.Acquire(a, k, Shared); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Acquire(a, k, Exclusive); err != nil {
		t.Fatal(err)
	}
	b := txn(2, "b")
	errCh := make(chan error, 1)
	go func() { errCh <- tbl.Acquire(b, k, Shared) }()
	select {
	case <-errCh:
		t.Fatal("S granted against upgraded X")
	case <-time.After(20 * time.Millisecond):
	}
	tbl.Release(a, k)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

// TestUpgradeDeadlock: two shared holders both requesting the upgrade is the
// classic unresolvable S->X deadlock — each waits for the other's S to go
// away. The table must kill the younger upgrader immediately with a
// retryable conflict (NOT let both burn the full lock timeout: under
// retry-loop clients that path livelocks — both time out together, re-read,
// and re-deadlock). Once the loser releases its Shared hold, the older
// upgrader's X must be granted.
func TestUpgradeDeadlock(t *testing.T) {
	tbl := New(env(10*time.Second), nil) // huge timeout: resolution must NOT come from it
	k := core.K("t", "x")
	a, b := txn(1, "a"), txn(2, "b") // a is older (smaller ID)
	if err := tbl.Acquire(a, k, Shared); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Acquire(b, k, Shared); err != nil {
		t.Fatal(err)
	}
	aErr := make(chan error, 1)
	go func() { aErr <- tbl.Acquire(a, k, Exclusive) }()
	// The younger upgrader must die quickly whether it joins before or
	// after the older one sleeps.
	start := time.Now()
	err := tbl.Acquire(b, k, Exclusive)
	if !errors.Is(err, core.ErrConflict) {
		t.Fatalf("younger upgrader got %v, want ErrConflict", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("upgrade deadlock took %v to resolve, want immediate kill", d)
	}
	tbl.Release(b, k) // loser aborts, dropping its Shared hold
	if err := <-aErr; err != nil {
		t.Fatalf("older upgrader failed: %v", err)
	}
	if !tbl.Holds(a, k) {
		t.Fatal("winner does not hold the lock")
	}
	// Drain: after the winner releases, a fresh transaction gets X
	// immediately (no residual owners, waiters, or upgrade marks).
	tbl.Release(a, k)
	c := txn(3, "c")
	if err := tbl.Acquire(c, k, Exclusive); err != nil {
		t.Fatalf("lock not clean after upgrade deadlock: %v", err)
	}
}

// TestUpgradeAfterPeerReleases: the successful upgrade path — the other
// shared holder releases, the upgrade completes, and the upgrader ends up
// with a single Exclusive hold that still blocks new readers.
func TestUpgradeAfterPeerReleases(t *testing.T) {
	tbl := New(env(time.Second), nil)
	k := core.K("t", "x")
	a, b := txn(1, "a"), txn(2, "b")
	if err := tbl.Acquire(a, k, Shared); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Acquire(b, k, Shared); err != nil {
		t.Fatal(err)
	}
	upgraded := make(chan error, 1)
	go func() { upgraded <- tbl.Acquire(a, k, Exclusive) }()
	select {
	case err := <-upgraded:
		t.Fatalf("upgrade granted against a live S holder: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	tbl.Release(b, k)
	if err := <-upgraded; err != nil {
		t.Fatal(err)
	}
	// The upgrader waited on b: dependency recorded.
	deps := a.Deps()
	if len(deps) != 1 || deps[0].T != b {
		t.Fatalf("deps = %+v, want [b]", deps)
	}
	// A new reader must block against the upgraded X.
	c := txn(3, "c")
	got := make(chan error, 1)
	go func() { got <- tbl.Acquire(c, k, Shared) }()
	select {
	case err := <-got:
		t.Fatalf("S granted against upgraded X: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	tbl.Release(a, k)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
}

// TestReleaseWakesAllSharedWaiters: one X release must wake every queued
// reader, not just one — shared waiters are mutually compatible and must be
// admitted together.
func TestReleaseWakesAllSharedWaiters(t *testing.T) {
	tbl := New(env(2*time.Second), nil)
	k := core.K("t", "x")
	w := txn(1, "w")
	if err := tbl.Acquire(w, k, Exclusive); err != nil {
		t.Fatal(err)
	}
	const readers = 8
	var wg sync.WaitGroup
	var granted atomic.Int32
	started := make(chan struct{}, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			started <- struct{}{}
			if err := tbl.Acquire(txn(10+id, "r"), k, Shared); err == nil {
				granted.Add(1)
			}
		}(uint64(i))
	}
	for i := 0; i < readers; i++ {
		<-started
	}
	time.Sleep(20 * time.Millisecond) // let the readers reach the wait
	tbl.Release(w, k)
	wg.Wait()
	if granted.Load() != readers {
		t.Fatalf("only %d/%d shared waiters woken by one X release", granted.Load(), readers)
	}
}

func TestNexusExemption(t *testing.T) {
	// Exempt pairs with equal types: same-child stand-in.
	tbl := New(env(30*time.Millisecond), func(x, y *core.Txn) bool { return x.Type == y.Type })
	k := core.K("t", "x")
	a1, a2, b := txn(1, "g1"), txn(2, "g1"), txn(3, "g2")
	if err := tbl.Acquire(a1, k, Exclusive); err != nil {
		t.Fatal(err)
	}
	// Same group: no conflict even X-X.
	if err := tbl.Acquire(a2, k, Exclusive); err != nil {
		t.Fatalf("nexus exemption failed: %v", err)
	}
	// Different group: conflicts.
	if err := tbl.Acquire(b, k, Shared); !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
}

func TestReleaseAllAndReacquire(t *testing.T) {
	tbl := New(env(time.Second), nil)
	a := txn(1, "a")
	keys := []core.Key{core.K("t", "1"), core.K("t", "2"), core.K("t", "3")}
	for _, k := range keys {
		if err := tbl.Acquire(a, k, Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	tbl.ReleaseAll(a, keys)
	for _, k := range keys {
		if tbl.Holds(a, k) {
			t.Fatal("still held after ReleaseAll")
		}
	}
	b := txn(2, "b")
	for _, k := range keys {
		if err := tbl.Acquire(b, k, Exclusive); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentStress(t *testing.T) {
	tbl := New(env(2*time.Second), nil)
	k := core.K("t", "hot")
	var counter int64 // protected by the X lock, not atomics
	var wg sync.WaitGroup
	const workers, iters = 16, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tx := txn(base*1000+uint64(i), "w")
				if err := tbl.Acquire(tx, k, Exclusive); err != nil {
					t.Error(err)
					return
				}
				counter++
				tbl.Release(tx, k)
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("lost updates: %d != %d (mutual exclusion broken)", counter, workers*iters)
	}
}

func TestBlockEventReported(t *testing.T) {
	rep := &captureReporter{}
	e := env(time.Second)
	e.Reporter = rep
	tbl := New(e, nil)
	k := core.K("t", "x")
	a, b := txn(1, "A"), txn(2, "B")
	tbl.Acquire(a, k, Exclusive)
	go func() {
		time.Sleep(30 * time.Millisecond)
		tbl.Release(a, k)
	}()
	if err := tbl.Acquire(b, k, Exclusive); err != nil {
		t.Fatal(err)
	}
	evs := rep.events()
	if len(evs) == 0 {
		t.Fatal("no block event reported")
	}
	ev := evs[0]
	if ev.BlockedType != "B" || ev.BlockerType != "A" {
		t.Fatalf("event %+v", ev)
	}
	if ev.End.Sub(ev.Start) < 20*time.Millisecond {
		t.Fatalf("blocked interval too short: %v", ev.End.Sub(ev.Start))
	}
}

type captureReporter struct {
	mu  sync.Mutex
	evs []core.BlockEvent
}

func (c *captureReporter) ReportBlock(ev core.BlockEvent) {
	c.mu.Lock()
	c.evs = append(c.evs, ev)
	c.mu.Unlock()
}

func (c *captureReporter) events() []core.BlockEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]core.BlockEvent(nil), c.evs...)
}
