package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// dirLogBytes sums the shard log sizes in dir (snapshot/manifest excluded).
func dirLogBytes(t *testing.T, dir string) int64 {
	t.Helper()
	var n int64
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		if filepath.Ext(de.Name()) != ".log" {
			continue
		}
		info, err := de.Info()
		if err != nil {
			t.Fatal(err)
		}
		n += info.Size()
	}
	return n
}

// commitN commits txns ids [from, to) each writing its id's key on shard 0
// with value fmt.Sprint(ts), at commitTS = id.
func commitN(t *testing.T, m *Manager, from, to uint64) {
	t.Helper()
	for id := from; id < to; id++ {
		w := map[int][]KV{0: {kv("t", fmt.Sprintf("r%d", id%8), fmt.Sprintf("v%d", id))}}
		epoch, tk, err := m.Precommit(id, w)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Commit(id, id, epoch, tk); err != nil {
			t.Fatal(err)
		}
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

// snapshotFor builds the per-shard snapshot entries matching commitN's
// state at cut snapTS: key r<k> holds the value of the largest id <= snapTS
// with id%8 == k.
func snapshotFor(shards int, snapTS uint64) [][]SnapshotEntry {
	per := make([][]SnapshotEntry, shards)
	for k := uint64(0); k < 8; k++ {
		var best uint64
		for id := uint64(1); id <= snapTS; id++ {
			if id%8 == k {
				best = id
			}
		}
		if best == 0 {
			continue
		}
		per[0] = append(per[0], SnapshotEntry{
			Key:      core.Key{Table: "t", Row: fmt.Sprintf("r%d", k)},
			Value:    []byte(fmt.Sprintf("v%d", best)),
			CommitTS: best,
		})
	}
	return per
}

func TestCheckpointCompactsAndBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	m := open(t, dir, 2, true)
	commitN(t, m, 1, 101)
	sizeBefore := dirLogBytes(t, dir)

	res, err := m.Checkpoint(100, snapshotFor(2, 100))
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != 1 || res.SnapshotTS != 100 {
		t.Fatalf("result %+v", res)
	}
	if res.TruncatedBytes() == 0 {
		t.Fatalf("compaction dropped nothing: %+v", res)
	}
	if got := dirLogBytes(t, dir); got >= sizeBefore {
		t.Fatalf("log did not shrink: before=%d after=%d", sizeBefore, got)
	}

	// A small tail after the checkpoint.
	commitN(t, m, 101, 106)
	m.Close()

	st, err := Recover(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.SnapshotTS != 100 {
		t.Fatalf("snapshotTS %d", st.SnapshotTS)
	}
	if st.SnapshotKeys != 8 {
		t.Fatalf("snapshot keys %d", st.SnapshotKeys)
	}
	// Only the 5 tail transactions replay: 5 precommits + 5 commits.
	if st.Replayed != 10 {
		t.Fatalf("replayed %d records, want 10 (tail only)", st.Replayed)
	}
	if st.MaxTS != 105 {
		t.Fatalf("maxTS %d", st.MaxTS)
	}
	got := map[string]string{}
	for _, w := range st.Writes {
		got[w.Key.Row] = string(w.Value)
	}
	// Every key's latest write must survive: r0..r7 written last by ids
	// 96..105 (id%8 picks the row).
	for k := 0; k < 8; k++ {
		var want uint64
		for id := uint64(1); id <= 105; id++ {
			if int(id%8) == k {
				want = id
			}
		}
		if got[fmt.Sprintf("r%d", k)] != fmt.Sprintf("v%d", want) {
			t.Fatalf("r%d = %q, want v%d (all: %v)", k, got[fmt.Sprintf("r%d", k)], want, got)
		}
	}
}

func TestRepeatedCheckpointsKeepLogBounded(t *testing.T) {
	dir := t.TempDir()
	m := open(t, dir, 2, true)
	var firstRound int64
	var id uint64 = 1
	for round := 0; round < 5; round++ {
		commitN(t, m, id, id+60)
		id += 60
		if _, err := m.Checkpoint(id-1, snapshotFor(2, id-1)); err != nil {
			t.Fatal(err)
		}
		size := dirLogBytes(t, dir)
		if round == 0 {
			firstRound = size
			continue
		}
		// Bounded: the compacted log must not accumulate history across
		// rounds (generous 3x slack for marker/epoch bookkeeping).
		if size > 3*firstRound+4096 {
			t.Fatalf("round %d: log grew to %d bytes (first round %d)", round, size, firstRound)
		}
	}
	m.Close()
	st, err := Recover(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed != 0 {
		t.Fatalf("replayed %d records after a clean final checkpoint", st.Replayed)
	}
	if st.SnapshotTS != id-1 {
		t.Fatalf("snapshotTS %d want %d", st.SnapshotTS, id-1)
	}
}

func TestCheckpointIDResumesAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	m := open(t, dir, 1, true)
	commitN(t, m, 1, 9)
	if res, err := m.Checkpoint(8, snapshotFor(1, 8)); err != nil || res.ID != 1 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	m.Close()

	m2 := open(t, dir, 1, true)
	commitN(t, m2, 9, 17)
	res, err := m2.Checkpoint(16, snapshotFor(1, 16))
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != 2 {
		t.Fatalf("checkpoint id %d after reopen, want 2", res.ID)
	}
	m2.Close()

	st, err := Recover(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.SnapshotTS != 16 || st.Replayed != 0 {
		t.Fatalf("snapshotTS=%d replayed=%d", st.SnapshotTS, st.Replayed)
	}
}

func TestRecoveryIgnoresUnpublishedSnapshots(t *testing.T) {
	dir := t.TempDir()
	m := open(t, dir, 1, true)
	commitN(t, m, 1, 9)
	// Snapshot files written but no manifest: the checkpoint never
	// committed, so recovery must fall back to full replay.
	if _, err := writeSnapshot(dir, 1, 0, 8, snapshotFor(1, 8)[0]); err != nil {
		t.Fatal(err)
	}
	m.Close()
	st, err := Recover(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.SnapshotTS != 0 || st.SnapshotKeys != 0 {
		t.Fatalf("unpublished snapshot used: %+v", st)
	}
	if st.Committed != 8 {
		t.Fatalf("committed %d", st.Committed)
	}
}

// TestCompactionReclaimsAbortedPrecommits: a transaction force-aborted
// after staging precommits leaves commit-less records; the abort marker
// lets compaction drop them instead of carrying them across every
// checkpoint forever.
func TestCompactionReclaimsAbortedPrecommits(t *testing.T) {
	dir := t.TempDir()
	m := open(t, dir, 2, true)
	// Orphaned precommit on both shards, then the abort marker.
	_, tk, err := m.Precommit(99, map[int][]KV{
		0: {kv("t", "x", "orphan")},
		1: {kv("t", "y", "orphan")},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = tk // the commit slot never completes; nothing waits on it
	m.Abort(99, []int{0, 1})
	commitN(t, m, 1, 9)
	if _, err := m.Checkpoint(8, snapshotFor(2, 8)); err != nil {
		t.Fatal(err)
	}
	// The orphan must be gone from the logs: recovery sees neither a
	// discarded transaction nor any tail records.
	m.Close()
	st, err := Recover(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Discarded != 0 || st.Replayed != 0 {
		t.Fatalf("orphaned precommit survived compaction: discarded=%d replayed=%d", st.Discarded, st.Replayed)
	}
	for _, w := range st.Writes {
		if string(w.Value) == "orphan" {
			t.Fatalf("aborted write recovered: %+v", w)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := []SnapshotEntry{
		{Key: core.Key{Table: "acct", Row: "alice"}, Value: []byte("100"), CommitTS: 7},
		{Key: core.Key{Table: "acct", Row: ""}, Value: nil, CommitTS: 9},
	}
	if _, err := writeSnapshot(dir, 3, 1, 11, in); err != nil {
		t.Fatal(err)
	}
	ts, out, err := readSnapshot(dir, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ts != 11 || len(out) != 2 {
		t.Fatalf("ts=%d out=%v", ts, out)
	}
	if out[0].Key != in[0].Key || string(out[0].Value) != "100" || out[0].CommitTS != 7 {
		t.Fatalf("%+v", out[0])
	}
	if out[1].Key != in[1].Key || len(out[1].Value) != 0 || out[1].CommitTS != 9 {
		t.Fatalf("%+v", out[1])
	}
}
