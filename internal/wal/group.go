package wal

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/kvstore"
)

func appendU32(b []byte, v uint32) []byte {
	var u [4]byte
	binary.LittleEndian.PutUint32(u[:], v)
	return append(b, u[:]...)
}

func u32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }

// Record kinds inside the pipeline. Seals and checkpoint markers never reach
// the log as batch entries; a seal instructs the appender to flush and
// advance the shard's epoch marker, a checkpoint marker to persist the
// shard's checkpoint frontier.
const (
	recSeal       byte = 0 // no payload; epoch = the GCP epoch to seal
	recPrecommit  byte = 1 // payload = encodePrecommit(...)
	recCommit     byte = 2 // payload = 24 bytes: txnID, commitTS, epoch
	recCheckpoint byte = 3 // payload = 16 bytes: checkpoint id, snapshot TS
	recAbort      byte = 4 // payload = 8 bytes: txnID (commit will never come)
)

// Ticket tracks one transaction's log records through the group-commit
// pipeline. It completes once every enqueued record (the precommit record
// on each participating data server plus the coordinator's commit record)
// has been appended — and, under SyncCommit, flushed. With asynchronous
// durability nothing waits on a ticket: commit notification stays decoupled
// from durable notification (§4.5.4), and WaitDurable remains the durable
// notification.
type Ticket struct {
	remaining atomic.Int32
	done      chan struct{}
	errp      atomic.Pointer[error]
}

func newTicket(n int32) *Ticket {
	tk := &Ticket{done: make(chan struct{})}
	tk.remaining.Store(n)
	return tk
}

// complete marks one of the ticket's records as appended. The first error
// wins; the done channel closes when all records are in.
func (tk *Ticket) complete(err error) {
	if err != nil {
		tk.errp.CompareAndSwap(nil, &err)
	}
	if tk.remaining.Add(-1) == 0 {
		close(tk.done)
	}
}

// Done returns a channel closed when every record has been appended (and
// flushed, under SyncCommit).
func (tk *Ticket) Done() <-chan struct{} { return tk.done }

// Wait blocks until the ticket completes and returns the first append error.
func (tk *Ticket) Wait() error {
	<-tk.done
	return tk.Err()
}

// Err returns the first append error observed so far (non-blocking).
func (tk *Ticket) Err() error {
	if p := tk.errp.Load(); p != nil {
		return *p
	}
	return nil
}

// appendReq is one record handed to a per-shard appender.
type appendReq struct {
	kind    byte
	payload []byte
	epoch   uint64
	tk      *Ticket
}

// appender is one data server's log appender: it drains its queue,
// coalesces everything waiting into a single batch record, appends it with
// one Set and — under SyncCommit — one fsync shared by every waiter in the
// batch (leader/follower group commit; the "leader" is the appender
// goroutine, committers are all followers).
type appender struct {
	m      *Manager
	shard  int
	st     *kvstore.Store
	ch     chan appendReq
	seq    uint64
	marker uint64 // newest epoch marker written to this shard's log
	exited chan struct{}
}

func newAppender(m *Manager, shard int, st *kvstore.Store) *appender {
	return &appender{
		m:      m,
		shard:  shard,
		st:     st,
		ch:     make(chan appendReq, 4096),
		exited: make(chan struct{}),
	}
}

// maxBatchBytes bounds one coalesced batch record's payload bytes, well
// under the kvstore replay cap (64MiB per value) — a batch value crossing
// that cap would be treated as a torn tail at recovery and silently
// discard acknowledged commits.
const maxBatchBytes = 8 << 20

// run is the appender loop. Batching is "natural": while one batch is being
// appended (and fsynced), new requests pile up in the channel; the next
// iteration takes them all, bounded by MaxBatch records and maxBatchBytes
// payload. MaxDelay (optional) additionally holds a batch open to
// accumulate followers — unless the batch holds a seal, which demands an
// immediate flush. The loop exits when the channel is closed and drained.
func (a *appender) run() {
	defer close(a.exited)
	var buf []appendReq
	for {
		req, ok := <-a.ch
		if !ok {
			return
		}
		batch := append(buf[:0], req)
		bytes := len(req.payload)
		hasSeal := req.kind == recSeal
		closed := false
	drain:
		for len(batch) < a.m.maxBatch && bytes < maxBatchBytes {
			select {
			case r, ok := <-a.ch:
				if !ok {
					closed = true
					break drain
				}
				batch = append(batch, r)
				bytes += len(r.payload)
				hasSeal = hasSeal || r.kind == recSeal
			default:
				break drain
			}
		}
		if d := a.m.maxDelay; d > 0 && !closed && !hasSeal &&
			len(batch) < a.m.maxBatch && bytes < maxBatchBytes {
			timer := time.NewTimer(d)
		linger:
			for len(batch) < a.m.maxBatch && bytes < maxBatchBytes {
				select {
				case r, ok := <-a.ch:
					if !ok {
						closed = true
						break linger
					}
					batch = append(batch, r)
					bytes += len(r.payload)
					if r.kind == recSeal {
						// Seals flush immediately.
						break linger
					}
				case <-timer.C:
					break linger
				}
			}
			timer.Stop()
		}
		a.flush(batch)
		buf = batch
		if closed {
			return
		}
	}
}

// flush appends the batch's records as one coalesced batch record, advances
// the shard's epoch marker when required, fsyncs once for the whole batch,
// and completes every ticket.
//
// The appender is the sole writer of its shard's epoch marker, so the
// marker is monotone by construction:
//
//   - a seal request (the GCP epoch tick, §4.5.4) flushes everything
//     appended so far and advances the marker to the sealed epoch — FIFO
//     order guarantees every record staged while that epoch was open
//     precedes the seal;
//   - under SyncCommit every batch carries its records' epochs forward in
//     the same fsync, so an acknowledged commit is recoverable immediately
//     rather than at the next epoch tick. A record of the same epoch still
//     queued at crash time is simply absent and its transaction is
//     discarded by the missing-record rules — and its committer was never
//     acknowledged.
func (a *appender) flush(batch []appendReq) {
	var records, seals, cks int
	var maxEpoch uint64
	for _, r := range batch {
		switch r.kind {
		case recSeal:
			seals++
			if r.epoch > maxEpoch {
				maxEpoch = r.epoch
			}
		case recCheckpoint:
			cks++
		default:
			records++
			if a.m.opts.SyncCommit && r.epoch > maxEpoch {
				maxEpoch = r.epoch
			}
		}
	}
	var err error
	start := time.Now()
	if records > 0 {
		key := fmt.Sprintf("b/%d/%d", a.shard, a.seq)
		a.seq++
		err = a.st.Set(key, encodeBatch(batch, records))
		a.m.hook("append")
	}
	if err == nil && maxEpoch > a.marker {
		// The marker is appended after the records it covers, so a torn
		// tail can lose the marker (conservative) but never persist a
		// marker ahead of its records.
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], maxEpoch)
		if err = a.st.Set(fmt.Sprintf("e/%d", a.shard), buf[:]); err == nil {
			a.marker = maxEpoch
		}
	}
	if err == nil && cks > 0 {
		// Checkpoint frontier markers are appended after every record
		// staged before them (FIFO), and the sync below makes the whole
		// log prefix durable with the marker — the frontier can never
		// claim coverage of records that were lost with the buffer.
		for _, r := range batch {
			if r.kind != recCheckpoint {
				continue
			}
			if err = a.st.Set(fmt.Sprintf("ck/%d", a.shard), r.payload); err != nil {
				break
			}
		}
	}
	if err == nil && (seals > 0 || cks > 0 || (records > 0 && a.m.opts.SyncCommit)) {
		err = a.st.Sync()
		if seals > 0 {
			a.m.hook("seal")
		} else {
			a.m.hook("flush")
		}
	}
	if records > 0 {
		a.m.observe(records, time.Since(start), err)
	}
	for _, r := range batch {
		r.tk.complete(err)
	}
}

// encodeBatch packs the batch's payload-bearing records into one value:
//
//	u32 count | repeat: u8 kind, u32 len, payload
//
// batchEntryKind reports whether a pipeline record kind is persisted as a
// coalesced batch entry (seals and checkpoint markers are control requests,
// not log content).
func batchEntryKind(k byte) bool {
	return k == recPrecommit || k == recCommit || k == recAbort
}

func encodeBatch(batch []appendReq, records int) []byte {
	size := 4
	for _, r := range batch {
		if batchEntryKind(r.kind) {
			size += 1 + 4 + len(r.payload)
		}
	}
	buf := make([]byte, 0, size)
	buf = appendU32(buf, uint32(records))
	for _, r := range batch {
		if !batchEntryKind(r.kind) {
			continue
		}
		buf = append(buf, r.kind)
		buf = appendU32(buf, uint32(len(r.payload)))
		buf = append(buf, r.payload...)
	}
	return buf
}

// encodeBatchEntries re-packs surviving batch entries after compaction
// filtered out entries belonging to checkpoint-covered transactions.
func encodeBatchEntries(entries []batchEntry) []byte {
	size := 4
	for _, e := range entries {
		size += 1 + 4 + len(e.payload)
	}
	buf := make([]byte, 0, size)
	buf = appendU32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = append(buf, e.kind)
		buf = appendU32(buf, uint32(len(e.payload)))
		buf = append(buf, e.payload...)
	}
	return buf
}

type batchEntry struct {
	kind    byte
	payload []byte
}

// decodeBatch unpacks a coalesced batch record; recovery replays each entry
// as if it were an individual precommit/commit record.
func decodeBatch(buf []byte) ([]batchEntry, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("wal: truncated batch record")
	}
	count := int(u32(buf))
	off := 4
	out := make([]batchEntry, 0, count)
	for i := 0; i < count; i++ {
		if off+5 > len(buf) {
			return nil, fmt.Errorf("wal: truncated batch entry")
		}
		kind := buf[off]
		n := int(u32(buf[off+1:]))
		off += 5
		if off+n > len(buf) {
			return nil, fmt.Errorf("wal: truncated batch payload")
		}
		out = append(out, batchEntry{kind: kind, payload: buf[off : off+n]})
		off += n
	}
	return out, nil
}
