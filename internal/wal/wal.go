// Package wal implements Tebaldi's durability module (§4.5.4): write-ahead
// precommit logs per data server, a two-phase-commit shaped protocol, global
// checkpoint (GCP) epochs, asynchronous flushing, and the three-step
// recovery procedure.
//
// Protocol summary (mirroring the paper):
//
//   - During commit, each participating data server appends a precommit
//     record carrying the transaction's writes on that server, the number of
//     participating servers, and the server's current GCP epoch id.
//   - The coordinator appends a commit record (transaction id, commit
//     timestamp, global epoch id = max of participant epochs).
//   - With asynchronous flushing, commit notification is decoupled from
//     durable notification: logs are batched and flushed in GCP epochs;
//     committed-but-not-yet-durable transactions are indistinguishable from
//     durable ones to the CC mechanisms, so durability never blocks
//     concurrency control.
//   - Recovery retrieves the logs, discards transactions with missing
//     precommit records or with an epoch beyond a server's durable
//     frontier, and reconstructs the latest committed version of every key;
//     CC-internal state is rebuilt implicitly (the fresh CC tree treats
//     recovered data as committed history).
//
// Persistence is outsourced to internal/kvstore through a key-value
// interface, as the paper outsources it to Redis/RocksDB.
package wal

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/kvstore"
)

// Options configure the durability module.
type Options struct {
	// Dir is the directory holding per-data-server log stores.
	Dir string
	// Shards is the number of data servers.
	Shards int
	// EpochInterval is the GCP epoch length (the paper uses 1s; tests and
	// benchmarks use shorter epochs).
	EpochInterval time.Duration
	// SyncCommit forces a flush before commit returns (durability
	// notification == commit notification). Default is asynchronous
	// flushing.
	SyncCommit bool
}

// KV is one logged write.
type KV struct {
	Key   core.Key
	Value []byte
}

// Manager is the durability module.
type Manager struct {
	opts   Options
	stores []*kvstore.Store
	seq    atomic.Uint64
	epoch  atomic.Uint64

	mu           sync.Mutex
	durableEpoch uint64
	durableCond  *sync.Cond

	stop chan struct{}
	done chan struct{}
}

// Open creates or reopens the durability module.
func Open(opts Options) (*Manager, error) {
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	if opts.EpochInterval <= 0 {
		opts.EpochInterval = time.Second
	}
	m := &Manager{opts: opts, stop: make(chan struct{}), done: make(chan struct{})}
	m.durableCond = sync.NewCond(&m.mu)
	for i := 0; i < opts.Shards; i++ {
		st, err := kvstore.Open(filepath.Join(opts.Dir, fmt.Sprintf("ds-%03d.log", i)))
		if err != nil {
			for _, s := range m.stores {
				s.Close()
			}
			return nil, err
		}
		m.stores = append(m.stores, st)
	}
	m.epoch.Store(1)
	go m.flusher()
	return m, nil
}

// Epoch returns the current GCP epoch id.
func (m *Manager) Epoch() uint64 { return m.epoch.Load() }

// DurableEpoch returns the newest fully persisted epoch.
func (m *Manager) DurableEpoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.durableEpoch
}

// Precommit appends a precommit record on every participating data server
// and returns the transaction's global epoch id (max of participant epochs —
// with one process-wide epoch counter they coincide). writesByShard maps
// data server index -> the transaction's writes owned by that server.
func (m *Manager) Precommit(txnID uint64, writesByShard map[int][]KV) (uint64, error) {
	epoch := m.epoch.Load()
	n := len(writesByShard)
	for shard, kvs := range writesByShard {
		rec := encodePrecommit(txnID, epoch, n, kvs)
		key := fmt.Sprintf("p/%d/%d", txnID, shard)
		if err := m.stores[shard].Set(key, rec); err != nil {
			return 0, err
		}
	}
	return epoch, nil
}

// Commit appends the coordinator's commit record (each transaction's
// coordinator log lives on the data server picked by its id, spreading the
// append load). With SyncCommit it blocks until the record is durable.
func (m *Manager) Commit(txnID, commitTS, epoch uint64) error {
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint64(rec[0:8], commitTS)
	binary.LittleEndian.PutUint64(rec[8:16], epoch)
	shard := int(txnID) % len(m.stores)
	if err := m.stores[shard].Set(fmt.Sprintf("c/%d", txnID), rec); err != nil {
		return err
	}
	if m.opts.SyncCommit {
		return m.flushEpoch()
	}
	return nil
}

// WaitDurable blocks until epoch is fully persisted (the durable
// notification of §4.5.4).
func (m *Manager) WaitDurable(epoch uint64) {
	m.mu.Lock()
	for m.durableEpoch < epoch {
		m.durableCond.Wait()
	}
	m.mu.Unlock()
}

// flusher advances GCP epochs: flush + fsync all stores, persist the epoch
// marker, publish the durable frontier.
func (m *Manager) flusher() {
	defer close(m.done)
	t := time.NewTicker(m.opts.EpochInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			m.flushEpoch()
			return
		case <-t.C:
			m.flushEpoch()
		}
	}
}

func (m *Manager) flushEpoch() error {
	cur := m.epoch.Add(1) - 1 // seal epoch `cur`, open the next
	for i, st := range m.stores {
		if err := st.Sync(); err != nil {
			return err
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], cur)
		if err := st.Set(fmt.Sprintf("e/%d", i), buf[:]); err != nil {
			return err
		}
		if err := st.Sync(); err != nil {
			return err
		}
	}
	m.mu.Lock()
	if cur > m.durableEpoch {
		m.durableEpoch = cur
	}
	m.durableCond.Broadcast()
	m.mu.Unlock()
	return nil
}

// Close flushes outstanding records and closes the stores.
func (m *Manager) Close() error {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	<-m.done
	var first error
	for _, st := range m.stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func encodePrecommit(txnID, epoch uint64, nShards int, kvs []KV) []byte {
	size := 8 + 8 + 4 + 4
	for _, kv := range kvs {
		size += 4 + len(kv.Key.Table) + 4 + len(kv.Key.Row) + 4 + len(kv.Value)
	}
	buf := make([]byte, 0, size)
	var u64 [8]byte
	var u32 [4]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(u64[:], v)
		buf = append(buf, u64[:]...)
	}
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		buf = append(buf, u32[:]...)
	}
	putBytes := func(b []byte) {
		put32(uint32(len(b)))
		buf = append(buf, b...)
	}
	put64(txnID)
	put64(epoch)
	put32(uint32(nShards))
	put32(uint32(len(kvs)))
	for _, kv := range kvs {
		putBytes([]byte(kv.Key.Table))
		putBytes([]byte(kv.Key.Row))
		putBytes(kv.Value)
	}
	return buf
}

type precommit struct {
	txnID   uint64
	epoch   uint64
	nShards int
	writes  []KV
}

func decodePrecommit(buf []byte) (*precommit, error) {
	p := &precommit{}
	off := 0
	get64 := func() (uint64, bool) {
		if off+8 > len(buf) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(buf[off:])
		off += 8
		return v, true
	}
	get32 := func() (uint32, bool) {
		if off+4 > len(buf) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		return v, true
	}
	getBytes := func() ([]byte, bool) {
		n, ok := get32()
		if !ok || off+int(n) > len(buf) {
			return nil, false
		}
		b := buf[off : off+int(n)]
		off += int(n)
		return b, true
	}
	var ok bool
	if p.txnID, ok = get64(); !ok {
		return nil, fmt.Errorf("wal: truncated precommit")
	}
	if p.epoch, ok = get64(); !ok {
		return nil, fmt.Errorf("wal: truncated precommit")
	}
	ns, ok := get32()
	if !ok {
		return nil, fmt.Errorf("wal: truncated precommit")
	}
	p.nShards = int(ns)
	nw, ok := get32()
	if !ok {
		return nil, fmt.Errorf("wal: truncated precommit")
	}
	for i := 0; i < int(nw); i++ {
		tbl, ok1 := getBytes()
		row, ok2 := getBytes()
		val, ok3 := getBytes()
		if !ok1 || !ok2 || !ok3 {
			return nil, fmt.Errorf("wal: truncated precommit write")
		}
		v := make([]byte, len(val))
		copy(v, val)
		p.writes = append(p.writes, KV{Key: core.Key{Table: string(tbl), Row: string(row)}, Value: v})
	}
	return p, nil
}
