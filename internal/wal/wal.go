// Package wal implements Tebaldi's durability module (§4.5.4): write-ahead
// precommit logs per data server, a two-phase-commit shaped protocol, global
// checkpoint (GCP) epochs, asynchronous flushing, and the three-step
// recovery procedure.
//
// Protocol summary (mirroring the paper):
//
//   - During commit, each participating data server appends a precommit
//     record carrying the transaction's writes on that server, the number of
//     participating servers, and the server's current GCP epoch id.
//   - The coordinator appends a commit record (transaction id, commit
//     timestamp, global epoch id = max of participant epochs).
//   - With asynchronous flushing, commit notification is decoupled from
//     durable notification: logs are batched and flushed in GCP epochs;
//     committed-but-not-yet-durable transactions are indistinguishable from
//     durable ones to the CC mechanisms, so durability never blocks
//     concurrency control.
//   - Appends go through a per-data-server group-commit pipeline
//     (group.go): concurrent committers' precommit and commit records are
//     coalesced into one batch record per appender turn, written with a
//     single Set and — under SyncCommit — a single fsync shared by every
//     committer in the batch, so the log never throttles concurrency
//     control even when commit notification is coupled to durability.
//   - Recovery retrieves the logs, replays both coalesced batch records
//     and individual records, discards transactions with missing
//     precommit records or with an epoch beyond a server's durable
//     frontier, and reconstructs the latest committed version of every key;
//     CC-internal state is rebuilt implicitly (the fresh CC tree treats
//     recovered data as committed history).
//
// Persistence is outsourced to internal/kvstore through a key-value
// interface, as the paper outsources it to Redis/RocksDB.
package wal

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/kvstore"
)

// Options configure the durability module.
type Options struct {
	// Dir is the directory holding per-data-server log stores.
	Dir string
	// Shards is the number of data servers.
	Shards int
	// EpochInterval is the GCP epoch length (the paper uses 1s; tests and
	// benchmarks use shorter epochs).
	EpochInterval time.Duration
	// SyncCommit forces a flush before commit returns (durability
	// notification == commit notification). Default is asynchronous
	// flushing. Under the group-commit pipeline a synchronous commit
	// waits for the batch its records were coalesced into — one fsync
	// serves every committer in the batch.
	SyncCommit bool
	// MaxBatch bounds how many records one appender coalesces into a
	// single batch append (default 256).
	MaxBatch int
	// MaxDelay, when > 0, holds a forming batch open to accumulate more
	// committers before flushing. Default 0: batching is purely natural
	// (whatever queued while the previous batch was being flushed).
	MaxDelay time.Duration
	// Observer, when non-nil, is called after every coalesced batch
	// append with the number of records, the append(+flush) latency and
	// any error. The engine wires this to its batch-size / flush-latency
	// counters.
	Observer func(records int, d time.Duration, err error)
	// CrashHook, when non-nil, is invoked at every durability-critical
	// boundary (append, flush, seal, checkpoint snapshot/frontier/manifest
	// and the compaction write/sync/rename inside kvstore). Crash-point
	// torture tests copy the log directory inside the hook — the copy is
	// exactly the state a process kill at that boundary would leave — and
	// assert recovery from it. Nil in production.
	CrashHook func(point string)
}

// KV is one logged write.
type KV struct {
	Key   core.Key
	Value []byte
}

// Manager is the durability module. Appends go through per-data-server
// group-commit appenders (group.go): concurrent committers' precommit and
// commit records are coalesced into one batch record per shard, appended
// and flushed together.
type Manager struct {
	opts      Options
	stores    []*kvstore.Store
	appenders []*appender
	maxBatch  int
	maxDelay  time.Duration
	seq       atomic.Uint64
	epoch     atomic.Uint64

	mu           sync.Mutex
	durableEpoch uint64
	durableCond  *sync.Cond

	// closeMu serializes pipeline submission against epoch seals and
	// Close. Stagers (Precommit/Commit) hold the read side across the
	// epoch read AND the channel sends, so a record carrying epoch e is
	// always in its appender's queue before flushEpoch — which holds the
	// write side while advancing the epoch and enqueueing the seal
	// requests — can seal e; FIFO then guarantees the record is flushed
	// before the durable frontier covers it. Close also holds the write
	// side while marking the pipeline closed and closing the appender
	// queues; after close, submissions fall back to direct synchronous
	// appends. Checkpoint stages frontier markers through the pipeline
	// while holding ckMu, so the read side nests inside it.
	//
	// tebaldi:locks after wal.Manager.ckMu
	closeMu sync.RWMutex
	closed  bool

	// ckMu serializes checkpoints; ckSeq is the last completed checkpoint
	// id (resumed from the manifest on reopen).
	ckMu  sync.Mutex
	ckSeq uint64

	stop chan struct{}
	done chan struct{}
}

// Open creates or reopens the durability module.
func Open(opts Options) (*Manager, error) {
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	if opts.EpochInterval <= 0 {
		opts.EpochInterval = time.Second
	}
	m := &Manager{opts: opts, stop: make(chan struct{}), done: make(chan struct{})}
	m.maxBatch = opts.MaxBatch
	if m.maxBatch <= 0 {
		m.maxBatch = 256
	}
	m.maxDelay = opts.MaxDelay
	m.durableCond = sync.NewCond(&m.mu)
	for i := 0; i < opts.Shards; i++ {
		st, err := kvstore.Open(filepath.Join(opts.Dir, fmt.Sprintf("ds-%03d.log", i)))
		if err != nil {
			for _, s := range m.stores {
				//lint:allow syncerr -- best-effort teardown of untouched stores while Open fails loudly with the shard error
				s.Close()
			}
			return nil, err
		}
		if opts.CrashHook != nil {
			st.SetCrashHook(opts.CrashHook)
		}
		m.stores = append(m.stores, st)
	}
	man, err := readManifest(opts.Dir)
	if err != nil {
		// A malformed manifest means outside interference; resuming with
		// ckSeq 0 would republish low checkpoint ids over newer snapshot
		// files. Fail loudly, like Recover does.
		for _, s := range m.stores {
			//lint:allow syncerr -- best-effort teardown; the malformed-manifest error is the one the caller must see
			s.Close()
		}
		return nil, err
	}
	if man != nil {
		m.ckSeq = man.ID
	}
	for i, st := range m.stores {
		a := newAppender(m, i, st)
		if b := st.Get(fmt.Sprintf("e/%d", i)); len(b) == 8 {
			// Resume monotone from the reopened log's marker.
			a.marker = binary.LittleEndian.Uint64(b)
		}
		// Resume the batch sequence past every existing batch record:
		// b/<shard>/<seq> keys are latest-wins in the kvstore, so a
		// restarted counter would silently overwrite earlier batches
		// and lose their transactions at recovery.
		prefix := fmt.Sprintf("b/%d/", i)
		st.ForEach(func(key string, _ []byte) error {
			if strings.HasPrefix(key, prefix) {
				if seq, err := strconv.ParseUint(key[len(prefix):], 10, 64); err == nil && seq >= a.seq {
					a.seq = seq + 1
				}
			}
			return nil
		})
		m.appenders = append(m.appenders, a)
		go a.run()
	}
	m.epoch.Store(1)
	go m.flusher()
	return m, nil
}

// Synchronous reports whether commits wait for their flush.
func (m *Manager) Synchronous() bool { return m.opts.SyncCommit }

func (m *Manager) observe(records int, d time.Duration, err error) {
	if m.opts.Observer != nil {
		m.opts.Observer(records, d, err)
	}
}

func (m *Manager) hook(point string) {
	if m.opts.CrashHook != nil {
		m.opts.CrashHook(point)
	}
}

// Epoch returns the current GCP epoch id.
func (m *Manager) Epoch() uint64 { return m.epoch.Load() }

// DurableEpoch returns the newest fully persisted epoch.
func (m *Manager) DurableEpoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.durableEpoch
}

// Precommit stages a precommit record on every participating data server's
// appender and returns the transaction's global epoch id (max of
// participant epochs — with one process-wide epoch counter they coincide)
// plus the Ticket tracking the transaction's records through the pipeline.
// writesByShard maps data server index -> the transaction's writes owned by
// that server. The ticket is sized for the precommit records plus the
// coordinator commit record that Commit enqueues later.
func (m *Manager) Precommit(txnID uint64, writesByShard map[int][]KV) (uint64, *Ticket, error) {
	n := len(writesByShard)
	tk := newTicket(int32(n) + 1)
	m.closeMu.RLock()
	// The epoch MUST be read under the stage/seal lock: otherwise a seal
	// of this epoch could slip between the read and the sends, and the
	// records would miss the flush their epoch promises.
	epoch := m.epoch.Load()
	if m.closed {
		m.closeMu.RUnlock()
		// Pipeline shut down (close racing a late committer): append
		// directly, as the pre-pipeline protocol did.
		var first error
		done := 0
		for shard, kvs := range writesByShard {
			rec := encodePrecommit(txnID, epoch, n, kvs)
			err := m.stores[shard].Set(fmt.Sprintf("p/%d/%d", txnID, shard), rec)
			tk.complete(err)
			done++
			if err != nil && first == nil {
				first = err
			}
		}
		if first != nil {
			// The caller aborts; drain the ticket's remaining slots
			// (unwritten shards + the never-staged commit record) so
			// Wait/Done can never hang on this ticket.
			for ; done < n+1; done++ {
				tk.complete(first)
			}
			return 0, tk, first
		}
		return epoch, tk, nil
	}
	for shard, kvs := range writesByShard {
		m.appenders[shard].ch <- appendReq{
			kind:    recPrecommit,
			payload: encodePrecommit(txnID, epoch, n, kvs),
			epoch:   epoch,
			tk:      tk,
		}
	}
	m.closeMu.RUnlock()
	return epoch, tk, nil
}

// Commit stages the coordinator's commit record (each transaction's
// coordinator log lives on the data server picked by its id, spreading the
// append load) on the pipeline and returns without waiting: commit
// notification is decoupled from durable notification (§4.5.4) even under
// SyncCommit, where the caller decides when to block on the ticket — the
// engine releases CC state first, then waits, so the log never throttles
// concurrency control. Ticket.Wait returns once the transaction's whole
// record set — precommit records included, since appenders are FIFO — is
// appended, and flushed under SyncCommit.
func (m *Manager) Commit(txnID, commitTS, epoch uint64, tk *Ticket) error {
	shard := int(txnID) % len(m.stores)
	m.closeMu.RLock()
	// The participant epoch from Precommit may already be sealed by the
	// time the commit record is staged; bump the record to the current
	// epoch (read under the stage/seal lock) so the epoch-frontier rule
	// stays sound — recovery becomes conservative (the transaction is
	// classified into a later, possibly unsealed epoch), never wrong.
	if cur := m.epoch.Load(); cur > epoch {
		epoch = cur
	}
	if m.closed {
		m.closeMu.RUnlock()
		rec := make([]byte, 16)
		binary.LittleEndian.PutUint64(rec[0:8], commitTS)
		binary.LittleEndian.PutUint64(rec[8:16], epoch)
		start := time.Now()
		err := m.stores[shard].Set(fmt.Sprintf("c/%d", txnID), rec)
		if err == nil && m.opts.SyncCommit {
			err = m.syncStores()
		}
		// Route through the observer so fallback appends share the
		// pipeline's accounting (including the error counter).
		m.observe(1, time.Since(start), err)
		tk.complete(err)
		return err
	}
	payload := make([]byte, 24)
	binary.LittleEndian.PutUint64(payload[0:8], txnID)
	binary.LittleEndian.PutUint64(payload[8:16], commitTS)
	binary.LittleEndian.PutUint64(payload[16:24], epoch)
	m.appenders[shard].ch <- appendReq{kind: recCommit, payload: payload, epoch: epoch, tk: tk}
	m.closeMu.RUnlock()
	return nil
}

// Abort stages abort markers on the given data servers for a transaction
// whose precommit records were staged but whose commit record will never be
// (the engine's force-abort between precommit staging and the commit
// point). Recovery discards commit-less transactions either way; the marker
// exists so checkpoint compaction can reclaim the orphaned precommit
// records instead of carrying them forever. Fire-and-forget: nothing waits
// on the staged records.
func (m *Manager) Abort(txnID uint64, shards []int) {
	payload := make([]byte, 8)
	binary.LittleEndian.PutUint64(payload, txnID)
	m.closeMu.RLock()
	epoch := m.epoch.Load()
	if m.closed {
		m.closeMu.RUnlock()
		for _, shard := range shards {
			m.stores[shard].Set(fmt.Sprintf("a/%d/%d", txnID, shard), payload)
		}
		return
	}
	tk := newTicket(int32(len(shards)))
	for _, shard := range shards {
		m.appenders[shard].ch <- appendReq{kind: recAbort, payload: payload, epoch: epoch, tk: tk}
	}
	m.closeMu.RUnlock()
}

// WaitDurable blocks until epoch is fully persisted (the durable
// notification of §4.5.4).
func (m *Manager) WaitDurable(epoch uint64) {
	m.mu.Lock()
	for m.durableEpoch < epoch {
		m.durableCond.Wait()
	}
	m.mu.Unlock()
}

// flusher advances GCP epochs: flush + fsync all stores, persist the epoch
// marker, publish the durable frontier.
func (m *Manager) flusher() {
	defer close(m.done)
	t := time.NewTicker(m.opts.EpochInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			//lint:allow syncerr -- seal failures reach the appenders' Observer (stats.walErrors); the final flush must not block Close
			m.flushEpoch()
			return
		case <-t.C:
			//lint:allow syncerr -- seal failures reach the appenders' Observer (stats.walErrors); the ticker must keep advancing epochs
			m.flushEpoch()
		}
	}
}

// syncStores flushes and fsyncs every store (closed-pipeline fallback).
func (m *Manager) syncStores() error {
	for _, st := range m.stores {
		if err := st.Sync(); err != nil {
			return err
		}
	}
	return nil
}

func (m *Manager) flushEpoch() error {
	// Advance the epoch and enqueue the seals under the write side of
	// the stage/seal lock: stagers read the epoch and send their records
	// under the read side, so every record carrying epoch <= cur is
	// already in its appender's queue (FIFO, ahead of the seal) —
	// otherwise WaitDurable(cur) would lie.
	m.closeMu.Lock()
	cur := m.epoch.Add(1) - 1 // seal epoch `cur`, open the next
	if m.closed {
		m.closeMu.Unlock()
		// Pipeline shut down: seal directly (the appenders have
		// drained and exited).
		for i, st := range m.stores {
			if err := st.Sync(); err != nil {
				return err
			}
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], cur)
			if err := st.Set(fmt.Sprintf("e/%d", i), buf[:]); err != nil {
				return err
			}
			if err := st.Sync(); err != nil {
				return err
			}
		}
	} else {
		tk := newTicket(int32(len(m.appenders)))
		for _, a := range m.appenders {
			a.ch <- appendReq{kind: recSeal, epoch: cur, tk: tk}
		}
		m.closeMu.Unlock()
		// Wait outside the lock: the appenders do the flushing, and
		// stagers must be free to pile the next epoch's records in
		// behind the seals meanwhile.
		if err := tk.Wait(); err != nil {
			return err
		}
	}
	m.mu.Lock()
	if cur > m.durableEpoch {
		m.durableEpoch = cur
	}
	m.durableCond.Broadcast()
	m.mu.Unlock()
	return nil
}

// Close drains the group-commit pipeline, flushes outstanding records and
// closes the stores.
func (m *Manager) Close() error {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	<-m.done // flusher has run the final flushEpoch (incl. barrier)
	m.closeMu.Lock()
	if !m.closed {
		m.closed = true
		for _, a := range m.appenders {
			close(a.ch)
		}
	}
	m.closeMu.Unlock()
	for _, a := range m.appenders {
		<-a.exited
	}
	var first error
	for _, st := range m.stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func encodePrecommit(txnID, epoch uint64, nShards int, kvs []KV) []byte {
	size := 8 + 8 + 4 + 4
	for _, kv := range kvs {
		size += 4 + len(kv.Key.Table) + 4 + len(kv.Key.Row) + 4 + len(kv.Value)
	}
	buf := make([]byte, 0, size)
	var u64 [8]byte
	var u32 [4]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(u64[:], v)
		buf = append(buf, u64[:]...)
	}
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		buf = append(buf, u32[:]...)
	}
	putBytes := func(b []byte) {
		put32(uint32(len(b)))
		buf = append(buf, b...)
	}
	put64(txnID)
	put64(epoch)
	put32(uint32(nShards))
	put32(uint32(len(kvs)))
	for _, kv := range kvs {
		putBytes([]byte(kv.Key.Table))
		putBytes([]byte(kv.Key.Row))
		putBytes(kv.Value)
	}
	return buf
}

type precommit struct {
	txnID   uint64
	epoch   uint64
	nShards int
	writes  []KV
}

func decodePrecommit(buf []byte) (*precommit, error) {
	p := &precommit{}
	off := 0
	get64 := func() (uint64, bool) {
		if off+8 > len(buf) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(buf[off:])
		off += 8
		return v, true
	}
	get32 := func() (uint32, bool) {
		if off+4 > len(buf) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		return v, true
	}
	getBytes := func() ([]byte, bool) {
		n, ok := get32()
		if !ok || off+int(n) > len(buf) {
			return nil, false
		}
		b := buf[off : off+int(n)]
		off += int(n)
		return b, true
	}
	var ok bool
	if p.txnID, ok = get64(); !ok {
		return nil, fmt.Errorf("wal: truncated precommit")
	}
	if p.epoch, ok = get64(); !ok {
		return nil, fmt.Errorf("wal: truncated precommit")
	}
	ns, ok := get32()
	if !ok {
		return nil, fmt.Errorf("wal: truncated precommit")
	}
	p.nShards = int(ns)
	nw, ok := get32()
	if !ok {
		return nil, fmt.Errorf("wal: truncated precommit")
	}
	for i := 0; i < int(nw); i++ {
		tbl, ok1 := getBytes()
		row, ok2 := getBytes()
		val, ok3 := getBytes()
		if !ok1 || !ok2 || !ok3 {
			return nil, fmt.Errorf("wal: truncated precommit write")
		}
		v := make([]byte, len(val))
		copy(v, val)
		p.writes = append(p.writes, KV{Key: core.Key{Table: string(tbl), Row: string(row)}, Value: v})
	}
	return p, nil
}
