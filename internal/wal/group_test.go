package wal

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGroupCommitCoalesces drives many concurrent synchronous committers
// through the pipeline and checks (a) their records were coalesced into
// fewer batch appends than records, and (b) recovery replays every
// transaction out of the batched log.
func TestGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	var batches, records atomic.Uint64
	m, err := Open(Options{
		Dir:           dir,
		Shards:        2,
		EpochInterval: 50 * time.Millisecond,
		SyncCommit:    true,
		Observer: func(n int, d time.Duration, err error) {
			batches.Add(1)
			records.Add(uint64(n))
			if err != nil {
				t.Errorf("batch error: %v", err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			writes := map[int][]KV{
				int(id) % 2: {kv("t", fmt.Sprintf("r%d", id), "v")},
			}
			epoch, tk, err := m.Precommit(id, writes)
			if err != nil {
				t.Error(err)
				return
			}
			if err := m.Commit(id, 100+id, epoch, tk); err != nil {
				t.Error(err)
				return
			}
			if err := tk.Wait(); err != nil {
				t.Error(err)
			}
		}(uint64(i + 1))
	}
	wg.Wait()
	m.Close()

	if got := records.Load(); got != 2*n {
		t.Fatalf("observer saw %d records, want %d", got, 2*n)
	}
	if batches.Load() >= records.Load() {
		t.Fatalf("no coalescing: %d batches for %d records", batches.Load(), records.Load())
	}

	st, err := Recover(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != n {
		t.Fatalf("recovered %d committed txns, want %d (discarded %d)", st.Committed, n, st.Discarded)
	}
	if len(st.Writes) != n {
		t.Fatalf("recovered %d writes, want %d", len(st.Writes), n)
	}
}

// TestEpochBarrierPersistsStagedRecords checks that the GCP epoch flush
// drains the appender queues before publishing the durable frontier: after
// WaitDurable, a recovery from the same directory (simulating a crash — no
// clean Close) must see the transaction.
func TestEpochBarrierPersistsStagedRecords(t *testing.T) {
	dir := t.TempDir()
	m := open(t, dir, 2, false) // async durability
	defer m.Close()

	epoch, tk, err := m.Precommit(9, map[int][]KV{0: {kv("t", "a", "1")}, 1: {kv("t", "b", "2")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(9, 77, epoch, tk); err != nil {
		t.Fatal(err)
	}
	// Async mode: Commit returned without waiting. The durable
	// notification must nonetheless imply the records are on disk.
	m.WaitDurable(epoch)

	st, err := Recover(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 1 {
		t.Fatalf("durable epoch published but txn not recoverable: committed=%d discarded=%d",
			st.Committed, st.Discarded)
	}
}

// TestBatchSeqResumesAcrossReopen: batch record keys are latest-wins in
// the kvstore, so a reopened Manager must continue the per-shard batch
// sequence where the previous incarnation stopped — a restarted counter
// would overwrite old batches and silently lose their transactions.
func TestBatchSeqResumesAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	m := open(t, dir, 1, true)
	e1, tk1, err := m.Precommit(1, map[int][]KV{0: {kv("t", "first", "a")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(1, 10, e1, tk1); err != nil {
		t.Fatal(err)
	}
	if err := tk1.Wait(); err != nil {
		t.Fatal(err)
	}
	m.Close()

	m2 := open(t, dir, 1, true)
	e2, tk2, err := m2.Precommit(2, map[int][]KV{0: {kv("t", "second", "b")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Commit(2, 20, e2, tk2); err != nil {
		t.Fatal(err)
	}
	if err := tk2.Wait(); err != nil {
		t.Fatal(err)
	}
	m2.Close()

	st, err := Recover(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 2 {
		t.Fatalf("reopen overwrote earlier batches: committed=%d discarded=%d", st.Committed, st.Discarded)
	}
	got := map[string]string{}
	for _, w := range st.Writes {
		got[w.Key.Row] = string(w.Value)
	}
	if got["first"] != "a" || got["second"] != "b" {
		t.Fatalf("writes %v", got)
	}
}

// TestSyncCommitRecoverableBeforeEpochTick: an acknowledged synchronous
// commit must survive a crash even if no GCP epoch tick ever sealed its
// epoch — the batch flush carries the shard markers forward itself. (A
// regression here means sync commits are silently discarded by recovery's
// epoch-frontier rule until the next tick.)
func TestSyncCommitRecoverableBeforeEpochTick(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Options{Dir: dir, Shards: 3, EpochInterval: time.Hour, SyncCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	epoch, tk, err := m.Precommit(11, map[int][]KV{
		0: {kv("t", "a", "1")},
		2: {kv("t", "b", "2")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(11, 400, epoch, tk); err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	// Crash now: no Close, no epoch tick — recover from the raw files.
	st, err := Recover(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 1 {
		t.Fatalf("acknowledged sync commit lost: committed=%d discarded=%d", st.Committed, st.Discarded)
	}
}

// TestMixedLegacyAndBatchedRecords verifies recovery replays individual
// p/ and c/ records alongside coalesced b/ batch records.
func TestMixedLegacyAndBatchedRecords(t *testing.T) {
	dir := t.TempDir()
	m := open(t, dir, 1, true)
	// Legacy-format transaction written directly to the store.
	rec := encodePrecommit(1, m.Epoch(), 1, []KV{kv("t", "legacy", "old")})
	if err := m.stores[0].Set("p/1/0", rec); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(1, 10, m.Epoch(), newTicket(1)); err != nil {
		t.Fatal(err)
	}
	// Pipeline transaction.
	epoch, tk, err := m.Precommit(2, map[int][]KV{0: {kv("t", "batched", "new")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(2, 20, epoch, tk); err != nil {
		t.Fatal(err)
	}
	m.Close()

	st, err := Recover(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 2 {
		t.Fatalf("committed=%d discarded=%d", st.Committed, st.Discarded)
	}
	got := map[string]string{}
	for _, w := range st.Writes {
		got[w.Key.Row] = string(w.Value)
	}
	if got["legacy"] != "old" || got["batched"] != "new" {
		t.Fatalf("writes %v", got)
	}
}

// TestTicketCompletion checks ticket bookkeeping: it completes only after
// the precommit records AND the commit record are appended.
func TestTicketCompletion(t *testing.T) {
	dir := t.TempDir()
	m := open(t, dir, 2, false)
	defer m.Close()

	_, tk, err := m.Precommit(3, map[int][]KV{0: {kv("t", "x", "v")}, 1: {kv("t", "y", "v")}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-tk.Done():
		t.Fatal("ticket completed before the commit record was staged")
	case <-time.After(20 * time.Millisecond):
	}
	if err := m.Commit(3, 30, m.Epoch(), tk); err != nil {
		t.Fatal(err)
	}
	select {
	case <-tk.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("ticket never completed")
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchRoundTrip exercises the coalesced record encoding directly.
func TestBatchRoundTrip(t *testing.T) {
	pre := encodePrecommit(7, 3, 2, []KV{kv("t", "r", "v")})
	commit := make([]byte, 24)
	reqs := []appendReq{
		{kind: recPrecommit, payload: pre},
		{kind: recSeal},
		{kind: recCommit, payload: commit},
	}
	buf := encodeBatch(reqs, 2)
	entries, err := decodeBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d entries", len(entries))
	}
	if entries[0].kind != recPrecommit || entries[1].kind != recCommit {
		t.Fatalf("kinds %d %d", entries[0].kind, entries[1].kind)
	}
	p, err := decodePrecommit(entries[0].payload)
	if err != nil {
		t.Fatal(err)
	}
	if p.txnID != 7 || p.nShards != 2 {
		t.Fatalf("%+v", p)
	}
	// Truncations must error, not panic.
	for cut := 0; cut < len(buf); cut++ {
		decodeBatch(buf[:cut])
	}
}
