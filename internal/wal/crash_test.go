package wal

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// Crash-point torture harness. The WAL's CrashHook fires at every
// durability-critical boundary (append -> flush -> seal -> compaction
// write/sync/rename). Killing the process at such a boundary leaves exactly
// the bytes already written to the OS file — buffered user-space data dies
// with the process — so the harness simulates the kill by copying the log
// directory inside the hook, while the system keeps running. Each copy is
// one "crash image". After the workload, every image is recovered and two
// invariants are asserted:
//
//   - durability: every commit that was sync-acknowledged before the image
//     was captured is present with at least its acknowledged version;
//   - integrity: every recovered value is byte-identical to a value some
//     transaction actually wrote, with the exact commit timestamp it was
//     written at — no torn, corrupt, or double-applied state.

type ackRec struct {
	ts  uint64
	val string
}

type crashImage struct {
	dir   string
	point string
	acked map[string]ackRec
}

// copyDir snapshots every file in src into dst. Files may be appended to
// concurrently; a copy then holds some prefix of the file, exactly like a
// crash mid-write would (logs are append-only, so prefixes are the only
// reachable states).
func copyDir(t testing.TB, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, de.Name()))
		if err != nil {
			if os.IsNotExist(err) {
				continue // renamed away mid-copy: a crash there loses it too
			}
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, de.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// crashCapture builds a CrashHook that snapshots crash images at
// exponentially spaced hits of every point (1st, 2nd, 4th, 8th, ...), up to
// perPoint images per point, recording the sync-acknowledged state first:
// anything acknowledged before the copy must survive recovery from it.
type crashCapture struct {
	t        testing.TB
	src, dst string
	perPoint int

	mu       sync.Mutex
	ackMu    *sync.Mutex
	acked    map[string]ackRec
	hits     map[string]int
	captured map[string]int
	images   []crashImage
}

func newCrashCapture(t testing.TB, src, dst string, perPoint int, ackMu *sync.Mutex, acked map[string]ackRec) *crashCapture {
	return &crashCapture{
		t: t, src: src, dst: dst, perPoint: perPoint,
		ackMu: ackMu, acked: acked,
		hits: map[string]int{}, captured: map[string]int{},
	}
}

func (c *crashCapture) hook(point string) {
	c.mu.Lock()
	c.hits[point]++
	h := c.hits[point]
	if c.captured[point] >= c.perPoint || h&(h-1) != 0 {
		c.mu.Unlock()
		return
	}
	c.captured[point]++
	n := len(c.images)
	c.images = append(c.images, crashImage{point: point})
	c.mu.Unlock()

	// Snapshot the acknowledged state BEFORE copying: every commit acked
	// by now has its records fsynced (sync commit), so the copy must
	// contain them; commits acked during/after the copy are exempt.
	c.ackMu.Lock()
	snap := make(map[string]ackRec, len(c.acked))
	for k, v := range c.acked {
		snap[k] = v
	}
	c.ackMu.Unlock()
	dst := filepath.Join(c.dst, fmt.Sprintf("img-%03d-%s", n, strings.ReplaceAll(point, "/", "_")))
	copyDir(c.t, c.src, dst)

	c.mu.Lock()
	c.images[n].dir = dst
	c.images[n].acked = snap
	c.mu.Unlock()
}

func (c *crashCapture) snapshot() []crashImage {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]crashImage, 0, len(c.images))
	for _, img := range c.images {
		if img.dir != "" {
			out = append(out, img)
		}
	}
	return out
}

// verifyImage recovers one crash image and checks both invariants against
// the global write ledger (key -> value -> commitTS of the writing txn).
func verifyImage(t *testing.T, img crashImage, shards int, ledger map[string]map[string]uint64) {
	t.Helper()
	st, err := Recover(img.dir, shards)
	if err != nil {
		t.Fatalf("image %s (%s): recovery failed: %v", img.dir, img.point, err)
	}
	got := map[string]ackRec{}
	for _, w := range st.Writes {
		got[w.Key.String()] = ackRec{ts: w.CommitTS, val: string(w.Value)}
	}
	for key, want := range img.acked {
		g, ok := got[key]
		if !ok {
			t.Fatalf("image %s: sync-acknowledged commit of %s (ts %d) lost", img.point, key, want.ts)
		}
		if g.ts < want.ts {
			t.Fatalf("image %s: %s recovered at ts %d, older than acknowledged ts %d",
				img.point, key, g.ts, want.ts)
		}
	}
	for key, g := range got {
		ts, ok := ledger[key][g.val]
		if !ok {
			t.Fatalf("image %s: %s recovered torn/foreign value %q", img.point, key, g.val)
		}
		if ts != g.ts {
			t.Fatalf("image %s: %s value %q recovered at ts %d but written at ts %d (double/mis-applied)",
				img.point, key, g.val, g.ts, ts)
		}
	}
}

func TestCrashPointTorture(t *testing.T) {
	const shards = 3
	dir := t.TempDir()
	images := t.TempDir()

	var ackMu sync.Mutex
	acked := map[string]ackRec{}
	ledger := map[string]map[string]uint64{} // key -> val -> commitTS
	capt := newCrashCapture(t, dir, images, 3, &ackMu, acked)

	m, err := Open(Options{
		Dir:           dir,
		Shards:        shards,
		EpochInterval: 2 * time.Millisecond,
		SyncCommit:    true,
		MaxBatch:      8,
		CrashHook:     capt.hook,
	})
	if err != nil {
		t.Fatal(err)
	}

	workers, txnsEach := 6, 60
	if testing.Short() {
		workers, txnsEach = 4, 25
	}
	var idSeq, tsSeq atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < txnsEach; i++ {
				id := idSeq.Add(1)
				ts := tsSeq.Add(1)
				val := fmt.Sprintf("t%d", id)
				nKeys := 1 + rng.Intn(2)
				byShard := map[int][]KV{}
				keys := make([]string, 0, nKeys)
				for j := 0; j < nKeys; j++ {
					kidx := rng.Intn(16)
					k := core.Key{Table: "t", Row: fmt.Sprintf("r%d", kidx)}
					byShard[kidx%shards] = append(byShard[kidx%shards], KV{Key: k, Value: []byte(val)})
					keys = append(keys, k.String())
				}
				// Ledger entry first: anything that might reach disk
				// must be accounted for before it can.
				ackMu.Lock()
				for _, k := range keys {
					if ledger[k] == nil {
						ledger[k] = map[string]uint64{}
					}
					ledger[k][val] = ts
				}
				ackMu.Unlock()
				epoch, tk, err := m.Precommit(id, byShard)
				if err != nil {
					continue
				}
				if err := m.Commit(id, ts, epoch, tk); err != nil {
					continue
				}
				if tk.Wait() != nil {
					continue
				}
				// Durable: acknowledged to the client.
				ackMu.Lock()
				for _, k := range keys {
					if cur := acked[k]; ts > cur.ts {
						acked[k] = ackRec{ts: ts, val: val}
					}
				}
				ackMu.Unlock()
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	imgs := capt.snapshot()
	if len(imgs) == 0 {
		t.Fatal("no crash images captured")
	}
	points := map[string]bool{}
	for _, img := range imgs {
		points[img.point] = true
		verifyImage(t, img, shards, ledger)
	}
	for _, p := range []string{"append", "flush"} {
		if !points[p] {
			t.Errorf("no crash image captured at the %q boundary", p)
		}
	}
	t.Logf("verified %d crash images across points %v", len(imgs), points)
}
