package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
)

// This file implements consistent checkpoints and log compaction. A
// checkpoint bounds both the on-disk log and the recovery replay:
//
//  1. The caller (the engine) snapshots the committed state at a
//     watermark-consistent cut snapTS — per key, the latest committed
//     version with commit timestamp <= snapTS — bucketed by data server.
//     Every per-shard snapshot is written to a temp file, fsynced and
//     renamed into place, so a snapshot file either exists completely or
//     not at all.
//  2. A checkpoint frontier marker is staged through the group-commit
//     pipeline on every shard. FIFO ordering puts the marker after every
//     record staged before the checkpoint, and the appender fsyncs the
//     whole log prefix with it, so the frontier stays monotone with the
//     durable epoch: a durable marker implies every covered record is
//     durable too.
//  3. The manifest (CHECKPOINT) is written via temp+fsync+rename — the
//     atomic commit point of the checkpoint. Recovery starts from the
//     newest manifest's snapshot and replays only the log tail.
//  4. Each shard's log is compacted: records of transactions covered by the
//     snapshot (commit record present with commitTS <= snapTS) are dropped
//     through an atomic kvstore rewrite, so a crash mid-compaction leaves
//     either the complete old log or the complete new one.
//
// Crashes between the steps are all recoverable: before the manifest rename
// the previous checkpoint (or full replay) is used and stale snapshot files
// are ignored; after it, surviving covered records merely replay values the
// snapshot already holds — recovery merges by commit timestamp, so nothing
// is double-applied.

// SnapshotEntry is one key's latest committed version at the checkpoint cut.
type SnapshotEntry struct {
	Key      core.Key
	Value    []byte
	CommitTS uint64
}

// CheckpointResult reports one completed checkpoint.
type CheckpointResult struct {
	// ID is the checkpoint sequence number.
	ID uint64
	// SnapshotTS is the cut: every transaction with commitTS <= SnapshotTS
	// is covered by the snapshot files.
	SnapshotTS uint64
	// SnapshotKeys / SnapshotBytes size the written snapshot.
	SnapshotKeys  int
	SnapshotBytes int64
	// LogBytesBefore / LogBytesAfter measure the compaction across all
	// shard logs.
	LogBytesBefore int64
	LogBytesAfter  int64
}

// TruncatedBytes returns how many log bytes the compaction dropped.
func (r *CheckpointResult) TruncatedBytes() int64 {
	if r.LogBytesBefore > r.LogBytesAfter {
		return r.LogBytesBefore - r.LogBytesAfter
	}
	return 0
}

const manifestName = "CHECKPOINT"

func snapshotPath(dir string, ck uint64, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%06d-ds-%03d.kv", ck, shard))
}

// Checkpoint writes a consistent checkpoint at cut snapTS and compacts the
// logs. perShard holds, per data server, the latest committed version of
// every key owned by that server at the cut; the caller guarantees that
// every transaction with commitTS <= snapTS has fully finished and that its
// writes are contained in the entries (the engine derives both from the GC
// watermark). Concurrent commits are safe: their records carry commit
// timestamps above the cut and stay in the log tail.
func (m *Manager) Checkpoint(snapTS uint64, perShard [][]SnapshotEntry) (*CheckpointResult, error) {
	m.ckMu.Lock()
	defer m.ckMu.Unlock()
	if len(perShard) != len(m.stores) {
		return nil, fmt.Errorf("wal: checkpoint got %d shard snapshots, have %d shards", len(perShard), len(m.stores))
	}
	ck := m.ckSeq + 1
	res := &CheckpointResult{ID: ck, SnapshotTS: snapTS}

	// 1. Per-shard snapshot files (temp + fsync + rename).
	for i := range m.stores {
		n, err := writeSnapshot(m.opts.Dir, ck, i, snapTS, perShard[i])
		if err != nil {
			return nil, err
		}
		res.SnapshotKeys += len(perShard[i])
		res.SnapshotBytes += n
	}
	m.hook("ck.snapshot")

	// 2. Frontier markers through the group-commit pipeline.
	payload := make([]byte, 16)
	binary.LittleEndian.PutUint64(payload[0:8], ck)
	binary.LittleEndian.PutUint64(payload[8:16], snapTS)
	m.closeMu.RLock()
	epoch := m.epoch.Load()
	if m.closed {
		m.closeMu.RUnlock()
		// Pipeline shut down: write the markers directly.
		for i, st := range m.stores {
			if err := st.Set(fmt.Sprintf("ck/%d", i), payload); err != nil {
				return nil, err
			}
			if err := st.Sync(); err != nil {
				return nil, err
			}
		}
	} else {
		tk := newTicket(int32(len(m.appenders)))
		for _, a := range m.appenders {
			a.ch <- appendReq{kind: recCheckpoint, payload: payload, epoch: epoch, tk: tk}
		}
		m.closeMu.RUnlock()
		if err := tk.Wait(); err != nil {
			return nil, err
		}
	}
	m.hook("ck.frontier")

	// 3. Manifest: the checkpoint's atomic commit point.
	if err := writeManifest(m.opts.Dir, ck, snapTS, len(m.stores)); err != nil {
		return nil, err
	}
	m.ckSeq = ck
	m.hook("ck.manifest")

	// 4. Compact every shard's log: drop records of covered transactions.
	covered := m.coveredTxns(snapTS)
	for _, st := range m.stores {
		before, after, err := st.Rewrite(func(key string, value []byte) ([]byte, bool) {
			return compactRecord(key, value, covered)
		})
		res.LogBytesBefore += before
		res.LogBytesAfter += after
		if err != nil {
			return res, err
		}
	}

	// 5. Older checkpoints' snapshot files are superseded.
	removeStaleSnapshots(m.opts.Dir, ck)
	return res, nil
}

// coveredTxns scans every shard's logs for transactions whose records may
// all be dropped by compaction:
//
//   - committed with commitTS <= snapTS: fully contained in the snapshot
//     (the caller guarantees every such transaction finished before the
//     cut);
//   - aborted after staging precommits (an abort marker exists and no
//     commit record anywhere): the commit record can never arrive — the
//     abort marker is staged on the same appenders after the precommits,
//     on the mutually exclusive abort path — so the orphaned records would
//     otherwise survive every checkpoint.
func (m *Manager) coveredTxns(snapTS uint64) map[uint64]bool {
	covered := map[uint64]bool{}
	aborted := map[uint64]bool{}
	committed := map[uint64]bool{} // any commit record, regardless of TS
	for _, st := range m.stores {
		st.ForEach(func(key string, value []byte) error {
			switch {
			case strings.HasPrefix(key, "c/"):
				id, err := strconv.ParseUint(key[2:], 10, 64)
				if err != nil || len(value) < 16 {
					return nil
				}
				committed[id] = true
				if binary.LittleEndian.Uint64(value[0:8]) <= snapTS {
					covered[id] = true
				}
			case strings.HasPrefix(key, "a/"):
				rest := key[2:]
				if i := strings.IndexByte(rest, '/'); i > 0 {
					rest = rest[:i]
				}
				if id, err := strconv.ParseUint(rest, 10, 64); err == nil {
					aborted[id] = true
				}
			case strings.HasPrefix(key, "b/"):
				entries, err := decodeBatch(value)
				if err != nil {
					return nil
				}
				for _, e := range entries {
					switch {
					case e.kind == recCommit && len(e.payload) >= 24:
						id := binary.LittleEndian.Uint64(e.payload[0:8])
						committed[id] = true
						if binary.LittleEndian.Uint64(e.payload[8:16]) <= snapTS {
							covered[id] = true
						}
					case e.kind == recAbort && len(e.payload) >= 8:
						aborted[binary.LittleEndian.Uint64(e.payload[0:8])] = true
					}
				}
			}
			return nil
		})
	}
	for id := range aborted {
		if !committed[id] {
			covered[id] = true
		}
	}
	return covered
}

// compactRecord decides one log record's fate under compaction: drop
// individual precommit/commit/abort records of covered transactions, filter
// covered entries out of coalesced batch records, keep everything else
// (epoch markers, checkpoint markers). Precommit, commit and abort payloads
// all lead with the transaction id.
func compactRecord(key string, value []byte, covered map[uint64]bool) ([]byte, bool) {
	switch {
	case strings.HasPrefix(key, "p/"), strings.HasPrefix(key, "a/"):
		rest := key[2:]
		if i := strings.IndexByte(rest, '/'); i > 0 {
			rest = rest[:i]
		}
		if id, err := strconv.ParseUint(rest, 10, 64); err == nil && covered[id] {
			return nil, false
		}
	case strings.HasPrefix(key, "c/"):
		if id, err := strconv.ParseUint(key[2:], 10, 64); err == nil && covered[id] {
			return nil, false
		}
	case strings.HasPrefix(key, "b/"):
		entries, err := decodeBatch(value)
		if err != nil {
			return value, true // undecodable: keep as-is, recovery skips it
		}
		kept := entries[:0]
		for _, e := range entries {
			if len(e.payload) >= 8 && covered[binary.LittleEndian.Uint64(e.payload[0:8])] {
				continue
			}
			kept = append(kept, e)
		}
		if len(kept) == 0 {
			return nil, false
		}
		if len(kept) < len(entries) {
			return encodeBatchEntries(kept), true
		}
	}
	return value, true
}

// manifest is the decoded CHECKPOINT file.
type manifest struct {
	ID     uint64
	SnapTS uint64
	Shards int
}

// writeManifest atomically publishes the checkpoint via temp+fsync+rename.
func writeManifest(dir string, ck, snapTS uint64, shards int) error {
	body := fmt.Sprintf("tebaldi-checkpoint v1\nid %d\nsnapts %d\nshards %d\n", ck, snapTS, shards)
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: manifest: %w", err)
	}
	if _, err = f.WriteString(body); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(dir, manifestName))
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: manifest: %w", err)
	}
	// Persist the rename: the manifest IS the checkpoint's commit point, so
	// an unsynced directory entry can un-publish it at the next crash and
	// replay compacted logs without their snapshot. Failing to open the
	// directory is tolerated; a failed fsync is not.
	if d, derr := os.Open(dir); derr == nil {
		err = d.Sync()
		if cerr := d.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("wal: manifest dir sync: %w", err)
		}
	}
	return nil
}

// readManifest returns the newest published checkpoint, or nil when none
// exists. A malformed manifest is an error: it can only result from outside
// interference, and silently ignoring it would replay compacted logs without
// their snapshot.
func readManifest(dir string) (*manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: manifest: %w", err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 4 || lines[0] != "tebaldi-checkpoint v1" {
		return nil, fmt.Errorf("wal: malformed manifest")
	}
	man := &manifest{}
	for _, ln := range lines[1:] {
		f := strings.Fields(ln)
		if len(f) != 2 {
			return nil, fmt.Errorf("wal: malformed manifest line %q", ln)
		}
		v, err := strconv.ParseUint(f[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: malformed manifest line %q", ln)
		}
		switch f[0] {
		case "id":
			man.ID = v
		case "snapts":
			man.SnapTS = v
		case "shards":
			man.Shards = int(v)
		default:
			return nil, fmt.Errorf("wal: malformed manifest line %q", ln)
		}
	}
	if man.ID == 0 || man.Shards < 1 {
		return nil, fmt.Errorf("wal: malformed manifest")
	}
	return man, nil
}

// Snapshot file format: little-endian binary, written via temp+fsync+rename
// so a visible file is always complete.
//
//	header:  magic "TBSN" | u32 version=1 | u64 snapTS | u32 count
//	entry:   u64 commitTS | u32 tlen | table | u32 rlen | row | u32 vlen | value
func writeSnapshot(dir string, ck uint64, shard int, snapTS uint64, entries []SnapshotEntry) (int64, error) {
	final := snapshotPath(dir, ck, shard)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("wal: snapshot: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	var n int64
	write := func(b []byte) {
		if err == nil {
			_, err = w.Write(b)
			n += int64(len(b))
		}
	}
	var u32 [4]byte
	var u64 [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		write(u32[:])
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(u64[:], v)
		write(u64[:])
	}
	write([]byte("TBSN"))
	put32(1)
	put64(snapTS)
	put32(uint32(len(entries)))
	for _, e := range entries {
		put64(e.CommitTS)
		put32(uint32(len(e.Key.Table)))
		write([]byte(e.Key.Table))
		put32(uint32(len(e.Key.Row)))
		write([]byte(e.Key.Row))
		put32(uint32(len(e.Value)))
		write(e.Value)
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, final)
	}
	if err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("wal: snapshot: %w", err)
	}
	return n, nil
}

// readSnapshot loads one shard's snapshot file for checkpoint ck.
func readSnapshot(dir string, ck uint64, shard int) (uint64, []SnapshotEntry, error) {
	b, err := os.ReadFile(snapshotPath(dir, ck, shard))
	if err != nil {
		return 0, nil, fmt.Errorf("wal: snapshot: %w", err)
	}
	off := 0
	get := func(n int) ([]byte, bool) {
		if off+n > len(b) {
			return nil, false
		}
		s := b[off : off+n]
		off += n
		return s, true
	}
	hdr, ok := get(4)
	if !ok || string(hdr) != "TBSN" {
		return 0, nil, fmt.Errorf("wal: snapshot %d/%d: bad magic", ck, shard)
	}
	ver, ok := get(4)
	if !ok || binary.LittleEndian.Uint32(ver) != 1 {
		return 0, nil, fmt.Errorf("wal: snapshot %d/%d: bad version", ck, shard)
	}
	tsb, ok1 := get(8)
	cntb, ok2 := get(4)
	if !ok1 || !ok2 {
		return 0, nil, fmt.Errorf("wal: snapshot %d/%d: truncated header", ck, shard)
	}
	snapTS := binary.LittleEndian.Uint64(tsb)
	count := int(binary.LittleEndian.Uint32(cntb))
	entries := make([]SnapshotEntry, 0, count)
	for i := 0; i < count; i++ {
		ctsb, ok := get(8)
		if !ok {
			return 0, nil, fmt.Errorf("wal: snapshot %d/%d: truncated entry", ck, shard)
		}
		var parts [3][]byte
		for j := range parts {
			lb, ok := get(4)
			if !ok {
				return 0, nil, fmt.Errorf("wal: snapshot %d/%d: truncated entry", ck, shard)
			}
			parts[j], ok = get(int(binary.LittleEndian.Uint32(lb)))
			if !ok {
				return 0, nil, fmt.Errorf("wal: snapshot %d/%d: truncated entry", ck, shard)
			}
		}
		val := make([]byte, len(parts[2]))
		copy(val, parts[2])
		entries = append(entries, SnapshotEntry{
			Key:      core.Key{Table: string(parts[0]), Row: string(parts[1])},
			Value:    val,
			CommitTS: binary.LittleEndian.Uint64(ctsb),
		})
	}
	if off != len(b) {
		return 0, nil, fmt.Errorf("wal: snapshot %d/%d: trailing bytes", ck, shard)
	}
	return snapTS, entries, nil
}

// removeStaleSnapshots deletes snapshot files (and temp leftovers) of
// checkpoints older than keep.
func removeStaleSnapshots(dir string, keep uint64) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, de := range ents {
		name := de.Name()
		if !strings.HasPrefix(name, "snap-") {
			continue
		}
		var ck uint64
		if _, err := fmt.Sscanf(name, "snap-%d-", &ck); err != nil {
			continue
		}
		if ck < keep || strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
		}
	}
}
