package wal

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/kvstore"
)

// RecoveredWrite is one surviving committed write.
type RecoveredWrite struct {
	Key      core.Key
	Value    []byte
	CommitTS uint64
}

// RecoveredState is the outcome of recovery: the latest committed version of
// every key, and the highest commit timestamp observed (the oracle must be
// advanced past it).
type RecoveredState struct {
	Writes []RecoveredWrite
	MaxTS  uint64
	// Discarded counts transactions dropped by the GCP / 2PC rules
	// (missing precommits, epoch beyond a durable frontier, or missing
	// commit record).
	Discarded int
	Committed int
	// SnapshotTS is the checkpoint cut recovery started from (0 when no
	// checkpoint existed and the whole history was replayed).
	SnapshotTS uint64
	// SnapshotKeys is the number of keys seeded from the checkpoint
	// snapshot.
	SnapshotKeys int
	// Replayed counts the individual log records (precommit and commit,
	// batch entries included) replayed from the log tail. With
	// checkpointing enabled this stays proportional to the post-frontier
	// tail, not to the full history.
	Replayed int
}

// Recover performs the three-step recovery procedure of §4.5.4, extended
// with checkpoint support:
//
//  0. load the newest complete checkpoint snapshot, if one was published
//     (manifest + per-shard snapshot files): it seeds the latest committed
//     version of every covered key, and only the log tail remains;
//  1. retrieve logs from each data server's persistent store;
//  2. reconstruct database state — discard transactions that are missing a
//     precommit record on any participant, whose records fall beyond a
//     server's durable epoch frontier, or that lack a coordinator commit
//     record; merge the survivors into the snapshot base, keeping the
//     latest committed version of each key (merging is by commit timestamp,
//     so records of snapshot-covered transactions that escaped compaction
//     replay idempotently);
//  3. CC-internal state (indices, version maps, lock tables) is rebuilt by
//     the caller: recovered writes are re-installed as committed history
//     that only the root CC needs to know about.
func Recover(dir string, shards int) (*RecoveredState, error) {
	if shards < 1 {
		shards = 1
	}
	out := &RecoveredState{}
	latest := map[core.Key]RecoveredWrite{}

	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if man != nil {
		if man.Shards != shards {
			return nil, fmt.Errorf("wal: checkpoint has %d shards, recovering %d", man.Shards, shards)
		}
		for i := 0; i < shards; i++ {
			snapTS, entries, err := readSnapshot(dir, man.ID, i)
			if err != nil {
				return nil, err
			}
			if snapTS != man.SnapTS {
				return nil, fmt.Errorf("wal: snapshot %d/%d cut %d != manifest %d", man.ID, i, snapTS, man.SnapTS)
			}
			for _, e := range entries {
				if cur, ok := latest[e.Key]; !ok || e.CommitTS > cur.CommitTS {
					latest[e.Key] = RecoveredWrite(e)
				}
				if e.CommitTS > out.MaxTS {
					out.MaxTS = e.CommitTS
				}
				out.SnapshotKeys++
			}
		}
		out.SnapshotTS = man.SnapTS
		if man.SnapTS > out.MaxTS {
			out.MaxTS = man.SnapTS
		}
	}

	type txnInfo struct {
		precommits int
		nShards    int
		epochOK    bool
		writes     []KV
		commitTS   uint64
		committed  bool
	}
	txns := map[uint64]*txnInfo{}
	get := func(id uint64) *txnInfo {
		t := txns[id]
		if t == nil {
			t = &txnInfo{epochOK: true}
			txns[id] = t
		}
		return t
	}

	for i := 0; i < shards; i++ {
		st, err := kvstore.Open(filepath.Join(dir, fmt.Sprintf("ds-%03d.log", i)))
		if err != nil {
			return nil, err
		}
		var frontier uint64
		if b := st.Get(fmt.Sprintf("e/%d", i)); len(b) == 8 {
			frontier = binary.LittleEndian.Uint64(b)
		}
		if man != nil {
			// The checkpoint frontier marker is staged through the
			// appender pipeline and fsynced on every shard BEFORE the
			// manifest is published, so a manifest always implies a
			// marker at least as new on every shard. A shard behind the
			// manifest means the logs and the manifest come from
			// different histories (outside interference, mixed
			// restores) — recovering would silently drop the compacted
			// prefix.
			b := st.Get(fmt.Sprintf("ck/%d", i))
			if len(b) != 16 {
				//lint:allow syncerr -- read-only store being abandoned; the missing-marker error below is the diagnosis
				st.Close()
				return nil, fmt.Errorf("wal: shard %d has no checkpoint frontier marker but manifest %d is published", i, man.ID)
			}
			if id := binary.LittleEndian.Uint64(b[0:8]); id < man.ID {
				//lint:allow syncerr -- read-only store being abandoned; the frontier-mismatch error below is the diagnosis
				st.Close()
				return nil, fmt.Errorf("wal: shard %d frontier marker %d behind manifest %d", i, id, man.ID)
			}
		}
		applyPrecommit := func(value []byte) {
			p, err := decodePrecommit(value)
			if err != nil {
				return // torn record: skip
			}
			out.Replayed++
			t := get(p.txnID)
			t.precommits++
			t.nShards = p.nShards
			t.writes = append(t.writes, p.writes...)
			if p.epoch > frontier {
				t.epochOK = false
			}
		}
		applyCommit := func(id, commitTS, epoch uint64) {
			out.Replayed++
			t := get(id)
			t.commitTS = commitTS
			if epoch > frontier {
				t.epochOK = false
			} else {
				t.committed = true
			}
		}
		err = st.ForEach(func(key string, value []byte) error {
			switch {
			case strings.HasPrefix(key, "b/"):
				// Coalesced group-commit batch: replay each entry
				// as an individual record.
				entries, err := decodeBatch(value)
				if err != nil {
					return nil // torn batch: skip
				}
				for _, e := range entries {
					switch e.kind {
					case recPrecommit:
						applyPrecommit(e.payload)
					case recCommit:
						if len(e.payload) < 24 {
							continue
						}
						applyCommit(
							binary.LittleEndian.Uint64(e.payload[0:8]),
							binary.LittleEndian.Uint64(e.payload[8:16]),
							binary.LittleEndian.Uint64(e.payload[16:24]))
					}
				}
			case strings.HasPrefix(key, "p/"):
				applyPrecommit(value)
			case strings.HasPrefix(key, "c/"):
				id, err := strconv.ParseUint(key[2:], 10, 64)
				if err != nil || len(value) < 16 {
					return nil
				}
				applyCommit(id,
					binary.LittleEndian.Uint64(value[0:8]),
					binary.LittleEndian.Uint64(value[8:16]))
			}
			return nil
		})
		cerr := st.Close()
		if err != nil {
			return nil, err
		}
		if cerr != nil {
			return nil, cerr
		}
	}

	for _, t := range txns {
		if !t.committed || !t.epochOK || t.precommits < t.nShards {
			out.Discarded++
			continue
		}
		out.Committed++
		if t.commitTS > out.MaxTS {
			out.MaxTS = t.commitTS
		}
		for _, w := range t.writes {
			if cur, ok := latest[w.Key]; !ok || t.commitTS > cur.CommitTS {
				latest[w.Key] = RecoveredWrite{Key: w.Key, Value: w.Value, CommitTS: t.commitTS}
			}
		}
	}
	for _, w := range latest {
		out.Writes = append(out.Writes, w)
	}
	return out, nil
}
