package wal

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/kvstore"
)

// RecoveredWrite is one surviving committed write.
type RecoveredWrite struct {
	Key      core.Key
	Value    []byte
	CommitTS uint64
}

// RecoveredState is the outcome of recovery: the latest committed version of
// every key, and the highest commit timestamp observed (the oracle must be
// advanced past it).
type RecoveredState struct {
	Writes []RecoveredWrite
	MaxTS  uint64
	// Discarded counts transactions dropped by the GCP / 2PC rules
	// (missing precommits, epoch beyond a durable frontier, or missing
	// commit record).
	Discarded int
	Committed int
}

// Recover performs the three-step recovery procedure of §4.5.4:
//
//  1. retrieve logs from each data server's persistent store;
//  2. reconstruct database state — discard transactions that are missing a
//     precommit record on any participant, whose records fall beyond a
//     server's durable epoch frontier, or that lack a coordinator commit
//     record; keep the latest committed version of each key;
//  3. CC-internal state (indices, version maps, lock tables) is rebuilt by
//     the caller: recovered writes are re-installed as committed history
//     that only the root CC needs to know about.
func Recover(dir string, shards int) (*RecoveredState, error) {
	if shards < 1 {
		shards = 1
	}
	type txnInfo struct {
		precommits int
		nShards    int
		epochOK    bool
		writes     []KV
		commitTS   uint64
		committed  bool
	}
	txns := map[uint64]*txnInfo{}
	get := func(id uint64) *txnInfo {
		t := txns[id]
		if t == nil {
			t = &txnInfo{epochOK: true}
			txns[id] = t
		}
		return t
	}

	for i := 0; i < shards; i++ {
		st, err := kvstore.Open(filepath.Join(dir, fmt.Sprintf("ds-%03d.log", i)))
		if err != nil {
			return nil, err
		}
		var frontier uint64
		if b := st.Get(fmt.Sprintf("e/%d", i)); len(b) == 8 {
			frontier = binary.LittleEndian.Uint64(b)
		}
		applyPrecommit := func(value []byte) {
			p, err := decodePrecommit(value)
			if err != nil {
				return // torn record: skip
			}
			t := get(p.txnID)
			t.precommits++
			t.nShards = p.nShards
			t.writes = append(t.writes, p.writes...)
			if p.epoch > frontier {
				t.epochOK = false
			}
		}
		applyCommit := func(id, commitTS, epoch uint64) {
			t := get(id)
			t.commitTS = commitTS
			if epoch > frontier {
				t.epochOK = false
			} else {
				t.committed = true
			}
		}
		err = st.ForEach(func(key string, value []byte) error {
			switch {
			case strings.HasPrefix(key, "b/"):
				// Coalesced group-commit batch: replay each entry
				// as an individual record.
				entries, err := decodeBatch(value)
				if err != nil {
					return nil // torn batch: skip
				}
				for _, e := range entries {
					switch e.kind {
					case recPrecommit:
						applyPrecommit(e.payload)
					case recCommit:
						if len(e.payload) < 24 {
							continue
						}
						applyCommit(
							binary.LittleEndian.Uint64(e.payload[0:8]),
							binary.LittleEndian.Uint64(e.payload[8:16]),
							binary.LittleEndian.Uint64(e.payload[16:24]))
					}
				}
			case strings.HasPrefix(key, "p/"):
				applyPrecommit(value)
			case strings.HasPrefix(key, "c/"):
				id, err := strconv.ParseUint(key[2:], 10, 64)
				if err != nil || len(value) < 16 {
					return nil
				}
				applyCommit(id,
					binary.LittleEndian.Uint64(value[0:8]),
					binary.LittleEndian.Uint64(value[8:16]))
			}
			return nil
		})
		cerr := st.Close()
		if err != nil {
			return nil, err
		}
		if cerr != nil {
			return nil, cerr
		}
	}

	out := &RecoveredState{}
	latest := map[core.Key]RecoveredWrite{}
	for _, t := range txns {
		if !t.committed || !t.epochOK || t.precommits < t.nShards {
			out.Discarded++
			continue
		}
		out.Committed++
		if t.commitTS > out.MaxTS {
			out.MaxTS = t.commitTS
		}
		for _, w := range t.writes {
			if cur, ok := latest[w.Key]; !ok || t.commitTS > cur.CommitTS {
				latest[w.Key] = RecoveredWrite{Key: w.Key, Value: w.Value, CommitTS: t.commitTS}
			}
		}
	}
	for _, w := range latest {
		out.Writes = append(out.Writes, w)
	}
	return out, nil
}
