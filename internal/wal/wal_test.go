package wal

import (
	"testing"
	"time"

	"repro/internal/core"
)

func open(t *testing.T, dir string, shards int, sync bool) *Manager {
	t.Helper()
	m, err := Open(Options{Dir: dir, Shards: shards, EpochInterval: 10 * time.Millisecond, SyncCommit: sync})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func kv(table, row, val string) KV {
	return KV{Key: core.Key{Table: table, Row: row}, Value: []byte(val)}
}

func TestPrecommitCommitRecover(t *testing.T) {
	dir := t.TempDir()
	m := open(t, dir, 3, true)
	writes := map[int][]KV{
		0: {kv("t", "a", "1")},
		1: {kv("t", "b", "2")},
	}
	epoch, tk, err := m.Precommit(7, writes)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(7, 100, epoch, tk); err != nil {
		t.Fatal(err)
	}
	m.Close()

	st, err := Recover(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 1 || st.Discarded != 0 {
		t.Fatalf("committed=%d discarded=%d", st.Committed, st.Discarded)
	}
	if st.MaxTS != 100 {
		t.Fatalf("maxTS %d", st.MaxTS)
	}
	got := map[string]string{}
	for _, w := range st.Writes {
		got[w.Key.String()] = string(w.Value)
	}
	if got["t/a"] != "1" || got["t/b"] != "2" {
		t.Fatalf("writes %v", got)
	}
}

func TestRecoverDiscardsMissingCommitRecord(t *testing.T) {
	dir := t.TempDir()
	m := open(t, dir, 2, true)
	if _, _, err := m.Precommit(1, map[int][]KV{0: {kv("t", "x", "v")}}); err != nil {
		t.Fatal(err)
	}
	// No commit record: the transaction never reached commit.
	m.flushEpoch()
	m.Close()
	st, err := Recover(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 0 || st.Discarded != 1 {
		t.Fatalf("committed=%d discarded=%d", st.Committed, st.Discarded)
	}
}

func TestRecoverDiscardsIncompletePrecommits(t *testing.T) {
	dir := t.TempDir()
	m := open(t, dir, 2, true)
	// Claim two participating shards but only log one precommit (as if
	// the second data server crashed before persisting).
	rec := encodePrecommit(5, m.Epoch(), 2, []KV{kv("t", "x", "v")})
	if err := m.stores[0].Set("p/5/0", rec); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(5, 50, m.Epoch(), newTicket(1)); err != nil {
		t.Fatal(err)
	}
	m.Close()
	st, err := Recover(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 0 || st.Discarded != 1 {
		t.Fatalf("2PC rule violated: committed=%d discarded=%d", st.Committed, st.Discarded)
	}
}

func TestLatestVersionWinsAcrossTxns(t *testing.T) {
	dir := t.TempDir()
	m := open(t, dir, 1, true)
	e1, tk1, _ := m.Precommit(1, map[int][]KV{0: {kv("t", "k", "old")}})
	m.Commit(1, 10, e1, tk1)
	e2, tk2, _ := m.Precommit(2, map[int][]KV{0: {kv("t", "k", "new")}})
	m.Commit(2, 20, e2, tk2)
	m.Close()
	st, err := Recover(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Writes) != 1 || string(st.Writes[0].Value) != "new" {
		t.Fatalf("writes %+v", st.Writes)
	}
}

func TestAsyncDurableNotification(t *testing.T) {
	dir := t.TempDir()
	m := open(t, dir, 1, false)
	defer m.Close()
	epoch, tk, err := m.Precommit(1, map[int][]KV{0: {kv("t", "k", "v")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(1, 5, epoch, tk); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		m.WaitDurable(epoch)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("durable notification never arrived")
	}
	if m.DurableEpoch() < epoch {
		t.Fatalf("durable epoch %d < %d", m.DurableEpoch(), epoch)
	}
}

func TestPrecommitRoundTripEncoding(t *testing.T) {
	in := []KV{kv("table", "row", "value"), kv("t2", "r2", "")}
	rec := encodePrecommit(42, 7, 3, in)
	p, err := decodePrecommit(rec)
	if err != nil {
		t.Fatal(err)
	}
	if p.txnID != 42 || p.epoch != 7 || p.nShards != 3 || len(p.writes) != 2 {
		t.Fatalf("%+v", p)
	}
	if p.writes[0].Key.Table != "table" || string(p.writes[0].Value) != "value" {
		t.Fatalf("%+v", p.writes[0])
	}
}

func TestDecodeTruncated(t *testing.T) {
	rec := encodePrecommit(1, 1, 1, []KV{kv("t", "r", "v")})
	for cut := 0; cut < len(rec); cut += 5 {
		if _, err := decodePrecommit(rec[:cut]); err == nil && cut < len(rec) {
			// Short prefixes may decode iff they form a complete
			// record; the full record is the only valid length.
			if cut != len(rec) {
				t.Fatalf("truncated record at %d decoded", cut)
			}
		}
	}
}
