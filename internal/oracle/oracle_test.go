package oracle

import (
	"sync"
	"testing"
)

func TestMonotonic(t *testing.T) {
	o := New()
	prev := uint64(0)
	for i := 0; i < 1000; i++ {
		ts := o.Next()
		if ts <= prev {
			t.Fatalf("non-monotonic: %d after %d", ts, prev)
		}
		prev = ts
	}
	if o.Last() != prev {
		t.Fatalf("Last %d != %d", o.Last(), prev)
	}
}

func TestConcurrentUnique(t *testing.T) {
	o := New()
	const workers, each = 16, 2000
	out := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				out[i] = append(out[i], o.Next())
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]bool, workers*each)
	for _, ts := range out {
		for _, v := range ts {
			if seen[v] {
				t.Fatalf("duplicate timestamp %d", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != workers*each {
		t.Fatalf("issued %d, want %d", len(seen), workers*each)
	}
}

func TestNextNBatchMonotonic(t *testing.T) {
	o := New()
	first := o.NextN(10)
	if first != 1 {
		t.Fatalf("first batch starts at %d, want 1", first)
	}
	if o.Last() != 10 {
		t.Fatalf("Last after NextN(10) = %d, want 10", o.Last())
	}
	// A following single allocation must land strictly after the batch.
	if ts := o.Next(); ts != 11 {
		t.Fatalf("Next after batch = %d, want 11", ts)
	}
	// Clamping: n < 1 still consumes exactly one timestamp.
	if ts := o.NextN(0); ts != 12 {
		t.Fatalf("NextN(0) = %d, want 12", ts)
	}
	if ts := o.NextN(-3); ts != 13 {
		t.Fatalf("NextN(-3) = %d, want 13", ts)
	}
}

// TestNextNConcurrentDisjoint checks the batching contract under contention:
// concurrently reserved ranges are pairwise disjoint, and together with
// interleaved Next calls they tile [1, Last] exactly.
func TestNextNConcurrentDisjoint(t *testing.T) {
	o := New()
	const workers, each = 16, 500
	type span struct{ first, n uint64 }
	out := make([][]span, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				n := uint64(i%7 + 1) // mixed batch sizes, incl. 1
				var first uint64
				if n == 1 {
					first = o.Next()
				} else {
					first = o.NextN(int(n))
				}
				out[i] = append(out[i], span{first, n})
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	seen := make(map[uint64]bool)
	for i, spans := range out {
		prev := uint64(0)
		for _, sp := range spans {
			if sp.first <= prev {
				t.Fatalf("worker %d: batch start %d not after previous range end %d", i, sp.first, prev)
			}
			prev = sp.first + sp.n - 1
			total += sp.n
			for ts := sp.first; ts < sp.first+sp.n; ts++ {
				if seen[ts] {
					t.Fatalf("timestamp %d issued twice", ts)
				}
				seen[ts] = true
			}
		}
	}
	if o.Last() != total {
		t.Fatalf("Last = %d, want %d (ranges must tile with no gaps)", o.Last(), total)
	}
	for ts := uint64(1); ts <= total; ts++ {
		if !seen[ts] {
			t.Fatalf("timestamp %d never issued (hole in the domain)", ts)
		}
	}
}

// TestNextNAdvanceToInterplay mirrors recovery: AdvanceTo past a recovered
// commit timestamp, then batch allocation must start strictly above it.
func TestNextNAdvanceToInterplay(t *testing.T) {
	o := New()
	o.NextN(5)
	o.AdvanceTo(1000)
	if first := o.NextN(8); first != 1001 {
		t.Fatalf("NextN after AdvanceTo(1000) starts at %d, want 1001", first)
	}
	if o.Last() != 1008 {
		t.Fatalf("Last = %d, want 1008", o.Last())
	}
}

func TestAdvanceTo(t *testing.T) {
	o := New()
	o.Next()
	o.AdvanceTo(100)
	if ts := o.Next(); ts <= 100 {
		t.Fatalf("Next after AdvanceTo(100) = %d", ts)
	}
	o.AdvanceTo(50) // never regresses
	if o.Last() <= 100 {
		t.Fatalf("AdvanceTo regressed to %d", o.Last())
	}
}
