package oracle

import (
	"sync"
	"testing"
)

func TestMonotonic(t *testing.T) {
	o := New()
	prev := uint64(0)
	for i := 0; i < 1000; i++ {
		ts := o.Next()
		if ts <= prev {
			t.Fatalf("non-monotonic: %d after %d", ts, prev)
		}
		prev = ts
	}
	if o.Last() != prev {
		t.Fatalf("Last %d != %d", o.Last(), prev)
	}
}

func TestConcurrentUnique(t *testing.T) {
	o := New()
	const workers, each = 16, 2000
	out := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				out[i] = append(out[i], o.Next())
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]bool, workers*each)
	for _, ts := range out {
		for _, v := range ts {
			if seen[v] {
				t.Fatalf("duplicate timestamp %d", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != workers*each {
		t.Fatalf("issued %d, want %d", len(seen), workers*each)
	}
}

func TestAdvanceTo(t *testing.T) {
	o := New()
	o.Next()
	o.AdvanceTo(100)
	if ts := o.Next(); ts <= 100 {
		t.Fatalf("Next after AdvanceTo(100) = %d", ts)
	}
	o.AdvanceTo(50) // never regresses
	if o.Last() <= 100 {
		t.Fatalf("AdvanceTo regressed to %d", o.Last())
	}
}
