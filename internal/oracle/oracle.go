// Package oracle provides the global timestamp oracle. Tebaldi draws begin
// timestamps, SSI/TSO start timestamps, batch timestamps and commit
// timestamps from one monotonic counter, so every timestamp comparison in
// the system happens in a single domain (the paper uses a centralized
// timestamp server; §4.5.1).
package oracle

import "sync/atomic"

// Oracle is a lock-free monotonic timestamp source implementing core.Oracle.
// The zero value is ready to use; the first timestamp issued is 1.
type Oracle struct {
	counter atomic.Uint64
}

// New returns a fresh oracle.
func New() *Oracle { return &Oracle{} }

// Next returns the next timestamp (strictly increasing, starting at 1).
func (o *Oracle) Next() uint64 { return o.counter.Add(1) }

// NextN atomically reserves n consecutive timestamps and returns the first;
// the caller owns [first, first+n). Batch allocation lets a TSO non-leaf (or
// a future distributed oracle client) stamp a whole batch with one counter
// operation. NextN(1) is equivalent to Next; n < 1 is clamped to 1.
func (o *Oracle) NextN(n int) uint64 {
	if n < 1 {
		n = 1
	}
	return o.counter.Add(uint64(n)) - uint64(n) + 1
}

// Last returns the most recently issued timestamp (0 if none).
func (o *Oracle) Last() uint64 { return o.counter.Load() }

// AdvanceTo raises the counter to at least ts (used by recovery so new
// timestamps never collide with recovered commit timestamps).
func (o *Oracle) AdvanceTo(ts uint64) {
	for {
		cur := o.counter.Load()
		if cur >= ts || o.counter.CompareAndSwap(cur, ts) {
			return
		}
	}
}
