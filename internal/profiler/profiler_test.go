package profiler

import (
	"testing"
	"time"

	"repro/internal/core"
)

func ev(blockedID uint64, blockedType string, blockerID uint64, blockerType string, startMs, endMs int) core.BlockEvent {
	base := time.Unix(0, 0)
	return core.BlockEvent{
		BlockedID: blockedID, BlockedType: blockedType,
		BlockerID: blockerID, BlockerType: blockerType,
		Start: base.Add(time.Duration(startMs) * time.Millisecond),
		End:   base.Add(time.Duration(endMs) * time.Millisecond),
	}
}

func TestScoresSimple(t *testing.T) {
	scores := Scores([]core.BlockEvent{
		ev(1, "A", 2, "B", 0, 10),
	})
	if got := scores[MakeEdge("A", "B")]; got != 10*time.Millisecond {
		t.Fatalf("score %v", got)
	}
}

// The Figure 5.6 example: t2 blocks t1 twice (4ms, then 8ms); during the
// second wait t2 is itself blocked by t3 for 6ms, and t2 also directly waits
// on t3 for 7ms elsewhere. Expected: score(T2,T1)=6ms, score(T3,T2)=13ms.
func TestScoresNestedWaitingFigure56(t *testing.T) {
	events := []core.BlockEvent{
		ev(1, "T1", 2, "T2", 0, 4),   // first wait, no nesting
		ev(1, "T1", 2, "T2", 10, 18), // second wait, 8ms
		ev(2, "T2", 3, "T3", 12, 18), // nested inside the second wait
		ev(2, "T2", 3, "T3", 30, 37), // direct wait elsewhere
	}
	scores := Scores(events)
	if got := scores[MakeEdge("T2", "T1")]; got != 6*time.Millisecond {
		t.Fatalf("score(T2,T1) = %v, want 6ms", got)
	}
	if got := scores[MakeEdge("T3", "T2")]; got != 13*time.Millisecond {
		t.Fatalf("score(T3,T2) = %v, want 13ms", got)
	}
}

func TestScoresDeepNesting(t *testing.T) {
	// A waits B for 10ms; B waits C the whole time; C waits D the whole
	// time. Only the innermost conflict carries weight: the root cause.
	events := []core.BlockEvent{
		ev(1, "A", 2, "B", 0, 10),
		ev(2, "B", 3, "C", 0, 10),
		ev(3, "C", 4, "D", 0, 10),
	}
	scores := Scores(events)
	if got := scores[MakeEdge("D", "C")]; got != 10*time.Millisecond {
		t.Fatalf("score(D,C) = %v, want 10ms", got)
	}
	if got := scores[MakeEdge("B", "A")]; got != 0 {
		t.Fatalf("score(B,A) = %v, want 0 (fully nested)", got)
	}
	if got := scores[MakeEdge("C", "B")]; got != 0 {
		t.Fatalf("score(C,B) = %v, want 0 (fully nested)", got)
	}
}

func TestBottleneckPicksMax(t *testing.T) {
	scores := map[Edge]time.Duration{
		MakeEdge("a", "b"): 5 * time.Millisecond,
		MakeEdge("c", "d"): 9 * time.Millisecond,
	}
	edge, score, ok := Bottleneck(scores)
	if !ok || edge != MakeEdge("c", "d") || score != 9*time.Millisecond {
		t.Fatalf("%v %v %v", edge, score, ok)
	}
}

func TestBottleneckEmpty(t *testing.T) {
	if _, _, ok := Bottleneck(nil); ok {
		t.Fatal("empty scores should report no bottleneck")
	}
}

func TestMakeEdgeNormalizes(t *testing.T) {
	if MakeEdge("z", "a") != MakeEdge("a", "z") {
		t.Fatal("edge not normalized")
	}
	e := MakeEdge("x", "x")
	if e.A != "x" || e.B != "x" {
		t.Fatal("self edge broken")
	}
}

func TestProfilerCollectsAndDrains(t *testing.T) {
	p := New(true)
	for i := uint64(0); i < 100; i++ {
		p.ReportBlock(ev(i, "A", i+1000, "B", 0, 1))
	}
	if got := len(p.Window()); got != 100 {
		t.Fatalf("collected %d", got)
	}
	if got := len(p.Window()); got != 0 {
		t.Fatalf("window not drained: %d", got)
	}
}

func TestProfilerDisabled(t *testing.T) {
	p := New(false)
	p.ReportBlock(ev(1, "A", 2, "B", 0, 1))
	if len(p.Window()) != 0 {
		t.Fatal("disabled profiler recorded")
	}
	p.SetEnabled(true)
	p.ReportBlock(ev(1, "A", 2, "B", 0, 1))
	if len(p.Window()) != 1 {
		t.Fatal("enable failed")
	}
}

func TestScoresSelfEdge(t *testing.T) {
	scores := Scores([]core.BlockEvent{
		ev(1, "pay", 2, "pay", 0, 5),
		ev(3, "pay", 2, "pay", 0, 5),
	})
	if got := scores[MakeEdge("pay", "pay")]; got != 10*time.Millisecond {
		t.Fatalf("self edge %v", got)
	}
}
