// Package profiler implements Tebaldi's performance analysis stage (§5.3):
// a sampling module that collects data-contention blocking events from all
// CC mechanisms, and an analyzer that aggregates them into conflict-edge
// scores with nested-waiting attribution (§5.3.2), identifying the bottleneck
// conflict edge — the pair of transaction types whose contention limits the
// workload.
//
// Unlike the latency-based technique of Callas (§5.3.1), this profiler needs
// no control over the workload's request rate and reports exact conflict
// edges, not just "slow transaction types" — it tracks the cascading effects
// of contention: if A waits for B while B waits for C, the nested time is
// charged to the B<-C edge, not to A<-B.
package profiler

import (
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

const shards = 16

// Profiler collects blocking events. It implements core.BlockReporter.
// Collection is windowed: Window() drains the buffers for analysis.
type Profiler struct {
	enabled bool // set before use; reads are racy-but-safe (bool)
	bufs    [shards]buf
}

type buf struct {
	mu     sync.Mutex
	events []core.BlockEvent
}

// New creates a profiler; enabled controls whether events are recorded.
func New(enabled bool) *Profiler {
	return &Profiler{enabled: enabled}
}

// SetEnabled toggles collection (the profiling-overhead experiment).
func (p *Profiler) SetEnabled(on bool) { p.enabled = on }

// Enabled reports whether collection is on.
func (p *Profiler) Enabled() bool { return p.enabled }

// ReportBlock implements core.BlockReporter.
func (p *Profiler) ReportBlock(ev core.BlockEvent) {
	if !p.enabled {
		return
	}
	b := &p.bufs[ev.BlockedID%shards]
	b.mu.Lock()
	b.events = append(b.events, ev)
	b.mu.Unlock()
}

// Window drains and returns all collected events.
func (p *Profiler) Window() []core.BlockEvent {
	var out []core.BlockEvent
	for i := range p.bufs {
		b := &p.bufs[i]
		b.mu.Lock()
		out = append(out, b.events...)
		b.events = nil
		b.mu.Unlock()
	}
	return out
}

// Edge is an unordered pair of transaction types (a conflict edge in the
// workload). A == B for self-conflicts.
type Edge struct{ A, B string }

// MakeEdge normalizes the pair ordering.
func MakeEdge(a, b string) Edge {
	if b < a {
		a, b = b, a
	}
	return Edge{A: a, B: b}
}

// Scores aggregates blocking events into per-conflict-edge scores: the total
// blocked time attributable to each pair of transaction types, with nested
// waiting re-attributed to the inner conflict (§5.3.2, Figure 5.6).
func Scores(events []core.BlockEvent) map[Edge]time.Duration {
	// Index each transaction's own blocked intervals.
	type span struct {
		start, end  time.Time
		blockerID   uint64
		blockerType string
	}
	blockedBy := make(map[uint64][]span)
	for _, ev := range events {
		blockedBy[ev.BlockedID] = append(blockedBy[ev.BlockedID], span{
			start: ev.Start, end: ev.End,
			blockerID: ev.BlockerID, blockerType: ev.BlockerType,
		})
	}
	for id := range blockedBy {
		s := blockedBy[id]
		sort.Slice(s, func(i, j int) bool { return s[i].start.Before(s[j].start) })
		blockedBy[id] = s
	}

	// Each event (A waited for B over I) contributes |I| minus the time B
	// was itself blocked within I: the nested portion belongs to B's own
	// conflict, which is charged by B's own events (Figure 5.6 — the
	// 6ms t2 spends blocked by t3 inside t1's wait counts toward
	// score(T3,T2) via t2's direct event, not toward score(T2,T1)).
	scores := make(map[Edge]time.Duration)
	for _, ev := range events {
		d := ev.End.Sub(ev.Start)
		if d <= 0 {
			continue
		}
		for _, inner := range blockedBy[ev.BlockerID] {
			is, ie := inner.start, inner.end
			if is.Before(ev.Start) {
				is = ev.Start
			}
			if ie.After(ev.End) {
				ie = ev.End
			}
			if ie.After(is) {
				d -= ie.Sub(is)
			}
		}
		if d > 0 {
			scores[MakeEdge(ev.BlockerType, ev.BlockedType)] += d
		}
	}
	return scores
}

// Bottleneck returns the conflict edge with the highest score, its score,
// and whether any contention was observed at all.
func Bottleneck(scores map[Edge]time.Duration) (Edge, time.Duration, bool) {
	var best Edge
	var bestScore time.Duration
	found := false
	// Deterministic tie-break by edge name.
	edges := make([]Edge, 0, len(scores))
	for e := range scores {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		return edges[i].B < edges[j].B
	})
	for _, e := range edges {
		if s := scores[e]; s > bestScore {
			best, bestScore, found = e, s, true
		}
	}
	return best, bestScore, found
}
