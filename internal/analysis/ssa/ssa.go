// Package ssa is the interprocedural substrate of the tebaldivet analyzers:
// a def-use/value-flow approximation over go/ast and go/types (the
// stdlib-only stand-in for a full SSA IR), static call resolution, and a
// CHA-based dispatch-target enumeration. Per-function results are exported
// through the framework's fact store as summaries, so analysis composes
// across packages both in the standalone driver (dependency-ordered
// session) and under `go vet -vettool` (facts ride the .vetx files).
//
// The value-flow model is deliberately modest — and documented, so its
// approximations are auditable:
//
//   - values are canonicalized by union-find: `a := b` aliases a to b, and
//     loads spelled identically (`tx.t` twice) are one value;
//   - flow is insensitive to statement order within a function: a value
//     marked anywhere in a body counts as marked for all of it (the
//     analyzers that need ordering, like ackorder, walk paths themselves);
//   - each value carries the set of origins it may come from (parameter,
//     global, load, call result, fresh literal), which is what the escape
//     rules dispatch on.
package ssa

import (
	"fmt"
	"go/ast"
	"go/types"
)

// OriginKind classifies where a tracked value may come from.
type OriginKind int

const (
	// OriginUnknown: no recorded source (e.g. `var t *T` never assigned).
	OriginUnknown OriginKind = iota
	// OriginParam: a parameter or the receiver of the function under
	// analysis (Index is the flat index: receiver first, then parameters).
	OriginParam
	// OriginGlobal: a package-level variable.
	OriginGlobal
	// OriginLoad: loaded from a struct field, map, slice, array, or
	// pointer dereference — the function exposes an already-retained
	// pointer.
	OriginLoad
	// OriginCall: the result of a call or type assertion.
	OriginCall
	// OriginFresh: a composite literal (or its address) built here.
	OriginFresh
	// OriginFree: a variable captured from an enclosing function (only
	// seen when analyzing a function literal's body in isolation).
	OriginFree
)

func (k OriginKind) String() string {
	switch k {
	case OriginParam:
		return "param"
	case OriginGlobal:
		return "global"
	case OriginLoad:
		return "load"
	case OriginCall:
		return "call"
	case OriginFresh:
		return "fresh"
	case OriginFree:
		return "free"
	default:
		return "unknown"
	}
}

// Origin is one possible source of a value.
type Origin struct {
	Kind OriginKind
	// Index is the flat parameter index for OriginParam (receiver 0 when
	// present, then parameters).
	Index int
}

// ValueID is the canonical identity of one value within a Flow.
type ValueID string

// ParamRef is one tracked parameter of the function under analysis.
type ParamRef struct {
	// Index is the flat index (receiver first).
	Index int
	Obj   *types.Var
}

// Flow is the value-flow approximation for one function body.
type Flow struct {
	info    *types.Info
	tracked func(types.Type) bool

	parent  map[string]string
	origins map[string]map[Origin]bool
	params  []ParamRef
	inFunc  map[types.Object]bool // objects declared in this function (incl. params)
}

// BuildFlow analyzes one function's syntax. recv may be nil (plain
// functions and literals); body may be nil (no-op flow). tracked selects
// the value type under analysis (e.g. *core.Txn).
func BuildFlow(info *types.Info, recv *ast.FieldList, ftype *ast.FuncType, body *ast.BlockStmt, tracked func(types.Type) bool) *Flow {
	f := &Flow{
		info:    info,
		tracked: tracked,
		parent:  map[string]string{},
		origins: map[string]map[Origin]bool{},
		inFunc:  map[types.Object]bool{},
	}
	flat := 0
	addParams := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if len(field.Names) == 0 {
				flat++ // unnamed receiver/param still occupies an index
				continue
			}
			for _, name := range field.Names {
				obj, _ := info.Defs[name].(*types.Var)
				if obj != nil {
					f.inFunc[obj] = true
					if tracked(obj.Type()) {
						f.params = append(f.params, ParamRef{Index: flat, Obj: obj})
						f.addOrigin(f.objKey(obj), Origin{Kind: OriginParam, Index: flat})
					}
				}
				flat++
			}
		}
	}
	addParams(recv)
	if ftype != nil {
		addParams(ftype.Params)
	}
	if body == nil {
		return f
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			f.assign(x.Lhs, x.Rhs)
		case *ast.ValueSpec:
			var lhs []ast.Expr
			for _, id := range x.Names {
				if obj := info.Defs[id]; obj != nil {
					f.inFunc[obj] = true
				}
				lhs = append(lhs, id)
			}
			f.assign(lhs, x.Values)
		case *ast.RangeStmt:
			// Iteration variables over a container of tracked values are
			// loads.
			for _, v := range []ast.Expr{x.Key, x.Value} {
				if v == nil {
					continue
				}
				if k, ok := f.keyOf(v); ok {
					f.addOrigin(k, Origin{Kind: OriginLoad})
				}
			}
		case ast.Expr:
			// Record the intrinsic origin of every tracked expression as
			// it is visited.
			if k, ok := f.keyOf(x); ok {
				f.recordIntrinsic(k, x)
			}
		}
		return true
	})
	return f
}

// TrackedParams returns the function's tracked parameters (receiver
// included, flat-indexed).
func (f *Flow) TrackedParams() []ParamRef { return f.params }

// ValueOf canonicalizes a tracked expression, reporting false for
// expressions that are not tracked values.
func (f *Flow) ValueOf(e ast.Expr) (ValueID, bool) {
	k, ok := f.keyOf(e)
	if !ok {
		return "", false
	}
	return ValueID(f.find(k)), true
}

// Origins returns the possible sources of a value.
func (f *Flow) Origins(v ValueID) []Origin {
	set := f.origins[f.find(string(v))]
	out := make([]Origin, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	return out
}

// HasOrigin reports whether any source of v has kind k.
func (f *Flow) HasOrigin(v ValueID, k OriginKind) bool {
	for o := range f.origins[f.find(string(v))] {
		if o.Kind == k {
			return true
		}
	}
	return false
}

// ValueOfParam canonicalizes a tracked parameter returned by TrackedParams.
func (f *Flow) ValueOfParam(p ParamRef) ValueID {
	return ValueID(f.find(f.objKey(p.Obj)))
}

// ParamIndexOf returns the flat parameter index of v, or -1 when v is not a
// parameter of the function under analysis.
func (f *Flow) ParamIndexOf(v ValueID) int {
	for o := range f.origins[f.find(string(v))] {
		if o.Kind == OriginParam {
			return o.Index
		}
	}
	return -1
}

// assign unions assignable tracked pairs and threads tuple results.
func (f *Flow) assign(lhs, rhs []ast.Expr) {
	switch {
	case len(lhs) == len(rhs):
		for i := range lhs {
			lk, lok := f.keyOf(lhs[i])
			if !lok {
				continue
			}
			if rk, rok := f.keyOf(rhs[i]); rok {
				f.union(lk, rk)
			}
		}
	case len(rhs) == 1 && len(lhs) > 1:
		// x, y := f()  /  v, ok := m[k]  /  t, ok := x.(*T)
		for i, l := range lhs {
			lk, lok := f.keyOf(l)
			if !lok {
				continue
			}
			switch r := Unparen(rhs[0]).(type) {
			case *ast.CallExpr:
				f.union(lk, fmt.Sprintf("t:%d#%d", r.Pos(), i))
				f.addOrigin(lk, Origin{Kind: OriginCall})
			case *ast.TypeAssertExpr:
				f.addOrigin(lk, Origin{Kind: OriginCall})
			case *ast.IndexExpr, *ast.UnaryExpr:
				// map load with comma-ok, channel receive
				f.addOrigin(lk, Origin{Kind: OriginLoad})
			}
		}
	}
}

// recordIntrinsic attaches the origin an expression shape implies.
func (f *Flow) recordIntrinsic(key string, e ast.Expr) {
	switch x := Unparen(e).(type) {
	case *ast.Ident:
		obj := f.objOf(x)
		if obj == nil {
			return
		}
		switch {
		case f.inFunc[obj]:
			// Param origins were added up front; plain locals get their
			// origins from assignments.
		case obj.Parent() != nil && obj.Parent().Parent() == types.Universe:
			f.addOrigin(key, Origin{Kind: OriginGlobal})
		default:
			f.addOrigin(key, Origin{Kind: OriginFree})
		}
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		f.addOrigin(key, Origin{Kind: OriginLoad})
	case *ast.CallExpr, *ast.TypeAssertExpr:
		f.addOrigin(key, Origin{Kind: OriginCall})
	case *ast.CompositeLit:
		f.addOrigin(key, Origin{Kind: OriginFresh})
	case *ast.UnaryExpr:
		if _, ok := x.X.(*ast.CompositeLit); ok {
			f.addOrigin(key, Origin{Kind: OriginFresh})
		}
	}
}

// keyOf computes the canonicalizable key of a tracked expression.
func (f *Flow) keyOf(e ast.Expr) (string, bool) {
	e = Unparen(e)
	tv, ok := f.info.Types[e]
	if !ok || !f.tracked(tv.Type) {
		// Defining idents (lhs of :=) carry no Types entry; fall through
		// for idents and check the object type.
		if id, isIdent := e.(*ast.Ident); isIdent {
			if obj := f.objOf(id); obj != nil && f.tracked(obj.Type()) {
				return f.objKey(obj), true
			}
		}
		return "", false
	}
	switch x := e.(type) {
	case *ast.Ident:
		if obj := f.objOf(x); obj != nil {
			return f.objKey(obj), true
		}
		return "", false
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return "s:" + types.ExprString(x), true
	case *ast.CallExpr, *ast.TypeAssertExpr, *ast.CompositeLit, *ast.UnaryExpr:
		return fmt.Sprintf("e:%d", x.Pos()), true
	default:
		return "", false
	}
}

func (f *Flow) objOf(id *ast.Ident) types.Object {
	if obj := f.info.Uses[id]; obj != nil {
		return obj
	}
	return f.info.Defs[id]
}

func (f *Flow) objKey(obj types.Object) string {
	return fmt.Sprintf("o:%d", obj.Pos())
}

// union-find

func (f *Flow) find(k string) string {
	p, ok := f.parent[k]
	if !ok || p == k {
		return k
	}
	root := f.find(p)
	f.parent[k] = root
	return root
}

func (f *Flow) union(a, b string) {
	ra, rb := f.find(a), f.find(b)
	if ra == rb {
		return
	}
	f.parent[ra] = rb
	// Merge origin sets into the new root.
	if set := f.origins[ra]; set != nil {
		dst := f.origins[rb]
		if dst == nil {
			dst = map[Origin]bool{}
			f.origins[rb] = dst
		}
		for o := range set {
			dst[o] = true
		}
		delete(f.origins, ra)
	}
}

func (f *Flow) addOrigin(k string, o Origin) {
	root := f.find(k)
	set := f.origins[root]
	if set == nil {
		set = map[Origin]bool{}
		f.origins[root] = set
	}
	set[o] = true
}
