package ssa

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// checkSrc parses and type-checks one file and returns its syntax and info.
func checkSrc(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f, info, pkg
}

// decl returns the declaration of the named function.
func decl(t *testing.T, f *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

// trackT tracks *p.T values.
func trackT(typ types.Type) bool {
	p, ok := typ.(*types.Pointer)
	if !ok {
		return false
	}
	return IsNamed(p.Elem(), "p", "T")
}

const flowSrc = `package p

type T struct{ next *T }

var global *T

type box struct{ t *T }

func make2() (*T, *T) { return nil, nil }

func flows(t *T, b *box, n int) *T {
	u := t                 // alias of the parameter
	fresh := &T{}          // fresh composite
	loaded := b.t          // load from a field
	g := global            // global
	called, other := make2() // call results via tuple assign
	_ = other
	chained := u
	_ = fresh
	_ = loaded
	_ = g
	_ = called
	return chained
}
`

func flowFor(t *testing.T, f *ast.File, info *types.Info, name string) (*Flow, *ast.FuncDecl) {
	fd := decl(t, f, name)
	return BuildFlow(info, fd.Recv, fd.Type, fd.Body, trackT), fd
}

// identVal looks up the canonical value of the named local in the body.
func identVal(t *testing.T, flow *Flow, fd *ast.FuncDecl, name string) ValueID {
	t.Helper()
	var v ValueID
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name && !found {
			if got, ok := flow.ValueOf(id); ok {
				v, found = got, true
			}
		}
		return true
	})
	if !found {
		t.Fatalf("no tracked value for %q", name)
	}
	return v
}

func TestFlowParamAliasing(t *testing.T) {
	_, f, info, _ := checkSrc(t, flowSrc)
	flow, fd := flowFor(t, f, info, "flows")

	params := flow.TrackedParams()
	if len(params) != 1 || params[0].Index != 0 || params[0].Obj.Name() != "t" {
		t.Fatalf("tracked params = %+v, want just t at flat index 0", params)
	}

	// u and chained alias the parameter; the union-find must canonicalize
	// all three to one value with a param origin.
	pv := flow.ValueOfParam(params[0])
	if got := identVal(t, flow, fd, "u"); got != pv {
		t.Fatalf("u not unified with parameter: %q vs %q", got, pv)
	}
	if got := identVal(t, flow, fd, "chained"); got != pv {
		t.Fatalf("chained not unified with parameter through u: %q vs %q", got, pv)
	}
	if idx := flow.ParamIndexOf(pv); idx != 0 {
		t.Fatalf("ParamIndexOf = %d, want 0", idx)
	}
	if !flow.HasOrigin(pv, OriginParam) {
		t.Fatalf("parameter value lacks param origin: %v", flow.Origins(pv))
	}
}

func TestFlowIntrinsicOrigins(t *testing.T) {
	_, f, info, _ := checkSrc(t, flowSrc)
	flow, fd := flowFor(t, f, info, "flows")

	cases := []struct {
		local string
		kind  OriginKind
	}{
		{"fresh", OriginFresh},
		{"loaded", OriginLoad},
		{"g", OriginGlobal},
		{"called", OriginCall},
		{"other", OriginCall},
	}
	for _, tc := range cases {
		v := identVal(t, flow, fd, tc.local)
		if !flow.HasOrigin(v, tc.kind) {
			t.Errorf("%s: origins %v, want %v", tc.local, flow.Origins(v), tc.kind)
		}
		if flow.ParamIndexOf(v) >= 0 {
			t.Errorf("%s: spuriously unified with a parameter", tc.local)
		}
	}
}

func TestFlowReceiverIsFlatIndexZero(t *testing.T) {
	src := `package p
type T struct{}
type S struct{}
func (s *S) m(a *T, b *T) {}
`
	_, f, info, _ := checkSrc(t, src)
	fd := decl(t, f, "m")
	// Track *T only: receiver *S occupies flat index 0 without being
	// tracked, so a and b are flat indices 1 and 2.
	flow := BuildFlow(info, fd.Recv, fd.Type, fd.Body, trackT)
	params := flow.TrackedParams()
	if len(params) != 2 || params[0].Index != 1 || params[1].Index != 2 {
		t.Fatalf("flat indices = %+v, want a@1 b@2", params)
	}
}

const callSrc = `package p

type T struct{}

func (t *T) M() {}

type I interface{ M() }

func target() {}

func calls(t *T, i I, fv func()) {
	target()
	t.M()
	i.M()
	fv()
}
`

func callAt(t *testing.T, fd *ast.FuncDecl, idx int) *ast.CallExpr {
	t.Helper()
	var calls []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, c)
		}
		return true
	})
	if idx >= len(calls) {
		t.Fatalf("only %d calls", len(calls))
	}
	return calls[idx]
}

func TestStaticCallee(t *testing.T) {
	_, f, info, _ := checkSrc(t, callSrc)
	fd := decl(t, f, "calls")

	if fn := StaticCallee(info, callAt(t, fd, 0)); fn == nil || fn.Name() != "target" {
		t.Fatalf("plain call resolved to %v", fn)
	}
	if fn := StaticCallee(info, callAt(t, fd, 1)); fn == nil || fn.FullName() != "(*p.T).M" {
		t.Fatalf("method call resolved to %v", fn)
	}
	// Interface dispatch: Callee sees the method but flags it; StaticCallee
	// refuses it.
	fn, iface := Callee(info, callAt(t, fd, 2))
	if fn == nil || !iface {
		t.Fatalf("interface call: fn=%v iface=%v", fn, iface)
	}
	if StaticCallee(info, callAt(t, fd, 2)) != nil {
		t.Fatal("StaticCallee resolved an interface dispatch")
	}
	if StaticCallee(info, callAt(t, fd, 3)) != nil {
		t.Fatal("StaticCallee resolved a func value call")
	}
}

func TestDeclsAndImplementers(t *testing.T) {
	src := `package p

type I interface{ M() }
type A struct{}
func (A) M() {}
type B struct{}
func (*B) M() {}
type C struct{} // does not implement
func (C) N() {}
func free() {}
`
	_, f, info, pkg := checkSrc(t, src)
	decls := Decls(info, []*ast.File{f})
	names := map[string]bool{}
	for fn := range decls {
		names[fn.Name()] = true
	}
	if !names["M"] || !names["N"] || !names["free"] {
		t.Fatalf("Decls missed declarations: %v", names)
	}

	iface := pkg.Scope().Lookup("I").Type().Underlying().(*types.Interface)
	m := iface.Method(0)
	impls := Implementers(pkg, m)
	got := map[string]bool{}
	for _, fn := range impls {
		got[fn.FullName()] = true
	}
	if !got["(p.A).M"] || !got["(*p.B).M"] {
		t.Fatalf("Implementers = %v, want A.M and (*B).M", got)
	}
	for name := range got {
		if name == "(p.C).N" {
			t.Fatal("non-implementer included")
		}
	}
}

func TestTypeHelpers(t *testing.T) {
	src := `package p
type T struct{}
type Alias = T
var v *T
`
	_, f, info, pkg := checkSrc(t, src)
	_ = f
	_ = info
	tt := pkg.Scope().Lookup("v").Type()
	if !IsNamed(tt, "p", "T") {
		t.Fatal("IsNamed failed to unwrap the pointer")
	}
	if IsNamed(tt, "q", "T") || IsNamed(tt, "p", "U") {
		t.Fatal("IsNamed matched the wrong package or name")
	}
	if n := NamedOf(tt); n == nil || n.Obj().Name() != "T" {
		t.Fatalf("NamedOf = %v", n)
	}
	if NamedOf(types.Typ[types.Int]) != nil {
		t.Fatal("NamedOf invented a named type for int")
	}
}
