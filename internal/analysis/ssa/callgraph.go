package ssa

import (
	"go/ast"
	"go/types"
	"sort"
)

// Decls indexes the package's declared functions with bodies, mapping the
// *types.Func object to its syntax. Function literals are not included —
// they have no object; analyzers reach them through the enclosing
// declaration's body.
func Decls(info *types.Info, files []*ast.File) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
				out[obj] = fd
			}
		}
	}
	return out
}

// Callee resolves a call expression to its target function object. iface
// reports an interface method call — the object describes the abstract
// method and the concrete dispatch targets come from Implementers (CHA).
// Function-value calls, builtins, and conversions resolve to nil.
func Callee(info *types.Info, call *ast.CallExpr) (fn *types.Func, iface bool) {
	var id *ast.Ident
	switch fun := Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, false
	}
	obj, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil, false
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return obj, true
		}
	}
	return obj, false
}

// StaticCallee resolves a call to a concrete function or method, or nil for
// interface dispatch, func values, and builtins.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fn, iface := Callee(info, call)
	if iface {
		return nil
	}
	return fn
}

// Implementers performs class-hierarchy analysis for one interface method:
// it returns the corresponding concrete methods of every named type visible
// from pkg (its own scope and its direct imports' scopes) that implements
// the method's interface. The result is the CHA dispatch-target set an
// analyzer joins summaries over; an empty result means no implementation is
// visible and the analyzer must fall back to its conservative default.
func Implementers(pkg *types.Package, m *types.Func) []*types.Func {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	ifaceT := sig.Recv().Type()
	iface, ok := ifaceT.Underlying().(*types.Interface)
	if !ok {
		return nil
	}

	var out []*types.Func
	seen := map[*types.Func]bool{}
	consider := func(obj types.Object) {
		tn, ok := obj.(*types.TypeName)
		if !ok || tn.IsAlias() {
			return
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			return
		}
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			return
		}
		ms := types.NewMethodSet(ptr)
		for i := 0; i < ms.Len(); i++ {
			if fn, ok := ms.At(i).Obj().(*types.Func); ok && fn.Name() == m.Name() && !seen[fn] {
				seen[fn] = true
				out = append(out, fn)
			}
		}
	}
	scopes := []*types.Scope{pkg.Scope()}
	for _, imp := range pkg.Imports() {
		scopes = append(scopes, imp.Scope())
	}
	for _, sc := range scopes {
		for _, name := range sc.Names() {
			consider(sc.Lookup(name))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// Unparen strips any enclosing parentheses.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// NamedOf unwraps pointers to the underlying named type, or nil.
func NamedOf(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		default:
			return nil
		}
	}
}

// IsNamed reports whether t (possibly through pointers) is the named type
// pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n := NamedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
