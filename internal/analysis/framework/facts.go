package framework

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
)

// FactStore shares analyzer-produced summaries across the packages of one
// driver run. Facts are keyed by (analyzer, object key) where the object key
// is the stable cross-package identity produced by FactKey — NOT the
// types.Object pointer, because a package sees its dependencies through gc
// export data while the driver analyzed them from source, so the two views
// never share object identity.
//
// Fact values are stored as JSON. That costs a marshal per export, and buys
// the property the vettool mode needs: the same store serializes into the
// .vetx files the cmd/go unitchecker protocol threads between per-package
// tool invocations, so interprocedural analyzers behave identically
// standalone and under `go vet -vettool`.
type FactStore struct {
	m map[factID]json.RawMessage
}

type factID struct {
	Analyzer string
	Key      string
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: map[factID]json.RawMessage{}}
}

// FactKey is the stable cross-package identity of a package-level object:
// the qualified function name for functions and methods (e.g.
// "(*repro/internal/core.Txn).AddDep", "repro/internal/core.GetTxn"), and
// package-path-qualified names otherwise. Objects without a package (error
// methods, builtins) have no key.
func FactKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		return fn.FullName()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

func (s *FactStore) export(analyzer, key string, v any) error {
	if key == "" {
		return nil
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("encoding fact %s/%s: %w", analyzer, key, err)
	}
	s.m[factID{analyzer, key}] = raw
	return nil
}

func (s *FactStore) lookup(analyzer, key string, out any) bool {
	raw, ok := s.m[factID{analyzer, key}]
	if !ok {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

// Lookup decodes the fact stored for (analyzer, key) into out, reporting
// whether one existed. This is the driver-side accessor; analyzers use the
// Pass methods.
func (s *FactStore) Lookup(analyzer, key string, out any) bool {
	return s.lookup(analyzer, key, out)
}

// Keys returns the sorted object keys holding facts for analyzer.
func (s *FactStore) Keys(analyzer string) []string {
	var out []string
	for id := range s.m {
		if id.Analyzer == analyzer {
			out = append(out, id.Key)
		}
	}
	sort.Strings(out)
	return out
}

// wireFact is the serialized form of one fact (vetx payload entry).
type wireFact struct {
	Analyzer string          `json:"a"`
	Key      string          `json:"k"`
	Value    json.RawMessage `json:"v"`
}

// Encode serializes every fact in the store (the .vetx payload written for
// dependents in vettool mode).
func (s *FactStore) Encode() ([]byte, error) {
	facts := make([]wireFact, 0, len(s.m))
	for id, raw := range s.m {
		facts = append(facts, wireFact{Analyzer: id.Analyzer, Key: id.Key, Value: raw})
	}
	sort.Slice(facts, func(i, j int) bool {
		if facts[i].Analyzer != facts[j].Analyzer {
			return facts[i].Analyzer < facts[j].Analyzer
		}
		return facts[i].Key < facts[j].Key
	})
	return json.Marshal(facts)
}

// Decode merges serialized facts (a dependency's .vetx payload) into the
// store. Empty input is a valid empty store.
func (s *FactStore) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var facts []wireFact
	if err := json.Unmarshal(data, &facts); err != nil {
		return fmt.Errorf("decoding facts: %w", err)
	}
	for _, f := range facts {
		s.m[factID{f.Analyzer, f.Key}] = f.Value
	}
	return nil
}

// ExportObjectFact attaches a fact to obj for this pass's analyzer. The
// value must be JSON-marshalable; it becomes visible to later passes of the
// same analyzer through ImportObjectFact.
func (p *Pass) ExportObjectFact(obj types.Object, fact any) {
	if p.facts == nil {
		return
	}
	if err := p.facts.export(p.Analyzer.Name, FactKey(obj), fact); err != nil {
		p.factErr = err
	}
}

// ImportObjectFact loads the fact attached to obj by this analyzer in an
// earlier (dependency) pass, reporting whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, out any) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.lookup(p.Analyzer.Name, FactKey(obj), out)
}

// ImportFactByKey loads a fact by its FactKey string — for enumeration-style
// consumers that walk AllFactKeys rather than holding a types.Object.
func (p *Pass) ImportFactByKey(key string, out any) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.lookup(p.Analyzer.Name, key, out)
}

// AllFactKeys returns the sorted keys of every fact this analyzer has
// exported so far in the session.
func (p *Pass) AllFactKeys() []string {
	if p.facts == nil {
		return nil
	}
	return p.facts.Keys(p.Analyzer.Name)
}
