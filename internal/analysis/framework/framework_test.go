package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const supSrc = `package p

func f() {
	//lint:allow syncerr -- teardown on the error path
	g()
	//lint:allow syncerr
	g()
	h() //lint:allow lockorder unlockpath -- instance-ordered by shard index
}

func g() {}
func h() {}
`

// posAt returns a Pos on the given 1-based line of the parsed file.
func posAt(fset *token.FileSet, line int) token.Pos {
	var pos token.Pos
	fset.Iterate(func(f *token.File) bool {
		pos = f.LineStart(line)
		return false
	})
	return pos
}

func TestSuppressions(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", supSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := CollectSuppressions(fset, []*ast.File{f})

	// Line 5: g() under a justified allow on line 4.
	if !sup.Allows(fset, "syncerr", posAt(fset, 5)) {
		t.Error("justified line-above allow must suppress syncerr on line 5")
	}
	// Line 7: g() under a bare allow with no justification — not valid.
	if sup.Allows(fset, "syncerr", posAt(fset, 7)) {
		t.Error("an allow without a -- justification must not suppress")
	}
	// Line 8: same-line allow naming two analyzers.
	for _, name := range []string{"lockorder", "unlockpath"} {
		if !sup.Allows(fset, name, posAt(fset, 8)) {
			t.Errorf("same-line allow must suppress %s on line 8", name)
		}
	}
	// The allow names are exact: other analyzers stay unsuppressed.
	if sup.Allows(fset, "detguard", posAt(fset, 8)) {
		t.Error("allow must only suppress the named analyzers")
	}
}

func TestHasDirective(t *testing.T) {
	fset := token.NewFileSet()
	src := "// Package p is deterministic.\n//\n// tebaldi:deterministic\npackage p\n"
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	if !HasDirective([]*ast.File{f}, "deterministic") {
		t.Error("directive comment not found")
	}
	if HasDirective([]*ast.File{f}, "frozen") {
		t.Error("absent directive reported present")
	}
}
