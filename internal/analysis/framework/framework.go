// Package framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis driver contract, shaped so the tebaldivet
// analyzers could be ported to the real framework verbatim if the module
// ever grows the x/tools dependency. The container this repo builds in has
// no module proxy access, so the framework — like everything else here — is
// stdlib only.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer minus requires; object facts are
// supported through the session FactStore (see facts.go).
type Analyzer struct {
	// Name is the check's identifier, used in output and in
	// //lint:allow suppressions.
	Name string
	// Doc is the one-paragraph description printed by `tebaldivet -help`.
	Doc string
	// Run performs the check on one package, reporting findings through
	// pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags   []Diagnostic
	facts   *FactStore
	factErr error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Report records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Result is the full outcome of analyzing one package: the surviving
// findings, the findings a valid //lint:allow dropped, and every allow site
// seen — the raw material of the stale-suppression audit.
type Result struct {
	// Diags are the unsuppressed findings, sorted by position.
	Diags []Diagnostic
	// Suppressed are the findings dropped by a justified allow.
	Suppressed []Diagnostic
	// Allows are the justified //lint:allow sites of the package, one per
	// analyzer name per comment.
	Allows []AllowSite
}

// Session runs analyzers over a sequence of packages sharing one fact
// store. Analyze dependencies before dependents (the driver topologically
// sorts; the vettool protocol guarantees it) so interprocedural summaries
// are present when a caller's package is reached.
type Session struct {
	facts *FactStore
}

// NewSession returns a session with an empty fact store.
func NewSession() *Session { return &Session{facts: NewFactStore()} }

// Facts exposes the session's fact store (vetx encode/decode in the
// driver).
func (s *Session) Facts() *FactStore { return s.facts }

// Run applies the analyzers to one package. Suppressed findings are
// separated, not dropped, and allow sites are reported so the driver can
// audit them. Analyzer errors are returned as-is.
func (s *Session) Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) (*Result, error) {
	sup := CollectSuppressions(fset, files)
	res := &Result{Allows: sup.Sites}
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, facts: s.facts}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		if pass.factErr != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, pass.factErr)
		}
		for _, d := range pass.diags {
			if sup.Allows(fset, a.Name, d.Pos) {
				res.Suppressed = append(res.Suppressed, d)
			} else {
				res.Diags = append(res.Diags, d)
			}
		}
	}
	sortDiags(fset, res.Diags)
	sortDiags(fset, res.Suppressed)
	return res, nil
}

func sortDiags(fset *token.FileSet, diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// Run applies the analyzers to one package in a fresh fact-free session and
// returns the surviving findings. Single-package convenience wrapper.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := NewSession().Run(fset, files, pkg, info, analyzers)
	if err != nil {
		return nil, err
	}
	return res.Diags, nil
}

// AllowSite is one justified //lint:allow comment, per analyzer named.
type AllowSite struct {
	Analyzer string
	Pos      token.Pos
}

// Suppressions indexes the justified //lint:allow comments of a package.
// A finding is suppressed by a comment of the form
//
//	//lint:allow <analyzer> -- <justification>
//
// on the finding's line or the line directly above it. The justification
// is mandatory: a bare allow without a reason does not suppress.
type Suppressions struct {
	// lines maps file -> line -> analyzer names allowed on that line.
	lines map[string]map[int][]string
	// Sites lists every justified allow in file order.
	Sites []AllowSite
}

// CollectSuppressions scans the files' comments for //lint:allow markers.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) Suppressions {
	sup := Suppressions{lines: map[string]map[int][]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:allow") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:allow"))
				name, reason, ok := strings.Cut(rest, "--")
				if !ok || strings.TrimSpace(reason) == "" {
					continue // no justification: not a valid suppression
				}
				pos := fset.Position(c.Pos())
				m := sup.lines[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					sup.lines[pos.Filename] = m
				}
				for _, n := range strings.Fields(name) {
					m[pos.Line] = append(m[pos.Line], n)
					sup.Sites = append(sup.Sites, AllowSite{Analyzer: n, Pos: c.Pos()})
				}
			}
		}
	}
	return sup
}

// Allows reports whether analyzer name is suppressed at pos.
func (s Suppressions) Allows(fset *token.FileSet, name string, pos token.Pos) bool {
	p := fset.Position(pos)
	m := s.lines[p.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, n := range m[line] {
			if n == name {
				return true
			}
		}
	}
	return false
}

// Inspect walks every file with ast.Inspect.
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}

// HasDirective reports whether any comment in the package equals
// "tebaldi:<name>" (package-scoped opt-in markers, e.g.
// tebaldi:deterministic).
func HasDirective(files []*ast.File, name string) bool {
	want := "tebaldi:" + name
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == want {
					return true
				}
			}
		}
	}
	return false
}
