// Package framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis driver contract, shaped so the tebaldivet
// analyzers could be ported to the real framework verbatim if the module
// ever grows the x/tools dependency. The container this repo builds in has
// no module proxy access, so the framework — like everything else here — is
// stdlib only.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer minus facts and requires.
type Analyzer struct {
	// Name is the check's identifier, used in output and in
	// //lint:allow suppressions.
	Name string
	// Doc is the one-paragraph description printed by `tebaldivet -help`.
	Doc string
	// Run performs the check on one package, reporting findings through
	// pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Report records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies the analyzers to one package and returns the surviving
// findings: suppressed findings (see Suppressions) are dropped, and the
// rest are sorted by position. Analyzer errors are returned as-is.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	sup := CollectSuppressions(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range pass.diags {
			if !sup.Allows(fset, a.Name, d.Pos) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// Suppressions maps file -> line -> analyzer names allowed on that line.
// A finding is suppressed by a comment of the form
//
//	//lint:allow <analyzer> -- <justification>
//
// on the finding's line or the line directly above it. The justification
// is mandatory: a bare allow without a reason does not suppress.
type Suppressions map[string]map[int][]string

// CollectSuppressions scans the files' comments for //lint:allow markers.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) Suppressions {
	sup := Suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:allow") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:allow"))
				name, reason, ok := strings.Cut(rest, "--")
				if !ok || strings.TrimSpace(reason) == "" {
					continue // no justification: not a valid suppression
				}
				pos := fset.Position(c.Pos())
				m := sup[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					sup[pos.Filename] = m
				}
				for _, n := range strings.Fields(name) {
					m[pos.Line] = append(m[pos.Line], n)
				}
			}
		}
	}
	return sup
}

// Allows reports whether analyzer name is suppressed at pos.
func (s Suppressions) Allows(fset *token.FileSet, name string, pos token.Pos) bool {
	p := fset.Position(pos)
	m := s[p.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, n := range m[line] {
			if n == name {
				return true
			}
		}
	}
	return false
}

// Inspect walks every file with ast.Inspect.
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}

// HasDirective reports whether any comment in the package equals
// "tebaldi:<name>" (package-scoped opt-in markers, e.g.
// tebaldi:deterministic).
func HasDirective(files []*ast.File, name string) bool {
	want := "tebaldi:" + name
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == want {
					return true
				}
			}
		}
	}
	return false
}
