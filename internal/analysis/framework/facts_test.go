package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// checkPkg type-checks one single-file package.
func checkPkg(t *testing.T, path, src string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	pkg, err := (&types.Config{}).Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}, pkg, info
}

type testFact struct {
	N int `json:"n"`
}

func TestFactKey(t *testing.T) {
	_, _, pkg, _ := checkPkg(t, "kp", `package kp
type T struct{}
func (t *T) M() {}
func F() {}
var V int
`)
	f := pkg.Scope().Lookup("F")
	if got := FactKey(f); got != "kp.F" {
		t.Errorf("FactKey(F) = %q", got)
	}
	tt := pkg.Scope().Lookup("T").Type()
	m, _, _ := types.LookupFieldOrMethod(types.NewPointer(tt), true, pkg, "M")
	if got := FactKey(m); got != "(*kp.T).M" {
		t.Errorf("FactKey(M) = %q", got)
	}
	if got := FactKey(pkg.Scope().Lookup("V")); got != "kp.V" {
		t.Errorf("FactKey(V) = %q", got)
	}
	if FactKey(nil) != "" {
		t.Error("FactKey(nil) must be empty")
	}
}

func TestFactStoreRoundTrip(t *testing.T) {
	s := NewFactStore()
	if err := s.export("an", "kp.F", &testFact{N: 7}); err != nil {
		t.Fatal(err)
	}
	var out testFact
	if !s.Lookup("an", "kp.F", &out) || out.N != 7 {
		t.Fatalf("lookup = %+v", out)
	}
	if s.Lookup("other", "kp.F", &out) {
		t.Fatal("fact leaked across analyzers")
	}
	if got := s.Keys("an"); len(got) != 1 || got[0] != "kp.F" {
		t.Fatalf("Keys = %v", got)
	}

	// Encode into a fresh store (the vetx path).
	payload, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewFactStore()
	if err := s2.Decode(payload); err != nil {
		t.Fatal(err)
	}
	out = testFact{}
	if !s2.Lookup("an", "kp.F", &out) || out.N != 7 {
		t.Fatalf("post-decode lookup = %+v", out)
	}
	// Empty payload is a valid empty store.
	if err := NewFactStore().Decode(nil); err != nil {
		t.Fatal(err)
	}
}

// TestSessionFactsAndSuppression: a session shares facts between Run calls
// (dependency first, dependent second — the driver's toposorted order), and
// Result separates suppressed findings from live ones.
func TestSessionFactsAndSuppression(t *testing.T) {
	exporter := &Analyzer{
		Name: "testan",
		Doc:  "test analyzer",
		Run: func(p *Pass) error {
			p.ExportObjectFact(p.Pkg.Scope().Lookup("Dep"), &testFact{N: 41})
			return nil
		},
	}
	importerAn := &Analyzer{
		Name: "testan",
		Doc:  "test analyzer",
		Run: func(p *Pass) error {
			var f testFact
			if !p.ImportFactByKey("dep.Dep", &f) {
				return nil
			}
			// Two findings: line 4 is suppressed in the source below.
			pos := p.Files[0].Decls[0].Pos()
			p.Reportf(pos, "fact says %d", f.N+1)
			p.Reportf(p.Files[0].Decls[1].Pos(), "unsuppressed")
			return nil
		},
	}

	session := NewSession()
	fset1, files1, pkg1, info1 := checkPkg(t, "dep", "package dep\n\nfunc Dep() {}\n")
	if _, err := session.Run(fset1, files1, pkg1, info1, []*Analyzer{exporter}); err != nil {
		t.Fatal(err)
	}

	src := `package use

//lint:allow testan -- seeded suppression
func a() {}

func b() {}
`
	fset2, files2, pkg2, info2 := checkPkg(t, "use", src)
	res, err := session.Run(fset2, files2, pkg2, info2, []*Analyzer{importerAn})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) != 1 || res.Diags[0].Message != "unsuppressed" {
		t.Fatalf("Diags = %+v, want only the unsuppressed finding", res.Diags)
	}
	if len(res.Suppressed) != 1 || res.Suppressed[0].Message != "fact says 42" {
		t.Fatalf("Suppressed = %+v, want the fact-derived finding", res.Suppressed)
	}
	if len(res.Allows) != 1 || res.Allows[0].Analyzer != "testan" {
		t.Fatalf("Allows = %+v", res.Allows)
	}
}
