// Package analysistest runs a tebaldivet analyzer over GOPATH-style golden
// packages under the calling test's testdata/src tree and checks the
// diagnostics against `// want "regex"` comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract (which this module
// cannot depend on — see internal/analysis/framework).
//
// A want comment declares, on the line a diagnostic is expected, one or more
// Go-quoted regular expressions that must each match one diagnostic message
// reported on that line:
//
//	mu.Lock()
//	return // want `mu acquired here is not released`
//
// Unexpected diagnostics and unmatched expectations are both test failures.
// Suppressed findings (see framework.Suppressions) never reach the matcher,
// so a `//lint:allow` site with no want comment asserts the suppression
// works.
package analysistest

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/load"
)

// expectation is one parsed want pattern.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each import path from ./testdata/src, applies the analyzer, and
// reports diagnostic/expectation mismatches through t.
//
// Interprocedural analyzers are supported: the testdata tree's own
// dependencies of the target package (stub packages like
// testdata/src/repro/internal/core, which shadow the real module packages
// through the source-first importer) are analyzed first in dependency order,
// sharing one fact session with the target — so callee summaries are present
// exactly as they would be in the real driver. Want comments in stub
// packages are honored too; a stub with no wants asserts the analyzer stays
// quiet on it.
func Run(t *testing.T, a *framework.Analyzer, importPaths ...string) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	loader := &load.SourceLoader{
		Fset:    token.NewFileSet(),
		SrcRoot: filepath.Join(wd, "testdata", "src"),
		Exports: &load.Exports{ModuleDir: wd},
	}
	for _, path := range importPaths {
		if _, err := loader.Load(path); err != nil {
			t.Errorf("loading %s: %v", path, err)
			continue
		}
		pkgs := load.Toposort(reachable(loader, path))
		session := framework.NewSession()
		var expects []*expectation
		var diags []framework.Diagnostic
		failed := false
		for _, pkg := range pkgs {
			res, err := session.Run(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, []*framework.Analyzer{a})
			if err != nil {
				t.Errorf("analyzing %s: %v", pkg.ImportPath, err)
				failed = true
				break
			}
			diags = append(diags, res.Diags...)
			expects = append(expects, collectWants(t, pkg.Fset, pkg.Files)...)
		}
		if failed {
			continue
		}
		for _, d := range diags {
			p := loader.Fset.Position(d.Pos)
			if !claim(expects, p.Filename, p.Line, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s", p, d.Message)
			}
		}
		for _, e := range expects {
			if !e.matched {
				t.Errorf("%s:%d: no diagnostic matching %s", e.file, e.line, e.raw)
			}
		}
	}
}

// reachable returns the tree packages transitively imported by path
// (including path itself). Module and stdlib imports resolve through export
// data, not the tree, so they never appear.
func reachable(loader *load.SourceLoader, path string) []*load.Package {
	var out []*load.Package
	seen := map[string]bool{}
	var visit func(p string)
	visit = func(p string) {
		if seen[p] {
			return
		}
		seen[p] = true
		pkg := loader.Package(p)
		if pkg == nil {
			return
		}
		for _, imp := range pkg.Imports {
			visit(imp)
		}
		out = append(out, pkg)
	}
	visit(path)
	return out
}

// claim marks the first unmatched expectation at (file, line) whose pattern
// matches msg, reporting whether one existed.
func claim(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if !e.matched && e.file == file && e.line == line && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// collectWants parses the `// want "p1" "p2"` comments of the files.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitPatterns(strings.TrimPrefix(text, "want ")) {
					pat, err := unquote(raw)
					if err != nil {
						t.Errorf("%s: malformed want pattern %s: %v", pos, raw, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %s: %v", pos, raw, err)
						continue
					}
					out = append(out, &expectation{
						file: pos.Filename,
						line: pos.Line,
						re:   re,
						raw:  raw,
					})
				}
			}
		}
	}
	return out
}

// patternRE matches one Go string literal (interpreted or raw).
var patternRE = regexp.MustCompile("`[^`]*`" + `|"(?:[^"\\]|\\.)*"`)

func splitPatterns(s string) []string {
	return patternRE.FindAllString(s, -1)
}

func unquote(raw string) (string, error) {
	if strings.HasPrefix(raw, "`") {
		return strings.Trim(raw, "`"), nil
	}
	return strconv.Unquote(raw)
}
