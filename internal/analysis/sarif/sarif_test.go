package sarif

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"

	"repro/internal/analysis/framework"
)

func TestBuildAndWrite(t *testing.T) {
	fset := token.NewFileSet()
	tf := fset.AddFile("/repo/internal/core/txn.go", -1, 1000)
	tf.SetLines([]int{0, 100, 200, 300})
	pos := tf.Pos(205) // line 3, column 6

	analyzers := []*framework.Analyzer{
		{Name: "poolescape", Doc: "escape checking"},
		{Name: "ackorder", Doc: "ack ordering"},
	}
	diags := []framework.Diagnostic{
		{Analyzer: "poolescape", Pos: pos, Message: "escaped without MarkShared"},
	}

	log := Build("/repo", fset, analyzers, diags)
	if log.Version != "2.1.0" {
		t.Fatalf("version = %q", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "tebaldivet" {
		t.Fatalf("driver = %q", run.Tool.Driver.Name)
	}
	// Rules sorted by id.
	if len(run.Tool.Driver.Rules) != 2 ||
		run.Tool.Driver.Rules[0].ID != "ackorder" ||
		run.Tool.Driver.Rules[1].ID != "poolescape" {
		t.Fatalf("rules = %+v", run.Tool.Driver.Rules)
	}
	if len(run.Results) != 1 {
		t.Fatalf("results = %d", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "poolescape" || r.Level != "error" {
		t.Fatalf("result = %+v", r)
	}
	loc := r.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/core/txn.go" {
		t.Fatalf("uri = %q, want repo-relative slash path", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 3 || loc.Region.StartColumn != 6 {
		t.Fatalf("region = %+v", loc.Region)
	}

	// The document must round-trip as JSON with the SARIF field names.
	var buf bytes.Buffer
	if err := Write(&buf, log); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["$schema"] == nil || decoded["version"] != "2.1.0" {
		t.Fatalf("serialized keys wrong: %v", decoded)
	}
}

func TestBuildUnknownAnalyzerGetsRule(t *testing.T) {
	fset := token.NewFileSet()
	tf := fset.AddFile("x.go", -1, 10)
	tf.SetLines([]int{0})
	diags := []framework.Diagnostic{{Analyzer: "mystery", Pos: tf.Pos(1), Message: "m"}}
	log := Build("/elsewhere", fset, nil, diags)
	if len(log.Runs[0].Tool.Driver.Rules) != 1 || log.Runs[0].Tool.Driver.Rules[0].ID != "mystery" {
		t.Fatalf("rules = %+v", log.Runs[0].Tool.Driver.Rules)
	}
	// Paths outside root stay as given.
	if uri := log.Runs[0].Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "x.go" {
		t.Fatalf("uri = %q", uri)
	}
}
