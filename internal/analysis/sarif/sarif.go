// Package sarif renders tebaldivet findings as SARIF 2.1.0, the format
// GitHub code scanning ingests. Only the subset code scanning actually
// reads is emitted: tool/driver rules, and one result per finding with a
// physical location. Paths are emitted relative to the repository root so
// the upload maps onto the checked-out tree.
package sarif

import (
	"encoding/json"
	"go/token"
	"io"
	"path/filepath"
	"sort"

	"repro/internal/analysis/framework"
)

// Log is the top-level SARIF document.
type Log struct {
	Version string `json:"version"`
	Schema  string `json:"$schema"`
	Runs    []Run  `json:"runs"`
}

// Run is one tool invocation.
type Run struct {
	Tool    Tool     `json:"tool"`
	Results []Result `json:"results"`
}

// Tool describes the analyzer suite.
type Tool struct {
	Driver Driver `json:"driver"`
}

// Driver is the SARIF toolComponent.
type Driver struct {
	Name           string `json:"name"`
	InformationURI string `json:"informationUri,omitempty"`
	Rules          []Rule `json:"rules"`
}

// Rule is one analyzer.
type Rule struct {
	ID               string  `json:"id"`
	ShortDescription Message `json:"shortDescription"`
}

// Result is one finding.
type Result struct {
	RuleID    string     `json:"ruleId"`
	Level     string     `json:"level"`
	Message   Message    `json:"message"`
	Locations []Location `json:"locations"`
}

// Message wraps SARIF text.
type Message struct {
	Text string `json:"text"`
}

// Location / PhysicalLocation / ArtifactLocation / Region are the SARIF
// position nesting.
type Location struct {
	PhysicalLocation PhysicalLocation `json:"physicalLocation"`
}

type PhysicalLocation struct {
	ArtifactLocation ArtifactLocation `json:"artifactLocation"`
	Region           Region           `json:"region"`
}

type ArtifactLocation struct {
	URI string `json:"uri"`
}

type Region struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// Build assembles the document for one run. root is the repository root the
// artifact URIs are made relative to; diags positions resolve through fset.
func Build(root string, fset *token.FileSet, analyzers []*framework.Analyzer, diags []framework.Diagnostic) *Log {
	rules := make([]Rule, 0, len(analyzers))
	seenRule := map[string]bool{}
	for _, a := range analyzers {
		rules = append(rules, Rule{ID: a.Name, ShortDescription: Message{Text: a.Doc}})
		seenRule[a.Name] = true
	}
	// Findings from analyzers outside the declared set (defensive) still
	// need a rule entry for code scanning to accept the upload.
	for _, d := range diags {
		if !seenRule[d.Analyzer] {
			rules = append(rules, Rule{ID: d.Analyzer, ShortDescription: Message{Text: d.Analyzer}})
			seenRule[d.Analyzer] = true
		}
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]Result, 0, len(diags))
	for _, d := range diags {
		p := fset.Position(d.Pos)
		uri := p.Filename
		if rel, err := filepath.Rel(root, p.Filename); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
			uri = rel
		}
		results = append(results, Result{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: Message{Text: d.Message},
			Locations: []Location{{
				PhysicalLocation: PhysicalLocation{
					ArtifactLocation: ArtifactLocation{URI: filepath.ToSlash(uri)},
					Region:           Region{StartLine: p.Line, StartColumn: p.Column},
				},
			}},
		})
	}

	return &Log{
		Version: "2.1.0",
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Runs: []Run{{
			Tool:    Tool{Driver: Driver{Name: "tebaldivet", Rules: rules}},
			Results: results,
		}},
	}
}

// Write encodes the log as indented JSON.
func Write(w io.Writer, log *Log) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
