// Package syncerr implements the tebaldivet analyzer that forbids
// discarding the error result of durability-critical calls.
//
// The WAL's contract is "acked implies durable": every fsync and buffered
// flush on the commit, checkpoint and compaction paths must have its error
// observed, because a dropped error silently converts a durable commit into
// a volatile one (the exact shape of the directory-fsync bug this analyzer
// first caught on kvstore's atomic-rename commit path). Unlike the generic
// errcheck linters, the target list here is closed and curated: only calls
// whose failure breaks a durability invariant are errors.
//
// Test files are exempt: tests crash-inject, tear stores down mid-flight
// and discard teardown errors deliberately. The durability contract binds
// production code.
package syncerr

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the syncerr check.
var Analyzer = &framework.Analyzer{
	Name: "syncerr",
	Doc: "report discarded errors from durability-critical calls " +
		"(fsync, WAL flush/seal, kvstore sync/compaction)",
	Run: run,
}

// target identifies one durability-critical method by defining package path
// suffix, receiver type name, and method name.
type target struct {
	pathSuffix, typ, method string
}

var targets = []target{
	// fsync itself.
	{"os", "File", "Sync"},
	// Buffered log bytes: an unflushed writer means unreported data loss.
	{"bufio", "Writer", "Flush"},
	// kvstore durability surface (§4.5.4 storage substitute).
	{"internal/kvstore", "Store", "Sync"},
	{"internal/kvstore", "Store", "Rewrite"},
	{"internal/kvstore", "Store", "Close"},
	// WAL group-commit pipeline: flush/seal/checkpoint and the per-ticket
	// durable wait all report the first append/fsync error.
	{"internal/wal", "Manager", "Commit"},
	{"internal/wal", "Manager", "Checkpoint"},
	{"internal/wal", "Manager", "Close"},
	{"internal/wal", "Manager", "flushEpoch"},
	{"internal/wal", "Manager", "syncStores"},
	{"internal/wal", "Ticket", "Wait"},
}

func matches(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || fn.Pkg() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	path := fn.Pkg().Path()
	for _, t := range targets {
		if fn.Name() == t.method && named.Obj().Name() == t.typ &&
			(path == t.pathSuffix || strings.HasSuffix(path, "/"+t.pathSuffix)) {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) error {
	// calleeOf resolves a call to the durability-critical method it
	// invokes, or nil.
	calleeOf := func(call *ast.CallExpr) *types.Func {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || !matches(fn) {
			return nil
		}
		return fn
	}
	report := func(call *ast.CallExpr, fn *types.Func, how string) {
		recv := fn.Type().(*types.Signature).Recv().Type()
		pass.Reportf(call.Pos(),
			"error result of (%s).%s is %s: durability-critical calls must have their errors handled",
			types.TypeString(recv, types.RelativeTo(pass.Pkg)), fn.Name(), how)
	}
	inspect := func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if fn := calleeOf(call); fn != nil {
					report(call, fn, "discarded")
				}
			}
		case *ast.GoStmt:
			if fn := calleeOf(st.Call); fn != nil {
				report(st.Call, fn, "discarded (go statement)")
			}
		case *ast.DeferStmt:
			if fn := calleeOf(st.Call); fn != nil {
				report(st.Call, fn, "discarded (deferred)")
			}
		case *ast.AssignStmt:
			// `_ = f()` / `_, _ = f(), g()`: flag a call whose results all
			// land in blanks.
			if len(st.Rhs) == 1 && len(st.Lhs) >= 1 {
				if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
					if fn := calleeOf(call); fn != nil && allBlank(st.Lhs) {
						report(call, fn, "assigned to _")
					}
				}
				return true
			}
			for i, r := range st.Rhs {
				if call, ok := r.(*ast.CallExpr); ok && i < len(st.Lhs) {
					if fn := calleeOf(call); fn != nil && isBlank(st.Lhs[i]) {
						report(call, fn, "assigned to _")
					}
				}
			}
		}
		return true
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, inspect)
	}
	return nil
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		if !isBlank(e) {
			return false
		}
	}
	return true
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
