// Package kvstore is a stub of the repo's kvstore exposing the durability
// surface syncerr targets (matched by import-path suffix).
package kvstore

// Store mimics the durable log store.
type Store struct{}

// Sync flushes and fsyncs.
func (s *Store) Sync() error { return nil }

// Close flushes and closes.
func (s *Store) Close() error { return nil }

// Rewrite compacts the log.
func (s *Store) Rewrite() error { return nil }
