// Package syncerr_a exercises the syncerr analyzer: every way of discarding
// a durability-critical error, the handled forms that stay silent, and the
// justified-suppression escape hatch.
package syncerr_a

import (
	"bufio"
	"internal/kvstore"
	"os"
)

func discarded(f *os.File, w *bufio.Writer, st *kvstore.Store) {
	f.Sync()  // want `error result of \(\*os\.File\)\.Sync is discarded`
	w.Flush() // want `error result of \(\*bufio\.Writer\)\.Flush is discarded`
	st.Sync() // want `error result of \(\*internal/kvstore\.Store\)\.Sync is discarded`
}

func blanked(f *os.File, st *kvstore.Store) {
	_ = f.Sync()     // want `assigned to _`
	_ = st.Rewrite() // want `assigned to _`
}

func deferred(f *os.File) {
	defer f.Sync() // want `discarded \(deferred\)`
}

func fireAndForget(st *kvstore.Store) {
	go st.Close() // want `discarded \(go statement\)`
}

// checked handles the error: silent.
func checked(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return nil
}

// returned propagates the error: silent.
func returned(st *kvstore.Store) error {
	return st.Close()
}

// suppressed carries a justified //lint:allow: silent.
func suppressed(f *os.File) {
	//lint:allow syncerr -- error-path teardown; the open error is already being returned
	f.Sync()
}

type fake struct{}

// Sync on a non-target type is not durability-critical.
func (fake) Sync() error { return nil }

// notTarget discards an error outside the curated surface: silent.
func notTarget(f fake) {
	f.Sync()
}
