// Package tebaldivet assembles the engine's invariant analyzers into the
// suite run by cmd/tebaldivet and CI. Each analyzer encodes an invariant
// this repo has already paid for dynamically (see DESIGN.md, "Invariants
// as lint"):
//
//   - lockorder:  declared mutex partial order, no undeclared/cyclic nesting
//   - unlockpath: every Lock released on every return/panic path
//   - syncerr:    no discarded durability-critical errors (fsync, WAL flush)
//   - atomicmix:  no mixed atomic/plain access to one field
//   - detguard:   no wall clock / global rand / map-order dependence in
//     deterministic schedule drivers
package tebaldivet

import (
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/detguard"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/syncerr"
	"repro/internal/analysis/unlockpath"
)

// All returns the tebaldivet analyzers in reporting order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		lockorder.Analyzer,
		unlockpath.Analyzer,
		syncerr.Analyzer,
		atomicmix.Analyzer,
		detguard.Analyzer,
	}
}
