// Package tebaldivet assembles the engine's invariant analyzers into the
// suite run by cmd/tebaldivet and CI. Each analyzer encodes an invariant
// this repo has already paid for dynamically (see DESIGN.md, "Invariants
// as lint"):
//
//   - lockorder:  declared mutex partial order, no undeclared/cyclic nesting
//   - unlockpath: every Lock released on every return/panic path
//   - syncerr:    no discarded durability-critical errors (fsync, WAL flush)
//   - atomicmix:  no mixed atomic/plain access to one field
//   - detguard:   no wall clock / global rand / map-order dependence in
//     deterministic schedule drivers
//
// The v2 interprocedural analyzers (built on internal/analysis/ssa and the
// framework fact store) machine-check the PR-9 hot-path invariants:
//
//   - poolescape: every *core.Txn escape edge dominated by MarkShared; the
//     escape-point list in internal/core/txn.go is derived, not maintained
//   - goroleak:   every spawned goroutine provably terminates (or carries a
//     tebaldi:worker annotation naming its shutdown path)
//   - ackorder:   no commit acked (nil error) on a path that staged WAL
//     records but skipped the durability wait in sync mode
package tebaldivet

import (
	"repro/internal/analysis/ackorder"
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/detguard"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/goroleak"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/poolescape"
	"repro/internal/analysis/syncerr"
	"repro/internal/analysis/unlockpath"
)

// All returns the tebaldivet analyzers in reporting order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		lockorder.Analyzer,
		unlockpath.Analyzer,
		syncerr.Analyzer,
		atomicmix.Analyzer,
		detguard.Analyzer,
		poolescape.Analyzer,
		goroleak.Analyzer,
		ackorder.Analyzer,
	}
}
