// Package atomicmix implements the tebaldivet analyzer that forbids mixing
// sync/atomic and plain accesses to the same struct field.
//
// A field that is loaded or stored through sync/atomic anywhere must be
// accessed atomically at *every* site: one plain load next to an
// atomic.AddUint64 is a data race the race detector only catches if the
// interleaving happens to fire. The engine's counters, the WAL ticket
// bookkeeping and the version-chain heads all migrated to the typed
// atomic.Uint64/Bool wrappers (which make mixing impossible); this analyzer
// keeps the invariant for any remaining or future function-style usage.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the atomicmix check.
var Analyzer = &framework.Analyzer{
	Name: "atomicmix",
	Doc: "report struct fields accessed both through sync/atomic and " +
		"through plain loads/stores",
	Run: run,
}

// atomicFns are the function-style sync/atomic entry points whose first
// argument is the address of the guarded word.
var atomicFnPrefixes = []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"}

func isAtomicFn(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	for _, p := range atomicFnPrefixes {
		if strings.HasPrefix(fn.Name(), p) {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) error {
	// Pass 1: fields whose address reaches a sync/atomic call, plus the
	// exact selector nodes used there (they are the sanctioned accesses).
	atomicFields := map[*types.Var]token.Pos{}
	sanctioned := map[ast.Node]bool{}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || !isAtomicFn(fn) {
			return true
		}
		addr, ok := call.Args[0].(*ast.UnaryExpr)
		if !ok || addr.Op != token.AND {
			return true
		}
		target, ok := addr.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if f := fieldOf(pass.TypesInfo, target); f != nil {
			if _, seen := atomicFields[f]; !seen {
				atomicFields[f] = call.Pos()
			}
			sanctioned[target] = true
		}
		return true
	})
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other selector reaching one of those fields is a mixed
	// plain access.
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sanctioned[sel] {
			return true
		}
		f := fieldOf(pass.TypesInfo, sel)
		if f == nil {
			return true
		}
		first, ok := atomicFields[f]
		if !ok {
			return true
		}
		pass.Reportf(sel.Pos(),
			"field %s is accessed with sync/atomic at %s but plainly here: every access must be atomic",
			f.Name(), pass.Fset.Position(first))
		return true
	})
	return nil
}

// fieldOf resolves sel to the struct field it selects, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s := info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}
