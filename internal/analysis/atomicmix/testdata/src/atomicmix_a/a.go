// Package atomicmix_a exercises the atomicmix analyzer: a field touched by
// function-style sync/atomic anywhere must be accessed atomically
// everywhere; typed atomics and untouched fields stay unrestricted.
package atomicmix_a

import "sync/atomic"

type counter struct {
	hits  uint64
	total uint64
}

func bump(c *counter) {
	atomic.AddUint64(&c.hits, 1)
}

// mixedRead loads hits plainly after bump made it an atomic field.
func mixedRead(c *counter) uint64 {
	return c.hits // want `field hits is accessed with sync/atomic at .* but plainly here`
}

// mixedWrite stores hits plainly.
func mixedWrite(c *counter) {
	c.hits = 0 // want `field hits is accessed with sync/atomic at .* but plainly here`
}

// allAtomic keeps every access atomic: silent.
func allAtomic(c *counter) uint64 {
	return atomic.LoadUint64(&c.hits)
}

// plainOnly fields never touched by sync/atomic stay unrestricted.
func plainOnly(c *counter) uint64 {
	c.total++
	return c.total
}

type typed struct {
	n atomic.Uint64
}

// typedAtomic wrappers make mixing impossible by construction: silent.
func typedAtomic(t *typed) uint64 {
	t.n.Add(1)
	return t.n.Load()
}
