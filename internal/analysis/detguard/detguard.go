// Package detguard implements the tebaldivet analyzer that keeps the
// deterministic schedule drivers deterministic.
//
// The anomaly suite's value is replayability: a failing interleaving must
// fail identically on every run, or the suite degrades into the flake
// hunts that cost PR 2 and PR 6 (see DESIGN.md, "Determination
// Provenance"). Packages that opt in with a `tebaldi:deterministic`
// comment may not read wall-clock time (time.Now/Since/Until), draw from
// the global math/rand source, or let map iteration order decide a result.
//
// Map-order dependence is detected by two heuristics: a return or break
// inside a map range (the "first" element of an unordered map wins), and
// appending range keys/values to a slice that is never sorted in the same
// function.
package detguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/lockset"
)

// Analyzer is the detguard check.
var Analyzer = &framework.Analyzer{
	Name: "detguard",
	Doc: "report nondeterminism (wall clock, global rand, map-order " +
		"dependence) in packages marked tebaldi:deterministic",
	Run: run,
}

// timeFns are the wall-clock reads; watchdog timers (After, Sleep, Timer)
// stay legal because they bound waiting without steering results.
var timeFns = map[string]bool{"Now": true, "Since": true, "Until": true}

// randFns are the package-level draws from the global math/rand source
// (v1 and v2 names). Seeded private sources via rand.New are legal.
var randFns = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true, "Int63": true,
	"Int63n": true, "Uint32": true, "Uint64": true, "Float32": true,
	"Float64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"ExpFloat64": true, "NormFloat64": true, "N": true, "IntN": true,
	"Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}

func run(pass *framework.Pass) error {
	if !framework.HasDirective(pass.Files, "deterministic") {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "time":
			if timeFns[fn.Name()] {
				pass.Reportf(call.Pos(),
					"time.%s in a deterministic package: wall-clock reads make schedules unreplayable",
					fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if randFns[fn.Name()] {
				pass.Reportf(call.Pos(),
					"%s.%s uses the global rand source in a deterministic package: use a seeded rand.New source",
					fn.Pkg().Name(), fn.Name())
			}
		}
		return true
	})

	// Map-order heuristics need function scope (for the sorted-later
	// check).
	for _, file := range pass.Files {
		for _, fn := range lockset.FunctionsOf(pass.TypesInfo, file) {
			checkMapOrder(pass, fn.Body)
		}
	}
	return nil
}

// checkMapOrder flags order-dependent map ranges in one function body.
// Nested function literals are handled by their own FunctionsOf entry.
func checkMapOrder(pass *framework.Pass, body *ast.BlockStmt) {
	sorted := sortedSlices(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if exits(rng.Body) {
			pass.Reportf(rng.Pos(),
				"return/break inside a map range: iteration order decides which element wins; iterate a sorted key slice")
		}
		for _, app := range orderedAppends(pass, rng) {
			if !sorted[app.slice] {
				pass.Reportf(app.pos,
					"map range appends %s in iteration order and %s is never sorted in this function; sort it or iterate sorted keys",
					app.slice.Name(), app.slice.Name())
			}
		}
		return true
	})
}

// exits reports whether the range body contains a return, or a break that
// targets the map range itself (not an inner loop/switch/select). Function
// literals are opaque: a return inside one does not exit this function.
func exits(body *ast.BlockStmt) bool {
	return stmtExits(body, true)
}

func stmtExits(s ast.Stmt, breakHere bool) bool {
	switch st := s.(type) {
	case nil:
		return false
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return st.Tok == token.BREAK && st.Label == nil && breakHere
	case *ast.BlockStmt:
		for _, x := range st.List {
			if stmtExits(x, breakHere) {
				return true
			}
		}
	case *ast.IfStmt:
		return stmtExits(st.Body, breakHere) || stmtExits(st.Else, breakHere)
	case *ast.LabeledStmt:
		return stmtExits(st.Stmt, breakHere)
	case *ast.ForStmt:
		return stmtExits(st.Body, false)
	case *ast.RangeStmt:
		return stmtExits(st.Body, false)
	case *ast.SwitchStmt:
		return stmtExits(st.Body, false)
	case *ast.TypeSwitchStmt:
		return stmtExits(st.Body, false)
	case *ast.SelectStmt:
		return stmtExits(st.Body, false)
	case *ast.CaseClause:
		for _, x := range st.Body {
			if stmtExits(x, breakHere) {
				return true
			}
		}
	case *ast.CommClause:
		for _, x := range st.Body {
			if stmtExits(x, breakHere) {
				return true
			}
		}
	}
	return false
}

type orderedAppend struct {
	slice *types.Var
	pos   token.Pos
}

// orderedAppends finds `s = append(s, ...)` inside the range body where the
// appended value derives from the range's key or value variable.
func orderedAppends(pass *framework.Pass, rng *ast.RangeStmt) []orderedAppend {
	iterObjs := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				iterObjs[obj] = true
			}
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				iterObjs[obj] = true
			}
		}
	}
	if len(iterObjs) == 0 {
		return nil
	}
	var out []orderedAppend
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			return true
		}
		lhs, ok := asg.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			return true
		}
		v, ok := pass.TypesInfo.Uses[lhs].(*types.Var)
		if !ok {
			return true
		}
		usesIter := false
		for _, arg := range call.Args[1:] {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && iterObjs[pass.TypesInfo.Uses[id]] {
					usesIter = true
				}
				return !usesIter
			})
		}
		if usesIter {
			out = append(out, orderedAppend{slice: v, pos: asg.Pos()})
		}
		return true
	})
	return out
}

// sortedSlices returns the slice variables that are passed to a sort or
// slices call anywhere in the function.
func sortedSlices(pass *framework.Pass, body *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
						out[v] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}
