// Package detguard_off carries no tebaldi:deterministic directive: the
// analyzer must stay silent regardless of content.
package detguard_off

import "time"

func wallClock() time.Time {
	return time.Now()
}

func firstWins(m map[string]int) int {
	for _, v := range m {
		return v
	}
	return 0
}
