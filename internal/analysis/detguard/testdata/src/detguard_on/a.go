// Package detguard_on opts into determinism checking and exercises every
// detguard rule: wall-clock reads, global rand draws, and map-iteration-
// order dependence — plus the legal patterns (watchdog timers, seeded
// sources, sorted or order-insensitive map consumption).
//
// tebaldi:deterministic
package detguard_on

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time\.Now in a deterministic package`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in a deterministic package`
}

func globalRand() int {
	return rand.Intn(6) // want `rand\.Intn uses the global rand source`
}

// seededRand draws from a caller-seeded private source: silent.
func seededRand(r *rand.Rand) int {
	return r.Intn(6)
}

// watchdog bounds waiting without steering results: time.After is legal.
func watchdog(done chan struct{}) bool {
	select {
	case <-done:
		return true
	case <-time.After(time.Second):
		return false
	}
}

// firstWins returns whichever element the map hands out first.
func firstWins(m map[string]int) int {
	for _, v := range m { // want `return/break inside a map range`
		return v
	}
	return 0
}

// collectUnsorted builds a slice in iteration order and never sorts it.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `map range appends keys in iteration order`
	}
	return keys
}

// collectSorted sorts before returning: silent.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sumValues is order-insensitive: silent.
func sumValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
