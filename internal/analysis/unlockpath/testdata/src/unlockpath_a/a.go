// Package unlockpath_a exercises the unlockpath analyzer: leaked locks on
// return and panic paths, self-deadlocking re-acquisition, and the clean
// patterns that must stay silent.
package unlockpath_a

import "sync"

type shard struct {
	mu        sync.Mutex
	upgrading map[string]bool
}

type table struct {
	shards [8]shard
}

// acquireRetryLeak is the PR 6 lockmgr regression shape: a retry loop that
// unlocks before continuing but returns with the shard lock held on the
// timeout path.
func acquireRetryLeak(t *table, i int, deadline func() bool) bool {
	sh := &t.shards[i]
	for {
		sh.mu.Lock() // want `sh\.mu acquired here is not released on a return path`
		if sh.upgrading["k"] {
			sh.mu.Unlock()
			continue
		}
		if deadline() {
			return false // the timeout path skips the unlock
		}
		sh.mu.Unlock()
		return true
	}
}

// panicLeak exits through a panic with the lock held.
func panicLeak(t *table) {
	t.shards[0].mu.Lock() // want `t\.shards\[0\]\.mu acquired here is not released on a panic path`
	if t.shards[0].upgrading == nil {
		panic("no upgrade map")
	}
	t.shards[0].mu.Unlock()
}

// doubleAcquire re-locks a held (non-reentrant) mutex.
func doubleAcquire(s *shard) {
	s.mu.Lock()
	s.mu.Lock() // want `lock is already held on this path: re-acquiring self-deadlocks`
	s.mu.Unlock()
	s.mu.Unlock()
}

// deferClean releases through defer on every path.
func deferClean(s *shard) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.upgrading == nil {
		return 0
	}
	return len(s.upgrading)
}

// branchClean unlocks explicitly on both paths.
func branchClean(s *shard, b bool) {
	s.mu.Lock()
	if b {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

type index struct {
	mu sync.RWMutex
	n  int
}

// readRead holds only read locks; nested read acquisition is legal.
func readRead(ix *index) int {
	ix.mu.RLock()
	n := ix.n
	ix.mu.RUnlock()
	return n
}

// lockAll intentionally hands the held lock to its caller; the justified
// suppression keeps it silent.
func lockAll(s *shard) {
	//lint:allow unlockpath -- hands the held shard lock to the caller, which releases via unlockAll
	s.mu.Lock()
}

func unlockAll(s *shard) {
	s.mu.Unlock()
}

// Lock is a wrapper method: wrappers named after lock operations may return
// holding the underlying mutex.
func (t *table) Lock() { t.shards[0].mu.Lock() }

// Unlock releases the wrapper's mutex.
func (t *table) Unlock() { t.shards[0].mu.Unlock() }
