// Package unlockpath implements the tebaldivet analyzer that checks every
// mutex acquisition is released on all exit paths of its function.
//
// This is the exact shape of the PR 6 lockmgr fixes: an early return (or
// panic) threaded through a retry loop that skips the shard unlock leaves
// the table wedged until the lock timeout converts the bug into an
// inscrutable flake. The analyzer abstract-interprets each function body
// (see lockset.Walk), tracking the held set along every control path; any
// return, panic, or fall-off-the-end with a lock held and no deferred
// release pending is an error. It also flags re-acquiring a held lock
// (self-deadlock: sync mutexes are not reentrant).
//
// Functions that intentionally hand a held lock to their caller must be
// annotated `//lint:allow unlockpath -- <why>`.
package unlockpath

import (
	"go/token"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/lockset"
)

// Analyzer is the unlockpath check.
var Analyzer = &framework.Analyzer{
	Name: "unlockpath",
	Doc: "report Lock/RLock calls not released on every return/panic " +
		"path, and re-acquisitions that self-deadlock",
	Run: run,
}

// wrapperNames are lock-method wrappers (e.g. core.Chain.Lock): their
// bodies intentionally return holding the underlying mutex.
var wrapperNames = map[string]bool{
	"Lock": true, "RLock": true, "Unlock": true, "RUnlock": true,
	"TryLock": true, "TryRLock": true,
}

func run(pass *framework.Pass) error {
	type leak struct {
		exit token.Pos
		kind lockset.ExitKind
	}
	for _, file := range pass.Files {
		for _, fn := range lockset.FunctionsOf(pass.TypesInfo, file) {
			if fn.Decl != nil && wrapperNames[fn.Decl.Name.Name] {
				continue
			}
			// One report per acquire site, on the first leaking exit.
			leaks := map[*lockset.Call]leak{}
			doubles := map[token.Pos]bool{}
			lockset.Walk(pass.TypesInfo, fn.Body, lockset.Hooks{
				OnAcquire: func(c *lockset.Call, held []lockset.Held) {
					for _, h := range held {
						if h.Call.Key == c.Key && (!h.Call.Read || !c.Read) &&
							c.Op != lockset.TryAcquireOp {
							doubles[c.Expr.Pos()] = true
						}
					}
				},
				OnExit: func(pos token.Pos, kind lockset.ExitKind, held []lockset.Held) {
					for _, h := range held {
						if h.Deferred {
							continue
						}
						if _, seen := leaks[h.Call]; !seen {
							leaks[h.Call] = leak{exit: pos, kind: kind}
						}
					}
				},
			})
			for pos := range doubles {
				pass.Reportf(pos,
					"lock is already held on this path: re-acquiring self-deadlocks (sync mutexes are not reentrant)")
			}
			for c, l := range leaks {
				how := "a return"
				switch l.kind {
				case lockset.ExitPanic:
					how = "a panic"
				case lockset.ExitEnd:
					how = "the fall-through"
				}
				pass.Reportf(c.Expr.Pos(),
					"%s acquired here is not released on %s path at line %d: unlock on every path or defer",
					c.Key, how, pass.Fset.Position(l.exit).Line)
			}
		}
	}
	return nil
}
