package unlockpath_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/unlockpath"
)

func TestUnlockpath(t *testing.T) {
	analysistest.Run(t, unlockpath.Analyzer, "unlockpath_a")
}
