// Package lockset provides the shared machinery of the tebaldivet lock
// analyzers: classifying Lock/Unlock-shaped calls into lock *classes*
// (pkg.Type.field identities), and a path-sensitive abstract interpreter
// over function bodies that tracks the set of locks held on every control
// path. unlockpath and lockorder are thin clients of the Walk hooks.
package lockset

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/ssa"
)

// Op is the kind of lock operation a call performs.
type Op int

const (
	// AcquireOp blocks until the lock is held (Lock, RLock).
	AcquireOp Op = iota
	// TryAcquireOp acquires without blocking (TryLock, TryRLock).
	TryAcquireOp
	// ReleaseOp releases (Unlock, RUnlock).
	ReleaseOp
)

// Call is one classified lock operation.
type Call struct {
	Op   Op
	Read bool // RLock / RUnlock / TryRLock
	// Key identifies the lock instance syntactically (source text of the
	// receiver, e.g. "s.mu"). Two operations on the same Key in one
	// function are assumed to address the same lock.
	Key string
	// Class identifies the lock across functions and instances:
	// "pkg.Type.field" for a mutex field, "pkg.Type" for a type with its
	// own Lock/Unlock methods (e.g. core.Chain).
	Class string
	Expr  *ast.CallExpr
}

var opNames = map[string]struct {
	op   Op
	read bool
}{
	"Lock":     {AcquireOp, false},
	"RLock":    {AcquireOp, true},
	"TryLock":  {TryAcquireOp, false},
	"TryRLock": {TryAcquireOp, true},
	"Unlock":   {ReleaseOp, false},
	"RUnlock":  {ReleaseOp, true},
}

// counterpart the method that must exist on the receiver for the call to be
// considered lock-like (filters out unrelated Lock methods).
var counterpart = map[string]string{
	"Lock": "Unlock", "RLock": "RUnlock", "TryLock": "Unlock",
	"TryRLock": "RUnlock", "Unlock": "Lock", "RUnlock": "RLock",
}

// Classify reports whether call is a lock operation, and if so describes it.
func Classify(info *types.Info, call *ast.CallExpr) (*Call, bool) {
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	name := fun.Sel.Name
	spec, ok := opNames[name]
	if !ok {
		return nil, false
	}
	obj, ok := info.Uses[fun.Sel].(*types.Func)
	if !ok {
		return nil, false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false
	}
	if sig.Params().Len() != 0 || (sig.Results().Len() != 0 && spec.op != TryAcquireOp) {
		return nil, false
	}
	// Lock-like: the receiver type must also carry the counterpart method.
	recvT := sig.Recv().Type()
	if !hasMethod(recvT, counterpart[name]) {
		return nil, false
	}
	recv := unwrap(fun.X)
	class, ok := classOf(info, recv)
	if !ok {
		return nil, false
	}
	return &Call{
		Op:    spec.op,
		Read:  spec.read,
		Key:   types.ExprString(recv),
		Class: class,
		Expr:  call,
	}, true
}

func hasMethod(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	ms := types.NewMethodSet(types.NewPointer(t))
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	// Interface receivers (sync.Locker) carry methods directly.
	ms = types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

func unwrap(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				e = x.X
			} else {
				return e
			}
		case *ast.StarExpr:
			e = x.X
		default:
			return e
		}
	}
}

// classOf derives the cross-function lock identity of receiver expression e.
func classOf(info *types.Info, e ast.Expr) (string, bool) {
	// Mutex stored in a struct field: identify by owner type + field.
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if s := info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
			if named := ssa.NamedOf(s.Recv()); named != nil {
				return typeName(named) + "." + s.Obj().Name(), true
			}
		}
	}
	// A bare sync.Mutex/RWMutex variable: identify by the variable name
	// (pkg.varName), so two distinct driver mutexes are not conflated into
	// one "sync.Mutex" class.
	if id, ok := e.(*ast.Ident); ok {
		if v, ok := info.Uses[id].(*types.Var); ok && !v.IsField() {
			if named := ssa.NamedOf(v.Type()); named != nil &&
				named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" {
				if v.Pkg() != nil {
					return v.Pkg().Name() + "." + v.Name(), true
				}
			}
		}
	}
	// A type that is itself the lock (own Lock/Unlock methods), or a bare
	// mutex variable: identify by its named type.
	if tv, ok := info.Types[e]; ok {
		if named := ssa.NamedOf(tv.Type); named != nil {
			return typeName(named), true
		}
	}
	return "", false
}

func typeName(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

// Held is one lock held on the current path.
type Held struct {
	Call *Call
	// Deferred marks that a deferred release for this instance is pending,
	// so the lock is released on every exit from here on.
	Deferred bool
}

// ExitKind says how a path leaves the function.
type ExitKind int

const (
	// ExitReturn is an explicit return statement.
	ExitReturn ExitKind = iota
	// ExitPanic is an explicit panic(...) call.
	ExitPanic
	// ExitEnd is falling off the end of the body.
	ExitEnd
)

// Hooks are the Walk client callbacks. Each is invoked once per (event,
// path-state); nil hooks are skipped.
type Hooks struct {
	OnAcquire func(c *Call, held []Held)
	OnRelease func(c *Call, held []Held)
	OnExit    func(pos token.Pos, kind ExitKind, held []Held)
	OnCall    func(call *ast.CallExpr, held []Held)
}

// state is the lock state of one control path.
type state struct {
	held     []Held
	deferred map[string]bool // instance keys with a pending deferred release
}

func (s state) clone() state {
	n := state{held: append([]Held(nil), s.held...)}
	if s.deferred != nil {
		n.deferred = make(map[string]bool, len(s.deferred))
		for k, v := range s.deferred {
			n.deferred[k] = v
		}
	}
	return n
}

func (s state) canon() string {
	var b strings.Builder
	for _, h := range s.held {
		b.WriteString(h.Call.Key)
		if h.Call.Read {
			b.WriteByte('r')
		}
		if h.Deferred {
			b.WriteByte('d')
		}
		b.WriteByte(';')
	}
	b.WriteByte('|')
	keys := make([]string, 0, len(s.deferred))
	for k := range s.deferred {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString(strings.Join(keys, ";"))
	return b.String()
}

// maxStates bounds path explosion; beyond it, states are merged by dedup
// only (analysis stays sound enough for lint purposes).
const maxStates = 64

func dedup(states []state) []state {
	if len(states) <= 1 {
		return states
	}
	seen := map[string]bool{}
	out := states[:0]
	for _, s := range states {
		c := s.canon()
		if !seen[c] {
			seen[c] = true
			out = append(out, s)
		}
	}
	if len(out) > maxStates {
		out = out[:maxStates]
	}
	return out
}

type loopCtx struct {
	breaks    []state
	continues []state
	isLoop    bool // false for switch/select (break falls through, no continue)
}

type walker struct {
	info  *types.Info
	hooks Hooks
	loops []*loopCtx
}

// Walk abstract-interprets body, firing hooks. Function literals inside the
// body are NOT descended into (analyze them separately), except deferred
// literals, whose release calls are honored.
func Walk(info *types.Info, body *ast.BlockStmt, hooks Hooks) {
	if body == nil {
		return
	}
	w := &walker{info: info, hooks: hooks}
	out := w.stmt(body, []state{{}})
	for _, s := range out {
		if hooks.OnExit != nil {
			hooks.OnExit(body.Rbrace, ExitEnd, s.held)
		}
	}
}

func (w *walker) stmt(s ast.Stmt, in []state) []state {
	if len(in) == 0 || s == nil {
		return in
	}
	switch st := s.(type) {
	case *ast.BlockStmt:
		cur := in
		for _, s2 := range st.List {
			cur = w.stmt(s2, cur)
		}
		return cur
	case *ast.ExprStmt:
		return w.expr(st.X, in)
	case *ast.IfStmt:
		cur := w.stmt(st.Init, in)
		// `if mu.TryLock()` / `if !mu.TryLock()`: only the success branch
		// holds the lock.
		if c, negated, ok := w.tryCond(st.Cond); ok {
			acquired := w.applyLock(c, cloneAll(cur))
			thenIn, elseIn := acquired, cur
			if negated {
				thenIn, elseIn = cur, acquired
			}
			thenOut := w.stmt(st.Body, cloneAll(thenIn))
			var elseOut []state
			if st.Else != nil {
				elseOut = w.stmt(st.Else, cloneAll(elseIn))
			} else {
				elseOut = elseIn
			}
			return dedup(append(thenOut, elseOut...))
		}
		cur = w.expr(st.Cond, cur)
		thenOut := w.stmt(st.Body, cloneAll(cur))
		var elseOut []state
		if st.Else != nil {
			elseOut = w.stmt(st.Else, cloneAll(cur))
		} else {
			elseOut = cur
		}
		return dedup(append(thenOut, elseOut...))
	case *ast.ForStmt:
		cur := w.stmt(st.Init, in)
		return w.loop(cur, st.Cond == nil, func(states []state) []state {
			states = w.expr(st.Cond, states)
			states = w.stmt(st.Body, states)
			return w.stmt(st.Post, states)
		})
	case *ast.RangeStmt:
		cur := w.expr(st.X, in)
		return w.loop(cur, false, func(states []state) []state {
			return w.stmt(st.Body, states)
		})
	case *ast.SwitchStmt:
		cur := w.stmt(st.Init, in)
		cur = w.expr(st.Tag, cur)
		return w.cases(cur, st.Body, false)
	case *ast.TypeSwitchStmt:
		cur := w.stmt(st.Init, in)
		cur = w.stmt(st.Assign, cur)
		return w.cases(cur, st.Body, false)
	case *ast.SelectStmt:
		return w.cases(in, st.Body, true)
	case *ast.ReturnStmt:
		cur := in
		for _, r := range st.Results {
			cur = w.expr(r, cur)
		}
		for _, s2 := range cur {
			if w.hooks.OnExit != nil {
				w.hooks.OnExit(st.Return, ExitReturn, s2.held)
			}
		}
		return nil
	case *ast.BranchStmt:
		return w.branch(st, in)
	case *ast.DeferStmt:
		return w.deferStmt(st, in)
	case *ast.GoStmt:
		// The goroutine body runs concurrently; its lock behavior is
		// analyzed when the literal itself is visited. Arguments are
		// evaluated here.
		cur := in
		for _, a := range st.Call.Args {
			cur = w.expr(a, cur)
		}
		return cur
	case *ast.AssignStmt:
		cur := in
		for _, r := range st.Rhs {
			cur = w.expr(r, cur)
		}
		for _, l := range st.Lhs {
			cur = w.expr(l, cur)
		}
		return cur
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			cur := in
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						cur = w.expr(v, cur)
					}
				}
			}
			return cur
		}
		return in
	case *ast.IncDecStmt:
		return w.expr(st.X, in)
	case *ast.SendStmt:
		return w.expr(st.Value, w.expr(st.Chan, in))
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, in)
	case *ast.EmptyStmt:
		return in
	default:
		return in
	}
}

// loop runs body from the entry states to a bounded fixpoint. infinite
// marks `for {}` loops that exit only via break/return.
func (w *walker) loop(entry []state, infinite bool, body func([]state) []state) []state {
	ctx := &loopCtx{isLoop: true}
	w.loops = append(w.loops, ctx)
	defer func() { w.loops = w.loops[:len(w.loops)-1] }()

	seen := map[string]bool{}
	for _, s := range entry {
		seen[s.canon()] = true
	}
	cur := cloneAll(entry)
	var after []state
	for round := 0; round < 4; round++ {
		out := body(cur)
		out = append(out, ctx.continues...)
		ctx.continues = nil
		out = dedup(out)
		after = append(after, out...)
		fresh := false
		for _, s := range out {
			if c := s.canon(); !seen[c] {
				seen[c] = true
				fresh = true
			}
		}
		if !fresh {
			break
		}
		cur = cloneAll(out)
	}
	var result []state
	if !infinite {
		result = append(result, entry...) // zero iterations
		result = append(result, after...) // n iterations, condition false
	}
	result = append(result, ctx.breaks...)
	return dedup(result)
}

// cases handles switch/select bodies. exactlyOne marks select (one case
// always runs).
func (w *walker) cases(entry []state, body *ast.BlockStmt, exactlyOne bool) []state {
	ctx := &loopCtx{isLoop: false}
	w.loops = append(w.loops, ctx)
	defer func() { w.loops = w.loops[:len(w.loops)-1] }()

	var out []state
	hasDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		cur := cloneAll(entry)
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				cur = w.expr(e, cur)
			}
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
			cur = w.stmt(cc.Comm, cur)
			stmts = cc.Body
		}
		for _, s2 := range stmts {
			cur = w.stmt(s2, cur)
		}
		out = append(out, cur...)
	}
	if !hasDefault && !exactlyOne {
		out = append(out, entry...) // no case matched
	}
	out = append(out, ctx.breaks...) // break inside switch/select
	return dedup(out)
}

func (w *walker) branch(st *ast.BranchStmt, in []state) []state {
	switch st.Tok {
	case token.BREAK:
		// Unlabeled break targets the innermost loop/switch/select;
		// labeled break is approximated by the outermost context.
		for i := len(w.loops) - 1; i >= 0; i-- {
			if st.Label == nil || i == 0 {
				w.loops[i].breaks = append(w.loops[i].breaks, cloneAll(in)...)
				break
			}
		}
		return nil
	case token.CONTINUE:
		for i := len(w.loops) - 1; i >= 0; i-- {
			if w.loops[i].isLoop {
				w.loops[i].continues = append(w.loops[i].continues, cloneAll(in)...)
				break
			}
		}
		return nil
	case token.FALLTHROUGH:
		return in
	default: // goto: rare; treat as fallthrough (approximate)
		return in
	}
}

func (w *walker) deferStmt(st *ast.DeferStmt, in []state) []state {
	cur := in
	for _, a := range st.Call.Args {
		cur = w.expr(a, cur)
	}
	// defer mu.Unlock()
	if c, ok := Classify(w.info, st.Call); ok && c.Op == ReleaseOp {
		return w.markDeferred(cur, []string{c.Key})
	}
	// defer func() { ...; mu.Unlock(); ... }()
	if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
		var keys []string
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if c, ok := Classify(w.info, call); ok && c.Op == ReleaseOp {
					keys = append(keys, c.Key)
				}
			}
			return true
		})
		if len(keys) > 0 {
			return w.markDeferred(cur, keys)
		}
	}
	return cur
}

func (w *walker) markDeferred(in []state, keys []string) []state {
	out := make([]state, 0, len(in))
	for _, s := range in {
		n := s.clone()
		if n.deferred == nil {
			n.deferred = map[string]bool{}
		}
		for _, k := range keys {
			n.deferred[k] = true
			for i := range n.held {
				if n.held[i].Call.Key == k {
					n.held[i].Deferred = true
				}
			}
		}
		out = append(out, n)
	}
	return out
}

// expr walks e in approximate evaluation order, applying lock calls and
// firing OnCall for other calls. Function literal bodies are skipped.
func (w *walker) expr(e ast.Expr, in []state) []state {
	if e == nil || len(in) == 0 {
		return in
	}
	cur := in
	var walk func(e ast.Expr)
	apply := func(call *ast.CallExpr) {
		if c, ok := Classify(w.info, call); ok {
			cur = w.applyLock(c, cur)
			return
		}
		if isPanic(w.info, call) {
			for _, s := range cur {
				if w.hooks.OnExit != nil {
					w.hooks.OnExit(call.Pos(), ExitPanic, s.held)
				}
			}
			cur = nil
			return
		}
		if w.hooks.OnCall != nil {
			for _, s := range cur {
				w.hooks.OnCall(call, s.held)
			}
		}
	}
	walk = func(e ast.Expr) {
		if e == nil || len(cur) == 0 {
			return
		}
		switch x := e.(type) {
		case *ast.CallExpr:
			walk(x.Fun)
			for _, a := range x.Args {
				walk(a)
			}
			apply(x)
		case *ast.FuncLit:
			// separate function; analyzed on its own
		case *ast.ParenExpr:
			walk(x.X)
		case *ast.SelectorExpr:
			walk(x.X)
		case *ast.StarExpr:
			walk(x.X)
		case *ast.UnaryExpr:
			walk(x.X)
		case *ast.BinaryExpr:
			walk(x.X)
			walk(x.Y)
		case *ast.IndexExpr:
			walk(x.X)
			walk(x.Index)
		case *ast.SliceExpr:
			walk(x.X)
			walk(x.Low)
			walk(x.High)
			walk(x.Max)
		case *ast.TypeAssertExpr:
			walk(x.X)
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				walk(el)
			}
		case *ast.KeyValueExpr:
			walk(x.Key)
			walk(x.Value)
		}
	}
	walk(e)
	return cur
}

// tryCond matches an if condition that is exactly a TryLock/TryRLock call,
// optionally negated, and returns the classified call.
func (w *walker) tryCond(cond ast.Expr) (*Call, bool, bool) {
	negated := false
	e := cond
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.UnaryExpr:
			if x.Op == token.NOT {
				negated = !negated
				e = x.X
				continue
			}
		}
		break
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, false, false
	}
	c, ok := Classify(w.info, call)
	if !ok || c.Op != TryAcquireOp {
		return nil, false, false
	}
	return c, negated, true
}

func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func (w *walker) applyLock(c *Call, in []state) []state {
	out := make([]state, 0, len(in))
	for _, s := range in {
		n := s.clone()
		switch c.Op {
		case AcquireOp, TryAcquireOp:
			if w.hooks.OnAcquire != nil {
				w.hooks.OnAcquire(c, n.held)
			}
			already := false
			for _, h := range n.held {
				if h.Call.Key == c.Key && h.Call.Read == c.Read {
					already = true
					break
				}
			}
			if !already {
				n.held = append(n.held, Held{Call: c, Deferred: n.deferred[c.Key]})
			}
		case ReleaseOp:
			if w.hooks.OnRelease != nil {
				w.hooks.OnRelease(c, n.held)
			}
			for i := len(n.held) - 1; i >= 0; i-- {
				if n.held[i].Call.Key == c.Key {
					n.held = append(n.held[:i], n.held[i+1:]...)
					break
				}
			}
		}
		out = append(out, n)
	}
	return dedup(out)
}

func cloneAll(in []state) []state {
	out := make([]state, len(in))
	for i, s := range in {
		out[i] = s.clone()
	}
	return out
}

// Functions returns every function body in the files: declarations and
// function literals, each paired with a printable name.
type Function struct {
	Name string
	Decl *ast.FuncDecl // nil for literals
	Body *ast.BlockStmt
	Obj  *types.Func // nil for literals
}

// FunctionsOf collects the analyzable function bodies of a file.
func FunctionsOf(info *types.Info, file *ast.File) []Function {
	var out []Function
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body == nil {
				return true
			}
			name := fn.Name.Name
			obj, _ := info.Defs[fn.Name].(*types.Func)
			out = append(out, Function{Name: name, Decl: fn, Body: fn.Body, Obj: obj})
		case *ast.FuncLit:
			out = append(out, Function{Name: "func literal", Body: fn.Body})
		}
		return true
	})
	return out
}
