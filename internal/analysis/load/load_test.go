package load

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a file tree under a fresh temp dir and returns it.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func byPath(pkgs []*Package, path string) *Package {
	for _, p := range pkgs {
		if p.ImportPath == path {
			return p
		}
	}
	return nil
}

// TestBuildTaggedFiles: files excluded by build constraints must not reach
// the parser or the type checker.
func TestBuildTaggedFiles(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module example.com/tagged\n\ngo 1.21\n",
		"a.go":   "package tagged\n\nfunc Kept() int { return 1 }\n",
		"b.go": "//go:build neverenabled\n\npackage tagged\n\n" +
			"func Dropped() int { return undefinedSymbol }\n",
	})
	pkgs, err := Packages(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	p := byPath(pkgs, "example.com/tagged")
	if p == nil {
		t.Fatalf("package not loaded; got %d packages", len(pkgs))
	}
	if p.IllTyped || p.Err != nil {
		t.Fatalf("tagged-out file leaked into the build: IllTyped=%v Err=%v", p.IllTyped, p.Err)
	}
	if len(p.Files) != 1 {
		t.Fatalf("got %d files, want 1 (b.go is tagged out)", len(p.Files))
	}
	if p.Types.Scope().Lookup("Kept") == nil {
		t.Fatal("Kept not in package scope")
	}
	if p.Types.Scope().Lookup("Dropped") != nil {
		t.Fatal("Dropped from the tagged-out file is in package scope")
	}
}

// TestVendoredDependency: a module with a vendor tree must load with the
// vendored package resolved (and not analyzed itself — it is a dependency,
// not a target).
func TestVendoredDependency(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module example.com/app\n\ngo 1.21\n\nrequire example.com/dep v1.0.0\n",
		"main.go": "package app\n\nimport \"example.com/dep\"\n\n" +
			"func Use() int { return dep.Answer() }\n",
		"vendor/modules.txt": "# example.com/dep v1.0.0\n## explicit; go 1.21\nexample.com/dep\n",
		"vendor/example.com/dep/dep.go": "package dep\n\n" +
			"func Answer() int { return 42 }\n",
	})
	pkgs, err := Packages(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	p := byPath(pkgs, "example.com/app")
	if p == nil {
		t.Fatalf("app package not loaded; got %v", importPaths(pkgs))
	}
	if p.IllTyped || p.Err != nil {
		t.Fatalf("vendored import failed: IllTyped=%v Err=%v", p.IllTyped, p.Err)
	}
	if dep := byPath(pkgs, "example.com/dep"); dep != nil {
		t.Fatal("vendored dependency was returned as an analysis target")
	}
}

// TestCompileErrorDegrades: a package that does not type-check must come
// back IllTyped with partial results while sibling packages load normally —
// and nothing panics.
func TestCompileErrorDegrades(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":       "module example.com/broken\n\ngo 1.21\n",
		"good/good.go": "package good\n\nfunc Fine() {}\n",
		"bad/bad.go": "package bad\n\n" +
			"func Typo() int { return \"not an int\" }\n",
	})
	pkgs, err := Packages(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	bad := byPath(pkgs, "example.com/broken/bad")
	if bad == nil {
		t.Fatalf("broken package dropped from results; got %v", importPaths(pkgs))
	}
	if !bad.IllTyped || bad.Err == nil {
		t.Fatalf("broken package not marked: IllTyped=%v Err=%v", bad.IllTyped, bad.Err)
	}
	if len(bad.Files) == 0 || bad.Types == nil {
		t.Fatal("broken package lost its partial results")
	}
	good := byPath(pkgs, "example.com/broken/good")
	if good == nil || good.IllTyped || good.Err != nil {
		t.Fatalf("sibling package degraded too: %+v", good)
	}
}

// TestSyntaxErrorDegrades: a file the parser rejects degrades its package,
// not the load.
func TestSyntaxErrorDegrades(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":         "module example.com/synerr\n\ngo 1.21\n",
		"mangled/bad.go": "package mangled\n\nfunc Unclosed( {\n",
		"ok/ok.go":       "package ok\n\nfunc Fine() {}\n",
	})
	pkgs, err := Packages(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	bad := byPath(pkgs, "example.com/synerr/mangled")
	if bad == nil {
		t.Fatalf("mangled package dropped; got %v", importPaths(pkgs))
	}
	if !bad.IllTyped || bad.Err == nil {
		t.Fatalf("mangled package not marked: IllTyped=%v Err=%v", bad.IllTyped, bad.Err)
	}
	if good := byPath(pkgs, "example.com/synerr/ok"); good == nil || good.IllTyped {
		t.Fatalf("sibling package degraded too: %+v", good)
	}
}

// TestDependencyOrder: Packages must return importers after their imports so
// a fact-sharing session can run front to back.
func TestDependencyOrder(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":     "module example.com/order\n\ngo 1.21\n",
		"leaf/a.go":  "package leaf\n\nfunc A() {}\n",
		"mid/b.go":   "package mid\n\nimport \"example.com/order/leaf\"\n\nfunc B() { leaf.A() }\n",
		"root/c.go":  "package root\n\nimport \"example.com/order/mid\"\n\nfunc C() { mid.B() }\n",
		"other/d.go": "package other\n\nfunc D() {}\n",
	})
	pkgs, err := Packages(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, p := range pkgs {
		pos[p.ImportPath] = i
	}
	leaf, mid, root := pos["example.com/order/leaf"], pos["example.com/order/mid"], pos["example.com/order/root"]
	if !(leaf < mid && mid < root) {
		t.Fatalf("not dependency-ordered: %v", importPaths(pkgs))
	}
}

func importPaths(pkgs []*Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.ImportPath)
	}
	return out
}

// TestToposortCycleDoesNotHang: broken loads can present cyclic imports;
// Toposort must keep every package and terminate.
func TestToposortCycleDoesNotHang(t *testing.T) {
	a := &Package{ImportPath: "a", Imports: []string{"b"}}
	b := &Package{ImportPath: "b", Imports: []string{"a"}}
	got := Toposort([]*Package{a, b})
	if len(got) != 2 {
		t.Fatalf("cycle dropped packages: %d", len(got))
	}
	names := []string{got[0].ImportPath, got[1].ImportPath}
	if strings.Join(names, ",") != "b,a" && strings.Join(names, ",") != "a,b" {
		t.Fatalf("unexpected order %v", names)
	}
}
