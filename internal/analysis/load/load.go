// Package load type-checks Go packages for the tebaldivet analyzers using
// only the standard library: package metadata and compiled export data come
// from `go list -export`, dependencies are imported through the stdlib gc
// importer, and only the packages under analysis are parsed from source.
// This is the offline stand-in for golang.org/x/tools/go/packages.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// Imports are the package's direct imports (load order input).
	Imports []string
	// Err is non-nil when the package failed to list, parse, or type-check.
	// The load degrades to partial results: Files/Types/Info hold whatever
	// survived (possibly nil), and the driver decides whether to analyze.
	Err error
	// IllTyped marks a package whose type information is incomplete
	// (Err != nil, or a dependency failed to import). Analyzers relying on
	// full type info should skip ill-typed packages.
	IllTyped bool
}

// listEntry is the subset of `go list -json` output we consume.
type listEntry struct {
	ImportPath   string
	Dir          string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
	Standard     bool
	DepOnly      bool
	Incomplete   bool
	Error        *struct{ Err string }
}

// goList runs `go list -e -export -deps -json` in dir for the patterns and
// returns the decoded entries.
func goList(dir string, patterns []string) ([]*listEntry, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,TestGoFiles,XTestGoFiles,Imports,TestImports,XTestImports,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var entries []*listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding: %v", err)
		}
		entries = append(entries, &e)
	}
	return entries, nil
}

// Exports resolves import paths to gc export data files, shelling out to
// `go list -export` on cache misses. It is the importer backing both the
// repo driver and the analysistest testdata loader.
type Exports struct {
	ModuleDir string
	files     map[string]string
}

// lookup returns a reader for path's export data, or nil if unknown.
func (x *Exports) lookup(path string) (io.ReadCloser, error) {
	if x.files == nil {
		x.files = map[string]string{}
	}
	if f, ok := x.files[path]; ok {
		return os.Open(f)
	}
	entries, err := goList(x.ModuleDir, []string{path})
	if err != nil {
		return nil, err
	}
	x.add(entries)
	if f, ok := x.files[path]; ok {
		return os.Open(f)
	}
	return nil, fmt.Errorf("no export data for %q", path)
}

func (x *Exports) add(entries []*listEntry) {
	if x.files == nil {
		x.files = map[string]string{}
	}
	for _, e := range entries {
		if e.Export != "" {
			x.files[e.ImportPath] = e.Export
		}
	}
}

// NewInfo returns a types.Info with every map the analyzers use.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Packages loads and type-checks the module packages matching patterns
// (e.g. "./..."), rooted at moduleDir. Standard-library and dependency-only
// packages are imported from export data, not analyzed. Test files are
// included — in-package tests compiled with their package, external _test
// packages as their own entry — so the standalone driver sees exactly the
// units `go vet -vettool` sees.
//
// The load degrades rather than fails: a package that cannot be listed,
// parsed, or type-checked is returned with Err set and IllTyped true
// (carrying whatever syntax and partial type information survived), and
// every other package still loads. Only a driver-level failure (go list
// itself erroring) aborts the whole load.
//
// Packages are returned in dependency order — every package follows the
// packages it imports — so a fact-sharing analysis session can run over the
// slice front to back.
func Packages(moduleDir string, patterns ...string) ([]*Package, error) {
	entries, err := goList(moduleDir, patterns)
	if err != nil {
		return nil, err
	}
	exports := &Exports{ModuleDir: moduleDir}
	exports.add(entries)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exports.lookup)

	// parse returns every file that parsed plus the first parse error:
	// a syntactically broken file degrades its package, not the load.
	parse := func(dir string, names []string) ([]*ast.File, error) {
		var files []*ast.File
		var firstErr error
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if f != nil {
				files = append(files, f)
			}
		}
		return files, firstErr
	}

	// check type-checks one unit, tolerating errors: the returned package
	// and info are the partial results the checker could produce.
	check := func(path string, files []*ast.File) (*types.Package, *types.Info, error) {
		info := NewInfo()
		var firstErr error
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				if firstErr == nil {
					firstErr = err
				}
			},
		}
		tpkg, err := conf.Check(path, fset, files, info)
		if firstErr == nil {
			firstErr = err
		}
		return tpkg, info, firstErr
	}

	var pkgs []*Package
	for _, e := range entries {
		if e.DepOnly || e.Standard || (len(e.GoFiles) == 0 && e.Error == nil) {
			continue
		}
		p := &Package{
			ImportPath: e.ImportPath,
			Dir:        e.Dir,
			Fset:       fset,
			Imports:    mergeImports(e.Imports, e.TestImports),
		}
		if e.Error != nil {
			p.Err = fmt.Errorf("%s: %s", e.ImportPath, e.Error.Err)
			p.IllTyped = true
		}
		files, parseErr := parse(e.Dir, append(append([]string{}, e.GoFiles...), e.TestGoFiles...))
		p.Files = files
		if parseErr != nil && p.Err == nil {
			p.Err = parseErr
			p.IllTyped = true
		}
		if len(files) > 0 {
			tpkg, info, checkErr := check(e.ImportPath, files)
			p.Types, p.Info = tpkg, info
			if checkErr != nil {
				if p.Err == nil {
					p.Err = fmt.Errorf("type-checking %s: %v", e.ImportPath, checkErr)
				}
				p.IllTyped = true
			}
		}
		pkgs = append(pkgs, p)
		if len(e.XTestGoFiles) > 0 {
			xp := &Package{
				ImportPath: e.ImportPath + "_test",
				Dir:        e.Dir,
				Fset:       fset,
				Imports:    append(mergeImports(e.XTestImports, nil), e.ImportPath),
			}
			xfiles, xparseErr := parse(e.Dir, e.XTestGoFiles)
			xp.Files = xfiles
			if xparseErr != nil {
				xp.Err = xparseErr
				xp.IllTyped = true
			}
			if len(xfiles) > 0 {
				xpkg, xinfo, xcheckErr := check(e.ImportPath+"_test", xfiles)
				xp.Types, xp.Info = xpkg, xinfo
				if xcheckErr != nil {
					if xp.Err == nil {
						xp.Err = fmt.Errorf("type-checking %s_test: %v", e.ImportPath, xcheckErr)
					}
					xp.IllTyped = true
				}
			}
			pkgs = append(pkgs, xp)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return Toposort(pkgs), nil
}

func mergeImports(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range append(append([]string{}, a...), b...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// Toposort orders packages so that every package follows its imports
// (restricted to the given set). The input order breaks ties, and cycles —
// impossible for valid Go, possible for broken loads — are appended in
// input order rather than dropped.
func Toposort(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	state := map[*Package]int{} // 0 unvisited, 1 visiting, 2 done
	out := make([]*Package, 0, len(pkgs))
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p] != 0 {
			return
		}
		state[p] = 1
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok && state[dep] == 0 {
				visit(dep)
			}
		}
		state[p] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

// SourceLoader type-checks packages from a GOPATH-style source tree
// (testdata/src/<importpath>/*.go), resolving imports first against the
// tree itself and then against the surrounding module's export data. It is
// the loader behind the analysistest harness.
type SourceLoader struct {
	Fset    *token.FileSet
	SrcRoot string
	Exports *Exports

	pkgs  map[string]*Package
	types map[string]*types.Package
	gc    types.Importer
}

// Load parses and type-checks the tree package at import path.
func (l *SourceLoader) Load(path string) (*Package, error) {
	if l.pkgs == nil {
		l.pkgs = map[string]*Package{}
		l.types = map[string]*types.Package{}
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.SrcRoot, filepath.FromSlash(path))
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, de.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := NewInfo()
	conf := types.Config{Importer: (*sourceFirstImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	p := &Package{ImportPath: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	for _, f := range files {
		for _, spec := range f.Imports {
			if ip, err := strconv.Unquote(spec.Path.Value); err == nil {
				p.Imports = append(p.Imports, ip)
			}
		}
	}
	p.Imports = mergeImports(p.Imports, nil)
	l.pkgs[path] = p
	l.types[path] = tpkg
	return p, nil
}

// Package returns a previously loaded tree package, or nil. Loading a
// package pulls its tree dependencies in through the source-first importer,
// so after Load(target) every reachable testdata package is available here.
func (l *SourceLoader) Package(path string) *Package { return l.pkgs[path] }

// sourceFirstImporter resolves testdata-tree packages from source and
// everything else from module export data.
type sourceFirstImporter SourceLoader

func (imp *sourceFirstImporter) Import(path string) (*types.Package, error) {
	l := (*SourceLoader)(imp)
	if tp, ok := l.types[path]; ok {
		return tp, nil
	}
	if st, err := os.Stat(filepath.Join(l.SrcRoot, filepath.FromSlash(path))); err == nil && st.IsDir() {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	// One shared gc importer keeps dependency type identity consistent
	// across the testdata packages of a run.
	if l.gc == nil {
		l.gc = importer.ForCompiler(l.Fset, "gc", l.Exports.lookup)
	}
	return l.gc.Import(path)
}
