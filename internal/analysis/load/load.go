// Package load type-checks Go packages for the tebaldivet analyzers using
// only the standard library: package metadata and compiled export data come
// from `go list -export`, dependencies are imported through the stdlib gc
// importer, and only the packages under analysis are parsed from source.
// This is the offline stand-in for golang.org/x/tools/go/packages.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listEntry is the subset of `go list -json` output we consume.
type listEntry struct {
	ImportPath   string
	Dir          string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Standard     bool
	DepOnly      bool
	Incomplete   bool
	Error        *struct{ Err string }
}

// goList runs `go list -e -export -deps -json` in dir for the patterns and
// returns the decoded entries.
func goList(dir string, patterns []string) ([]*listEntry, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,TestGoFiles,XTestGoFiles,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var entries []*listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding: %v", err)
		}
		entries = append(entries, &e)
	}
	return entries, nil
}

// Exports resolves import paths to gc export data files, shelling out to
// `go list -export` on cache misses. It is the importer backing both the
// repo driver and the analysistest testdata loader.
type Exports struct {
	ModuleDir string
	files     map[string]string
}

// lookup returns a reader for path's export data, or nil if unknown.
func (x *Exports) lookup(path string) (io.ReadCloser, error) {
	if x.files == nil {
		x.files = map[string]string{}
	}
	if f, ok := x.files[path]; ok {
		return os.Open(f)
	}
	entries, err := goList(x.ModuleDir, []string{path})
	if err != nil {
		return nil, err
	}
	x.add(entries)
	if f, ok := x.files[path]; ok {
		return os.Open(f)
	}
	return nil, fmt.Errorf("no export data for %q", path)
}

func (x *Exports) add(entries []*listEntry) {
	if x.files == nil {
		x.files = map[string]string{}
	}
	for _, e := range entries {
		if e.Export != "" {
			x.files[e.ImportPath] = e.Export
		}
	}
}

// NewInfo returns a types.Info with every map the analyzers use.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Packages loads and type-checks the module packages matching patterns
// (e.g. "./..."), rooted at moduleDir. Standard-library and dependency-only
// packages are imported from export data, not analyzed. Test files are
// included — in-package tests compiled with their package, external _test
// packages as their own entry — so the standalone driver sees exactly the
// units `go vet -vettool` sees.
func Packages(moduleDir string, patterns ...string) ([]*Package, error) {
	entries, err := goList(moduleDir, patterns)
	if err != nil {
		return nil, err
	}
	exports := &Exports{ModuleDir: moduleDir}
	exports.add(entries)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exports.lookup)

	parse := func(dir string, names []string) ([]*ast.File, error) {
		var files []*ast.File
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		return files, nil
	}

	var pkgs []*Package
	for _, e := range entries {
		if e.DepOnly || e.Standard || len(e.GoFiles) == 0 {
			continue
		}
		if e.Error != nil {
			return nil, fmt.Errorf("%s: %s", e.ImportPath, e.Error.Err)
		}
		files, err := parse(e.Dir, append(append([]string{}, e.GoFiles...), e.TestGoFiles...))
		if err != nil {
			return nil, err
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(e.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", e.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: e.ImportPath,
			Dir:        e.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
		if len(e.XTestGoFiles) > 0 {
			xfiles, err := parse(e.Dir, e.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			xinfo := NewInfo()
			xpkg, err := conf.Check(e.ImportPath+"_test", fset, xfiles, xinfo)
			if err != nil {
				return nil, fmt.Errorf("type-checking %s_test: %v", e.ImportPath, err)
			}
			pkgs = append(pkgs, &Package{
				ImportPath: e.ImportPath + "_test",
				Dir:        e.Dir,
				Fset:       fset,
				Files:      xfiles,
				Types:      xpkg,
				Info:       xinfo,
			})
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// SourceLoader type-checks packages from a GOPATH-style source tree
// (testdata/src/<importpath>/*.go), resolving imports first against the
// tree itself and then against the surrounding module's export data. It is
// the loader behind the analysistest harness.
type SourceLoader struct {
	Fset    *token.FileSet
	SrcRoot string
	Exports *Exports

	pkgs  map[string]*Package
	types map[string]*types.Package
	gc    types.Importer
}

// Load parses and type-checks the tree package at import path.
func (l *SourceLoader) Load(path string) (*Package, error) {
	if l.pkgs == nil {
		l.pkgs = map[string]*Package{}
		l.types = map[string]*types.Package{}
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.SrcRoot, filepath.FromSlash(path))
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, de.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := NewInfo()
	conf := types.Config{Importer: (*sourceFirstImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	p := &Package{ImportPath: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	l.types[path] = tpkg
	return p, nil
}

// sourceFirstImporter resolves testdata-tree packages from source and
// everything else from module export data.
type sourceFirstImporter SourceLoader

func (imp *sourceFirstImporter) Import(path string) (*types.Package, error) {
	l := (*SourceLoader)(imp)
	if tp, ok := l.types[path]; ok {
		return tp, nil
	}
	if st, err := os.Stat(filepath.Join(l.SrcRoot, filepath.FromSlash(path))); err == nil && st.IsDir() {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	// One shared gc importer keeps dependency type identity consistent
	// across the testdata packages of a run.
	if l.gc == nil {
		l.gc = importer.ForCompiler(l.Fset, "gc", l.Exports.lookup)
	}
	return l.gc.Import(path)
}
