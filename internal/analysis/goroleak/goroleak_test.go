package goroleak

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, Analyzer, "goroleak_a")
}
