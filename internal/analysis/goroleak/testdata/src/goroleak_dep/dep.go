// Package goroleak_dep exercises the cross-package goroleak fact: its
// verdicts travel to spawning packages as exported facts.
package goroleak_dep

// SpinForever has an unguarded infinite loop. It is never spawned here, so
// no diagnostic lands in this package — spawning it elsewhere must be
// flagged through the exported fact.
func SpinForever() {
	for {
	}
}

// Pump drains ch until it is closed: the comma-ok receive plus return is a
// provable termination condition.
func Pump(ch chan int) {
	for {
		_, ok := <-ch
		if !ok {
			return
		}
	}
}
