// Package goroleak_a seeds the goroutine-leak shapes: unguarded infinite
// loops in spawned functions, and every accepted termination idiom.
package goroleak_a

import "goroleak_dep"

func work() {}

func step() error { return nil }

// --- flagged shapes ---

func spawnBad() {
	go func() {
		for { // want `goroutine runs an infinite loop with no channel-signaled exit`
			work()
		}
	}()
}

// spawnErrorLoop is the readLoop shape: the loop exits on error, but no
// channel signals shutdown — the analyzer demands the annotation that names
// who causes that error.
func spawnErrorLoop() {
	go func() {
		for { // want `goroutine runs an infinite loop with no channel-signaled exit`
			if err := step(); err != nil {
				return
			}
		}
	}()
}

func spin() {
	for {
		work()
	}
}

func spawnLocalUnsafe() {
	go spin() // want `goroutine goroleak_a\.spin runs an infinite loop with no channel-signaled exit`
}

func spawnCrossUnsafe() {
	go goroleak_dep.SpinForever() // want `goroutine goroleak_dep\.SpinForever runs an infinite loop`
}

// spawnSelectBreak is the classic select/break bug: the unlabeled break
// targets the select, not the loop, so the goroutine never exits.
func spawnSelectBreak(stop chan struct{}) {
	go func() {
		for { // want `goroutine runs an infinite loop with no channel-signaled exit`
			select {
			case <-stop:
				break
			}
		}
	}()
}

// spawnEmptyAnnotation: a tebaldi:worker with no shutdown description is
// invalid and suppresses nothing.
func spawnEmptyAnnotation() {
	// tebaldi:worker
	go spin() // want `goroutine goroleak_a\.spin runs an infinite loop`
}

// --- accepted shapes ---

// spawnSelect: the done/stop-channel idiom.
func spawnSelect(stop chan struct{}, tick chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-tick:
				work()
			}
		}
	}()
}

// spawnCommaOk: the closable work-queue idiom.
func spawnCommaOk(ch chan int) {
	go func() {
		for {
			v, ok := <-ch
			if !ok {
				return
			}
			_ = v
		}
	}()
}

// spawnRange: range over a channel ends at close.
func spawnRange(ch chan int) {
	go func() {
		for range ch {
			work()
		}
	}()
}

// spawnBounded: a bounded loop is not an infinite loop.
func spawnBounded() {
	go func() {
		for i := 0; i < 10; i++ {
			work()
		}
	}()
}

type session struct{ q chan int }

func (s *session) run() {
	for v := range s.q {
		_ = v
	}
}

// spawnMethod: method resolution through the static callee.
func spawnMethod(s *session) {
	go s.run()
}

// spawnLabeledBreak: a labeled break out of the loop from a select case is a
// real exit.
func spawnLabeledBreak(stop chan struct{}, tick chan int) {
	go func() {
	loop:
		for {
			select {
			case <-stop:
				break loop
			case <-tick:
			}
		}
	}()
}

// spawnAnnotatedGo: the annotation at the go statement vouches for the
// shutdown path.
func spawnAnnotatedGo() {
	// tebaldi:worker test harness: process exit reaps the spinner
	go spin()
}

// readLoop drains the wire until the peer disconnects.
// tebaldi:worker peer disconnect makes step fail and breaks the loop
func readLoop() {
	for {
		if err := step(); err != nil {
			return
		}
	}
}

// spawnDocAnnotated: the annotation may live on the spawned function's doc.
func spawnDocAnnotated() {
	go readLoop()
}

// spawnCrossSafe: the dep package's Pump is provably terminating.
func spawnCrossSafe(ch chan int) {
	go goroleak_dep.Pump(ch)
}

// spawnAllowed: plain lint suppression also works.
func spawnAllowed() {
	go func() {
		for { //lint:allow goroleak -- seeded: suppression must hold
			work()
		}
	}()
}
