// Package goroleak checks that every spawned goroutine has a provable
// termination condition. The PR-6/PR-8 incident class it targets: a worker
// loop with no shutdown signal keeps the engine (or a test binary) alive,
// holds transactions pinned past Close, and turns -race runs flaky.
//
// A goroutine terminates provably when the function it runs has no infinite
// loop, or when each of its infinite loops (`for {}` / `for true {}`) has a
// channel-signaled exit:
//
//   - a select case whose comm is a channel receive and whose body returns
//     (or breaks out of the loop by label) — the done/stop-channel idiom;
//   - a comma-ok channel receive (`v, ok := <-ch`) combined with a loop
//     exit — the closable work-queue idiom;
//   - `for range ch` loops need nothing: they end when the channel closes.
//
// Goroutines whose shutdown is managed by a mechanism the analyzer cannot
// see (process exit, connection close from the peer, an exhausted work list)
// must be annotated at the `go` statement or on the spawned function's doc
// comment:
//
//	// tebaldi:worker <who shuts it down and how>
//
// The description is mandatory — the annotation is documentation of the
// shutdown path, not a mute button.
//
// The check is interprocedural one level deep: `go pkg.F(...)` consults F's
// exported fact. Calls that cannot be resolved statically (func values,
// interface methods) and functions whose body merely calls another looping
// function are assumed terminating — documented approximations.
package goroleak

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/ssa"
)

// Name is the analyzer's registered name.
const Name = "goroleak"

var Analyzer = &framework.Analyzer{
	Name: Name,
	Doc: "flag go statements spawning functions with infinite loops that have no " +
		"channel-signaled exit and no tebaldi:worker annotation",
	Run: run,
}

// Fact marks a function whose body contains an unguarded infinite loop.
// Functions without the fact — including all functions outside the module —
// are assumed to terminate.
type Fact struct {
	Unsafe bool `json:"unsafe"`
}

func run(pass *framework.Pass) error {
	decls := ssa.Decls(pass.TypesInfo, pass.Files)
	workers := workerAnnotations(pass.Fset, pass.Files)

	// Per-declaration verdicts, exported as facts for cross-package spawns.
	unsafe := map[*ast.FuncDecl]bool{}
	declOf := map[*ast.FuncDecl]string{}
	for fn, fd := range decls {
		bad := unguardedLoops(fd.Body)
		unsafe[fd] = len(bad) > 0
		declOf[fd] = fn.FullName()
		// A doc-annotated function is managed: no fact, so cross-package
		// spawns trust the annotation the same way local ones do.
		if len(bad) > 0 && !docAnnotated(fd, workers, pass.Fset) {
			pass.ExportObjectFact(fn, &Fact{Unsafe: true})
		}
	}
	byFunc := map[string]*ast.FuncDecl{}
	for fn, fd := range decls {
		byFunc[fn.FullName()] = fd
	}

	pass.Inspect(func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if annotated(pass.Fset, workers, g.Pos()) {
			return true
		}
		switch fun := ssa.Unparen(g.Call.Fun).(type) {
		case *ast.FuncLit:
			for _, loop := range unguardedLoops(fun.Body) {
				pass.Reportf(loop.Pos(), "goroutine runs an infinite loop with no channel-signaled exit (no done/stop select, comma-ok receive, or range over a channel); annotate `// tebaldi:worker <shutdown path>` if shutdown is managed elsewhere")
			}
		default:
			fn := ssa.StaticCallee(pass.TypesInfo, g.Call)
			if fn == nil {
				return true // func value / interface dispatch: assumed terminating
			}
			if fd, ok := byFunc[fn.FullName()]; ok {
				if unsafe[fd] && !docAnnotated(fd, workers, pass.Fset) {
					pass.Reportf(g.Pos(), "goroutine %s runs an infinite loop with no channel-signaled exit; annotate `// tebaldi:worker <shutdown path>` at the go statement or on the function if shutdown is managed elsewhere", fn.FullName())
				}
				return true
			}
			var f Fact
			if pass.ImportObjectFact(fn, &f) && f.Unsafe {
				pass.Reportf(g.Pos(), "goroutine %s runs an infinite loop with no channel-signaled exit; annotate `// tebaldi:worker <shutdown path>` at the go statement or on the function if shutdown is managed elsewhere", fn.FullName())
			}
		}
		return true
	})
	return nil
}

// unguardedLoops returns the infinite for-loops of body that have no
// channel-signaled exit. Nested function literals are their own goroutine
// concern and are not descended into.
func unguardedLoops(body *ast.BlockStmt) []*ast.ForStmt {
	if body == nil {
		return nil
	}
	labels := map[*ast.ForStmt]string{}
	walkSameFunc(body, func(n ast.Node) bool {
		if ls, ok := n.(*ast.LabeledStmt); ok {
			if loop, ok := ls.Stmt.(*ast.ForStmt); ok {
				labels[loop] = ls.Label.Name
			}
		}
		return true
	})
	var out []*ast.ForStmt
	walkSameFunc(body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || !infinite(loop) {
			return true
		}
		if !guarded(loop, labels[loop]) {
			out = append(out, loop)
		}
		return true
	})
	return out
}

// infinite reports a `for {}` or `for true {}` loop.
func infinite(loop *ast.ForStmt) bool {
	if loop.Cond == nil {
		return true
	}
	id, ok := ssa.Unparen(loop.Cond).(*ast.Ident)
	return ok && id.Name == "true"
}

// guarded reports whether loop (labeled `label`, or "") has a
// channel-signaled exit.
func guarded(loop *ast.ForStmt, label string) bool {
	signalSelect := false
	commaOkReceive := false
	walkSameFunc(loop.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectStmt:
			for _, cc := range x.Body.List {
				clause := cc.(*ast.CommClause)
				if isReceive(clause.Comm) && exitsLoop(clause.Body, label) {
					signalSelect = true
				}
			}
		case *ast.AssignStmt:
			if len(x.Lhs) == 2 && len(x.Rhs) == 1 {
				if u, ok := ssa.Unparen(x.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					commaOkReceive = true
				}
			}
		}
		return true
	})
	if signalSelect {
		return true
	}
	return commaOkReceive && exitsLoop(loop.Body.List, label)
}

// isReceive matches the comm statement of a select case receiving from a
// channel, with or without assignment.
func isReceive(comm ast.Stmt) bool {
	switch c := comm.(type) {
	case *ast.ExprStmt:
		u, ok := ssa.Unparen(c.X).(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		if len(c.Rhs) != 1 {
			return false
		}
		u, ok := ssa.Unparen(c.Rhs[0]).(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	}
	return false
}

// exitsLoop reports whether stmts contain a return, or a break that targets
// the loop labeled `label` ("" = any unlabeled break at loop depth — but
// since unlabeled breaks inside select/switch/inner-for target those
// constructs, only returns and labeled breaks count as exits from within a
// select case).
func exitsLoop(stmts []ast.Stmt, label string) bool {
	found := false
	for _, s := range stmts {
		walkSameFunc(s, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ReturnStmt:
				found = true
			case *ast.BranchStmt:
				if x.Tok == token.BREAK && x.Label != nil && label != "" && x.Label.Name == label {
					found = true
				}
			}
			return true
		})
	}
	return found
}

// walkSameFunc is ast.Inspect that does not descend into nested function
// literals.
func walkSameFunc(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return f(n)
	})
}

// workerAnnotations indexes `// tebaldi:worker <desc>` comments by file and
// line. Annotations without a description are invalid and ignored.
func workerAnnotations(fset *token.FileSet, files []*ast.File) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "tebaldi:worker") {
					continue
				}
				desc := strings.TrimSpace(strings.TrimPrefix(text, "tebaldi:worker"))
				if desc == "" {
					continue // the shutdown path description is mandatory
				}
				p := fset.Position(c.Pos())
				m := out[p.Filename]
				if m == nil {
					m = map[int]bool{}
					out[p.Filename] = m
				}
				m[p.Line] = true
			}
		}
	}
	return out
}

// annotated reports a worker annotation on pos's line or the line above.
func annotated(fset *token.FileSet, workers map[string]map[int]bool, pos token.Pos) bool {
	p := fset.Position(pos)
	m := workers[p.Filename]
	return m != nil && (m[p.Line] || m[p.Line-1])
}

// docAnnotated reports a worker annotation in the declaration's doc comment
// or on the line above the declaration.
func docAnnotated(fd *ast.FuncDecl, workers map[string]map[int]bool, fset *token.FileSet) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, "tebaldi:worker") &&
				strings.TrimSpace(strings.TrimPrefix(text, "tebaldi:worker")) != "" {
				return true
			}
		}
	}
	return annotated(fset, workers, fd.Pos())
}
