// Package poolescape machine-checks the PR-9 transaction reclamation rule:
// a pooled *core.Txn may only be recycled if its pointer never escaped the
// owning goroutine, so every operation that publishes the pointer must mark
// the transaction shared first. The hand-maintained escape-point list in
// internal/core/txn.go used to be the enforcement mechanism; this analyzer
// derives that list instead (see EscapePoints) and flags any new escape edge
// that is not dominated by a MarkShared call.
//
// The analysis is interprocedural through framework facts: every function
// gets a Summary describing which of its pooled-pointer parameters escape
// and which it marks shared, and callers consult callee summaries. An
// escape edge is any of:
//
//   - a store of a tracked pointer into a struct field, map/slice/array
//     element, package-level variable, or through a pointer;
//   - a channel send or an append argument;
//   - capture by a goroutine (`go` statement arguments, receivers, or
//     closed-over variables);
//   - a composite literal embedding the pointer;
//   - returning a pointer that was itself loaded from a field or global —
//     the function hands out a retained reference (core.Tx.Txn's shape).
//
// An escape is sanctioned when the same value receives a MarkShared call
// anywhere in the function (all escapes happen on the owner goroutine before
// publication — txn.go's reclamation rule — so order within the body is not
// checked), or when it is passed to a callee whose summary marks that
// parameter.
//
// Deliberate approximations, chosen for zero false-positive noise on the
// repo: calls into packages outside the module (or through interfaces and
// function values) are not escape edges, and escapes of a parameter inside a
// callee are reported in the callee, not re-reported at every caller.
// Test files are summarized but not diagnosed — tests construct transactions
// directly and control the entire lifecycle, including whether PutTxn is
// ever called, so pool-recycling hazards cannot arise there.
//
// Types annotated `tebaldi:txnowner` are owner handles (e.g. engine.Tx):
// storing the pointer into their fields is ownership transfer on the same
// goroutine, not an escape. The annotation is exported as a fact, so
// cross-package stores into owner types are recognized too.
package poolescape

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/ssa"
)

// Name is the analyzer's registered name.
const Name = "poolescape"

// CorePath is the package that owns the pooled transaction type.
const CorePath = "repro/internal/core"

var Analyzer = &framework.Analyzer{
	Name: Name,
	Doc: "flag *core.Txn escape edges not sanctioned by MarkShared " +
		"(pool reclamation rule from PR 9: a recycled transaction must not be reachable from another goroutine)",
	Run: run,
}

// Summary is the per-function fact: which tracked parameters escape or get
// marked, and whether the function calls MarkShared directly (making it an
// escape point in the txn.go sense).
type Summary struct {
	Params        []ParamEffect `json:"params,omitempty"`
	MarksDirectly bool          `json:"marks,omitempty"`
	// Test marks a function declared in a _test.go file; the derived
	// escape-point list (EscapePoints) is about production code and skips
	// them.
	Test bool `json:"test,omitempty"`
}

// ParamEffect describes one tracked parameter by flat index (receiver first).
type ParamEffect struct {
	Index   int  `json:"i"`
	Escapes bool `json:"e,omitempty"`
	Marks   bool `json:"m,omitempty"`
}

func (s *Summary) at(i int) ParamEffect {
	for _, p := range s.Params {
		if p.Index == i {
			return p
		}
	}
	return ParamEffect{Index: i}
}

// ownerFact marks a type annotated tebaldi:txnowner.
type ownerFact struct {
	Owner bool `json:"owner"`
}

// tracked reports whether t is *core.Txn (the pooled pointer type).
func tracked(t types.Type) bool {
	if t == nil {
		return false
	}
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	return ssa.IsNamed(p.Elem(), CorePath, "Txn")
}

// escapeEdge is one publication of a tracked value. Silent edges (handing a
// parameter to a callee that escapes it) feed summaries but produce no
// diagnostic — the callee body is where that escape is reported.
type escapeEdge struct {
	val    ssa.ValueID
	pos    token.Pos
	what   string
	silent bool
}

// funcFacts is the analysis result for one function body.
type funcFacts struct {
	flow    *ssa.Flow
	escapes []escapeEdge
	marked  map[ssa.ValueID]bool
	marks   bool // calls (*Txn).MarkShared directly
}

func run(pass *framework.Pass) error {
	decls := ssa.Decls(pass.TypesInfo, pass.Files)
	ordered := make([]*ast.FuncDecl, 0, len(decls))
	fns := map[*ast.FuncDecl]*types.Func{}
	for fn, fd := range decls {
		ordered = append(ordered, fd)
		fns[fd] = fn
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Pos() < ordered[j].Pos() })

	owners := ownerTypes(pass)
	for tn := range owners {
		pass.ExportObjectFact(tn, &ownerFact{Owner: true})
	}

	a := &analysis{pass: pass, owners: owners, summaries: map[*types.Func]*Summary{}}

	// Two summary rounds approximate a bottom-up traversal without building
	// the package-local call order: round one summarizes leaves correctly,
	// round two sees those summaries from any caller. (Deeper same-package
	// chains converge too — each round propagates one level.)
	for round := 0; round < 2; round++ {
		for _, fd := range ordered {
			a.summaries[fns[fd]] = a.summarize(fd)
		}
	}

	// Report with the final summaries in view. Test files are summarized
	// (callers elsewhere still need the facts) but not diagnosed: tests
	// construct transactions directly and own the whole lifecycle,
	// including whether PutTxn ever runs, so the reclamation rule is
	// enforced on production code only.
	for _, fd := range ordered {
		if strings.HasSuffix(pass.Fset.Position(fd.Pos()).Filename, "_test.go") {
			continue
		}
		ff := a.analyze(fd)
		for _, e := range ff.escapes {
			if e.silent || ff.marked[e.val] {
				continue
			}
			pass.Reportf(e.pos, "pooled *core.Txn %s without MarkShared; PutTxn may recycle it while still referenced (reclamation rule, internal/core/txn.go)", e.what)
		}
	}

	for fn, s := range a.summaries {
		s.Test = strings.HasSuffix(pass.Fset.Position(fn.Pos()).Filename, "_test.go")
		pass.ExportObjectFact(fn, s)
	}
	return nil
}

type analysis struct {
	pass      *framework.Pass
	owners    map[*types.TypeName]bool
	summaries map[*types.Func]*Summary
}

// summarize computes the fact for one declaration.
func (a *analysis) summarize(fd *ast.FuncDecl) *Summary {
	ff := a.analyze(fd)
	s := &Summary{MarksDirectly: ff.marks}
	for _, p := range ff.flow.TrackedParams() {
		v := ff.flow.ValueOfParam(p)
		eff := ParamEffect{Index: p.Index, Marks: ff.marked[v]}
		for _, e := range ff.escapes {
			if e.val == v {
				eff.Escapes = true
			}
		}
		if eff.Escapes || eff.Marks {
			s.Params = append(s.Params, eff)
		}
	}
	return s
}

// analyze walks one declaration, collecting escape edges and marks.
func (a *analysis) analyze(fd *ast.FuncDecl) *funcFacts {
	info := a.pass.TypesInfo
	flow := ssa.BuildFlow(info, fd.Recv, fd.Type, fd.Body, tracked)
	ff := &funcFacts{flow: flow, marked: map[ssa.ValueID]bool{}}
	if fd.Body == nil {
		return ff
	}

	esc := func(e ast.Expr, pos token.Pos, what string, silent bool) {
		if v, ok := flow.ValueOf(e); ok {
			ff.escapes = append(ff.escapes, escapeEdge{val: v, pos: pos, what: what, silent: silent})
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				break
			}
			for i, lhs := range x.Lhs {
				rhs := x.Rhs[i]
				if _, ok := flow.ValueOf(rhs); !ok {
					continue
				}
				a.storeEdge(flow, lhs, rhs, esc)
			}
		case *ast.SendStmt:
			esc(x.Value, x.Value.Pos(), "sent on a channel", false)
		case *ast.CompositeLit:
			if a.isOwnerType(info.Types[x].Type) {
				break
			}
			for _, el := range x.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				esc(v, v.Pos(), "embedded in a composite literal", false)
			}
		case *ast.GoStmt:
			a.goEdges(flow, x, esc)
		case *ast.CallExpr:
			a.callEffects(flow, ff, x, esc)
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				v, ok := flow.ValueOf(r)
				if !ok {
					continue
				}
				if flow.HasOrigin(v, ssa.OriginLoad) || flow.HasOrigin(v, ssa.OriginGlobal) {
					esc(r, r.Pos(), "returned after being loaded from a field or global", false)
				}
			}
		}
		return true
	})
	return ff
}

// storeEdge classifies an assignment of a tracked rhs by its lhs shape.
func (a *analysis) storeEdge(flow *ssa.Flow, lhs, rhs ast.Expr, esc func(ast.Expr, token.Pos, string, bool)) {
	info := a.pass.TypesInfo
	switch l := ssa.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if tv, ok := info.Types[l.X]; ok && a.isOwnerType(tv.Type) {
			return // ownership transfer into an annotated owner handle
		}
		esc(rhs, rhs.Pos(), "stored into field "+types.ExprString(l), false)
	case *ast.IndexExpr:
		esc(rhs, rhs.Pos(), "stored into element "+types.ExprString(l), false)
	case *ast.StarExpr:
		esc(rhs, rhs.Pos(), "stored through pointer "+types.ExprString(l), false)
	case *ast.Ident:
		obj := info.Uses[l]
		if obj == nil {
			obj = info.Defs[l]
		}
		if v, ok := obj.(*types.Var); ok && v.Parent() == a.pass.Pkg.Scope() {
			esc(rhs, rhs.Pos(), "stored into package-level variable "+l.Name, false)
		}
	}
}

// goEdges records goroutine hand-offs: call arguments, the receiver of a
// `go x.m()`, and tracked variables captured by a spawned literal.
func (a *analysis) goEdges(flow *ssa.Flow, g *ast.GoStmt, esc func(ast.Expr, token.Pos, string, bool)) {
	info := a.pass.TypesInfo
	call := g.Call
	for _, arg := range call.Args {
		esc(arg, g.Pos(), "passed to a goroutine", false)
	}
	switch fun := ssa.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		esc(fun.X, g.Pos(), "receiver of a goroutine method call", false)
	case *ast.FuncLit:
		local := map[types.Object]bool{}
		ast.Inspect(fun, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if o := info.Defs[id]; o != nil {
					local[o] = true
				}
			}
			return true
		})
		seen := map[types.Object]bool{}
		ast.Inspect(fun.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			o := info.Uses[id]
			if o == nil || local[o] || seen[o] || !tracked(o.Type()) {
				return true
			}
			seen[o] = true
			esc(id, g.Pos(), "captured by a goroutine", false)
			return true
		})
	}
}

// callEffects applies callee summaries: marks propagate, and passing a
// tracked value to a callee that escapes it without marking is a silent
// edge (the callee body carries the diagnostic). Direct MarkShared calls and
// append retention are handled here too.
func (a *analysis) callEffects(flow *ssa.Flow, ff *funcFacts, call *ast.CallExpr, esc func(ast.Expr, token.Pos, string, bool)) {
	info := a.pass.TypesInfo

	if recv, ok := markSharedRecv(info, call); ok {
		ff.marks = true
		if v, ok := flow.ValueOf(recv); ok {
			ff.marked[v] = true
		}
		return
	}

	if id, ok := ssa.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "append" {
				for _, arg := range call.Args[1:] {
					esc(arg, arg.Pos(), "retained by append", false)
				}
			}
			return
		}
	}

	fn := ssa.StaticCallee(info, call)
	if fn == nil {
		return // interface dispatch / func value: not an escape edge (documented)
	}
	sum := a.summaryOf(fn)
	if sum == nil {
		return // external callee: not an escape edge (documented)
	}
	for i, arg := range flatArgs(info, fn, call) {
		v, ok := flow.ValueOf(arg)
		if !ok {
			continue
		}
		eff := sum.at(i)
		if eff.Marks {
			ff.marked[v] = true
		}
		if eff.Escapes && !eff.Marks {
			esc(arg, arg.Pos(), "passed to "+fn.FullName()+", which escapes it", true)
		}
	}
}

// summaryOf resolves a callee summary: same-package results first, then
// imported facts. nil means the callee is outside the analyzed module.
func (a *analysis) summaryOf(fn *types.Func) *Summary {
	if s, ok := a.summaries[fn]; ok {
		return s
	}
	var s Summary
	if a.pass.ImportObjectFact(fn, &s) {
		return &s
	}
	return nil
}

// flatArgs aligns call arguments with the callee's flat parameter indexing
// (receiver first for methods called through a selector).
func flatArgs(info *types.Info, fn *types.Func, call *ast.CallExpr) []ast.Expr {
	var out []ast.Expr
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if sel, ok := ssa.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			// Method expressions ((*T).M)(x, ...) have a type as sel.X; a
			// type expression is never a tracked value, so prepending it is
			// harmless there and correct for ordinary method calls.
			out = append(out, sel.X)
		}
	}
	return append(out, call.Args...)
}

// markSharedRecv matches a direct (*core.Txn).MarkShared call, returning the
// receiver expression.
func markSharedRecv(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := ssa.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "MarkShared" {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !ssa.IsNamed(sig.Recv().Type(), CorePath, "Txn") {
		return nil, false
	}
	return sel.X, true
}

// isOwnerType reports whether t (through pointers) is annotated
// tebaldi:txnowner, locally or via an imported fact.
func (a *analysis) isOwnerType(t types.Type) bool {
	n := ssa.NamedOf(t)
	if n == nil {
		return false
	}
	tn := n.Obj()
	if a.owners[tn] {
		return true
	}
	var f ownerFact
	return a.importOwner(tn, &f) && f.Owner
}

func (a *analysis) importOwner(tn *types.TypeName, f *ownerFact) bool {
	return a.pass.ImportObjectFact(tn, f)
}

// ownerTypes collects the package's tebaldi:txnowner-annotated type names.
// The directive lives in the type's doc comment (on the GenDecl or the
// TypeSpec).
func ownerTypes(pass *framework.Pass) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	hasDirective := func(groups ...*ast.CommentGroup) bool {
		for _, cg := range groups {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == "tebaldi:txnowner" {
					return true
				}
			}
		}
		return false
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasDirective(gd.Doc, ts.Doc, ts.Comment) {
					if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
						out[tn] = true
					}
				}
			}
		}
	}
	return out
}

// EscapePoints derives the transaction escape-point list from the session's
// facts: every function whose summary marks transactions shared directly,
// excluding the MarkShared primitive itself. This is the machine-derived
// replacement for the hand-maintained list in internal/core/txn.go.
func EscapePoints(facts *framework.FactStore) []string {
	var out []string
	for _, key := range facts.Keys(Name) {
		var s Summary
		if !facts.Lookup(Name, key, &s) {
			continue
		}
		if s.MarksDirectly && !s.Test && !strings.HasSuffix(key, ".MarkShared") {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}
