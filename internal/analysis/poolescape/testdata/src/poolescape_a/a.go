// Package poolescape_a seeds every escape-edge shape the poolescape
// analyzer must catch, plus the sanctioned shapes it must stay quiet on.
package poolescape_a

import "repro/internal/core"

var global *core.Txn

type registry struct{ m map[uint64]*core.Txn }

type handle struct{ t *core.Txn }

type pair struct{ a *core.Txn }

func leakGlobal() {
	t := core.GetTxn(1)
	global = t // want `pooled \*core\.Txn stored into package-level variable global without MarkShared`
	core.PutTxn(t)
}

func leakMap(r *registry, t *core.Txn) {
	r.m[0] = t // want `pooled \*core\.Txn stored into element r\.m\[0\] without MarkShared`
}

func leakField(h *handle, t *core.Txn) {
	h.t = t // want `pooled \*core\.Txn stored into field h\.t without MarkShared`
}

func leakPointer(p **core.Txn, t *core.Txn) {
	*p = t // want `pooled \*core\.Txn stored through pointer \*p without MarkShared`
}

func leakChan(ch chan *core.Txn, t *core.Txn) {
	ch <- t // want `pooled \*core\.Txn sent on a channel without MarkShared`
}

func leakAppend(s []*core.Txn, t *core.Txn) []*core.Txn {
	return append(s, t) // want `pooled \*core\.Txn retained by append without MarkShared`
}

func leakComposite(t *core.Txn) {
	_ = pair{a: t} // want `pooled \*core\.Txn embedded in a composite literal without MarkShared`
}

func leakGoCapture(t *core.Txn) {
	go func() { // want `pooled \*core\.Txn captured by a goroutine without MarkShared`
		_ = t.Shared()
	}()
}

func leakGoArg(t *core.Txn) {
	go observe(t) // want `pooled \*core\.Txn passed to a goroutine without MarkShared`
}

func leakGoReceiver(t *core.Txn) {
	go t.Shared() // want `pooled \*core\.Txn receiver of a goroutine method call without MarkShared`
}

func leakReturnLoad(h *handle) *core.Txn {
	return h.t // want `pooled \*core\.Txn returned after being loaded from a field or global without MarkShared`
}

func observe(t *core.Txn) {}

// --- sanctioned shapes: no diagnostics below this line ---

// okMarkedStore: a MarkShared anywhere in the body sanctions the store.
func okMarkedStore(r *registry, t *core.Txn) {
	t.MarkShared()
	r.m[1] = t
}

// okMarkedLate: publication precedes the mark textually; the rule is
// flow-insensitive because all escapes happen on the owner goroutine before
// the pointer is reachable elsewhere.
func okMarkedLate(r *registry, t *core.Txn) {
	r.m[2] = t
	t.MarkShared()
}

// okCalleeMarks: core.Txn.AddDep's summary marks its parameter, which
// sanctions the hand-off.
func okCalleeMarks(t, other *core.Txn) {
	t.AddDep(other)
}

// okCalleeEscapes: core.Retain escapes its parameter without marking; the
// diagnostic is reported in Retain's body, not here.
func okCalleeEscapes(t *core.Txn) {
	core.Retain(t)
}

// okFreshReturn: returning a freshly obtained transaction is the GetTxn
// wrapper shape, not an escape.
func okFreshReturn() *core.Txn {
	return core.GetTxn(2)
}

// okParamReturn: handing a parameter back to the caller creates no new
// retention.
func okParamReturn(t *core.Txn) *core.Txn {
	return t
}

// okAlias: plain local aliasing is not an escape.
func okAlias(t *core.Txn) {
	u := t
	_ = u
}

// Owner is this package's annotated owner handle.
//
// tebaldi:txnowner
type Owner struct{ t *core.Txn }

// okOwnerStore: stores into an annotated owner type transfer ownership on
// the owning goroutine.
func okOwnerStore(o *Owner, t *core.Txn) {
	o.t = t
}

// okOwnerComposite: building the owner handle around the transaction.
func okOwnerComposite(t *core.Txn) *Owner {
	return &Owner{t: t}
}

// okCrossOwner: the owner annotation travels across packages as a fact.
func okCrossOwner(h *core.Handle, t *core.Txn) {
	h.T = t
}

// okAllow: a justified suppression holds.
func okAllow(t *core.Txn) {
	global = t //lint:allow poolescape -- seeded: removed from global before PutTxn
}
