// Package core is the golden-test stub of repro/internal/core: just enough
// surface for the poolescape packages. It shadows the real module package
// through the source-first importer, so the analyzer sees the same import
// path (and produces the same fact keys) as in the real repository.
package core

// Txn is the pooled transaction stub.
type Txn struct {
	ID     uint64
	shared bool
	deps   map[uint64]*Txn
}

// GetTxn returns a pooled transaction.
func GetTxn(id uint64) *Txn { return &Txn{ID: id} }

// PutTxn recycles a transaction unless it is shared.
func PutTxn(t *Txn) bool { return !t.shared }

// MarkShared records that t's pointer escaped the owning goroutine.
func (t *Txn) MarkShared() { t.shared = true }

// Shared reports whether the pointer escaped.
func (t *Txn) Shared() bool { return t.shared }

// AddDep retains other in the receiver's dependency map, marking it shared
// first — the real core.Txn.AddDep shape. Its summary fact (param 1 escapes
// and is marked) is what sanctions callers passing transactions in.
func (t *Txn) AddDep(other *Txn) {
	other.MarkShared()
	if t.deps == nil {
		t.deps = map[uint64]*Txn{}
	}
	t.deps[other.ID] = other
}

// Retain escapes its parameter without marking it: the diagnostic belongs
// here, in the callee body, and callers are not re-flagged.
func Retain(t *Txn) {
	sink.t = t // want `pooled \*core\.Txn stored into field sink\.t without MarkShared`
}

var sink struct{ t *Txn }

// Handle is an annotated owner handle living in a different package than
// its users — exercises the cross-package owner fact.
//
// tebaldi:txnowner
type Handle struct{ T *Txn }
