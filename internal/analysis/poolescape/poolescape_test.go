package poolescape

import (
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/load"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, Analyzer, "poolescape_a")
}

// TestEscapePointsMatchDocumentation is the acceptance check from the PR:
// the machine-derived escape-point set over the real repository must exactly
// equal the list documented in internal/core/txn.go's reclamation-rule
// comment. A new MarkShared caller means both this list and that comment
// must change together.
func TestEscapePointsMatchDocumentation(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	_, thisFile, _, _ := runtime.Caller(0)
	root := filepath.Join(filepath.Dir(thisFile), "..", "..", "..")

	pkgs, err := load.Packages(root, "./internal/...")
	if err != nil {
		t.Fatal(err)
	}
	session := framework.NewSession()
	for _, pkg := range pkgs {
		if pkg.IllTyped || pkg.Types == nil {
			t.Fatalf("ill-typed package %s: %v", pkg.ImportPath, pkg.Err)
		}
		if _, err := session.Run(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, []*framework.Analyzer{Analyzer}); err != nil {
			t.Fatalf("analyzing %s: %v", pkg.ImportPath, err)
		}
	}

	got := EscapePoints(session.Facts())
	want := []string{
		"(*repro/internal/core.Chain).InstallPromise",
		"(*repro/internal/core.Chain).RecordReader",
		"(*repro/internal/core.Txn).AddDep",
		"(*repro/internal/core.Txn).AddWrite",
		"(*repro/internal/engine.Engine).loadVersion",
		"(*repro/internal/engine.Tx).Txn",
		"(*repro/internal/lockmgr.Table).Acquire",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("derived escape points diverge from the documented list\n got: %q\nwant: %q", got, want)
	}
}
