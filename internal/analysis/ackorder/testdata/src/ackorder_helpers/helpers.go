// Package ackorder_helpers exercises the cross-package wait fact: Block
// takes a ticket and waits on it, so calling it counts as a durability wait
// in importing packages.
package ackorder_helpers

import "repro/internal/wal"

// Block waits for t's batch to flush.
func Block(t *wal.Ticket) {
	t.Wait()
}
