// Package ackorder_a seeds the ack-before-fsync shapes the ackorder
// analyzer must flag, plus every accepted wait idiom.
package ackorder_a

import (
	"errors"

	"ackorder_helpers"
	"repro/internal/wal"
)

var errTimeout = errors.New("timeout")

type engine struct {
	mgr *wal.Manager
}

// --- flagged shapes ---

// commitNoWait drops the durability wait entirely: in sync mode the client
// is acked before the flush.
func (e *engine) commitNoWait(id uint64, writes map[int][]wal.KV) error {
	_, ticket, err := e.mgr.Precommit(id, writes)
	if err != nil {
		return err
	}
	e.mgr.Commit(id, 1, 0, ticket)
	return nil // want `returns nil after staging WAL records without a durability wait`
}

// commitEarlyAck acks on the fast path before the sync wait runs.
func (e *engine) commitEarlyAck(id uint64, writes map[int][]wal.KV, fast bool) error {
	_, ticket, err := e.mgr.Precommit(id, writes)
	if err != nil {
		return err
	}
	if fast {
		return nil // want `returns nil after staging WAL records without a durability wait`
	}
	if e.mgr.Synchronous() {
		ticket.Wait()
	}
	return nil
}

// commitGoWait hands the wait to a goroutine: the ack no longer follows the
// flush, so it does not count.
func (e *engine) commitGoWait(id uint64, writes map[int][]wal.KV) error {
	_, ticket, err := e.mgr.Precommit(id, writes)
	if err != nil {
		return err
	}
	go ticket.Wait()
	return nil // want `returns nil after staging WAL records without a durability wait`
}

// --- accepted shapes ---

// commitFull is the real engine Commit shape: conditional staging, the
// ticket-guarded commit record, and the sync-gated wait whose fall-through
// path is provably async.
func (e *engine) commitFull(id uint64, writes map[int][]wal.KV) error {
	var ticket *wal.Ticket
	var epoch uint64
	if len(writes) > 0 {
		var err error
		epoch, ticket, err = e.mgr.Precommit(id, writes)
		if err != nil {
			return err
		}
	}
	_ = epoch
	if ticket != nil {
		e.mgr.Commit(id, 1, epoch, ticket)
	}
	if ticket != nil && e.mgr.Synchronous() {
		ticket.Wait()
	}
	return nil
}

// commitSyncGate: the plain Synchronous() gate refines the else path.
func (e *engine) commitSyncGate(id uint64, writes map[int][]wal.KV) error {
	_, ticket, err := e.mgr.Precommit(id, writes)
	if err != nil {
		return err
	}
	if e.mgr.Synchronous() {
		ticket.Wait()
	}
	return nil
}

// commitDoneChan: receiving from ticket.Done() is a wait; the timeout arm
// refuses to ack.
func (e *engine) commitDoneChan(id uint64, writes map[int][]wal.KV, timeout chan struct{}) error {
	_, ticket, err := e.mgr.Precommit(id, writes)
	if err != nil {
		return err
	}
	if e.mgr.Synchronous() {
		select {
		case <-ticket.Done():
		case <-timeout:
			return errTimeout
		}
	}
	return nil
}

// commitViaErr: ticket.Err waits internally (fact exported by the wal
// package).
func (e *engine) commitViaErr(id uint64, writes map[int][]wal.KV) error {
	_, ticket, err := e.mgr.Precommit(id, writes)
	if err != nil {
		return err
	}
	if e.mgr.Synchronous() {
		_ = ticket.Err()
	}
	return nil
}

// commitEpochWait: Manager.WaitDurable is a durability wait.
func (e *engine) commitEpochWait(id uint64, writes map[int][]wal.KV) error {
	epoch, _, err := e.mgr.Precommit(id, writes)
	if err != nil {
		return err
	}
	if e.mgr.Synchronous() {
		e.mgr.WaitDurable(epoch)
	}
	return nil
}

// waitTicket is a same-package wait helper.
func waitTicket(t *wal.Ticket) {
	t.Wait()
}

// commitLocalHelper: the wait hides behind a local helper.
func (e *engine) commitLocalHelper(id uint64, writes map[int][]wal.KV) error {
	_, ticket, err := e.mgr.Precommit(id, writes)
	if err != nil {
		return err
	}
	if e.mgr.Synchronous() {
		waitTicket(ticket)
	}
	return nil
}

// commitCrossHelper: the wait hides behind an imported helper's fact.
func (e *engine) commitCrossHelper(id uint64, writes map[int][]wal.KV) error {
	_, ticket, err := e.mgr.Precommit(id, writes)
	if err != nil {
		return err
	}
	if e.mgr.Synchronous() {
		ackorder_helpers.Block(ticket)
	}
	return nil
}

// commitErrReturn: returning the flush error is an honest ack.
func (e *engine) commitErrReturn(id uint64, writes map[int][]wal.KV) error {
	_, ticket, err := e.mgr.Precommit(id, writes)
	if err != nil {
		return err
	}
	return ticket.Err()
}

// commitAllowed: a justified suppression holds.
func (e *engine) commitAllowed(id uint64, writes map[int][]wal.KV) error {
	_, _, err := e.mgr.Precommit(id, writes)
	if err != nil {
		return err
	}
	//lint:allow ackorder -- seeded: the caller acks after WaitDurable
	return nil
}
