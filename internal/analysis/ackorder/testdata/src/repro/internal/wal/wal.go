// Package wal is the golden-test stub of repro/internal/wal: the Manager /
// Ticket surface the ackorder analyzer keys on, shadowing the real module
// package through the source-first importer.
package wal

// KV is one staged write.
type KV struct {
	Key   string
	Value []byte
}

// Ticket tracks one group-commit batch.
type Ticket struct {
	done chan struct{}
	err  error
}

// Wait blocks until the batch holding the caller's records is flushed.
func (t *Ticket) Wait() { <-t.done }

// Done exposes the flush-completion channel.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Err waits for the flush and returns its error: waiting is implied, which
// the analyzer must recognize.
func (t *Ticket) Err() error {
	t.Wait()
	return t.err
}

// Manager is the group-commit WAL front end.
type Manager struct {
	sync bool
}

// Precommit stages writes and returns the batch ticket.
func (m *Manager) Precommit(txnID uint64, writesByShard map[int][]KV) (uint64, *Ticket, error) {
	return 0, &Ticket{done: make(chan struct{})}, nil
}

// Commit stages the commit record.
func (m *Manager) Commit(txnID, commitTS, epoch uint64, tk *Ticket) error { return nil }

// Synchronous reports sync-commit mode.
func (m *Manager) Synchronous() bool { return m.sync }

// WaitDurable blocks until the given epoch is durable.
func (m *Manager) WaitDurable(epoch uint64) {}
