// Package ackorder machine-checks the durability ack ordering invariant of
// the group-commit WAL (PR 8/9): a function that stages records through
// (*wal.Manager).Precommit must not return a nil error on a path that could
// run in synchronous mode without waiting for the flush (ticket.Wait,
// <-ticket.Done(), Manager.WaitDurable, or a helper that provably waits).
// Returning early acks a commit the log may still lose — the exact incident
// shape PR 6's tests reproduce with a crash between ack and fsync.
//
// The analyzer is value-flow based and path-sensitive over exactly the three
// facts the invariant mentions:
//
//   - staged: a Precommit call succeeded on this path;
//   - waited: a durability wait ran on this path;
//   - sync: what this path knows about Manager.Synchronous().
//
// Conditions over `ticket != nil` and `Synchronous()` split paths, including
// through && and || (`if ticket != nil && mgr.Synchronous()` refines its
// fall-through path to "async mode" when the ticket is known non-nil).
// A diagnostic is reported only at `return` statements whose error-position
// result is the literal nil while staged && !waited && possibly-sync.
//
// Helpers that encapsulate the wait are recognized interprocedurally: any
// function taking (or methodically receiving) a *wal.Ticket and waiting on
// one exports a fact, and calls to it count as waits — so `ticket.Err()`
// (which waits internally) or a repo-local waitDurable(t) helper satisfy the
// invariant. Waits inside `go` statements do not count: a concurrent wait
// does not delay the ack.
//
// Scope: the wal package itself is excluded (it implements the mechanism),
// and _test.go functions are not diagnosed (tests stage and ack freely).
package ackorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/ssa"
)

// Name is the analyzer's registered name.
const Name = "ackorder"

// WalPath is the package that owns Manager and Ticket.
const WalPath = "repro/internal/wal"

var Analyzer = &framework.Analyzer{
	Name: Name,
	Doc: "flag commit paths that return nil after staging WAL records without a " +
		"durability wait reachable in synchronous mode (ack-before-fsync)",
	Run: run,
}

// WaitFact marks a function that takes a *wal.Ticket (parameter or receiver)
// and performs a durability wait on one; calling it counts as waiting.
type WaitFact struct {
	Waits bool `json:"waits"`
}

// maxPaths bounds the path enumeration per function; beyond it the analyzer
// stays silent rather than slow.
const maxPaths = 4096

func run(pass *framework.Pass) error {
	decls := ssa.Decls(pass.TypesInfo, pass.Files)

	// Local wait-helper set, exported as facts for cross-package callers.
	waiters := map[*types.Func]bool{}
	for fn, fd := range decls {
		if hasTicketParam(fn) && bodyWaits(pass.TypesInfo, fd.Body) {
			waiters[fn] = true
			pass.ExportObjectFact(fn, &WaitFact{Waits: true})
		}
	}

	if pass.Pkg.Path() == WalPath {
		return nil // the mechanism itself is out of scope
	}

	for fn, fd := range decls {
		if !callsPrecommit(pass.TypesInfo, fd.Body) {
			continue
		}
		if strings.HasSuffix(pass.Fset.Position(fd.Pos()).Filename, "_test.go") {
			continue
		}
		w := &walker{pass: pass, waiters: waiters, errIdx: errResultIndex(fn), reported: map[token.Pos]bool{}}
		if w.errIdx < 0 {
			continue // no error result: nothing to ack wrongly
		}
		w.walkStmts(fd.Body.List, state{})
	}
	return nil
}

// tri is three-valued path knowledge.
type tri int

const (
	unknown tri = iota
	yes
	no
)

func (t tri) invert() tri {
	switch t {
	case yes:
		return no
	case no:
		return yes
	}
	return unknown
}

// state is what one path knows at a program point.
type state struct {
	staged bool
	waited bool
	ticket tri // is the staged ticket non-nil?
	sync   tri // is the manager in synchronous mode?
}

type walker struct {
	pass     *framework.Pass
	waiters  map[*types.Func]bool
	errIdx   int
	paths    int
	reported map[token.Pos]bool
}

// walkStmts explores stmts under st, forking at branches.
func (w *walker) walkStmts(stmts []ast.Stmt, st state) {
	w.paths++
	if w.paths > maxPaths {
		return
	}
	for i := 0; i < len(stmts); i++ {
		switch x := stmts[i].(type) {
		case *ast.IfStmt:
			if x.Init != nil {
				st = w.effects(x.Init, st)
			}
			rest := stmts[i+1:]
			if thenSt, ok := w.assume(st, x.Cond, true); ok {
				w.walkStmts(concat(x.Body.List, rest), thenSt)
			}
			if elseSt, ok := w.assume(st, x.Cond, false); ok {
				switch e := x.Else.(type) {
				case nil:
					w.walkStmts(rest, elseSt)
				case *ast.BlockStmt:
					w.walkStmts(concat(e.List, rest), elseSt)
				default: // else-if chain
					w.walkStmts(concat([]ast.Stmt{e}, rest), elseSt)
				}
			}
			return
		case *ast.ReturnStmt:
			w.checkReturn(x, st)
			return
		case *ast.BlockStmt:
			w.walkStmts(concat(x.List, stmts[i+1:]), st)
			return
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			rest := stmts[i+1:]
			bodies, exhaustive := clauseBodies(x)
			for _, body := range bodies {
				w.walkStmts(concat(body, rest), st)
			}
			if !exhaustive {
				w.walkStmts(rest, st) // no clause matched (switch without default)
			}
			return
		case *ast.ForStmt:
			st = w.loopEffects(x.Body, st)
		case *ast.RangeStmt:
			st = w.loopEffects(x.Body, st)
		case *ast.BranchStmt:
			return // break/continue/goto: this linear path ends here
		default:
			st = w.effects(stmts[i], st)
		}
	}
}

// effects applies the state changes of one non-branching statement.
func (w *walker) effects(s ast.Stmt, st state) state {
	walkSameFunc(s, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			return false // a concurrent wait does not delay the ack
		case *ast.AssignStmt:
			if len(x.Rhs) == 1 {
				if call, ok := ssa.Unparen(x.Rhs[0]).(*ast.CallExpr); ok && isManagerCall(w.pass.TypesInfo, call, "Precommit") {
					st.staged = true
					st.ticket = yes
				}
			}
		case *ast.CallExpr:
			if w.isWait(x) {
				st.waited = true
			}
		}
		return true
	})
	return st
}

// loopEffects applies a loop body's effects flow-insensitively and checks
// any returns inside it with the pre-loop state (inner atom conditions are
// not split — worker loops do not gate the durability wait in practice).
func (w *walker) loopEffects(body *ast.BlockStmt, st state) state {
	st = w.effects(body, st)
	walkSameFunc(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			w.checkReturn(r, st)
		}
		return true
	})
	return st
}

// checkReturn flags a nil error result returned while staged, unwaited, and
// possibly synchronous.
func (w *walker) checkReturn(r *ast.ReturnStmt, st state) {
	if !st.staged || st.waited || st.sync == no {
		return
	}
	if w.errIdx >= len(r.Results) {
		return // naked return or result-spread call: not a literal nil ack
	}
	res := r.Results[w.errIdx]
	if tv, ok := w.pass.TypesInfo.Types[res]; !ok || !tv.IsNil() {
		return
	}
	if w.reported[r.Pos()] {
		return
	}
	w.reported[r.Pos()] = true
	w.pass.Reportf(r.Pos(), "returns nil after staging WAL records without a durability wait reachable in sync mode (ticket.Wait / <-ticket.Done() / Manager.WaitDurable): the commit may be acked before its flush")
}

// assume refines st with cond == val, reporting false when the path is
// infeasible under what st already knows.
func (w *walker) assume(st state, cond ast.Expr, val bool) (state, bool) {
	cond = ssa.Unparen(cond)
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return w.assume(st, c.X, !val)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if val {
				st1, ok := w.assume(st, c.X, true)
				if !ok {
					return st, false
				}
				return w.assume(st1, c.Y, true)
			}
			// ¬(A && B): decidable only when one side is already known.
			if w.known(st, c.X) == yes {
				return w.assume(st, c.Y, false)
			}
			if w.known(st, c.Y) == yes {
				return w.assume(st, c.X, false)
			}
			return st, true
		case token.LOR:
			if !val {
				st1, ok := w.assume(st, c.X, false)
				if !ok {
					return st, false
				}
				return w.assume(st1, c.Y, false)
			}
			if w.known(st, c.X) == no {
				return w.assume(st, c.Y, true)
			}
			if w.known(st, c.Y) == no {
				return w.assume(st, c.X, true)
			}
			return st, true
		}
	}
	if nonNil, ok := w.ticketNilCheck(cond); ok {
		want := yes
		if nonNil != val {
			want = no
		}
		if st.ticket != unknown && st.ticket != want {
			return st, false
		}
		st.ticket = want
		return st, true
	}
	if w.isSyncCall(cond) {
		want := yes
		if !val {
			want = no
		}
		if st.sync != unknown && st.sync != want {
			return st, false
		}
		st.sync = want
		return st, true
	}
	return st, true
}

// known evaluates cond against st without refining it.
func (w *walker) known(st state, cond ast.Expr) tri {
	cond = ssa.Unparen(cond)
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		return w.known(st, u.X).invert()
	}
	if nonNil, ok := w.ticketNilCheck(cond); ok {
		if nonNil {
			return st.ticket
		}
		return st.ticket.invert()
	}
	if w.isSyncCall(cond) {
		return st.sync
	}
	return unknown
}

// ticketNilCheck matches `t != nil` / `t == nil` for a *wal.Ticket t,
// returning whether the comparison asserts non-nil.
func (w *walker) ticketNilCheck(cond ast.Expr) (nonNil, ok bool) {
	b, isBin := cond.(*ast.BinaryExpr)
	if !isBin || (b.Op != token.EQL && b.Op != token.NEQ) {
		return false, false
	}
	info := w.pass.TypesInfo
	var operand ast.Expr
	switch {
	case isNilExpr(info, b.Y):
		operand = b.X
	case isNilExpr(info, b.X):
		operand = b.Y
	default:
		return false, false
	}
	tv, okT := info.Types[operand]
	if !okT || !ssa.IsNamed(tv.Type, WalPath, "Ticket") {
		return false, false
	}
	return b.Op == token.NEQ, true
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ssa.Unparen(e)]
	return ok && tv.IsNil()
}

// isSyncCall matches a (*wal.Manager).Synchronous() call.
func (w *walker) isSyncCall(cond ast.Expr) bool {
	call, ok := ssa.Unparen(cond).(*ast.CallExpr)
	return ok && isManagerCall(w.pass.TypesInfo, call, "Synchronous")
}

// isWait recognizes every accepted durability wait: ticket.Wait(),
// Manager.WaitDurable(...), and calls to exported wait-helper facts. The
// <-ticket.Done() form reduces to the Done() call this matches.
func (w *walker) isWait(call *ast.CallExpr) bool {
	info := w.pass.TypesInfo
	if isTicketCall(info, call, "Wait") || isTicketCall(info, call, "Done") || isTicketCall(info, call, "Err") {
		return true
	}
	if isManagerCall(info, call, "WaitDurable") {
		return true
	}
	fn := ssa.StaticCallee(info, call)
	if fn == nil {
		return false
	}
	if w.waiters[fn] {
		return true
	}
	var f WaitFact
	return w.pass.ImportObjectFact(fn, &f) && f.Waits
}

// isManagerCall / isTicketCall match a method call by receiver type and name.
func isManagerCall(info *types.Info, call *ast.CallExpr, name string) bool {
	return isMethodCall(info, call, "Manager", name)
}

func isTicketCall(info *types.Info, call *ast.CallExpr, name string) bool {
	return isMethodCall(info, call, "Ticket", name)
}

func isMethodCall(info *types.Info, call *ast.CallExpr, typeName, name string) bool {
	sel, ok := ssa.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return ssa.IsNamed(sig.Recv().Type(), WalPath, typeName)
}

// callsPrecommit reports whether body stages records itself.
func callsPrecommit(info *types.Info, body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	found := false
	walkSameFunc(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isManagerCall(info, call, "Precommit") {
			found = true
		}
		return true
	})
	return found
}

// hasTicketParam reports whether fn takes a *wal.Ticket (receiver counts).
func hasTicketParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if r := sig.Recv(); r != nil && ssa.IsNamed(r.Type(), WalPath, "Ticket") {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if ssa.IsNamed(sig.Params().At(i).Type(), WalPath, "Ticket") {
			return true
		}
	}
	return false
}

// bodyWaits reports whether body performs a direct durability wait.
func bodyWaits(info *types.Info, body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	found := false
	walkSameFunc(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isTicketCall(info, call, "Wait") || isTicketCall(info, call, "Done") ||
			isManagerCall(info, call, "WaitDurable") {
			found = true
		}
		return true
	})
	return found
}

// errResultIndex returns the index of the trailing error result, or -1.
func errResultIndex(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return -1
	}
	last := sig.Results().Len() - 1
	if named, ok := sig.Results().At(last).Type().(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
		return last
	}
	return -1
}

// clauseBodies returns the clause bodies of a switch/type-switch/select and
// whether the statement always enters some clause (select always blocks for
// a comm; a switch is exhaustive only with a default clause).
func clauseBodies(s ast.Stmt) ([][]ast.Stmt, bool) {
	var out [][]ast.Stmt
	hasDefault := false
	add := func(list []ast.Stmt) {
		for _, cl := range list {
			switch c := cl.(type) {
			case *ast.CaseClause:
				if c.List == nil {
					hasDefault = true
				}
				out = append(out, c.Body)
			case *ast.CommClause:
				// The comm statement (e.g. `<-ticket.Done()`) carries
				// effects of its own; run it ahead of the clause body.
				if c.Comm != nil {
					out = append(out, concat([]ast.Stmt{c.Comm}, c.Body))
				} else {
					out = append(out, c.Body)
				}
			}
		}
	}
	switch x := s.(type) {
	case *ast.SwitchStmt:
		add(x.Body.List)
		return out, hasDefault
	case *ast.TypeSwitchStmt:
		add(x.Body.List)
		return out, hasDefault
	case *ast.SelectStmt:
		add(x.Body.List)
		return out, true
	}
	return out, false
}

func concat(a, b []ast.Stmt) []ast.Stmt {
	out := make([]ast.Stmt, 0, len(a)+len(b))
	return append(append(out, a...), b...)
}

// walkSameFunc is ast.Inspect that does not descend into nested function
// literals.
func walkSameFunc(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return f(n)
	})
}
