// Package lockorder implements the tebaldivet analyzer that extracts the
// mutex-acquisition graph and checks it against a declared partial order.
//
// Composing CC mechanisms in one tree (the Tebaldi design) multiplies lock
// nesting across lockmgr shards, storage shards, WAL appenders, version
// chains and the engine's configuration gates; an undeclared A-then-B
// nesting today becomes a B-then-A deadlock two PRs later. The analyzer
// records every acquisition performed while another lock is held — both
// directly and through same-package helper calls (a bottom-up summary
// fixpoint) — and requires each observed edge to be covered by the declared
// partial order:
//
//	type lock struct {
//		// tebaldi:locks after lockmgr.shard.mu
//		mu sync.Mutex
//	}
//
// declares that this mutex may be acquired while shard.mu is held. A
// package-level comment `// tebaldi:locks order A < B` declares the same
// edge without touching the declaration (useful for cross-package locks).
// Undeclared edges, same-class nestings (two locks of one class, e.g. two
// version chains — the "must never take other chain locks" invariant), and
// cycles in the declared order itself are reported.
//
// Lock classes are named pkg.Type.field for mutex fields and pkg.Type for
// types that are themselves locks (core.Chain). The analysis is
// per-package: a cross-package nesting is observed from the package whose
// function performs the inner acquisition, and declared there.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/lockset"
	"repro/internal/analysis/ssa"
)

// Analyzer is the lockorder check.
var Analyzer = &framework.Analyzer{
	Name: "lockorder",
	Doc: "check nested mutex acquisitions against the declared " +
		"tebaldi:locks partial order and report undeclared edges and cycles",
	Run: run,
}

const directive = "tebaldi:locks"

// edge is one observed or declared acquisition order: to is acquired while
// from is held.
type edge struct{ from, to string }

func run(pass *framework.Pass) error {
	declared, declPos := declaredEdges(pass)

	// Cycles in the declared order are themselves errors: a declared cycle
	// legalizes a deadlock.
	if cyc := findCycle(declared); cyc != nil {
		pos := token.NoPos
		for _, e := range cyc {
			if p, ok := declPos[e]; ok {
				pos = p
				break
			}
		}
		if pos == token.NoPos && len(pass.Files) > 0 {
			pos = pass.Files[0].Pos()
		}
		var parts []string
		for _, e := range cyc {
			parts = append(parts, e.from+" < "+e.to)
		}
		pass.Reportf(pos, "declared lock order contains a cycle: %s", strings.Join(parts, ", "))
	}

	summaries := summarize(pass)

	observed := map[edge]token.Pos{}
	record := func(from, to string, pos token.Pos) {
		e := edge{from, to}
		if _, ok := observed[e]; !ok {
			observed[e] = pos
		}
	}
	for _, file := range pass.Files {
		for _, fn := range lockset.FunctionsOf(pass.TypesInfo, file) {
			lockset.Walk(pass.TypesInfo, fn.Body, lockset.Hooks{
				OnAcquire: func(c *lockset.Call, held []lockset.Held) {
					for _, h := range held {
						if h.Call.Key == c.Key {
							continue // reacquire of the same instance: unlockpath's turf
						}
						record(h.Call.Class, c.Class, c.Expr.Pos())
					}
				},
				OnCall: func(call *ast.CallExpr, held []lockset.Held) {
					if len(held) == 0 {
						return
					}
					callee := ssa.StaticCallee(pass.TypesInfo, call)
					if callee == nil {
						return
					}
					sum := summaries[callee]
					if len(sum) == 0 {
						return
					}
					for _, h := range held {
						for class := range sum {
							record(h.Call.Class, class, call.Pos())
						}
					}
				},
			})
		}
	}

	// Check observed edges against the declared partial order.
	edges := make([]edge, 0, len(observed))
	for e := range observed {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool { return observed[edges[i]] < observed[edges[j]] })
	for _, e := range edges {
		if e.from == e.to {
			if !declared[e] {
				pass.Reportf(observed[e],
					"acquiring a second %s lock while one is already held: same-class nesting deadlocks unless instance-ordered; declare `// tebaldi:locks order %s < %s` only with such an order",
					e.from, e.from, e.to)
			}
			continue
		}
		if !reachable(declared, e.from, e.to) {
			fix := fmt.Sprintf("declare `// tebaldi:locks after %s` on the %s declaration", e.from, e.to)
			if reachable(declared, e.to, e.from) {
				fix = fmt.Sprintf("the declared order has %s before %s — this nesting inverts it", e.to, e.from)
			}
			pass.Reportf(observed[e],
				"acquiring %s while holding %s: edge is not in the declared lock order; %s, or fix the nesting",
				e.to, e.from, fix)
		}
	}
	return nil
}

// declaredEdges parses the package's tebaldi:locks annotations.
func declaredEdges(pass *framework.Pass) (map[edge]bool, map[edge]token.Pos) {
	edges := map[edge]bool{}
	pos := map[edge]token.Pos{}
	add := func(from, to string, p token.Pos) {
		e := edge{from, to}
		edges[e] = true
		if _, ok := pos[e]; !ok {
			pos[e] = p
		}
	}
	pkgName := pass.Pkg.Name()

	// Field- and type-attached `tebaldi:locks after X [Y...]`.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			typeClass := pkgName + "." + ts.Name.Name
			for _, afters := range annotations(ts.Doc, ts.Comment) {
				for _, from := range afters.classes {
					add(from, typeClass, afters.pos)
				}
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				for _, afters := range annotations(f.Doc, f.Comment) {
					names := f.Names
					if len(names) == 0 {
						// embedded field (e.g. sync.RWMutex): the lock
						// class is the embedding type itself, matching
						// classOf for x.Lock() calls.
						for _, from := range afters.classes {
							add(from, typeClass, afters.pos)
						}
						continue
					}
					for _, name := range names {
						for _, from := range afters.classes {
							add(from, typeClass+"."+name.Name, afters.pos)
						}
					}
				}
			}
			return true
		})
	}

	// Package-level `tebaldi:locks order A < B [< C...]`.
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, directive+" order ") {
					continue
				}
				chain := strings.Split(strings.TrimPrefix(text, directive+" order "), "<")
				for i := 0; i+1 < len(chain); i++ {
					from := strings.TrimSpace(chain[i])
					to := strings.TrimSpace(chain[i+1])
					if from != "" && to != "" {
						add(from, to, c.Pos())
					}
				}
			}
		}
	}
	return edges, pos
}

type annotation struct {
	classes []string
	pos     token.Pos
}

// annotations extracts `tebaldi:locks after A [B...]` from comment groups.
func annotations(groups ...*ast.CommentGroup) []annotation {
	var out []annotation
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, directive+" after ") {
				continue
			}
			rest := strings.TrimPrefix(text, directive+" after ")
			var classes []string
			for _, f := range strings.Fields(rest) {
				classes = append(classes, strings.TrimSuffix(f, ","))
			}
			if len(classes) > 0 {
				out = append(out, annotation{classes: classes, pos: c.Pos()})
			}
		}
	}
	return out
}

// summarize computes, for every function declared in this package, the set
// of lock classes its body may acquire — directly or through same-package
// callees (bottom-up fixpoint). Function literals are excluded: they
// usually run on other goroutines, where "nested" does not mean "held".
func summarize(pass *framework.Pass) map[*types.Func]map[string]bool {
	direct := map[*types.Func]map[string]bool{}
	calls := map[*types.Func]map[*types.Func]bool{}
	var fns []*types.Func

	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, obj)
			acq := map[string]bool{}
			callees := map[*types.Func]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if c, ok := lockset.Classify(pass.TypesInfo, call); ok {
					if c.Op != lockset.ReleaseOp {
						acq[c.Class] = true
					}
					return true
				}
				if callee := ssa.StaticCallee(pass.TypesInfo, call); callee != nil {
					callees[callee] = true
				}
				return true
			})
			direct[obj] = acq
			calls[obj] = callees
		}
	}

	// Fixpoint propagation.
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			for callee := range calls[f] {
				for class := range direct[callee] {
					if !direct[f][class] {
						direct[f][class] = true
						changed = true
					}
				}
			}
		}
	}
	return direct
}

// reachable reports whether from reaches to in the declared edge graph.
func reachable(edges map[edge]bool, from, to string) bool {
	seen := map[string]bool{}
	var dfs func(n string) bool
	dfs = func(n string) bool {
		if n == to {
			return true
		}
		if seen[n] {
			return false
		}
		seen[n] = true
		for e := range edges {
			if e.from == n && dfs(e.to) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

// findCycle returns the edges of one cycle in the declared graph, or nil.
func findCycle(edges map[edge]bool) []edge {
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
		nodes[e.from], nodes[e.to] = true, true
	}
	for _, vs := range adj {
		sort.Strings(vs)
	}
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var stack []string
	var cycle []edge
	var dfs func(n string) bool
	dfs = func(n string) bool {
		color[n] = gray
		stack = append(stack, n)
		for _, m := range adj[n] {
			if color[m] == gray {
				// unwind stack from m to n
				start := 0
				for i, s := range stack {
					if s == m {
						start = i
						break
					}
				}
				for i := start; i+1 < len(stack); i++ {
					cycle = append(cycle, edge{stack[i], stack[i+1]})
				}
				cycle = append(cycle, edge{n, m})
				return true
			}
			if color[m] == white && dfs(m) {
				return true
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
		return false
	}
	for _, n := range order {
		if color[n] == white && dfs(n) {
			return cycle
		}
	}
	return nil
}
