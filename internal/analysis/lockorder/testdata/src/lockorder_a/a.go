// Package lockorder_a exercises the lockorder analyzer: declared edges
// (field annotations and package directives), undeclared and inverted
// nestings, same-class nesting, and edges observed through call summaries.
//
// tebaldi:locks order lockorder_a.shard.mu < lockorder_a.journal.mu
package lockorder_a

import "sync"

type registry struct {
	mu sync.Mutex
}

type shard struct {
	// tebaldi:locks after lockorder_a.registry.mu
	mu sync.Mutex
}

type journal struct {
	mu sync.Mutex
}

type queue struct {
	mu sync.Mutex
}

// declaredNesting matches the field-annotated order registry < shard.
func declaredNesting(r *registry, s *shard) {
	r.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	r.mu.Unlock()
}

// orderDirective matches the package-level order shard < journal.
func orderDirective(s *shard, j *journal) {
	s.mu.Lock()
	j.mu.Lock()
	j.mu.Unlock()
	s.mu.Unlock()
}

// transitive is covered by registry < shard < journal reachability.
func transitive(r *registry, j *journal) {
	r.mu.Lock()
	j.mu.Lock()
	j.mu.Unlock()
	r.mu.Unlock()
}

// undeclaredNesting acquires queue.mu under registry.mu with no declaration.
func undeclaredNesting(r *registry, q *queue) {
	r.mu.Lock()
	q.mu.Lock() // want `acquiring lockorder_a\.queue\.mu while holding lockorder_a\.registry\.mu: edge is not in the declared lock order`
	q.mu.Unlock()
	r.mu.Unlock()
}

// invertedNesting acquires registry.mu under shard.mu, inverting the
// declared order.
func invertedNesting(r *registry, s *shard) {
	s.mu.Lock()
	r.mu.Lock() // want `this nesting inverts it`
	r.mu.Unlock()
	s.mu.Unlock()
}

// sameClass locks two shards at once without an instance order.
func sameClass(a, b *shard) {
	a.mu.Lock()
	b.mu.Lock() // want `same-class nesting deadlocks`
	b.mu.Unlock()
	a.mu.Unlock()
}

// qhelper acquires queue.mu; callers holding another lock observe the edge
// through qhelper's summary.
func qhelper(q *queue) {
	q.mu.Lock()
	q.mu.Unlock()
}

// viaHelperDeclared observes registry.mu -> shard.mu through shelper's
// summary; the edge is declared, so this stays silent.
func shelper(s *shard) {
	s.mu.Lock()
	s.mu.Unlock()
}

func viaHelperDeclared(r *registry, s *shard) {
	r.mu.Lock()
	shelper(s)
	r.mu.Unlock()
}

// viaHelperUndeclared observes journal.mu -> queue.mu through the summary.
func viaHelperUndeclared(j *journal, q *queue) {
	j.mu.Lock()
	qhelper(q) // want `acquiring lockorder_a\.queue\.mu while holding lockorder_a\.journal\.mu`
	j.mu.Unlock()
}
