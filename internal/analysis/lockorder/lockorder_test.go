package lockorder

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, Analyzer, "lockorder_a")
}

// TestFindCycle checks the declared-order cycle detector directly: a cyclic
// declaration legalizes a deadlock and must itself be an error.
func TestFindCycle(t *testing.T) {
	cyclic := map[edge]bool{
		{"a.X.mu", "a.Y.mu"}: true,
		{"a.Y.mu", "a.Z.mu"}: true,
		{"a.Z.mu", "a.X.mu"}: true,
	}
	cyc := findCycle(cyclic)
	if len(cyc) != 3 {
		t.Fatalf("findCycle(cyclic) = %v, want a 3-edge cycle", cyc)
	}
	for _, e := range cyc {
		if !cyclic[e] {
			t.Fatalf("findCycle returned undeclared edge %v", e)
		}
	}

	acyclic := map[edge]bool{
		{"a.X.mu", "a.Y.mu"}: true,
		{"a.Y.mu", "a.Z.mu"}: true,
		{"a.X.mu", "a.Z.mu"}: true,
	}
	if cyc := findCycle(acyclic); cyc != nil {
		t.Fatalf("findCycle(acyclic) = %v, want nil", cyc)
	}
}

func TestReachable(t *testing.T) {
	edges := map[edge]bool{
		{"a", "b"}: true,
		{"b", "c"}: true,
	}
	if !reachable(edges, "a", "c") {
		t.Error("a should reach c transitively")
	}
	if reachable(edges, "c", "a") {
		t.Error("c must not reach a")
	}
}
