//go:build !unix

package bench

// raiseFDLimit is a no-op where RLIMIT_NOFILE does not exist.
func raiseFDLimit() {}
