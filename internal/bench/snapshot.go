package bench

import (
	"encoding/json"
	"io"
	"sync"
)

// SnapshotEntry is one machine-readable measurement from an experiment run.
// Throughput-style entries fill the client/throughput fields; recovery-style
// entries fill the disk/restart fields. A zero field is omitted.
type SnapshotEntry struct {
	Experiment string  `json:"experiment"`
	Label      string  `json:"label"`
	Clients    int     `json:"clients,omitempty"`
	Throughput float64 `json:"throughput_txn_s,omitempty"`
	AbortRate  float64 `json:"abort_rate,omitempty"`
	// Whole-process allocation cost per committed transaction over the
	// measurement window (see Result.AllocsPerTxn).
	AllocsPerTxn float64 `json:"allocs_per_txn,omitempty"`
	BytesPerTxn  float64 `json:"bytes_per_txn,omitempty"`
	// Durability pipeline counters (YCSB group-commit rows).
	WalMeanBatch  float64 `json:"wal_mean_batch,omitempty"`
	WalMeanFlushU int64   `json:"wal_mean_flush_us,omitempty"`
	// Recovery rows.
	DiskBytes    int64 `json:"disk_bytes,omitempty"`
	RestartUS    int64 `json:"restart_us,omitempty"`
	Replayed     int   `json:"replayed_records,omitempty"`
	SnapshotKeys int   `json:"snapshot_keys,omitempty"`
	// Networked open-loop rows (serve experiment). Mode is "open"
	// (latency from intended send time — coordinated-omission-honest) or
	// "closed" (latency from actual send time). Quantiles in microseconds.
	Mode        string  `json:"mode,omitempty"`
	Connections int     `json:"connections,omitempty"`
	OfferedRate float64 `json:"offered_rate_txn_s,omitempty"`
	Failed      uint64  `json:"failed,omitempty"`
	P50US       int64   `json:"p50_us,omitempty"`
	P99US       int64   `json:"p99_us,omitempty"`
	P999US      int64   `json:"p999_us,omitempty"`
	MaxUS       int64   `json:"max_us,omitempty"`
}

// Snapshot accumulates SnapshotEntry values across experiments so a bench
// run can be archived as JSON (e.g. BENCH_pr6.json) and diffed against later
// runs by tooling instead of by eyeballing stdout tables.
type Snapshot struct {
	mu      sync.Mutex
	Quick   bool            `json:"quick"`
	Entries []SnapshotEntry `json:"entries"`
}

// Add appends one entry; safe for concurrent use.
func (s *Snapshot) Add(e SnapshotEntry) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Entries = append(s.Entries, e)
	s.mu.Unlock()
}

// WriteJSON renders the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// record captures a driver Result under the given experiment id and label.
func (p Params) record(experiment, label string, r Result) {
	p.Collect.Add(SnapshotEntry{
		Experiment:    experiment,
		Label:         label,
		Clients:       r.Clients,
		Throughput:    r.Throughput,
		AbortRate:     r.AbortRate,
		AllocsPerTxn:  r.AllocsPerTxn,
		BytesPerTxn:   r.BytesPerTxn,
		WalMeanBatch:  r.WalMeanBatch,
		WalMeanFlushU: r.WalMeanFlush.Microseconds(),
	})
}
