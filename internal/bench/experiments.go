package bench

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"time"

	"repro/internal/profiler"
	"repro/tebaldi"
	"repro/workload/micro"
	"repro/workload/seats"
	"repro/workload/tpcc"
	"repro/workload/ycsb"
)

// Params configure an experiment run.
type Params struct {
	Out   io.Writer
	Quick bool // smaller client counts and windows (CI-friendly)
	// Collect, when non-nil, accumulates machine-readable results for the
	// experiments that support it (ycsb, recovery, serve).
	Collect *Snapshot
	// Target, when non-empty, points the serve experiment at an already
	// running tebaldi-server instead of starting one itself.
	Target string
}

func (p Params) out() io.Writer {
	if p.Out != nil {
		return p.Out
	}
	return os.Stdout
}

func (p Params) windows() (warmup, measure time.Duration) {
	if p.Quick {
		return 300 * time.Millisecond, 1200 * time.Millisecond
	}
	return 500 * time.Millisecond, 3 * time.Second
}

func (p Params) clients() []int {
	if p.Quick {
		return []int{8, 32, 96}
	}
	return []int{4, 16, 64, 128, 256, 512}
}

func (p Params) fixedClients() int {
	if p.Quick {
		return 64
	}
	return 192
}

func dbOptions() tebaldi.Options {
	// The lock timeout doubles as the deadlock detector (§4.4.1); it must
	// sit well above legitimate queueing delays at saturation, or every
	// spurious timeout triggers a cascading-abort storm through RP's
	// exposed uncommitted state.
	return tebaldi.Options{Shards: 16, LockTimeout: 400 * time.Millisecond}
}

// openTPCC builds and populates a TPC-C database.
func openTPCC(cfg *tebaldi.Config, withHot bool, opts tebaldi.Options) (*tebaldi.DB, *tpcc.Client, error) {
	sc := tpcc.DefaultScale()
	db, err := tebaldi.Open(opts, tpcc.Specs(withHot), cfg)
	if err != nil {
		return nil, nil, err
	}
	tpcc.Load(db, sc)
	return db, tpcc.NewClient(db, sc), nil
}

// openSEATS builds and populates a SEATS database.
func openSEATS(cfg *tebaldi.Config, opts tebaldi.Options) (*tebaldi.DB, *seats.Client, error) {
	sc := seats.DefaultScale()
	db, err := tebaldi.Open(opts, seats.Specs(sc), cfg)
	if err != nil {
		return nil, nil, err
	}
	seats.Load(db, sc)
	return db, seats.NewClient(db, sc), nil
}

func tpccGen(c *tpcc.Client) Gen {
	return func(rng *rand.Rand) Op {
		op := c.Mix(rng)
		return Op{Type: op.Type, Part: op.Part, Fn: op.Fn}
	}
}

func seatsGen(c *seats.Client) Gen {
	return func(rng *rand.Rand) Op {
		op := c.Mix(rng)
		return Op{Type: op.Type, Part: op.Part, Fn: op.Fn}
	}
}

// Table31 reproduces Table 3.1: the impact of grouping on the
// new_order/stock_level pair.
func Table31(p Params) error {
	w := p.out()
	warmup, measure := p.windows()
	clients := p.fixedClients()
	fmt.Fprintf(w, "Table 3.1 — impact of grouping on throughput (new_order + stock_level)\n")
	fmt.Fprintf(w, "paper (txn/s): same-group 3207 | separate-deadlock 158 | separate-no-deadlock 3598 | separate-no-conflict 23834\n")

	type mode struct {
		name       string
		deadlock   bool
		disjoint   bool
		configMode string
	}
	modes := []mode{
		{"Same group", false, false, "same"},
		{"Separate - Deadlock", true, false, "deadlock"},
		{"Separate - No Deadlock", false, false, "separate"},
		{"Separate - No Conflict", false, true, "noconflict"},
	}
	var rows [][2]string
	for _, m := range modes {
		db, err := tebaldi.Open(dbOptions(), tpcc.PairSpecs(m.deadlock), tpcc.PairConfig(m.configMode))
		if err != nil {
			return err
		}
		sc := tpcc.DefaultScale()
		tpcc.Load(db, sc)
		c := tpcc.NewClient(db, sc)
		pg := c.PairGen(m.deadlock, m.disjoint)
		res := Drive(db, func(rng *rand.Rand) Op {
			op := pg(rng)
			return Op{Type: op.Type, Part: op.Part, Fn: op.Fn}
		}, clients, warmup, measure)
		db.Close()
		rows = append(rows, [2]string{m.name, res.String()})
	}
	table(w, "measured:", rows)
	return nil
}

// Fig47 reproduces Figure 4.7: TPC-C throughput vs number of clients across
// six configurations.
func Fig47(p Params) error {
	w := p.out()
	warmup, measure := p.windows()
	fmt.Fprintf(w, "Figure 4.7 — TPC-C throughput vs clients\n")
	fmt.Fprintf(w, "paper shape: SSI peak ~7x 2PL; Callas-2 ~ +77%% over Callas-1; Tebaldi-2L ~2.6x best Callas; 3L +44%% over 2L\n")
	configs := []struct {
		name string
		cfg  *tebaldi.Config
	}{
		{"2PL", tpcc.ConfigMono2PL()},
		{"SSI", tpcc.ConfigMonoSSI()},
		{"Callas-1", tpcc.ConfigCallas1()},
		{"Callas-2", tpcc.ConfigCallas2()},
		{"Tebaldi 2-layer", tpcc.ConfigTebaldi2Layer()},
		{"Tebaldi 3-layer", tpcc.ConfigTebaldi3Layer()},
	}
	for _, cf := range configs {
		db, c, err := openTPCC(cf.cfg, false, dbOptions())
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n%s  [%s]\n", cf.name, db.ConfigString())
		for _, res := range Series(db, tpccGen(c), p.clients(), warmup, measure) {
			fmt.Fprintf(w, "  %s\n", res)
		}
		db.Close()
	}
	return nil
}

// Fig48 reproduces Figure 4.8: SEATS throughput vs clients across the three
// configurations.
func Fig48(p Params) error {
	w := p.out()
	warmup, measure := p.windows()
	fmt.Fprintf(w, "Figure 4.8 — SEATS throughput vs clients\n")
	fmt.Fprintf(w, "paper shape: 2-layer ~2.6x 2PL peak; 3-layer (per-flight TSO) ~2x 2-layer\n")
	sc := seats.DefaultScale()
	configs := []struct {
		name string
		cfg  *tebaldi.Config
	}{
		{"Monolithic 2PL", seats.ConfigMono2PL()},
		{"2-layer (SSI + 2PL)", seats.Config2Layer()},
		{"3-layer (SSI + 2PL + TSO)", seats.Config3Layer(sc)},
	}
	for _, cf := range configs {
		db, c, err := openSEATS(cf.cfg, dbOptions())
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n%s\n", cf.name)
		for _, res := range Series(db, seatsGen(c), p.clients(), warmup, measure) {
			fmt.Fprintf(w, "  %s\n", res)
		}
		db.Close()
	}
	return nil
}

// Sec463 reproduces the extensibility experiment of §4.6.3: TPC-C + hot_item
// under the 3-layer vs 4-layer trees.
func Sec463(p Params) error {
	w := p.out()
	warmup, measure := p.windows()
	clients := p.fixedClients()
	fmt.Fprintf(w, "§4.6.3 — hot_item extensibility\n")
	fmt.Fprintf(w, "paper: 3-layer 16417 txn/s, 4-layer 23232 txn/s (+42%%)\n")
	var rows [][2]string
	for _, cf := range []struct {
		name string
		cfg  *tebaldi.Config
	}{
		{"3-layer (hot_item merged)", tpcc.ConfigHot3Layer()},
		{"4-layer (hot_item own group)", tpcc.ConfigHot4Layer()},
	} {
		db, c, err := openTPCC(cf.cfg, true, dbOptions())
		if err != nil {
			return err
		}
		res := Drive(db, func(rng *rand.Rand) Op {
			op := c.HotMix(rng)
			return Op{Type: op.Type, Part: op.Part, Fn: op.Fn}
		}, clients, warmup, measure)
		db.Close()
		rows = append(rows, [2]string{cf.name, res.String()})
	}
	table(w, "measured:", rows)
	return nil
}

// Fig410 reproduces Figure 4.10: cross-group CC performance across
// read-write and write-write conflict rates.
func Fig410(p Params) error {
	w := p.out()
	warmup, measure := p.windows()
	clients := p.fixedClients()
	fmt.Fprintf(w, "Figure 4.10 — cross-group CC comparison\n")
	fmt.Fprintf(w, "paper shape: SSI wins rw-*; RP wins ww-5/ww-10; 2PL wins ww-1\n")
	workloads := []struct {
		name   string
		shared int
		ro     bool
	}{
		{"rw-1", 100, true}, {"rw-5", 20, true}, {"rw-10", 10, true},
		{"ww-1", 100, false}, {"ww-5", 20, false}, {"ww-10", 10, false},
	}
	crosses := []tebaldi.Kind{tebaldi.TwoPL, tebaldi.SSI, tebaldi.RP}
	for _, wl := range workloads {
		cg := micro.CrossGroup{SharedRows: wl.shared, ReadOnlyT1: wl.ro}
		var rows [][2]string
		for _, cross := range crosses {
			db, err := tebaldi.Open(dbOptions(), cg.Specs(), cg.Config(cross))
			if err != nil {
				return err
			}
			cg.Load(db)
			res := Drive(db, func(rng *rand.Rand) Op {
				op := cg.Mix(rng)
				return Op{Type: op.Type, Part: op.Part, Fn: op.Fn}
			}, clients, warmup, measure)
			db.Close()
			rows = append(rows, [2]string{string(cross) + " cross-group", res.String()})
		}
		table(w, wl.name, rows)
	}
	return nil
}

// Fig411 reproduces Figure 4.11: two-layer vs three-layer hierarchies.
func Fig411(p Params) error {
	w := p.out()
	warmup, measure := p.windows()
	clients := p.fixedClients()
	fmt.Fprintf(w, "Figure 4.11 — two-layer vs three-layer\n")
	fmt.Fprintf(w, "paper shape: three-layer peak ~ +63%% over best two-layer\n")
	tl := micro.ThreeLayer{}
	cfgs := tl.Configs()
	var rows [][2]string
	for _, name := range sortedKeys(cfgs) {
		db, err := tebaldi.Open(dbOptions(), tl.Specs(), cfgs[name])
		if err != nil {
			return err
		}
		tl.Load(db)
		res := Drive(db, func(rng *rand.Rand) Op {
			op := tl.Mix(rng)
			return Op{Type: op.Type, Part: op.Part, Fn: op.Fn}
		}, clients, warmup, measure)
		db.Close()
		rows = append(rows, [2]string{name, res.String()})
	}
	table(w, "measured:", rows)
	return nil
}

// Table41 reproduces Table 4.1: latency and peak-throughput cost of
// additional hierarchy layers on a conflict-free workload.
func Table41(p Params) error {
	w := p.out()
	warmup, measure := p.windows()
	fmt.Fprintf(w, "Table 4.1 — cost of additional layers (conflict-free 7-write txn)\n")
	fmt.Fprintf(w, "paper: latency +3.3%% (2PL-RP) +9.8%% (SSI-RP) +36.3%% (RP-RP); peak -21%%/-25%%/-40%%\n")
	ov := &micro.Overhead{}
	cfgs := ov.Configs()
	order := []string{"stand-alone RP", "2PL - RP", "SSI - RP", "RP - RP"}
	var rows [][2]string
	for _, name := range order {
		db, err := tebaldi.Open(dbOptions(), ov.Specs(), cfgs[name])
		if err != nil {
			return err
		}
		gen := func(rng *rand.Rand) Op {
			op := ov.Next(rng)
			return Op{Type: op.Type, Part: op.Part, Fn: op.Fn}
		}
		// Latency at low load (paper: 20 clients).
		lat := Drive(db, gen, 8, warmup/2, measure/2)
		// Peak throughput at saturation.
		peak := Drive(db, gen, p.fixedClients(), warmup, measure)
		db.Close()
		rows = append(rows, [2]string{name, fmt.Sprintf("latency %8v   peak %9.0f txn/s",
			lat.MeanLatency[micro.TxnW7].Round(time.Microsecond), peak.Throughput)})
	}
	table(w, "measured:", rows)
	return nil
}

// Table42 reproduces Table 4.2: durability overhead on TPC-C under the
// 3-layer tree with asynchronous GCP flushing.
func Table42(p Params) error {
	w := p.out()
	warmup, measure := p.windows()
	clients := p.fixedClients()
	fmt.Fprintf(w, "Table 4.2 — durability overhead (TPC-C, 3-layer, async flushing)\n")
	fmt.Fprintf(w, "paper: ~5%% overhead (22390 vs 23415 txn/s)\n")
	var rows [][2]string
	for _, on := range []bool{false, true} {
		opts := dbOptions()
		name := "Durability OFF"
		if on {
			dir, err := os.MkdirTemp("", "tebaldi-wal-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			opts.DurabilityDir = dir
			opts.GCPEpoch = 100 * time.Millisecond
			name = "Durability ON"
		}
		db, c, err := openTPCC(tpcc.ConfigTebaldi3Layer(), false, opts)
		if err != nil {
			return err
		}
		res := Drive(db, tpccGen(c), clients, warmup, measure)
		db.Close()
		rows = append(rows, [2]string{name, res.String()})
	}
	table(w, "measured:", rows)
	return nil
}

// Fig55 reproduces the §5.3.1 case study (Figures 5.3-5.5): under the
// RP{payment} / stock_level configuration, only payment's latency rises with
// load — the latency-based profiler would blame payment-payment contention —
// while the blocking-event profiler correctly attributes the bottleneck to
// the payment<->stock_level edge.
func Fig55(p Params) error {
	w := p.out()
	warmup, measure := p.windows()
	fmt.Fprintf(w, "Figure 5.5 — latency-based profiling misses the real bottleneck\n")
	opts := dbOptions()
	opts.Profiling = true
	cfg := tebaldi.Inner(tebaldi.TwoPL,
		tebaldi.Leaf(tebaldi.RP, tpcc.TxnPayment),
		tebaldi.Leaf(tebaldi.None, tpcc.TxnStockLevel))
	db, c, err := openTPCC(cfg, false, opts)
	if err != nil {
		return err
	}
	defer db.Close()
	gen := func(rng *rand.Rand) Op {
		var op tpcc.Op
		if rng.Float64() < 0.8 {
			op = c.Payment(rng)
		} else {
			op = c.StockLevel(rng)
		}
		return Op{Type: op.Type, Part: op.Part, Fn: op.Fn}
	}
	for _, clients := range p.clients() {
		db.Engine().Profiler().Window() // reset
		res := Drive(db, gen, clients, warmup, measure)
		scores := profiler.Scores(db.Engine().Profiler().Window())
		edge, score, _ := profiler.Bottleneck(scores)
		fmt.Fprintf(w, "  %4d clients: %8.0f txn/s   latency pay=%-10v sl=%-10v  bottleneck %s<->%s (%v)\n",
			clients, res.Throughput,
			res.MeanLatency[tpcc.TxnPayment].Round(time.Microsecond),
			res.MeanLatency[tpcc.TxnStockLevel].Round(time.Microsecond),
			edge.A, edge.B, score.Round(time.Microsecond))
	}
	fmt.Fprintf(w, "expected: payment latency grows with clients while stock_level's stays flat — the\n")
	fmt.Fprintf(w, "latency-based technique would blame payment alone; the conflict-edge profiler\n")
	fmt.Fprintf(w, "attributes blocked time to exact edges (in-process, stock_level's short reads\n")
	fmt.Fprintf(w, "make payment<->payment genuinely dominant; on the paper's cluster the long\n")
	fmt.Fprintf(w, "stock_level scans make payment<->stock_level the root cause).\n")
	return nil
}

// runAutoconf drives an automatic-configuration session with a background
// closed-loop workload.
func runAutoconf(p Params, db *tebaldi.DB, gen Gen, manual *tebaldi.Config, manualName string) error {
	w := p.out()
	warmup, measure := p.windows()
	clients := p.fixedClients()

	stopAndJoin := Clients(db, gen, clients)
	time.Sleep(warmup)

	res, err := db.AutoConfigure(tebaldi.AutoConfigOptions{
		MeasureWindow: measure / 2,
		Settle:        warmup / 2,
		MaxIterations: 6,
		Log: func(format string, args ...any) {
			fmt.Fprintf(w, "  "+format+"\n", args...)
		},
	})
	if err != nil {
		stopAndJoin()
		return err
	}
	fmt.Fprintf(w, "final auto config: %s  (%.0f txn/s)\n", res.Final, res.FinalThroughput)

	// Compare against the manual configuration on the same live system.
	if manual != nil {
		if err := db.Reconfigure(manual, tebaldi.PartialRestart); err != nil {
			stopAndJoin()
			return err
		}
		time.Sleep(warmup)
		snap := db.Stats().Snapshot()
		time.Sleep(measure)
		manualTput := db.Stats().Since(snap).Throughput
		fmt.Fprintf(w, "%s (manual): %.0f txn/s -> auto retains %.0f%%\n",
			manualName, manualTput, 100*res.FinalThroughput/manualTput)
	}
	stopAndJoin()
	return nil
}

// Fig511 reproduces Figure 5.11/5.13: automatic configuration on TPC-C.
func Fig511(p Params) error {
	w := p.out()
	fmt.Fprintf(w, "Figure 5.11 — automatic configuration, TPC-C\n")
	fmt.Fprintf(w, "paper shape: autoconf converges over a few iterations to ~90%% of the manual 3-layer config\n")
	opts := dbOptions()
	opts.Profiling = true
	db, err := tebaldi.Open(opts, tpcc.Specs(false), nil) // initial §5.2 config
	if err != nil {
		return err
	}
	defer db.Close()
	tpcc.Load(db, tpcc.DefaultScale())
	c := tpcc.NewClient(db, tpcc.DefaultScale())
	fmt.Fprintf(w, "initial config: %s\n", db.ConfigString())
	return runAutoconf(p, db, tpccGen(c), tpcc.ConfigTebaldi3Layer(), "Tebaldi 3-layer")
}

// Fig514 reproduces Figure 5.14/5.16: automatic configuration on SEATS.
func Fig514(p Params) error {
	w := p.out()
	fmt.Fprintf(w, "Figure 5.14 — automatic configuration, SEATS\n")
	sc := seats.DefaultScale()
	opts := dbOptions()
	opts.Profiling = true
	db, err := tebaldi.Open(opts, seats.Specs(sc), nil)
	if err != nil {
		return err
	}
	defer db.Close()
	seats.Load(db, sc)
	c := seats.NewClient(db, sc)
	fmt.Fprintf(w, "initial config: %s\n", db.ConfigString())
	return runAutoconf(p, db, seatsGen(c), seats.Config3Layer(sc), "manual 3-layer")
}

// Fig517 reproduces Figure 5.17: the overhead of performance profiling.
func Fig517(p Params) error {
	w := p.out()
	warmup, measure := p.windows()
	clients := p.fixedClients()
	fmt.Fprintf(w, "Figure 5.17 — profiling overhead (TPC-C, 3-layer)\n")
	fmt.Fprintf(w, "paper: a few percent\n")
	var rows [][2]string
	for _, prof := range []bool{false, true} {
		opts := dbOptions()
		opts.Profiling = prof
		db, c, err := openTPCC(tpcc.ConfigTebaldi3Layer(), false, opts)
		if err != nil {
			return err
		}
		stopDrain := make(chan struct{})
		if prof {
			// A monitor draining windows and computing scores, as
			// the live analysis stage would.
			go func() {
				tick := time.NewTicker(measure / 4)
				defer tick.Stop()
				for {
					select {
					case <-stopDrain:
						return
					case <-tick.C:
						profiler.Scores(db.Engine().Profiler().Window())
					}
				}
			}()
		}
		res := Drive(db, tpccGen(c), clients, warmup, measure)
		close(stopDrain)
		db.Close()
		name := "profiling OFF"
		if prof {
			name = "profiling ON"
		}
		rows = append(rows, [2]string{name, res.String()})
	}
	table(w, "measured:", rows)
	return nil
}

// Table51 reproduces Table 5.1: SEATS with and without the
// partition-by-instance optimization.
func Table51(p Params) error {
	w := p.out()
	warmup, measure := p.windows()
	clients := p.fixedClients()
	fmt.Fprintf(w, "Table 5.1 — partition-by-instance on SEATS\n")
	fmt.Fprintf(w, "paper shape: per-flight TSO instances roughly double throughput vs one TSO group\n")
	sc := seats.DefaultScale()
	var rows [][2]string
	for _, cf := range []struct {
		name string
		cfg  *tebaldi.Config
	}{
		{"single TSO group", seats.Config3LayerSingleTSO()},
		{"per-flight TSO (PBI)", seats.Config3Layer(sc)},
	} {
		db, c, err := openSEATS(cf.cfg, dbOptions())
		if err != nil {
			return err
		}
		res := Drive(db, seatsGen(c), clients, warmup, measure)
		db.Close()
		rows = append(rows, [2]string{cf.name, res.String()})
	}
	table(w, "measured:", rows)
	return nil
}

// Fig519 reproduces Figures 5.18/5.19: throughput timeline across a live
// reconfiguration under the two protocols.
func Fig519(p Params) error {
	w := p.out()
	warmup, _ := p.windows()
	clients := p.fixedClients()
	bucket := 50 * time.Millisecond
	buckets := 30
	fmt.Fprintf(w, "Figure 5.19 — reconfiguration protocols (TPC-C, third reconfiguration)\n")
	fmt.Fprintf(w, "paper shape: partial restart dips to ~0 during quiesce; online update keeps most throughput\n")

	// The paper's third reconfiguration touches one subgroup; here the
	// delivery leaf switches RP -> 2PL. Online update gates only delivery
	// (4%% of the mix); partial restart quiesces everything.
	from := tpcc.ConfigTebaldi3Layer()
	to := tpcc.ConfigTebaldi3Layer()
	to.Children[1].Children[1] = tebaldi.Leaf(tebaldi.TwoPL, tpcc.TxnDelivery)
	for _, proto := range []struct {
		name string
		p    tebaldi.ReconfigProtocol
	}{
		{"partial-restart", tebaldi.PartialRestart},
		{"online-update", tebaldi.OnlineUpdate},
	} {
		db, c, err := openTPCC(from, false, dbOptions())
		if err != nil {
			return err
		}
		stopAndJoin := Clients(db, tpccGen(c), clients)
		time.Sleep(warmup)
		// Sample throughput in buckets; reconfigure at bucket 10.
		series := make([]float64, 0, buckets)
		done := make(chan error, 1)
		pr := proto.p
		for b := 0; b < buckets; b++ {
			if b == 10 {
				go func() { done <- db.Reconfigure(to, pr) }()
			}
			snap := db.Stats().Snapshot()
			time.Sleep(bucket)
			series = append(series, db.Stats().Since(snap).Throughput)
		}
		stopAndJoin()
		if err := <-done; err != nil {
			db.Close()
			return err
		}
		db.Close()
		fmt.Fprintf(w, "\n%s:\n ", proto.name)
		for _, v := range series {
			fmt.Fprintf(w, " %6.0f", v)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Table52 reproduces Table 5.2's question — how Tebaldi's MCC compares to a
// single-machine monolithic database — substituting our own engine in
// single-shard mode with monolithic CCs for MySQL/Postgres (see DESIGN.md).
func Table52(p Params) error {
	w := p.out()
	warmup, measure := p.windows()
	clients := p.fixedClients()
	fmt.Fprintf(w, "Table 5.2 — single-machine comparison (substituted: monolithic CCs in-engine)\n")
	var rows [][2]string
	for _, cf := range []struct {
		name string
		cfg  *tebaldi.Config
	}{
		{"monolithic 2PL (1 shard)", tpcc.ConfigMono2PL()},
		{"monolithic SSI (1 shard)", tpcc.ConfigMonoSSI()},
		{"Tebaldi 3-layer (1 shard)", tpcc.ConfigTebaldi3Layer()},
	} {
		opts := dbOptions()
		opts.Shards = 1
		db, c, err := openTPCC(cf.cfg, false, opts)
		if err != nil {
			return err
		}
		res := Drive(db, tpccGen(c), clients, warmup, measure)
		db.Close()
		rows = append(rows, [2]string{cf.name, res.String()})
	}
	table(w, "measured:", rows)
	return nil
}

// dirBytes sums the sizes of all regular files under dir.
func dirBytes(dir string) int64 {
	var n int64
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, de := range ents {
		if info, err := de.Info(); err == nil && !de.IsDir() {
			n += info.Size()
		}
	}
	return n
}

// Recovery measures bounded-log restart (not in the paper): N committed
// update transactions under sync group commit, then a cold restart. Without
// checkpoints the log holds the full history and recovery replays all of
// it; with periodic checkpoints the log is compacted to the post-frontier
// tail and recovery replays only that. Reports on-disk log size, restart
// time, and the records-replayed counter.
func Recovery(p Params) error {
	w := p.out()
	n := 20000
	if p.Quick {
		n = 4000
	}
	const keys = 256
	fmt.Fprintf(w, "recovery — checkpoint + log compaction bound restart (N=%d txns, %d hot keys)\n", n, keys)
	specs := []*tebaldi.Spec{{Name: "put", Tables: []string{"kv"}, WriteTables: []string{"kv"}}}
	cfg := tebaldi.Leaf(tebaldi.TwoPL, "put")

	var rows [][2]string
	for _, mode := range []struct {
		name  string
		every int // checkpoint every `every` txns; 0 = never
	}{
		{"no checkpoints", 0},
		{"checkpoint every N/8", n / 8},
	} {
		dir, err := os.MkdirTemp("", "tebaldi-recovery-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		opts := dbOptions()
		opts.DurabilityDir = dir
		opts.DurabilitySync = true
		opts.GCPEpoch = 20 * time.Millisecond
		db, err := tebaldi.Open(opts, specs, cfg)
		if err != nil {
			return err
		}
		val := make([]byte, 64)
		for i := 0; i < n; i++ {
			i := i
			err := db.Run("put", 0, func(tx *tebaldi.Tx) error {
				copy(val, fmt.Sprintf("v%d", i))
				return tx.Write(tebaldi.KeyOf("kv", i%keys), val)
			})
			if err != nil {
				db.Close()
				return err
			}
			if mode.every > 0 && (i+1)%mode.every == 0 {
				if err := db.Checkpoint(); err != nil {
					db.Close()
					return err
				}
			}
		}
		if err := db.Close(); err != nil {
			return err
		}
		size := dirBytes(dir)

		start := time.Now()
		db2, st, err := tebaldi.Recover(opts, specs, cfg)
		if err != nil {
			return err
		}
		restart := time.Since(start)
		db2.Close()
		rows = append(rows, [2]string{mode.name,
			fmt.Sprintf("disk %7.1f KiB   restart %8v   replayed %6d records   snapshot %4d keys",
				float64(size)/1024, restart.Round(100*time.Microsecond), st.Replayed, st.SnapshotKeys)})
		p.Collect.Add(SnapshotEntry{
			Experiment:   "recovery",
			Label:        mode.name,
			DiskBytes:    size,
			RestartUS:    restart.Microseconds(),
			Replayed:     st.Replayed,
			SnapshotKeys: st.SnapshotKeys,
		})
	}
	table(w, "measured:", rows)
	fmt.Fprintf(w, "expected: checkpointing holds disk size and replay near the post-frontier tail,\n")
	fmt.Fprintf(w, "independent of N; without it both grow linearly with history.\n")
	return nil
}

// YCSB runs the YCSB core mixes (A update-heavy, B read-heavy, C read-only;
// zipfian) — the write-heavy scenario the paper's TPC-C/SEATS evaluation
// lacks — and measures the durability module's group-commit pipeline on
// YCSB-A: in-memory vs asynchronous GCP flushing vs synchronous group
// commit, reporting the pipeline's batch-size and flush-latency counters.
func YCSB(p Params) error {
	w := p.out()
	warmup, measure := p.windows()
	clients := p.fixedClients()
	fmt.Fprintf(w, "YCSB — core mixes and group-commit durability (not in the paper)\n")

	ycsbGen := func(c *ycsb.Client) Gen {
		return func(rng *rand.Rand) Op {
			op := c.Mix(rng)
			return Op{Type: op.Type, Part: op.Part, Fn: op.Fn}
		}
	}

	var rows [][2]string
	for _, m := range []struct {
		name string
		w    ycsb.Workload
	}{
		{"YCSB-A (50/50)", ycsb.A()},
		{"YCSB-B (95/5)", ycsb.B()},
		{"YCSB-C (read-only)", ycsb.C()},
	} {
		c := ycsb.New(m.w)
		db, err := tebaldi.Open(dbOptions(), m.w.Specs(), m.w.Config())
		if err != nil {
			return err
		}
		c.Load(db)
		res := Drive(db, ycsbGen(c), clients, warmup, measure)
		db.Close()
		rows = append(rows, [2]string{m.name,
			fmt.Sprintf("%s  %6.1f allocs/txn", res.String(), res.AllocsPerTxn)})
		p.record("ycsb", m.name, res)
	}
	table(w, "measured (in-memory):", rows)

	rows = rows[:0]
	for _, mode := range []struct {
		name string
		sync bool
	}{
		{"async GCP flushing", false},
		{"sync group commit", true},
	} {
		dir, err := os.MkdirTemp("", "tebaldi-ycsb-wal-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		opts := dbOptions()
		opts.DurabilityDir = dir
		opts.DurabilitySync = mode.sync
		opts.GCPEpoch = 100 * time.Millisecond
		wl := ycsb.A()
		c := ycsb.New(wl)
		db, err := tebaldi.Open(opts, wl.Specs(), wl.Config())
		if err != nil {
			return err
		}
		c.Load(db)
		res := Drive(db, ycsbGen(c), clients, warmup, measure)
		db.Close()
		rows = append(rows, [2]string{"YCSB-A, " + mode.name,
			fmt.Sprintf("%9.0f txn/s  abort %5.1f%%  batch %5.1f rec  flush %s",
				res.Throughput, 100*res.AbortRate, res.WalMeanBatch, res.WalMeanFlush)})
		p.record("ycsb", "YCSB-A, "+mode.name, res)
	}
	table(w, "measured (durability, group-commit pipeline):", rows)
	return nil
}
