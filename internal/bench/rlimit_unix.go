//go:build unix

package bench

import "syscall"

// raiseFDLimit lifts the soft RLIMIT_NOFILE to the hard limit so the 10k+
// connection serve experiment does not die on EMFILE. Best-effort: on
// failure the run proceeds with whatever the limit is.
func raiseFDLimit() {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return
	}
	if lim.Cur < lim.Max {
		lim.Cur = lim.Max
		syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim)
	}
}
