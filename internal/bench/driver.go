// Package bench is Tebaldi's benchmark harness: a closed-loop workload
// driver (the paper runs closed-loop test clients, §4.6) and one runner per
// table/figure of the evaluation, each printing the series the paper
// reports. Absolute numbers differ from the paper's 20-machine CloudLab
// cluster; the harness exists to reproduce the *shape* — who wins, by what
// factor, where crossovers fall.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/tebaldi"
)

// Op is one generated transaction, workload-agnostic.
type Op struct {
	Type string
	Part uint64
	Fn   func(*tebaldi.Tx) error
}

// Gen produces transactions for one client; it must be safe to call from
// the client's goroutine with its private rng.
type Gen func(rng *rand.Rand) Op

// Result summarizes one measured run.
type Result struct {
	Clients     int
	Duration    time.Duration
	Commits     uint64
	Aborts      uint64
	Throughput  float64 // committed txn/sec
	AbortRate   float64
	MeanLatency map[string]time.Duration // per transaction type
	// AllocsPerTxn / BytesPerTxn are whole-process heap allocation deltas
	// (runtime.MemStats Mallocs/TotalAlloc) over the measurement window
	// divided by committed transactions. They include client-side
	// generation work, so they are an upper bound on the engine's own
	// per-transaction cost — which is exactly what a perf ledger wants to
	// watch for regressions.
	AllocsPerTxn float64
	BytesPerTxn  float64
	// WAL group-commit pipeline counters over the window (zero when
	// durability is off).
	WalBatches   uint64
	WalMeanBatch float64       // mean records coalesced per flush
	WalMeanFlush time.Duration // mean append+flush latency
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%6d clients  %9.0f txn/s  abort %5.1f%%",
		r.Clients, r.Throughput, 100*r.AbortRate)
}

// RunOp executes one op with retry-on-abort, giving up when stop closes —
// closed-loop client semantics with prompt shutdown even under livelock
// (e.g. the Table 3.1 deadlock column, where every attempt may time out).
func RunOp(db *tebaldi.DB, op Op, stop <-chan struct{}, rng *rand.Rand) {
	for attempt := 0; ; attempt++ {
		select {
		case <-stop:
			return
		default:
		}
		tx, err := db.Begin(op.Type, op.Part)
		if err == nil {
			err = op.Fn(tx)
			if err == nil {
				err = tx.Commit()
			} else {
				tx.Rollback(err)
			}
		}
		if err == nil || !tebaldi.IsRetryable(err) {
			return
		}
		max := 200 * (attempt + 1)
		if max > 5000 {
			max = 5000
		}
		time.Sleep(time.Duration(rng.Intn(max)+50) * time.Microsecond)
	}
}

// Clients starts n closed-loop client goroutines; the returned func stops
// and joins them.
func Clients(db *tebaldi.DB, gen Gen, n int) (stopAndJoin func()) {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				RunOp(db, gen(rng), stop, rng)
			}
		}(int64(c) + 1)
	}
	return func() {
		close(stop)
		wg.Wait()
	}
}

// Drive runs `clients` closed-loop clients against db for warmup+measure,
// reporting stats over the measurement window only.
func Drive(db *tebaldi.DB, gen Gen, clients int, warmup, measure time.Duration) Result {
	stopAndJoin := Clients(db, gen, clients)
	time.Sleep(warmup)
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	snap := db.Stats().Snapshot()
	time.Sleep(measure)
	w := db.Stats().Since(snap)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	stopAndJoin()

	res := Result{
		Clients:      clients,
		Duration:     w.Duration,
		Commits:      w.Commits,
		Aborts:       w.Aborts,
		Throughput:   w.Throughput,
		AbortRate:    w.AbortRate,
		MeanLatency:  map[string]time.Duration{},
		WalBatches:   w.WalBatches,
		WalMeanBatch: w.WalMeanBatch,
		WalMeanFlush: w.WalMeanFlush,
	}
	if w.Commits > 0 {
		res.AllocsPerTxn = float64(m1.Mallocs-m0.Mallocs) / float64(w.Commits)
		res.BytesPerTxn = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(w.Commits)
	}
	for typ, wt := range w.PerType {
		res.MeanLatency[typ] = wt.MeanLatency
	}
	return res
}

// Series runs Drive over several client counts and returns the results.
func Series(db *tebaldi.DB, gen Gen, clients []int, warmup, measure time.Duration) []Result {
	out := make([]Result, 0, len(clients))
	for _, c := range clients {
		out = append(out, Drive(db, gen, c, warmup, measure))
	}
	return out
}

// Peak returns the highest throughput in a series.
func Peak(rs []Result) Result {
	best := rs[0]
	for _, r := range rs[1:] {
		if r.Throughput > best.Throughput {
			best = r
		}
	}
	return best
}

// table prints an aligned two-column block.
func table(w io.Writer, title string, rows [][2]string) {
	fmt.Fprintf(w, "\n%s\n", title)
	width := 0
	for _, r := range rows {
		if len(r[0]) > width {
			width = len(r[0])
		}
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-*s  %s\n", width, r[0], r[1])
	}
}

// sortedKeys returns map keys in stable order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
