package bench

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/loadgen"
	"repro/internal/server"
	"repro/tebaldi"
)

// serveParams are the shapes of the networked open-loop run.
type serveParams struct {
	conns       int
	rate        float64 // offered arrivals/sec
	count       int     // open-loop arrivals
	closedConns int     // closed-loop comparison concurrency
	closedN     int     // closed-loop comparison transactions
	keyspace    int
}

func (p Params) serveParams() serveParams {
	if p.Quick {
		return serveParams{conns: 128, rate: 1500, count: 4500, closedConns: 64, closedN: 3000, keyspace: 10000}
	}
	return serveParams{conns: 10000, rate: 4000, count: 80000, closedConns: 256, closedN: 30000, keyspace: 100000}
}

// Serve measures the networked front end under OPEN-LOOP load: a fixed
// arrival rate over many thousands of idle-most-of-the-time connections,
// with every latency measured from the arrival's intended send time, so
// server stalls surface as tail latency instead of silently reducing the
// offered load (coordinated omission). A closed-loop run of the same
// workload follows for the delta the paper-style harness would report.
//
// With Params.Target set, an external tebaldi-server is driven (the 10k+
// connection configuration requires this: two processes split the file
// descriptor budget). Otherwise quick mode serves in-process, and full mode
// builds and spawns cmd/tebaldi-server, falling back to a reduced
// in-process run when the toolchain is unavailable.
func Serve(p Params) error {
	w := p.out()
	sp := p.serveParams()
	raiseFDLimit()

	target := p.Target
	var stop func()
	var inproc *server.Server
	switch {
	case target != "":
		fmt.Fprintf(w, "serve — driving external tebaldi-server at %s\n", target)
	case p.Quick:
		addr, shutdown, srv, err := startInProcess(sp.keyspace)
		if err != nil {
			return err
		}
		target, stop, inproc = addr, shutdown, srv
	default:
		addr, shutdown, err := spawnServer(w, sp.keyspace)
		if err != nil {
			fmt.Fprintf(w, "  (cannot spawn tebaldi-server: %v)\n", err)
			fmt.Fprintf(w, "  falling back to in-process server with %d connections (fd budget)\n", 6000)
			sp.conns = 6000
			sp.count = sp.count * 6 / 10
			var srv *server.Server
			addr, shutdown, srv, err = startInProcess(sp.keyspace)
			if err != nil {
				return err
			}
			inproc = srv
		}
		target, stop = addr, shutdown
	}
	if stop != nil {
		defer stop()
	}

	fmt.Fprintf(w, "serve — open-loop vs closed-loop over %d connections (%d keys, 80%% readonly / 20%% update)\n",
		sp.conns, sp.keyspace)

	open, err := runLoad(target, sp, false)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  open loop   @ %5.0f txn/s offered: %s\n", sp.rate, open)

	closed, err := runLoad(target, sp, true)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  closed loop (no pacing):            %s\n", closed)
	fmt.Fprintf(w, "  coordinated-omission delta: open p999 %v vs closed p999 %v\n", open.P999, closed.P999)

	if inproc != nil {
		if pe := inproc.Metrics().ProtocolErrors.Load(); pe != 0 {
			return fmt.Errorf("serve: %d protocol errors during the run", pe)
		}
		fmt.Fprintf(w, "  protocol errors: 0\n")
	}

	if p.Collect != nil {
		p.Collect.Add(SnapshotEntry{
			Experiment: "serve", Label: "open-loop", Mode: "open",
			Connections: sp.conns, OfferedRate: sp.rate,
			Throughput: open.Rate, Failed: open.Failed,
			P50US: open.P50.Microseconds(), P99US: open.P99.Microseconds(),
			P999US: open.P999.Microseconds(), MaxUS: open.Max.Microseconds(),
		})
		p.Collect.Add(SnapshotEntry{
			Experiment: "serve", Label: "closed-loop", Mode: "closed",
			Connections: sp.closedConns,
			Throughput:  closed.Rate, Failed: closed.Failed,
			P50US: closed.P50.Microseconds(), P99US: closed.P99.Microseconds(),
			P999US: closed.P999.Microseconds(), MaxUS: closed.Max.Microseconds(),
		})
	}
	return nil
}

// runLoad drives one loadgen run (open or closed loop) against target.
func runLoad(target string, sp serveParams, closedLoop bool) (*loadgen.Report, error) {
	var mu sync.Mutex
	clients := make([]*server.Client, 0, sp.conns)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	count, conns := sp.count, sp.conns
	if closedLoop {
		// Closed loop runs at conventional benchmark concurrency: the
		// point of the comparison is the latency a closed-loop harness
		// would report at a similar committed throughput.
		count, conns = sp.closedN, sp.closedConns
	}
	rep, err := loadgen.Run(loadgen.Options{
		Workers:    conns,
		Rate:       sp.rate,
		Count:      count,
		ClosedLoop: closedLoop,
	}, func(worker int) (loadgen.Exec, error) {
		c, err := server.Dial(target)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		clients = append(clients, c)
		mu.Unlock()
		sess := c.Session()
		rng := rand.New(rand.NewSource(int64(worker) + 1))
		return func(i int) error { return kvTxn(sess, rng, sp.keyspace) }, nil
	})
	return rep, err
}

// kvTxn runs one uniformly random transaction — 80% single-key readonly,
// 20% read-modify-write — retrying system aborts like an in-process client
// would; the retry time stays inside the arrival's measured latency.
func kvTxn(sess *server.Sess, rng *rand.Rand, keyspace int) error {
	row := fmt.Sprintf("k%d", rng.Intn(keyspace))
	update := rng.Intn(100) < 20
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		lastErr = func() error {
			typ := "readonly"
			if update {
				typ = "update"
			}
			if err := sess.Begin(typ, 0); err != nil {
				return err
			}
			if _, _, err := sess.Get("kv", row); err != nil {
				return err
			}
			if update {
				if err := sess.Put("kv", row, []byte(fmt.Sprintf("v%d", rng.Int63()))); err != nil {
					return err
				}
			}
			return sess.Commit()
		}()
		if lastErr == nil {
			return nil
		}
		we, ok := lastErr.(*server.WireError)
		if !ok || !server.Retryable(we.Code) {
			return lastErr
		}
	}
	return lastErr
}

// startInProcess opens a DB with the server's generic KV schema and serves
// it on a loopback listener in this process.
func startInProcess(keyspace int) (addr string, stop func(), srv *server.Server, err error) {
	db, err := tebaldi.Open(tebaldi.Options{Shards: 16, LockTimeout: 400 * time.Millisecond},
		[]*tebaldi.Spec{
			{Name: "update", Tables: []string{"kv"}, WriteTables: []string{"kv"}},
			{Name: "readonly", ReadOnly: true, Tables: []string{"kv"}},
		}, nil)
	if err != nil {
		return "", nil, nil, err
	}
	val := []byte(strings.Repeat("x", 100))
	for i := 0; i < keyspace; i++ {
		db.Load(tebaldi.K("kv", fmt.Sprintf("k%d", i)), val)
	}
	srv = server.New(db, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		db.Close()
		return "", nil, nil, err
	}
	go srv.Serve(ln)
	stop = func() {
		srv.Shutdown(5 * time.Second)
		db.Close()
	}
	return ln.Addr().String(), stop, srv, nil
}

// spawnServer builds cmd/tebaldi-server (or takes $TEBALDI_SERVER_BIN) and
// starts it as a child process, returning its protocol address once ready.
func spawnServer(w interface{ Write([]byte) (int, error) }, preload int) (addr string, stop func(), err error) {
	bin := os.Getenv("TEBALDI_SERVER_BIN")
	if bin == "" {
		tmp, err := os.MkdirTemp("", "tebaldi-server")
		if err != nil {
			return "", nil, err
		}
		bin = filepath.Join(tmp, "tebaldi-server")
		build := exec.Command("go", "build", "-o", bin, "./cmd/tebaldi-server")
		if out, err := build.CombinedOutput(); err != nil {
			os.RemoveAll(tmp)
			return "", nil, fmt.Errorf("go build ./cmd/tebaldi-server: %v (%s)", err, strings.TrimSpace(string(out)))
		}
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-metrics", "", "-preload", fmt.Sprint(preload))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}

	// Readiness: the server prints "tebaldi-server listening on <addr>".
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintf(w, "  [server] %s\n", line)
		if rest, ok := strings.CutPrefix(line, "tebaldi-server listening on "); ok {
			addr = strings.Fields(rest)[0]
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		return "", nil, fmt.Errorf("tebaldi-server never reported its address")
	}
	go func() { // keep draining child stdout so it never blocks on a full pipe
		for sc.Scan() {
		}
	}()

	stop = func() {
		cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}
	return addr, stop, nil
}
