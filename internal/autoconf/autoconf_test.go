package autoconf

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/profiler"
)

type fakeEngine struct {
	specs map[string]*core.Spec
}

func specSet() map[string]*core.Spec {
	return map[string]*core.Spec{
		"hot":  {Name: "hot", Tables: []string{"a"}, WriteTables: []string{"a"}},
		"cold": {Name: "cold", Tables: []string{"b"}, WriteTables: []string{"b"}},
		"ro":   {Name: "ro", ReadOnly: true, Tables: []string{"a"}},
		"part": {Name: "part", Tables: []string{"a"}, WriteTables: []string{"a"}, InstanceDomain: 8},
	}
}

// buildEngine creates a throwaway engine so Propose can consult real specs.
func buildEngine(t *testing.T, cfg *engine.NodeSpec) *engine.Engine {
	t.Helper()
	var specs []*core.Spec
	for _, s := range specSet() {
		specs = append(specs, s)
	}
	e, err := engine.New(engine.Options{Shards: 1, GCInterval: -1}, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func initialCfg() *engine.NodeSpec {
	return engine.G(engine.KindSSI, nil,
		engine.G(engine.KindNone, []string{"ro"}),
		engine.G(engine.Kind2PL, []string{"hot", "cold", "part"}))
}

func TestProposeSelfConflict(t *testing.T) {
	e := buildEngine(t, initialCfg())
	cands := Propose(e.Config(), profiler.MakeEdge("hot", "hot"), e)
	if len(cands) == 0 {
		t.Fatal("no candidates for self conflict")
	}
	sawRP, sawTSO := false, false
	for _, c := range cands {
		rendered := c.Config.String()
		if !strings.Contains(rendered, "hot") {
			t.Fatalf("candidate lost the type: %s", rendered)
		}
		// The hot type must end up alone in a new group.
		if strings.Contains(c.Desc, "rp group") {
			sawRP = true
		}
		if strings.Contains(c.Desc, "tso group") {
			sawTSO = true
		}
		// All other types must survive.
		for _, typ := range []string{"cold", "part", "ro"} {
			if !containsType(c.Config, typ) {
				t.Fatalf("candidate %q dropped %s: %s", c.Desc, typ, rendered)
			}
		}
	}
	if !sawRP || !sawTSO {
		t.Fatalf("expected RP and TSO candidates, got %+v", descs(cands))
	}
}

func TestProposeSelfConflictPartitionByInstance(t *testing.T) {
	e := buildEngine(t, initialCfg())
	cands := Propose(e.Config(), profiler.MakeEdge("part", "part"), e)
	found := false
	for _, c := range cands {
		if strings.Contains(c.Desc, "per-instance") {
			found = true
			if !strings.Contains(c.Config.String(), "8x") {
				t.Fatalf("PBI candidate lacks clones: %s", c.Config)
			}
		}
	}
	if !found {
		t.Fatalf("no partition-by-instance candidate: %v", descs(cands))
	}
}

func TestProposePairSameGroup(t *testing.T) {
	e := buildEngine(t, initialCfg())
	cands := Propose(e.Config(), profiler.MakeEdge("hot", "cold"), e)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range cands {
		for _, typ := range []string{"hot", "cold", "part", "ro"} {
			if !containsType(c.Config, typ) {
				t.Fatalf("candidate %q dropped %s: %s", c.Desc, typ, c.Config)
			}
		}
	}
}

func TestProposePairReadOnlyGetsSSI(t *testing.T) {
	e := buildEngine(t, initialCfg())
	cands := Propose(e.Config(), profiler.MakeEdge("ro", "hot"), e)
	found := false
	for _, c := range cands {
		if strings.Contains(c.Desc, "under ssi") {
			found = true
		}
	}
	if !found {
		t.Fatalf("read-write edge should propose SSI: %v", descs(cands))
	}
}

func TestProposeSelfReadOnlyNothing(t *testing.T) {
	e := buildEngine(t, initialCfg())
	if cands := Propose(e.Config(), profiler.MakeEdge("ro", "ro"), e); len(cands) != 0 {
		t.Fatalf("read-only self conflict should yield nothing: %v", descs(cands))
	}
}

func TestProposedConfigsBuild(t *testing.T) {
	// Every proposed candidate must be buildable and reachable via
	// reconfiguration.
	e := buildEngine(t, initialCfg())
	for _, edge := range []profiler.Edge{
		profiler.MakeEdge("hot", "hot"),
		profiler.MakeEdge("hot", "cold"),
		profiler.MakeEdge("ro", "hot"),
		profiler.MakeEdge("part", "part"),
	} {
		for _, c := range Propose(e.Config(), edge, e) {
			if err := e.Reconfigure(c.Config, engine.PartialRestart); err != nil {
				t.Fatalf("candidate %q unbuildable: %v\n%s", c.Desc, err, c.Config)
			}
		}
	}
}

func containsType(cfg *engine.NodeSpec, typ string) bool {
	for _, tt := range cfg.AllTypes() {
		if tt == typ {
			return true
		}
	}
	return false
}

func descs(cands []Candidate) []string {
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.Desc
	}
	return out
}
