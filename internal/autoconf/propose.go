package autoconf

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/profiler"
)

// Propose generates candidate configurations that optimize the bottleneck
// conflict edge, following the three adjustment strategies of §5.4.1 — all
// of which keep the change as local as possible to the bottleneck:
//
//   - Case 1 (Fig 5.7), T conflicts with itself: split T's leaf, giving T a
//     new leaf under a better-suited CC, with the original CC promoted to a
//     non-leaf regulating T against its former groupmates. When T's spec
//     declares an instance domain, a partition-by-instance candidate (one
//     CC instance per partition under a 2PL cross-group, §5.4.2) is added.
//   - Case 2 (Fig 5.8), T1 and T2 share a leaf: give each its own subgroup
//     and insert a new cross-group CC for exactly their conflicts.
//   - Case 3 (Fig 5.9), T1 and T2 in different groups: restructure under
//     their lowest common ancestor, pairing the two types under a new
//     cross-group CC.
//
// CC-specific filters (§5.4.1) remove candidates unlikely to perform:
// batched SSI is only proposed when one side of the edge is read-only, and
// mechanisms not designed for contention are not proposed as in-group
// optimizers. CC-specific preprocessing (§5.4.2) — RP's static analysis,
// TSO's promises — runs automatically when the engine builds the tree.
func Propose(cfg *engine.NodeSpec, edge profiler.Edge, e *engine.Engine) []Candidate {
	if edge.A == edge.B {
		return proposeSelf(cfg, edge.A, e.Spec(edge.A), e.Spec)
	}
	return proposePair(cfg, edge.A, edge.B, e.Spec(edge.A), e.Spec(edge.B))
}

// inGroupKinds are the mechanisms proposed to regulate a single hot type's
// self-conflicts (filter: designed for heavy contention).
var inGroupKinds = []engine.Kind{engine.KindRP, engine.KindTSO}

// crossKinds are the mechanisms proposed as new cross-group regulators.
var crossKinds = []engine.Kind{engine.Kind2PL, engine.KindRP, engine.KindTSO}

// findLeaf returns the child-index path to the node holding typ among its
// Types, or ok=false.
func findLeaf(cfg *engine.NodeSpec, typ string) (path []int, ok bool) {
	for _, t := range cfg.Types {
		if t == typ {
			return nil, true
		}
	}
	for i, c := range cfg.Children {
		if p, ok := findLeaf(c, typ); ok {
			return append([]int{i}, p...), true
		}
	}
	return nil, false
}

func nodeAt(cfg *engine.NodeSpec, path []int) *engine.NodeSpec {
	n := cfg
	for _, i := range path {
		n = n.Children[i]
	}
	return n
}

func removeType(n *engine.NodeSpec, typ string) {
	out := n.Types[:0]
	for _, t := range n.Types {
		if t != typ {
			out = append(out, t)
		}
	}
	n.Types = out
}

// proposeSelf handles Case 1: the bottleneck is contention among instances
// of one type.
func proposeSelf(cfg *engine.NodeSpec, typ string, spec *core.Spec, specOf func(string) *core.Spec) []Candidate {
	path, ok := findLeaf(cfg, typ)
	if !ok || spec == nil || spec.ReadOnly {
		return nil
	}
	var out []Candidate
	for _, kind := range inGroupKinds {
		c := cfg.Clone()
		leaf := nodeAt(c, path)
		if kind == leaf.Kind && len(leaf.Types) == 1 && len(leaf.Children) == 0 {
			continue // already exactly this
		}
		splitLeaf(leaf, typ, &engine.NodeSpec{Kind: kind, Types: []string{typ}})
		out = append(out, Candidate{Config: c, Desc: fmt.Sprintf("%s -> %s group", typ, kind)})
	}
	// Partition-by-instance (§5.4.2): one TSO instance per declared
	// partition, 2PL across instances. Every type from the same leaf that
	// declares the same instance domain joins the partitioned group —
	// their conflicts partition identically (e.g. all SEATS reservation
	// transactions, Figure 5.16).
	if spec.InstanceDomain > 1 {
		c := cfg.Clone()
		leaf := nodeAt(c, path)
		group := []string{typ}
		for _, other := range leaf.Types {
			if other == typ {
				continue
			}
			if osp := specOf(other); osp != nil && osp.InstanceDomain == spec.InstanceDomain {
				group = append(group, other)
			}
		}
		pbi := &engine.NodeSpec{
			Kind:       engine.Kind2PL,
			ByInstance: true,
			Clones:     spec.InstanceDomain,
			Children:   []*engine.NodeSpec{{Kind: engine.KindTSO, Types: group}},
		}
		for _, g := range group {
			removeType(leaf, g)
		}
		if len(leaf.Types) == 0 && len(leaf.Children) == 0 {
			*leaf = *pbi
		} else {
			leaf.Children = append(leaf.Children, pbi)
		}
		out = append(out, Candidate{Config: c,
			Desc: fmt.Sprintf("%s -> per-instance TSO x%d", strings.Join(group, "+"), spec.InstanceDomain)})
	}
	return out
}

// splitLeaf rewrites leaf so that typ lives in newSub while all other
// responsibilities stay under the original mechanism, which becomes the
// local cross-group regulator (Fig 5.7).
func splitLeaf(leaf *engine.NodeSpec, typ string, newSub *engine.NodeSpec) {
	removeType(leaf, typ)
	if len(leaf.Types) == 0 && len(leaf.Children) == 0 {
		// The leaf held only typ: substitute in place.
		*leaf = *newSub
		return
	}
	leaf.Children = append(leaf.Children, newSub)
}

// proposePair handles Cases 2 and 3: contention between two types.
func proposePair(cfg *engine.NodeSpec, a, b string, specA, specB *core.Spec) []Candidate {
	pa, okA := findLeaf(cfg, a)
	pb, okB := findLeaf(cfg, b)
	if !okA || !okB || specA == nil || specB == nil {
		return nil
	}
	var out []Candidate

	// Filter: SSI cross-group is proposed only when one side is
	// read-only (batched SSI over two update groups rarely wins and the
	// read-only split needs no batching).
	kinds := append([]engine.Kind(nil), crossKinds...)
	if specA.ReadOnly != specB.ReadOnly {
		kinds = append([]engine.Kind{engine.KindSSI}, kinds...)
	}

	samePath := len(pa) == len(pb)
	if samePath {
		for i := range pa {
			if pa[i] != pb[i] {
				samePath = false
				break
			}
		}
	}

	for _, kind := range kinds {
		c := cfg.Clone()
		la, lb := nodeAt(c, pa), nodeAt(c, pb)
		kindA, kindB := la.Kind, lb.Kind
		if specA.ReadOnly {
			kindA = engine.KindNone
		}
		if specB.ReadOnly {
			kindB = engine.KindNone
		}
		pair := &engine.NodeSpec{
			Kind: kind,
			Children: []*engine.NodeSpec{
				{Kind: kindA, Types: []string{a}},
				{Kind: kindB, Types: []string{b}},
			},
		}
		if samePath {
			// Case 2: both types share a leaf — the original CC
			// regulates the pair subtree against the remaining
			// types (Fig 5.8).
			leaf := nodeAt(c, pa)
			removeType(leaf, a)
			removeType(leaf, b)
			if len(leaf.Types) == 0 && len(leaf.Children) == 0 {
				*leaf = *pair
			} else {
				leaf.Children = append(leaf.Children, pair)
			}
		} else {
			// Case 3: different groups — restructure beneath the
			// LCA (Fig 5.9b): the pair subtree becomes a new child
			// of the LCA, the types leave their old leaves.
			lca := 0
			for lca < len(pa) && lca < len(pb) && pa[lca] == pb[lca] {
				lca++
			}
			removeType(la, a)
			removeType(lb, b)
			anchor := nodeAt(c, pa[:lca])
			anchor.Children = append(anchor.Children, pair)
			pruneEmpty(c)
		}
		out = append(out, Candidate{Config: c, Desc: fmt.Sprintf("%s|%s under %s", a, b, kind)})
	}

	// Also try simply merging the two types into one aggressive leaf
	// (sometimes in-group RP beats any cross-group split, §4.6.1).
	if !specA.ReadOnly && !specB.ReadOnly && samePath {
		c := cfg.Clone()
		leaf := nodeAt(c, pa)
		removeType(leaf, a)
		removeType(leaf, b)
		merged := &engine.NodeSpec{Kind: engine.KindRP, Types: []string{a, b}}
		if len(leaf.Types) == 0 && len(leaf.Children) == 0 {
			*leaf = *merged
		} else {
			leaf.Children = append(leaf.Children, merged)
		}
		out = append(out, Candidate{Config: c, Desc: fmt.Sprintf("%s+%s merged RP", a, b)})
	}
	return out
}

// pruneEmpty removes childless, typeless subtrees left behind by moves.
func pruneEmpty(n *engine.NodeSpec) bool {
	kept := n.Children[:0]
	for _, c := range n.Children {
		if pruneEmpty(c) {
			kept = append(kept, c)
		}
	}
	n.Children = kept
	return len(n.Types) > 0 || len(n.Children) > 0
}
