// Package autoconf implements Tebaldi's automatic configuration algorithm
// (Chapter 5): an iterative loop that monitors the live workload, detects
// the most severe data-contention bottleneck as an exact conflict edge
// (analysis stage, §5.3), proposes new MCC configurations that optimize that
// edge (optimization stage, §5.4), and tests each candidate online by
// reconfiguring the running database and measuring throughput (testing
// stage, §5.5), keeping the best performer.
//
// The loop starts from whatever configuration the engine is running —
// typically the general initial configuration of §5.2 (SSI over a read-only
// group and a 2PL update group) — and terminates when no bottleneck is found
// or no candidate beats the incumbent.
package autoconf

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/profiler"
)

// Options tune the configuration loop.
type Options struct {
	// MeasureWindow is how long each configuration is observed.
	MeasureWindow time.Duration
	// Settle is the pause after a reconfiguration before measuring
	// (caches/batches warm up).
	Settle time.Duration
	// MaxIterations bounds the loop.
	MaxIterations int
	// Protocol selects the reconfiguration protocol used while testing
	// candidates (default OnlineUpdate, falling back internally to
	// partial restart for root-level changes).
	Protocol engine.Protocol
	// MinImprovement is the relative throughput gain a candidate must
	// deliver to replace the incumbent (termination condition).
	MinImprovement float64
	// Log receives progress lines (nil = silent).
	Log func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.MeasureWindow <= 0 {
		o.MeasureWindow = 2 * time.Second
	}
	if o.Settle <= 0 {
		o.Settle = o.MeasureWindow / 4
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 8
	}
	if o.MinImprovement <= 0 {
		o.MinImprovement = 0.05
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
	return o
}

// Candidate is one tested configuration.
type Candidate struct {
	Config     *engine.NodeSpec
	Desc       string
	Throughput float64
	Err        error
}

// Iteration records one round of the loop.
type Iteration struct {
	Bottleneck     profiler.Edge
	Score          time.Duration
	BaseThroughput float64
	Candidates     []Candidate
	Chosen         *engine.NodeSpec
	Improved       bool
}

// Result is the outcome of a configuration run.
type Result struct {
	Iterations      []Iteration
	Final           *engine.NodeSpec
	FinalThroughput float64
}

// Run executes the configuration loop against a live engine. A workload must
// be running concurrently (the loop only measures and reconfigures).
func Run(e *engine.Engine, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	prof := e.Profiler()
	if !prof.Enabled() {
		return nil, fmt.Errorf("autoconf: engine profiling is disabled")
	}
	res := &Result{}

	measure := func() (float64, []profiler.Edge, map[profiler.Edge]time.Duration) {
		prof.Window() // drop events from the settle period
		snap := e.Stats().Snapshot()
		time.Sleep(opts.MeasureWindow)
		w := e.Stats().Since(snap)
		scores := profiler.Scores(prof.Window())
		var edges []profiler.Edge
		for ed := range scores {
			edges = append(edges, ed)
		}
		return w.Throughput, edges, scores
	}

	for iter := 0; iter < opts.MaxIterations; iter++ {
		time.Sleep(opts.Settle)
		base, _, scores := measure()
		edge, score, found := profiler.Bottleneck(scores)
		it := Iteration{BaseThroughput: base, Bottleneck: edge, Score: score}
		if !found {
			opts.Log("iteration %d: no contention bottleneck found (%.0f txn/s); done", iter, base)
			res.Iterations = append(res.Iterations, it)
			break
		}
		opts.Log("iteration %d: base %.0f txn/s, bottleneck %s<->%s (%.1fms blocked)",
			iter, base, edge.A, edge.B, float64(score.Microseconds())/1000)

		current := e.Config()
		cands := Propose(current, edge, e)
		if len(cands) == 0 {
			opts.Log("iteration %d: no candidate optimizations for edge; done", iter)
			res.Iterations = append(res.Iterations, it)
			break
		}

		bestTput := base * (1 + opts.MinImprovement)
		var best *engine.NodeSpec
		for ci := range cands {
			c := &cands[ci]
			if err := e.Reconfigure(c.Config, opts.Protocol); err != nil {
				c.Err = err
				opts.Log("  candidate %q: reconfigure failed: %v", c.Desc, err)
				it.Candidates = append(it.Candidates, *c)
				continue
			}
			time.Sleep(opts.Settle)
			tput, _, _ := measure()
			c.Throughput = tput
			opts.Log("  candidate %q: %.0f txn/s  [%s]", c.Desc, tput, c.Config)
			it.Candidates = append(it.Candidates, *c)
			if tput > bestTput {
				bestTput = tput
				best = c.Config
			}
		}

		chosen := current
		if best != nil {
			chosen = best
			it.Improved = true
		}
		if err := e.Reconfigure(chosen, opts.Protocol); err != nil {
			return res, fmt.Errorf("autoconf: restoring configuration: %w", err)
		}
		it.Chosen = chosen
		res.Iterations = append(res.Iterations, it)
		if !it.Improved {
			opts.Log("iteration %d: no candidate beat %.0f txn/s; done", iter, base)
			break
		}
		opts.Log("iteration %d: adopted %s (%.0f txn/s)", iter, chosen, bestTput)
	}

	res.Final = e.Config()
	snap := e.Stats().Snapshot()
	time.Sleep(opts.MeasureWindow)
	res.FinalThroughput = e.Stats().Since(snap).Throughput
	return res, nil
}
