package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// TxnState is the lifecycle state of a transaction.
type TxnState int32

const (
	// Active: the transaction is executing or validating.
	Active TxnState = iota
	// Committed: the transaction committed; its versions are durable in the
	// multiversion store and carry its commit timestamp.
	Committed
	// Aborted: the transaction aborted; its versions have been removed.
	Aborted
)

// String implements fmt.Stringer.
func (s TxnState) String() string {
	switch s {
	case Active:
		return "active"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	default:
		return "unknown"
	}
}

// Dep is a direct dependency edge recorded during execution: the owning
// transaction is ordered after T. Read marks a read-from dependency on an
// uncommitted version (which cascades aborts); otherwise the edge is a pure
// ordering (ww / rw / lock-order) dependency.
type Dep struct {
	T    *Txn
	Read bool
}

// WriteRef remembers an uncommitted version installed by a transaction so the
// engine can finalize or remove it at commit/abort.
type WriteRef struct {
	Chain *Chain
	V     *Version
}

// Txn is one executing transaction. A transaction is pinned at begin time to
// a path of CC-tree nodes (root..leaf); every node on the path participates
// in each of the four protocol phases. Per-node protocol state lives in
// Slots, indexed by the node's depth.
//
// # Reclamation rule (transaction pooling)
//
// Txn objects are recycled through a sync.Pool (GetTxn/PutTxn) to keep
// read-only transactions allocation-free. Recycling is safe only if no other
// goroutine can still hold the pointer when it is reused, so every operation
// that lets the pointer escape the owning goroutine sets a sticky `shared`
// flag, and PutTxn refuses to recycle a shared transaction.
//
// The escape-point list is no longer maintained by hand: the poolescape
// analyzer (internal/analysis/poolescape) derives it from the code and flags
// any escape edge not dominated by a MarkShared call. Print the current list
// with:
//
//	go run ./cmd/tebaldivet -escapepoints ./internal/...
//
// As of this writing it is:
//
//   - Txn.AddWrite / Chain.InstallPromise: an installed Version carries
//     Writer *Txn, which late readers may follow long after commit.
//   - Chain.RecordReader: the chain's reader list holds ReadRec.T.
//   - Txn.AddDep: the *target* transaction's pointer enters this txn's deps
//     map (targets reaching AddDep are already shared — they came from a
//     version or a lock table — but AddDep re-marks them for robustness).
//   - lockmgr.Table.Acquire: the lock table's owner map and blocked waiters
//     retain the pointer.
//   - engine.Tx.Txn: an external handle escapes to tooling/tests.
//   - engine.Engine.loadVersion: bulk load installs versions outside any CC
//     tree, so the synthetic writer is marked at construction. (This one was
//     missing from the hand-maintained list — the analyzer found it.)
//
// All escapes happen on the owner goroutine before the pointer is published,
// so the flag check at finish time is race-free. Read-only transactions under
// an optimized snapshot tree (no locks, no reader records, no writes, no
// deps) hit none of these and are recycled on every commit.
type Txn struct {
	// ID is unique per engine instance.
	ID uint64
	// Type is the static transaction type (e.g. "new_order"); grouping is
	// by type, optionally refined by instance (Part).
	Type string
	// Part is the instance-partition input (e.g. SEATS flight id), used by
	// partition-by-instance nodes to route among cloned children.
	Part uint64
	// BeginTS is drawn from the global timestamp oracle at begin. It is
	// the SSI/TSO start timestamp and the GC watermark contribution.
	BeginTS uint64
	// Path is the root..leaf chain of CC nodes responsible for this
	// transaction. Fixed at begin.
	Path []*Node
	// Slots holds per-node CC protocol state, indexed by node depth.
	Slots []any
	// Start is the wall-clock begin time (profiling and latency stats).
	Start time.Time
	// Epoch is the reconfiguration epoch the transaction was admitted in.
	Epoch uint64

	state    atomic.Int32
	commitTS atomic.Uint64
	shared   atomic.Bool

	// mu guards done/deps/writes. It may be taken while a chain mutex is
	// held (AddDep under the reader's chain lock; Mark*→wake under test
	// setups) and its critical sections never acquire other locks.
	// tebaldi:locks after core.Chain
	mu     sync.Mutex
	done   chan struct{} // lazily allocated by Done; nil if nobody waited
	deps   map[uint64]Dep
	writes []WriteRef
}

// closedChan is returned by Done for already-finished transactions so the
// common never-waited-on case needs no channel allocation at all.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// NewTxn constructs an Active transaction. The engine fills in Path/Slots.
// The done channel and deps map are allocated lazily on first use.
func NewTxn(id uint64, typ string, part uint64, beginTS uint64) *Txn {
	return &Txn{
		ID:      id,
		Type:    typ,
		Part:    part,
		BeginTS: beginTS,
		Start:   time.Now(),
	}
}

var txnPool = sync.Pool{New: func() any { return new(Txn) }}

// GetTxn returns a pooled Active transaction, falling back to allocation.
// Path/Slots retain their backing arrays from a previous life (length 0).
func GetTxn(id uint64, typ string, part uint64, beginTS uint64) *Txn {
	t := txnPool.Get().(*Txn)
	t.ID = id
	t.Type = typ
	t.Part = part
	t.BeginTS = beginTS
	t.Start = time.Now()
	return t
}

// PutTxn recycles a finished transaction whose pointer provably never escaped
// the owning goroutine (see the reclamation rule on Txn). It reports whether
// the transaction was recycled; shared or still-active transactions are left
// for the garbage collector.
func PutTxn(t *Txn) bool {
	if t.State() == Active || t.shared.Load() {
		return false
	}
	t.ID, t.Type, t.Part, t.BeginTS, t.Epoch = 0, "", 0, 0, 0
	t.Start = time.Time{}
	// Zero the elements before truncating so stale CC slot state and node
	// pointers don't survive into the next life via the shared backing array.
	for i := range t.Path {
		t.Path[i] = nil
	}
	t.Path = t.Path[:0]
	for i := range t.Slots {
		t.Slots[i] = nil
	}
	t.Slots = t.Slots[:0]
	t.state.Store(int32(Active))
	t.commitTS.Store(0)
	t.done = nil
	clear(t.deps)
	t.writes = t.writes[:0]
	txnPool.Put(t)
	return true
}

// MarkShared records that t's pointer escaped to a place a foreign goroutine
// may read after t finishes (version chains, lock tables, dependency sets).
// The flag is sticky: once shared, the Txn is never pooled.
func (t *Txn) MarkShared() { t.shared.Store(true) }

// Shared reports whether the transaction's pointer has escaped (see
// MarkShared); used by the pool eligibility check and its tests.
func (t *Txn) Shared() bool { return t.shared.Load() }

// State returns the transaction's current lifecycle state.
func (t *Txn) State() TxnState { return TxnState(t.state.Load()) }

// CommitTS returns the commit timestamp, or 0 if not committed.
func (t *Txn) CommitTS() uint64 { return t.commitTS.Load() }

// Done returns a channel closed when the transaction commits or aborts. The
// channel is allocated on first call; transactions nobody waits on never pay
// for one.
func (t *Txn) Done() <-chan struct{} {
	t.mu.Lock()
	if t.done == nil {
		if t.State() != Active {
			t.mu.Unlock()
			return closedChan
		}
		t.done = make(chan struct{})
	}
	d := t.done
	t.mu.Unlock()
	return d
}

// wake closes the lazily created done channel, if any waiter allocated one.
func (t *Txn) wake() {
	t.mu.Lock()
	if t.done != nil {
		close(t.done)
		t.done = nil
	}
	t.mu.Unlock()
}

// Finished reports whether the transaction has committed or aborted.
func (t *Txn) Finished() bool { return t.State() != Active }

// MarkCommittedNext draws the commit timestamp from the oracle and publishes
// it in one breath, minimizing the window in which a reader's snapshot can
// postdate the timestamp while the version still looks pending (see SSI's
// committing-version wait).
func (t *Txn) MarkCommittedNext(o Oracle) (uint64, bool) {
	ts := o.Next()
	t.commitTS.Store(ts)
	if !t.state.CompareAndSwap(int32(Active), int32(Committed)) {
		t.commitTS.Store(0)
		return 0, false
	}
	t.wake()
	return ts, true
}

// MarkCommitted transitions Active -> Committed with the given commit
// timestamp and wakes all waiters. It reports false if the transaction was
// already finished (e.g. force-aborted concurrently).
func (t *Txn) MarkCommitted(ts uint64) bool {
	// The timestamp must be visible before the state flips: readers check
	// State() first and then read CommitTS.
	t.commitTS.Store(ts)
	if !t.state.CompareAndSwap(int32(Active), int32(Committed)) {
		t.commitTS.Store(0)
		return false
	}
	t.wake()
	return true
}

// MarkAborted transitions Active -> Aborted and wakes all waiters. It reports
// false if the transaction was already finished.
func (t *Txn) MarkAborted() bool {
	if !t.state.CompareAndSwap(int32(Active), int32(Aborted)) {
		return false
	}
	t.wake()
	return true
}

// AddDep records that t is ordered after other. Read-from dependencies on
// uncommitted writers (read=true) propagate aborts; pure ordering
// dependencies only delay commit. Dependencies on already-committed
// transactions are dropped (nothing to wait for); a read-from dependency on
// an already-aborted transaction returns ErrCascade.
func (t *Txn) AddDep(other *Txn, read bool) error {
	if other == nil || other == t {
		return nil
	}
	switch other.State() {
	case Committed:
		return nil
	case Aborted:
		if read {
			return ErrCascade
		}
		return nil
	}
	// The target's pointer is retained in our deps map and waited on at
	// commit; it must never be recycled under us.
	other.MarkShared()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.deps == nil {
		t.deps = make(map[uint64]Dep, 4)
	}
	if d, ok := t.deps[other.ID]; ok {
		if read && !d.Read {
			t.deps[other.ID] = Dep{T: other, Read: true}
		}
		return nil
	}
	t.deps[other.ID] = Dep{T: other, Read: read}
	return nil
}

// HasDeps reports whether any dependency edges have been recorded; the
// commit path uses it to skip the wait loop (and its allocations) entirely.
func (t *Txn) HasDeps() bool {
	t.mu.Lock()
	n := len(t.deps)
	t.mu.Unlock()
	return n > 0
}

// Deps returns a snapshot of the recorded dependency set.
func (t *Txn) Deps() []Dep {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Dep, 0, len(t.deps))
	for _, d := range t.deps {
		out = append(out, d)
	}
	return out
}

// WaitDeps blocks until every recorded dependency has finished, enforcing
// consistent ordering at commit time (the generalization of Callas' nexus
// lock release order, §4.2). It returns ErrCascade if a read-from dependency
// aborted, and ErrTimeout if the deadline expires. Dependencies recorded
// while waiting (by concurrent operations of this transaction) are picked up
// by re-snapshotting until a fixed point.
func (t *Txn) WaitDeps(timeout time.Duration) error {
	if !t.HasDeps() {
		return nil
	}
	deadline := time.Now().Add(timeout)
	seen := make(map[uint64]bool)
	for {
		deps := t.Deps()
		progress := false
		for _, d := range deps {
			if seen[d.T.ID] {
				continue
			}
			progress = true
			remain := time.Until(deadline)
			if remain <= 0 {
				return ErrTimeout
			}
			select {
			case <-d.T.Done():
			case <-time.After(remain):
				return ErrTimeout
			}
			if d.T.State() == Aborted && d.Read {
				return ErrCascade
			}
			seen[d.T.ID] = true
		}
		if !progress {
			return nil
		}
	}
}

// AddWrite records an installed (still uncommitted) version. The version
// carries the writer pointer, so the transaction becomes shared.
func (t *Txn) AddWrite(c *Chain, v *Version) {
	t.MarkShared()
	t.mu.Lock()
	t.writes = append(t.writes, WriteRef{Chain: c, V: v})
	t.mu.Unlock()
}

// HasWrites reports whether the transaction has installed any versions; the
// read path uses it to skip the read-your-own-writes chain lock.
func (t *Txn) HasWrites() bool {
	t.mu.Lock()
	n := len(t.writes)
	t.mu.Unlock()
	return n > 0
}

// Writes returns the transaction's installed versions.
func (t *Txn) Writes() []WriteRef {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]WriteRef, len(t.writes))
	copy(out, t.writes)
	return out
}

// Leaf returns the leaf node of the transaction's CC path.
func (t *Txn) Leaf() *Node { return t.Path[len(t.Path)-1] }
