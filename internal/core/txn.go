package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// TxnState is the lifecycle state of a transaction.
type TxnState int32

const (
	// Active: the transaction is executing or validating.
	Active TxnState = iota
	// Committed: the transaction committed; its versions are durable in the
	// multiversion store and carry its commit timestamp.
	Committed
	// Aborted: the transaction aborted; its versions have been removed.
	Aborted
)

// String implements fmt.Stringer.
func (s TxnState) String() string {
	switch s {
	case Active:
		return "active"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	default:
		return "unknown"
	}
}

// Dep is a direct dependency edge recorded during execution: the owning
// transaction is ordered after T. Read marks a read-from dependency on an
// uncommitted version (which cascades aborts); otherwise the edge is a pure
// ordering (ww / rw / lock-order) dependency.
type Dep struct {
	T    *Txn
	Read bool
}

// WriteRef remembers an uncommitted version installed by a transaction so the
// engine can finalize or remove it at commit/abort.
type WriteRef struct {
	Chain *Chain
	V     *Version
}

// Txn is one executing transaction. A transaction is pinned at begin time to
// a path of CC-tree nodes (root..leaf); every node on the path participates
// in each of the four protocol phases. Per-node protocol state lives in
// Slots, indexed by the node's depth.
type Txn struct {
	// ID is unique per engine instance.
	ID uint64
	// Type is the static transaction type (e.g. "new_order"); grouping is
	// by type, optionally refined by instance (Part).
	Type string
	// Part is the instance-partition input (e.g. SEATS flight id), used by
	// partition-by-instance nodes to route among cloned children.
	Part uint64
	// BeginTS is drawn from the global timestamp oracle at begin. It is
	// the SSI/TSO start timestamp and the GC watermark contribution.
	BeginTS uint64
	// Path is the root..leaf chain of CC nodes responsible for this
	// transaction. Fixed at begin.
	Path []*Node
	// Slots holds per-node CC protocol state, indexed by node depth.
	Slots []any
	// Start is the wall-clock begin time (profiling and latency stats).
	Start time.Time
	// Epoch is the reconfiguration epoch the transaction was admitted in.
	Epoch uint64

	state    atomic.Int32
	commitTS atomic.Uint64
	done     chan struct{}

	mu     sync.Mutex
	deps   map[uint64]Dep
	writes []WriteRef
}

// NewTxn constructs an Active transaction. The engine fills in Path/Slots.
func NewTxn(id uint64, typ string, part uint64, beginTS uint64) *Txn {
	return &Txn{
		ID:      id,
		Type:    typ,
		Part:    part,
		BeginTS: beginTS,
		Start:   time.Now(),
		done:    make(chan struct{}),
		deps:    make(map[uint64]Dep, 8),
	}
}

// State returns the transaction's current lifecycle state.
func (t *Txn) State() TxnState { return TxnState(t.state.Load()) }

// CommitTS returns the commit timestamp, or 0 if not committed.
func (t *Txn) CommitTS() uint64 { return t.commitTS.Load() }

// Done returns a channel closed when the transaction commits or aborts.
func (t *Txn) Done() <-chan struct{} { return t.done }

// Finished reports whether the transaction has committed or aborted.
func (t *Txn) Finished() bool { return t.State() != Active }

// MarkCommittedNext draws the commit timestamp from the oracle and publishes
// it in one breath, minimizing the window in which a reader's snapshot can
// postdate the timestamp while the version still looks pending (see SSI's
// committing-version wait).
func (t *Txn) MarkCommittedNext(o Oracle) (uint64, bool) {
	ts := o.Next()
	t.commitTS.Store(ts)
	if !t.state.CompareAndSwap(int32(Active), int32(Committed)) {
		t.commitTS.Store(0)
		return 0, false
	}
	close(t.done)
	return ts, true
}

// MarkCommitted transitions Active -> Committed with the given commit
// timestamp and wakes all waiters. It reports false if the transaction was
// already finished (e.g. force-aborted concurrently).
func (t *Txn) MarkCommitted(ts uint64) bool {
	// The timestamp must be visible before the state flips: readers check
	// State() first and then read CommitTS.
	t.commitTS.Store(ts)
	if !t.state.CompareAndSwap(int32(Active), int32(Committed)) {
		t.commitTS.Store(0)
		return false
	}
	close(t.done)
	return true
}

// MarkAborted transitions Active -> Aborted and wakes all waiters. It reports
// false if the transaction was already finished.
func (t *Txn) MarkAborted() bool {
	if !t.state.CompareAndSwap(int32(Active), int32(Aborted)) {
		return false
	}
	close(t.done)
	return true
}

// AddDep records that t is ordered after other. Read-from dependencies on
// uncommitted writers (read=true) propagate aborts; pure ordering
// dependencies only delay commit. Dependencies on already-committed
// transactions are dropped (nothing to wait for); a read-from dependency on
// an already-aborted transaction returns ErrCascade.
func (t *Txn) AddDep(other *Txn, read bool) error {
	if other == nil || other == t {
		return nil
	}
	switch other.State() {
	case Committed:
		return nil
	case Aborted:
		if read {
			return ErrCascade
		}
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if d, ok := t.deps[other.ID]; ok {
		if read && !d.Read {
			t.deps[other.ID] = Dep{T: other, Read: true}
		}
		return nil
	}
	t.deps[other.ID] = Dep{T: other, Read: read}
	return nil
}

// Deps returns a snapshot of the recorded dependency set.
func (t *Txn) Deps() []Dep {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Dep, 0, len(t.deps))
	for _, d := range t.deps {
		out = append(out, d)
	}
	return out
}

// WaitDeps blocks until every recorded dependency has finished, enforcing
// consistent ordering at commit time (the generalization of Callas' nexus
// lock release order, §4.2). It returns ErrCascade if a read-from dependency
// aborted, and ErrTimeout if the deadline expires. Dependencies recorded
// while waiting (by concurrent operations of this transaction) are picked up
// by re-snapshotting until a fixed point.
func (t *Txn) WaitDeps(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	seen := make(map[uint64]bool)
	for {
		deps := t.Deps()
		progress := false
		for _, d := range deps {
			if seen[d.T.ID] {
				continue
			}
			progress = true
			remain := time.Until(deadline)
			if remain <= 0 {
				return ErrTimeout
			}
			select {
			case <-d.T.Done():
			case <-time.After(remain):
				return ErrTimeout
			}
			if d.T.State() == Aborted && d.Read {
				return ErrCascade
			}
			seen[d.T.ID] = true
		}
		if !progress {
			return nil
		}
	}
}

// AddWrite records an installed (still uncommitted) version.
func (t *Txn) AddWrite(c *Chain, v *Version) {
	t.mu.Lock()
	t.writes = append(t.writes, WriteRef{Chain: c, V: v})
	t.mu.Unlock()
}

// Writes returns the transaction's installed versions.
func (t *Txn) Writes() []WriteRef {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]WriteRef, len(t.writes))
	copy(out, t.writes)
	return out
}

// Leaf returns the leaf node of the transaction's CC path.
func (t *Txn) Leaf() *Node { return t.Path[len(t.Path)-1] }
