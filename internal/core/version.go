package core

import (
	"sync"
	"sync/atomic"
)

// Version is one write of a key. A version is pending while its writer is
// Active; it becomes part of the committed history when the writer commits
// (CommitTS is then the writer's commit timestamp) and disappears when the
// writer aborts.
type Version struct {
	// Writer is the transaction that installed this version.
	Writer *Txn
	// Value is the written value. For a Promise version it is nil until
	// the promised write occurs.
	Value []byte
	// TS is the multiversion-timestamp-ordering timestamp of the write
	// (the writer's TSO timestamp); 0 for versions written under other CC
	// mechanisms.
	TS uint64
	// RTS is the largest TSO timestamp of any reader that read this
	// version; a TSO writer inserting a version immediately before this
	// one must abort if its timestamp is below RTS (it would invalidate
	// that read). Guarded by the chain mutex.
	RTS uint64

	// Promise marks a placeholder installed at start time by a TSO
	// transaction that declared it will write this key (§4.4.4). Readers
	// that select a promise block on Ready until the value is written.
	Promise bool
	ready   chan struct{}

	stepCommitted atomic.Bool
}

// CommitTS returns the writer's commit timestamp (0 if not committed).
func (v *Version) CommitTS() uint64 { return v.Writer.CommitTS() }

// Committed reports whether the writing transaction committed.
func (v *Version) Committed() bool { return v.Writer.State() == Committed }

// Pending reports whether the writing transaction is still active.
func (v *Version) Pending() bool { return v.Writer.State() == Active }

// StepCommitted reports whether Runtime Pipelining has step-committed this
// version: the writer finished the pipeline step in which the write occurred,
// exposing the (still uncommitted) value to pipeline successors.
func (v *Version) StepCommitted() bool { return v.stepCommitted.Load() }

// MarkStepCommitted exposes the version to pipeline successors.
func (v *Version) MarkStepCommitted() { v.stepCommitted.Store(true) }

// Ready returns a channel closed when a promised value has been written (or
// the promising writer aborted). For ordinary versions it is nil.
func (v *Version) Ready() <-chan struct{} { return v.ready }

// Fulfill installs the promised value. The chain mutex must be held.
func (v *Version) Fulfill(value []byte) {
	v.Value = value
	v.Promise = false
	if v.ready != nil {
		close(v.ready)
	}
}

// ReadRec records a read for SSI anti-dependency (pivot) detection and for
// TSO read-timestamp maintenance.
type ReadRec struct {
	T *Txn
	// SnapshotTS is the timestamp the reader's snapshot was taken at.
	SnapshotTS uint64
	// Batch is the opaque SSI/TSO batch the reader belonged to (nil when
	// the reading CC does not batch).
	Batch any
}

// Chain is the multiversioned value chain of one key: every committed and
// pending write, plus recent-reader bookkeeping. The engine locks the chain
// around the bottom-up AmendRead / PostWrite passes, so CC mechanisms may
// access all fields without further synchronization — but must never block
// or take other chain locks while holding it.
type Chain struct {
	Key Key
	// Shard is the index of the storage shard holding this chain, memoized
	// at creation so hot paths (commit WAL grouping, checkpoint, GC marking)
	// never re-hash the key. Written once by storage before the chain is
	// published; read-only afterwards.
	Shard int

	// gcPending dedups membership in the storage layer's pending-GC list: a
	// chain is enqueued only on a false->true transition. See Store.MarkGC.
	gcPending atomic.Bool

	mu sync.Mutex
	// versions in install order. Committed versions are totally ordered
	// by CommitTS; because commit timestamps are drawn at commit time
	// from a monotonic oracle, helpers scan rather than assume sortedness.
	versions []*Version
	readers  []ReadRec
}

// NewChain creates an empty chain for key k.
func NewChain(k Key) *Chain { return &Chain{Key: k} }

// Lock acquires the chain mutex.
func (c *Chain) Lock() { c.mu.Lock() }

// Unlock releases the chain mutex.
func (c *Chain) Unlock() { c.mu.Unlock() }

// Versions returns the version slice. The chain mutex must be held; the
// slice must not be retained past Unlock.
func (c *Chain) Versions() []*Version { return c.versions }

// Install appends a pending version and returns the resulting chain length,
// so callers can flag multi-version chains for incremental GC after releasing
// the lock. The chain mutex must be held.
func (c *Chain) Install(v *Version) int {
	c.versions = append(c.versions, v)
	return len(c.versions)
}

// TryEnqueueGC flips the pending-GC flag and reports whether this caller won
// the false->true transition (and so must enqueue the chain). Safe without
// the chain mutex.
func (c *Chain) TryEnqueueGC() bool { return c.gcPending.CompareAndSwap(false, true) }

// ClearGCPending resets the pending-GC flag; the incremental collector calls
// it before scanning so any concurrent install re-enqueues the chain.
func (c *Chain) ClearGCPending() { c.gcPending.Store(false) }

// InstallPromise appends a promise placeholder for writer t with TSO
// timestamp ts and returns it. The chain mutex must be held. The promise
// retains the writer pointer, so the writer becomes shared.
func (c *Chain) InstallPromise(t *Txn, ts uint64) *Version {
	t.MarkShared()
	v := &Version{Writer: t, TS: ts, Promise: true, ready: make(chan struct{})}
	c.versions = append(c.versions, v)
	return v
}

// Remove deletes a version (abort path). The chain mutex must be held. If
// the version was an unfulfilled promise its waiters are woken.
func (c *Chain) Remove(v *Version) {
	for i, x := range c.versions {
		if x == v {
			c.versions = append(c.versions[:i], c.versions[i+1:]...)
			break
		}
	}
	if v.Promise && v.ready != nil {
		v.Promise = false
		close(v.ready)
	}
}

// VersionBy returns the version installed by t, if any. The chain mutex must
// be held.
func (c *Chain) VersionBy(t *Txn) *Version {
	for i := len(c.versions) - 1; i >= 0; i-- {
		if c.versions[i].Writer == t {
			return c.versions[i]
		}
	}
	return nil
}

// LatestCommitted returns the committed version with the largest commit
// timestamp, or nil. The chain mutex must be held.
func (c *Chain) LatestCommitted() *Version {
	var best *Version
	var bestTS uint64
	for _, v := range c.versions {
		if v.Committed() {
			if ts := v.CommitTS(); ts >= bestTS {
				best, bestTS = v, ts
			}
		}
	}
	return best
}

// LatestCommittedBefore returns the committed version with the largest
// commit timestamp <= ts, or nil (snapshot read). The chain mutex must be
// held.
func (c *Chain) LatestCommittedBefore(ts uint64) *Version {
	var best *Version
	var bestTS uint64
	for _, v := range c.versions {
		if v.Committed() {
			if cts := v.CommitTS(); cts <= ts && cts >= bestTS {
				best, bestTS = v, cts
			}
		}
	}
	return best
}

// HasNewerCommitted reports whether a committed version exists with commit
// timestamp > ts. The chain mutex must be held.
func (c *Chain) HasNewerCommitted(ts uint64) bool {
	for _, v := range c.versions {
		if v.Committed() && v.CommitTS() > ts {
			return true
		}
	}
	return false
}

// RecordReader registers a read for anti-dependency / RTS bookkeeping.
// Records are pruned only when provably irrelevant to any current or future
// writer: aborted readers, and committed readers whose commit timestamp is
// below the watermark (they cannot be concurrent with any active
// transaction). The chain mutex must be held.
func (c *Chain) RecordReader(r ReadRec, watermark uint64) {
	// The reader's pointer is retained in the chain and inspected by future
	// writers; it must never be recycled while reachable here.
	r.T.MarkShared()
	if len(c.readers) > 32 {
		live := c.readers[:0]
		for _, rr := range c.readers {
			switch rr.T.State() {
			case Aborted:
				continue
			case Committed:
				if rr.T.CommitTS() < watermark {
					continue
				}
			}
			live = append(live, rr)
		}
		c.readers = live
	}
	c.readers = append(c.readers, r)
}

// Readers returns the recent-reader records. The chain mutex must be held.
func (c *Chain) Readers() []ReadRec { return c.readers }

// GC removes committed versions superseded by another committed version whose
// commit timestamp is still below the watermark (the minimum begin timestamp
// of any active transaction). Every active or future reader's snapshot is at
// or above the watermark, so such versions can never be read again. Returns
// the number of versions pruned.
func (c *Chain) GC(watermark uint64) int {
	pruned, _ := c.GCStep(watermark)
	return pruned
}

// GCStep is GC plus the number of versions remaining, letting the incremental
// collector decide whether the chain needs to stay on the pending list
// (remaining > 1 means future watermark advances may prune more).
func (c *Chain) GCStep(watermark uint64) (pruned, remaining int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Find the newest committed version at or below the watermark; every
	// older committed version is unreachable.
	var keepTS uint64
	found := false
	for _, v := range c.versions {
		if v.Committed() {
			if cts := v.CommitTS(); cts <= watermark && cts >= keepTS {
				keepTS, found = cts, true
			}
		}
	}
	if !found {
		return 0, len(c.versions)
	}
	live := c.versions[:0]
	for _, v := range c.versions {
		if v.Committed() && v.CommitTS() < keepTS {
			pruned++
			continue
		}
		live = append(live, v)
	}
	// Release the pruned tail so version values don't leak via the backing
	// array.
	for i := len(live); i < len(c.versions); i++ {
		c.versions[i] = nil
	}
	c.versions = live
	return pruned, len(live)
}

// Len returns the number of versions (committed + pending).
func (c *Chain) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.versions)
}
