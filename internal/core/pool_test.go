package core

import (
	"testing"
	"time"
)

// TestSharedFlagEscapePoints asserts that every operation which lets a *Txn
// escape to a foreign goroutine marks it shared — the reclamation rule that
// makes pooling safe (see the Txn doc comment). A missing mark here means a
// recycled transaction could be observed by a late reader.
func TestSharedFlagEscapePoints(t *testing.T) {
	t.Run("AddWrite", func(t *testing.T) {
		w := NewTxn(1, "w", 0, 1)
		ch := NewChain(K("t", "r"))
		v := &Version{Writer: w}
		ch.Lock()
		ch.Install(v)
		ch.Unlock()
		w.AddWrite(ch, v)
		if !w.Shared() {
			t.Fatal("AddWrite must mark the writer shared (versions retain Writer)")
		}
	})
	t.Run("InstallPromise", func(t *testing.T) {
		w := NewTxn(2, "w", 0, 1)
		ch := NewChain(K("t", "r"))
		ch.Lock()
		ch.InstallPromise(w, 5)
		ch.Unlock()
		if !w.Shared() {
			t.Fatal("InstallPromise must mark the writer shared")
		}
	})
	t.Run("RecordReader", func(t *testing.T) {
		r := NewTxn(3, "r", 0, 1)
		ch := NewChain(K("t", "r"))
		ch.Lock()
		ch.RecordReader(ReadRec{T: r, SnapshotTS: 1}, 0)
		ch.Unlock()
		if !r.Shared() {
			t.Fatal("RecordReader must mark the reader shared")
		}
	})
	t.Run("AddDep target", func(t *testing.T) {
		a := NewTxn(4, "a", 0, 1)
		b := NewTxn(5, "b", 0, 1)
		if err := a.AddDep(b, false); err != nil {
			t.Fatal(err)
		}
		if !b.Shared() {
			t.Fatal("AddDep must mark the target shared (its pointer enters a's deps map)")
		}
		if a.Shared() {
			t.Fatal("AddDep must not mark the source shared")
		}
	})
}

// TestPutTxnEligibility asserts PutTxn recycles only finished, never-escaped
// transactions.
func TestPutTxnEligibility(t *testing.T) {
	active := NewTxn(10, "t", 0, 1)
	if PutTxn(active) {
		t.Fatal("PutTxn must refuse an Active transaction")
	}

	shared := NewTxn(11, "t", 0, 1)
	shared.MarkShared()
	shared.MarkCommitted(2)
	if PutTxn(shared) {
		t.Fatal("PutTxn must refuse a shared transaction")
	}

	clean := NewTxn(12, "t", 0, 1)
	clean.MarkCommitted(3)
	if !PutTxn(clean) {
		t.Fatal("PutTxn must recycle a finished, unshared transaction")
	}
}

// TestGetTxnReset asserts a recycled transaction comes back fully reset:
// Active, no commit timestamp, no deps/writes, empty Path/Slots, and a Done
// channel that blocks again.
func TestGetTxnReset(t *testing.T) {
	old := GetTxn(20, "old", 7, 9)
	old.Epoch = 3
	old.Path = append(old.Path, &Node{}, &Node{})
	old.Slots = append(old.Slots, "slot0", "slot1")
	// A waiter allocated the done channel; commit closes it.
	done := old.Done()
	old.MarkCommitted(10)
	<-done
	if !PutTxn(old) {
		t.Fatal("expected recycle")
	}

	// sync.Pool gives no identity guarantee; whatever comes back must obey
	// the reset contract.
	fresh := GetTxn(21, "fresh", 1, 2)
	if fresh.State() != Active || fresh.CommitTS() != 0 {
		t.Fatalf("fresh txn not Active/uncommitted: %v ts=%d", fresh.State(), fresh.CommitTS())
	}
	if fresh.Shared() {
		t.Fatal("fresh txn must not be shared")
	}
	if len(fresh.Path) != 0 || len(fresh.Slots) != 0 {
		t.Fatalf("fresh txn has stale Path/Slots: %d/%d", len(fresh.Path), len(fresh.Slots))
	}
	if fresh.HasDeps() || fresh.HasWrites() {
		t.Fatal("fresh txn has stale deps/writes")
	}
	if fresh.Epoch != 0 {
		t.Fatalf("fresh txn has stale Epoch %d", fresh.Epoch)
	}
	select {
	case <-fresh.Done():
		t.Fatal("fresh txn's Done channel is already closed")
	default:
	}
}

// TestDoneLazyAllocation asserts the Done channel contract across the lazy
// allocation: waiters registered before the finish are woken, and Done after
// the finish returns an already-closed channel without allocating per call.
func TestDoneLazyAllocation(t *testing.T) {
	w := NewTxn(30, "t", 0, 1)
	done := w.Done()
	go func() {
		time.Sleep(5 * time.Millisecond)
		w.MarkAborted()
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter not woken by MarkAborted")
	}
	if c := w.Done(); c == nil {
		t.Fatal("Done after finish must return a closed channel, not nil")
	} else {
		select {
		case <-c:
		default:
			t.Fatal("Done after finish must be closed")
		}
	}

	// Never-waited-on transactions finish without ever allocating a channel.
	q := NewTxn(31, "t", 0, 1)
	q.MarkCommitted(2)
	select {
	case <-q.Done():
	default:
		t.Fatal("Done on a finished txn must be closed")
	}
}
