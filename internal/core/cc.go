package core

import "time"

// CC is the interface every concurrency control mechanism implements to
// participate in Tebaldi's CC tree. The engine drives each transaction
// through four phases (§4.3.1) — start, execution, validation, commit — each
// with a top-down pass (parents constrain children, by blocking or aborting)
// and a bottom-up pass (children inform parents; for reads, ancestors amend
// the read-version proposal).
//
// Concurrency contract:
//
//   - Begin / PreRead / PreWrite / Validate may block (locks, pipeline
//     waits); they run without any chain mutex held.
//   - AmendRead / PostWrite run with the target chain's mutex held and must
//     not block or acquire other chain mutexes.
//   - Commit / Abort must not fail; Commit for all path nodes is invoked
//     leaf->root without interruption after the engine marks the
//     transaction committed.
//
// Every method receives the transaction; per-node protocol state lives in
// t.Slots[node.Depth].
type CC interface {
	// Name identifies the mechanism (for tree rendering and stats).
	Name() string

	// Begin is the start phase: allocate metadata, assign timestamps or
	// batches, install promises.
	Begin(t *Txn) error

	// PreRead is the top-down execution pass for a read: acquire locks,
	// enforce pipeline ordering, or abort.
	PreRead(t *Txn, k Key) error

	// PreWrite is the top-down execution pass for a write.
	PreWrite(t *Txn, k Key) error

	// AmendRead is the bottom-up execution pass for a read: the leaf's CC
	// is called first with proposal == nil and proposes a version; each
	// ancestor accepts the proposal iff its writer is delegated together
	// with the reader (the conflict is a descendant's responsibility) and
	// otherwise substitutes a version chosen by its own rule. Returning
	// (nil, nil) means "key absent at my snapshot".
	AmendRead(t *Txn, k Key, ch *Chain, proposal *Version) (*Version, error)

	// PostWrite is the bottom-up execution pass after installing version
	// v: record ordering metadata, run write-conflict checks (SSI
	// first-updater-wins, TSO read-timestamp rule).
	PostWrite(t *Txn, k Key, ch *Chain, v *Version) error

	// Validate is the validation phase (top-down): decide commitability,
	// possibly waiting for ordering information.
	Validate(t *Txn) error

	// Commit finalizes a committed transaction at this node (release
	// locks, retire batch membership). Called leaf->root.
	Commit(t *Txn)

	// Abort undoes this node's protocol state for an aborted transaction.
	// Called leaf->root; must be safe even for partially-begun
	// transactions.
	Abort(t *Txn)
}

// Spec is the static description of a transaction type, registered with the
// engine. CC mechanisms with preprocessing (Runtime Pipelining's static
// analysis, TSO's promises, autoconf's read-only classification) consume it.
type Spec struct {
	// Name is the transaction type.
	Name string
	// ReadOnly marks types with no writes (grouped under an empty CC).
	ReadOnly bool
	// Tables lists the tables in the order the transaction accesses them
	// (repeats allowed). Runtime Pipelining derives its table-order graph
	// and pipeline steps from this.
	Tables []string
	// WriteTables is the subset of Tables the transaction may write.
	WriteTables []string
	// InstanceDomain, when > 0, declares that conflicts of this type
	// partition cleanly by Txn.Part over this many instances (e.g. SEATS
	// flights) — enabling the partition-by-instance optimization.
	InstanceDomain int
	// Weight is the type's share in the workload mix (informational; used
	// by autoconf candidate ordering).
	Weight float64
}

// BlockEvent records one data-contention blocking interval: Blocked waited
// for Blocker from Start to End. The profiler aggregates these into
// conflict-edge scores with nested-waiting attribution (§5.3.2).
type BlockEvent struct {
	BlockedID   uint64
	BlockedType string
	BlockerID   uint64
	BlockerType string
	Start       time.Time
	End         time.Time
}

// BlockReporter receives blocking events from lock managers, pipeline waits
// and dependency waits. Implementations must be cheap and non-blocking.
type BlockReporter interface {
	ReportBlock(BlockEvent)
}

// Oracle hands out globally monotonic timestamps. One oracle serves begin
// timestamps, SSI/TSO start timestamps and commit timestamps, so all
// timestamp comparisons in the system are in a single domain.
type Oracle interface {
	// Next returns the next timestamp (strictly increasing).
	Next() uint64
	// Last returns the most recently issued timestamp.
	Last() uint64
}

// Env bundles the engine facilities a CC mechanism may use. One Env is
// shared by all nodes of a tree build.
type Env struct {
	Oracle   Oracle
	Reporter BlockReporter // may be nil
	// LockTimeout bounds lock and pipeline waits; expiry aborts the waiter
	// (deadlock resolution by timeout, §4.4.1).
	LockTimeout time.Duration
	// Specs maps transaction type -> static description.
	Specs map[string]*Spec
	// Watermark returns the minimum begin timestamp of any active
	// transaction (may be nil). SSI uses it to prune reader records
	// safely: a reader that committed below the watermark cannot be
	// concurrent with any current or future writer.
	Watermark func() uint64
}

// Report emits a blocking event if a reporter is configured and the wait was
// long enough to matter: sub-100µs waits are scheduling noise, and dropping
// them keeps the event volume (and hence profiling overhead, Figure 5.17)
// low under saturation.
func (e *Env) Report(blocked, blocker *Txn, start, end time.Time) {
	if e.Reporter == nil || blocker == nil || end.Sub(start) < 100*time.Microsecond {
		return
	}
	e.Reporter.ReportBlock(BlockEvent{
		BlockedID:   blocked.ID,
		BlockedType: blocked.Type,
		BlockerID:   blocker.ID,
		BlockerType: blocker.Type,
		Start:       start,
		End:         end,
	})
}
