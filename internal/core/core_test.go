package core

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestKeyString(t *testing.T) {
	if got := K("t", "r").String(); got != "t/r" {
		t.Fatalf("got %q", got)
	}
	if got := KeyOf("district", 3, 7); got != (Key{Table: "district", Row: "3.7"}) {
		t.Fatalf("got %+v", got)
	}
	if got := KeyOf("warehouse", 5); got.Row != "5" {
		t.Fatalf("got %q", got.Row)
	}
}

func TestTxnLifecycle(t *testing.T) {
	tx := NewTxn(1, "a", 0, 10)
	if tx.State() != Active {
		t.Fatal("new txn not active")
	}
	if !tx.MarkCommitted(42) {
		t.Fatal("commit failed")
	}
	if tx.State() != Committed || tx.CommitTS() != 42 {
		t.Fatalf("state=%v ts=%d", tx.State(), tx.CommitTS())
	}
	if tx.MarkCommitted(43) || tx.MarkAborted() {
		t.Fatal("double finish allowed")
	}
	select {
	case <-tx.Done():
	default:
		t.Fatal("done channel not closed")
	}
}

func TestTxnAbortOnce(t *testing.T) {
	tx := NewTxn(1, "a", 0, 10)
	if !tx.MarkAborted() {
		t.Fatal("abort failed")
	}
	if tx.MarkAborted() || tx.MarkCommitted(1) {
		t.Fatal("double finish allowed")
	}
	if tx.State() != Aborted {
		t.Fatal("not aborted")
	}
}

func TestAddDepSkipsFinished(t *testing.T) {
	a := NewTxn(1, "a", 0, 1)
	b := NewTxn(2, "b", 0, 2)
	b.MarkCommitted(5)
	if err := a.AddDep(b, true); err != nil {
		t.Fatal(err)
	}
	if len(a.Deps()) != 0 {
		t.Fatal("committed dep recorded")
	}
	c := NewTxn(3, "c", 0, 3)
	c.MarkAborted()
	if err := a.AddDep(c, false); err != nil {
		t.Fatal(err)
	}
	if err := a.AddDep(c, true); !errors.Is(err, ErrCascade) {
		t.Fatalf("want cascade, got %v", err)
	}
}

func TestAddDepUpgradesToRead(t *testing.T) {
	a := NewTxn(1, "a", 0, 1)
	b := NewTxn(2, "b", 0, 2)
	a.AddDep(b, false)
	a.AddDep(b, true)
	deps := a.Deps()
	if len(deps) != 1 || !deps[0].Read {
		t.Fatalf("deps=%+v", deps)
	}
}

func TestWaitDepsCascade(t *testing.T) {
	a := NewTxn(1, "a", 0, 1)
	b := NewTxn(2, "b", 0, 2)
	a.AddDep(b, true)
	go func() {
		time.Sleep(10 * time.Millisecond)
		b.MarkAborted()
	}()
	if err := a.WaitDeps(time.Second); !errors.Is(err, ErrCascade) {
		t.Fatalf("want cascade, got %v", err)
	}
}

func TestWaitDepsTimeout(t *testing.T) {
	a := NewTxn(1, "a", 0, 1)
	b := NewTxn(2, "b", 0, 2)
	a.AddDep(b, false)
	if err := a.WaitDeps(20 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
}

func TestWaitDepsOrderDepAbortIgnored(t *testing.T) {
	a := NewTxn(1, "a", 0, 1)
	b := NewTxn(2, "b", 0, 2)
	a.AddDep(b, false)
	b.MarkAborted()
	if err := a.WaitDeps(time.Second); err != nil {
		t.Fatalf("order dep abort should be ignored: %v", err)
	}
}

func committedVersion(id uint64, ts uint64, val byte) *Version {
	w := NewTxn(id, "w", 0, 0)
	w.MarkCommitted(ts)
	return &Version{Writer: w, Value: []byte{val}}
}

func TestChainLatestCommitted(t *testing.T) {
	c := NewChain(K("t", "x"))
	c.Lock()
	defer c.Unlock()
	if c.LatestCommitted() != nil {
		t.Fatal("empty chain")
	}
	c.Install(committedVersion(1, 5, 'a'))
	c.Install(committedVersion(2, 9, 'b'))
	// Install order != commit order:
	c.Install(committedVersion(3, 7, 'c'))
	pending := &Version{Writer: NewTxn(4, "w", 0, 0), Value: []byte{'p'}}
	c.Install(pending)
	if got := c.LatestCommitted(); got.Value[0] != 'b' {
		t.Fatalf("latest = %c", got.Value[0])
	}
	if got := c.LatestCommittedBefore(7); got.Value[0] != 'c' {
		t.Fatalf("snapshot(7) = %c", got.Value[0])
	}
	if got := c.LatestCommittedBefore(4); got != nil {
		t.Fatalf("snapshot(4) = %v", got)
	}
	if !c.HasNewerCommitted(8) || c.HasNewerCommitted(9) {
		t.Fatal("HasNewerCommitted wrong")
	}
}

func TestChainRemoveAndVersionBy(t *testing.T) {
	c := NewChain(K("t", "x"))
	c.Lock()
	defer c.Unlock()
	w := NewTxn(1, "w", 0, 0)
	v := &Version{Writer: w, Value: []byte{1}}
	c.Install(v)
	if c.VersionBy(w) != v {
		t.Fatal("VersionBy missed")
	}
	c.Remove(v)
	if c.VersionBy(w) != nil || len(c.Versions()) != 0 {
		t.Fatal("remove failed")
	}
}

func TestChainPromise(t *testing.T) {
	c := NewChain(K("t", "x"))
	w := NewTxn(1, "w", 0, 0)
	c.Lock()
	v := c.InstallPromise(w, 5)
	c.Unlock()
	if !v.Promise || v.TS != 5 {
		t.Fatal("bad promise")
	}
	select {
	case <-v.Ready():
		t.Fatal("ready too early")
	default:
	}
	c.Lock()
	v.Fulfill([]byte{9})
	c.Unlock()
	select {
	case <-v.Ready():
	default:
		t.Fatal("ready not closed")
	}
	if v.Promise || v.Value[0] != 9 {
		t.Fatal("fulfill failed")
	}
}

func TestChainRemoveUnfulfilledPromiseWakesWaiters(t *testing.T) {
	c := NewChain(K("t", "x"))
	w := NewTxn(1, "w", 0, 0)
	c.Lock()
	v := c.InstallPromise(w, 5)
	c.Unlock()
	c.Lock()
	c.Remove(v)
	c.Unlock()
	select {
	case <-v.Ready():
	case <-time.After(time.Second):
		t.Fatal("waiters not woken on promise removal")
	}
}

func TestChainGC(t *testing.T) {
	c := NewChain(K("t", "x"))
	c.Lock()
	for i := uint64(1); i <= 10; i++ {
		c.Install(committedVersion(i, i*10, byte(i)))
	}
	c.Unlock()
	// Watermark 55: newest committed <= 55 has ts 50; everything older
	// is reclaimable.
	pruned := c.GC(55)
	if pruned != 4 {
		t.Fatalf("pruned %d, want 4", pruned)
	}
	c.Lock()
	defer c.Unlock()
	if got := c.LatestCommittedBefore(55); got.CommitTS() != 50 {
		t.Fatalf("survivor %d", got.CommitTS())
	}
	if got := c.LatestCommitted(); got.CommitTS() != 100 {
		t.Fatalf("latest %d", got.CommitTS())
	}
}

// Property: GC never removes the version a snapshot at or above the
// watermark would read.
func TestChainGCPreservesSnapshotsProperty(t *testing.T) {
	f := func(tss []uint16, watermark16, snap16 uint16) bool {
		if len(tss) == 0 {
			return true
		}
		c := NewChain(K("t", "x"))
		c.Lock()
		for i, ts := range tss {
			if ts == 0 {
				ts = 1
			}
			c.Install(committedVersion(uint64(i+1), uint64(ts), byte(i)))
		}
		watermark := uint64(watermark16)
		snap := uint64(snap16)
		if snap < watermark {
			snap = watermark // snapshots are at or above the watermark
		}
		before := c.LatestCommittedBefore(snap)
		c.Unlock()
		c.GC(watermark)
		c.Lock()
		after := c.LatestCommittedBefore(snap)
		c.Unlock()
		if before == nil {
			return after == nil
		}
		return after != nil && after.CommitTS() == before.CommitTS()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func buildTestTree() (*Node, *Node, *Node, *Node) {
	root := &Node{ID: 0, Depth: 0}
	left := &Node{ID: 1, Depth: 1, Parent: root, Types: []string{"a", "b"}}
	right := &Node{ID: 2, Depth: 1, Parent: root, Types: []string{"c"}}
	root.Children = []*Node{left, right}
	root.FinalizeRouting()
	return root, left, right, nil
}

func TestNodeRoutingAndPaths(t *testing.T) {
	root, left, right, _ := buildTestTree()
	ta := NewTxn(1, "a", 0, 1)
	tc := NewTxn(2, "c", 0, 2)
	ta.Path = root.PathFor(ta)
	tc.Path = root.PathFor(tc)
	if len(ta.Path) != 2 || ta.Path[1] != left {
		t.Fatalf("a path %v", ta.Path)
	}
	if tc.Path[1] != right {
		t.Fatalf("c path %v", tc.Path)
	}
	if !root.InSubtree(ta) || !left.InSubtree(ta) || right.InSubtree(ta) {
		t.Fatal("InSubtree wrong")
	}
	tb := NewTxn(3, "b", 0, 3)
	tb.Path = root.PathFor(tb)
	if !root.SameChild(ta, tb) {
		t.Fatal("a,b should share the left child")
	}
	if root.SameChild(ta, tc) {
		t.Fatal("a,c must not share a child")
	}
	if left.SameChild(ta, tb) {
		t.Fatal("leaf SameChild must be false")
	}
}

func TestNodeByInstanceRouting(t *testing.T) {
	root := &Node{ID: 0, Depth: 0, ByInstance: true}
	for i := 0; i < 4; i++ {
		root.Children = append(root.Children,
			&Node{ID: i + 1, Depth: 1, Parent: root, Types: []string{"t"}})
	}
	root.FinalizeRouting()
	for part := uint64(0); part < 8; part++ {
		tx := NewTxn(part, "t", part, 1)
		tx.Path = root.PathFor(tx)
		want := root.Children[part%4]
		if tx.Path[1] != want {
			t.Fatalf("part %d routed to %d", part, tx.Path[1].ID)
		}
	}
}

func TestNodeString(t *testing.T) {
	root, _, _, _ := buildTestTree()
	root.CC = fakeNamed("SSI")
	root.Children[0].CC = fakeNamed("RP")
	root.Children[1].CC = fakeNamed("2PL")
	want := "SSI[ RP{a,b} 2PL{c} ]"
	if got := root.String(); got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

type fakeNamed string

func (f fakeNamed) Name() string                                { return string(f) }
func (f fakeNamed) Begin(*Txn) error                            { return nil }
func (f fakeNamed) PreRead(*Txn, Key) error                     { return nil }
func (f fakeNamed) PreWrite(*Txn, Key) error                    { return nil }
func (f fakeNamed) Validate(*Txn) error                         { return nil }
func (f fakeNamed) Commit(*Txn)                                 {}
func (f fakeNamed) Abort(*Txn)                                  {}
func (f fakeNamed) PostWrite(*Txn, Key, *Chain, *Version) error { return nil }
func (f fakeNamed) AmendRead(t *Txn, k Key, c *Chain, p *Version) (*Version, error) {
	return p, nil
}

func TestIsRetryable(t *testing.T) {
	for _, err := range []error{ErrConflict, ErrTimeout, ErrCascade, ErrPivot, ErrReconfiguring} {
		if !IsRetryable(err) {
			t.Fatalf("%v should be retryable", err)
		}
	}
	if IsRetryable(ErrUserAbort) || IsRetryable(fmt.Errorf("other")) {
		t.Fatal("non-retryable misclassified")
	}
}

func TestRecordReaderPrunes(t *testing.T) {
	c := NewChain(K("t", "x"))
	c.Lock()
	defer c.Unlock()
	for i := 0; i < 100; i++ {
		r := NewTxn(uint64(i), "r", 0, 1)
		switch i % 3 {
		case 0:
			r.MarkCommitted(uint64(i + 1)) // below watermark: prunable
		case 1:
			r.MarkAborted() // always prunable
		}
		c.RecordReader(ReadRec{T: r, SnapshotTS: 1}, 1000)
	}
	if len(c.Readers()) >= 100 {
		t.Fatalf("readers not pruned: %d", len(c.Readers()))
	}
	// Active readers and committed readers above the watermark survive.
	c2 := NewChain(K("t", "y"))
	//lint:allow lockorder -- single-goroutine test setup holding two chains; no concurrent acquirer exists to deadlock with
	c2.Lock()
	defer c2.Unlock()
	for i := 0; i < 100; i++ {
		r := NewTxn(uint64(i), "r", 0, 1)
		if i%2 == 0 {
			r.MarkCommitted(uint64(2000 + i)) // above watermark: kept
		}
		c2.RecordReader(ReadRec{T: r, SnapshotTS: 1}, 1000)
	}
	if len(c2.Readers()) != 100 {
		t.Fatalf("live readers were pruned: %d", len(c2.Readers()))
	}
}
