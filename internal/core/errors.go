package core

import (
	"errors"
	"fmt"
)

// ErrAborted is the root of every transaction-abort error. All abort reasons
// wrap it, so callers can test errors.Is(err, core.ErrAborted).
var ErrAborted = errors.New("transaction aborted")

// Abort reasons. Each wraps ErrAborted; all are retryable by re-running the
// transaction (Tebaldi's client layer retries automatically).
var (
	// ErrConflict is a generic CC-level conflict abort (e.g. SSI
	// first-updater-wins, TSO read-timestamp violation).
	ErrConflict = fmt.Errorf("%w: data conflict", ErrAborted)

	// ErrTimeout indicates a lock or dependency wait exceeded its deadline.
	// Tebaldi resolves deadlocks by timing transactions out (§4.4.1).
	ErrTimeout = fmt.Errorf("%w: wait timed out (possible deadlock)", ErrAborted)

	// ErrCascade indicates the transaction observed an uncommitted value
	// whose writer later aborted, so it must abort too (cascading abort).
	ErrCascade = fmt.Errorf("%w: cascading abort (read-from writer aborted)", ErrAborted)

	// ErrPivot indicates SSI detected a dangerous structure (pivot batch)
	// and chose this transaction as the victim.
	ErrPivot = fmt.Errorf("%w: SSI pivot (dangerous structure)", ErrAborted)

	// ErrReconfiguring indicates the transaction was admitted or force-
	// aborted while the MCC configuration was being switched.
	ErrReconfiguring = fmt.Errorf("%w: concurrency control reconfiguration in progress", ErrAborted)

	// ErrUserAbort is returned when the application's transaction function
	// requested an abort; it is NOT retried.
	ErrUserAbort = errors.New("user abort")
)

// IsRetryable reports whether err is a system-initiated abort that the client
// layer should retry.
func IsRetryable(err error) bool {
	return errors.Is(err, ErrAborted) && !errors.Is(err, ErrUserAbort)
}

// WaitFor is returned from CC.AmendRead when the chosen version is a promise
// whose value has not been written yet (TSO promises, §4.4.4). The engine
// releases the chain mutex, waits for V.Ready(), and retries the read.
type WaitFor struct{ V *Version }

// Error implements error.
func (w *WaitFor) Error() string { return "read must wait for a promised write" }
