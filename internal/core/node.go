package core

import (
	"fmt"
	"strings"
)

// Node is one concurrency control mechanism in Tebaldi's CC tree (§4.1).
// A node is responsible for regulating data conflicts among the transactions
// assigned to its subtree; a non-leaf node delegates conflicts wholly
// contained in one child's subtree to that child and only regulates conflicts
// *across* children. A leaf node regulates all conflicts among its assigned
// transaction types.
type Node struct {
	// ID is unique within one tree build.
	ID int
	// Depth is the distance from the root (root = 0); it doubles as the
	// index of this node's protocol slot in Txn.Slots.
	Depth int
	// CC is the mechanism running at this node.
	CC CC
	// Parent, Children form the tree.
	Parent   *Node
	Children []*Node
	// Types lists the transaction types assigned directly to this node
	// (normally only on leaves).
	Types []string
	// ByInstance makes this node route transactions among its children by
	// instance partition (Txn.Part % len(Children)) rather than by type —
	// the partition-by-instance optimization of §5.4.2 (e.g. one TSO
	// instance per SEATS flight).
	ByInstance bool

	typeToChild map[string]*Node
}

// FinalizeRouting precomputes type->child maps for the subtree. Must be
// called once after construction.
func (n *Node) FinalizeRouting() {
	n.typeToChild = make(map[string]*Node)
	for _, c := range n.Children {
		c.FinalizeRouting()
		for typ := range c.typeToChild {
			n.typeToChild[typ] = c
		}
		for _, typ := range c.Types {
			n.typeToChild[typ] = c
		}
	}
	for _, typ := range n.Types {
		// Types assigned directly to this node terminate routing here.
		delete(n.typeToChild, typ)
	}
}

// Route returns the child responsible for transaction t, or nil if routing
// terminates at this node (t's leaf group is here).
func (n *Node) Route(t *Txn) *Node {
	if len(n.Children) == 0 {
		return nil
	}
	if n.ByInstance {
		return n.Children[int(t.Part%uint64(len(n.Children)))]
	}
	return n.typeToChild[t.Type]
}

// PathFor computes the root..leaf node path for transaction t starting at n
// (which must be the root).
func (n *Node) PathFor(t *Txn) []*Node {
	return n.AppendPath(t, make([]*Node, 0, 4))
}

// AppendPath appends t's root..leaf path to path, reusing its backing array
// (the engine threads a pooled transaction's previous Path through here so
// steady-state begins allocate nothing).
func (n *Node) AppendPath(t *Txn, path []*Node) []*Node {
	cur := n
	for cur != nil {
		path = append(path, cur)
		cur = cur.Route(t)
	}
	return path
}

// ChildFor returns the child of n on t's path, or nil if t's path terminates
// at or above n.
func (n *Node) ChildFor(t *Txn) *Node {
	if len(t.Path) > n.Depth+1 && t.Path[n.Depth] == n {
		return t.Path[n.Depth+1]
	}
	return nil
}

// InSubtree reports whether t's path passes through n.
func (n *Node) InSubtree(t *Txn) bool {
	return len(t.Path) > n.Depth && t.Path[n.Depth] == n
}

// SameChild reports whether transactions a and b are delegated to the same
// child of n — in which case conflicts between them are the child's
// responsibility and n must not regulate them (§4.1). For a leaf node this
// is always false: the leaf regulates all conflicts among its transactions.
func (n *Node) SameChild(a, b *Txn) bool {
	ca, cb := n.ChildFor(a), n.ChildFor(b)
	return ca != nil && ca == cb
}

// Walk visits n and its descendants pre-order.
func (n *Node) Walk(f func(*Node)) {
	f(n)
	for _, c := range n.Children {
		c.Walk(f)
	}
}

// SubtreeTypes returns every transaction type assigned in n's subtree.
func (n *Node) SubtreeTypes() []string {
	var out []string
	n.Walk(func(m *Node) { out = append(out, m.Types...) })
	return out
}

// String renders the subtree as e.g. "SSI[ NoCC{OS,SL} 2PL[ RP{NO,PAY} RP{DEL} ] ]".
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *Node) render(b *strings.Builder) {
	name := "?"
	if n.CC != nil {
		name = n.CC.Name()
	}
	b.WriteString(name)
	if len(n.Types) > 0 {
		fmt.Fprintf(b, "{%s}", strings.Join(n.Types, ","))
	}
	if len(n.Children) > 0 {
		if n.ByInstance {
			// Cloned children are identical; render one with a count.
			fmt.Fprintf(b, "[%dx ", len(n.Children))
			n.Children[0].render(b)
			b.WriteString("]")
			return
		}
		b.WriteString("[ ")
		for i, c := range n.Children {
			if i > 0 {
				b.WriteString(" ")
			}
			c.render(b)
		}
		b.WriteString(" ]")
	}
}
