// Package core defines the foundational types of the Tebaldi transactional
// key-value store: keys, transactions, multiversioned value chains, the
// concurrency-control (CC) tree, and the CC mechanism interface that every
// federated protocol implements.
//
// The package deliberately contains no policy: concrete CC mechanisms live in
// internal/cc/*, and the four-phase / two-pass execution protocol that drives
// them lives in internal/engine.
package core

import "strconv"

// Key identifies a row in a table. Tebaldi is a transactional key-value store
// with a thin table veneer: the table name participates in Runtime
// Pipelining's static analysis (tables are the unit of step ordering), while
// (Table, Row) together address one multiversioned value chain.
type Key struct {
	Table string
	Row   string
}

// String renders the key as "table/row".
func (k Key) String() string { return k.Table + "/" + k.Row }

// K is a convenience constructor for Key.
func K(table, row string) Key { return Key{Table: table, Row: row} }

// KeyOf builds a row key from integer components, the common case for the
// TPC-C and SEATS workloads (e.g. KeyOf("district", 3, 7) -> "district/3.7").
func KeyOf(table string, parts ...int) Key {
	var buf [24]byte
	b := buf[:0]
	for i, p := range parts {
		if i > 0 {
			b = append(b, '.')
		}
		b = strconv.AppendInt(b, int64(p), 10)
	}
	return Key{Table: table, Row: string(b)}
}

// Hash32 is an inlined, allocation-free FNV-1a over "table/row". It produces
// the same value as hashing k.String() with hash/fnv, so shard placement is
// stable across the refactor; storage and lockmgr both shard by this hash.
func (k Key) Hash32() uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(k.Table); i++ {
		h ^= uint32(k.Table[i])
		h *= prime32
	}
	h ^= uint32('/')
	h *= prime32
	for i := 0; i < len(k.Row); i++ {
		h ^= uint32(k.Row[i])
		h *= prime32
	}
	return h
}
