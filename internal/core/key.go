// Package core defines the foundational types of the Tebaldi transactional
// key-value store: keys, transactions, multiversioned value chains, the
// concurrency-control (CC) tree, and the CC mechanism interface that every
// federated protocol implements.
//
// The package deliberately contains no policy: concrete CC mechanisms live in
// internal/cc/*, and the four-phase / two-pass execution protocol that drives
// them lives in internal/engine.
package core

import "fmt"

// Key identifies a row in a table. Tebaldi is a transactional key-value store
// with a thin table veneer: the table name participates in Runtime
// Pipelining's static analysis (tables are the unit of step ordering), while
// (Table, Row) together address one multiversioned value chain.
type Key struct {
	Table string
	Row   string
}

// String renders the key as "table/row".
func (k Key) String() string { return k.Table + "/" + k.Row }

// K is a convenience constructor for Key.
func K(table, row string) Key { return Key{Table: table, Row: row} }

// KeyOf builds a row key from integer components, the common case for the
// TPC-C and SEATS workloads (e.g. KeyOf("district", 3, 7) -> "district/3.7").
func KeyOf(table string, parts ...int) Key {
	row := ""
	for i, p := range parts {
		if i > 0 {
			row += "."
		}
		row += fmt.Sprint(p)
	}
	return Key{Table: table, Row: row}
}
