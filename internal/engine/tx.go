package engine

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/wal"
)

// Tx is a handle on one executing transaction. All methods must be called
// from a single goroutine (transactions are client-driven, §4.5.1). The
// handle stays on the owning goroutine, so storing the transaction pointer
// into it is ownership transfer, not publication.
//
// tebaldi:txnowner
type Tx struct {
	e *Engine
	t *core.Txn
	// id is a stable copy of the transaction id: the underlying Txn may be
	// recycled through the pool once the transaction finishes.
	id       uint64
	finished bool
}

// ID returns the transaction id.
func (tx *Tx) ID() uint64 { return tx.id }

// Txn exposes the underlying transaction (tests, tooling). The pointer is
// valid only until the transaction finishes: exposing it pins the Txn out of
// the recycling pool, and after commit/abort it must not be dereferenced.
func (tx *Tx) Txn() *core.Txn {
	if !tx.finished {
		tx.t.MarkShared()
	}
	return tx.t
}

func (tx *Tx) check() error {
	if tx.finished {
		return fmt.Errorf("engine: transaction %d already finished", tx.id)
	}
	if tx.t.State() == core.Aborted {
		// Force-aborted (reconfiguration drain): clean up on the
		// owner goroutine.
		return tx.abortWith(core.ErrReconfiguring)
	}
	return nil
}

// Read returns the value of k as selected by the CC tree (nil when the key
// is absent at the transaction's snapshot). The returned slice must not be
// modified.
//
// The no-conflict path takes the chain mutex exactly once: the
// read-your-own-writes pre-check is skipped entirely until the transaction
// has installed a version somewhere (an owner-goroutine check, no locking),
// and the wait deadline is computed only if a wait actually occurs.
func (tx *Tx) Read(k core.Key) ([]byte, error) {
	if err := tx.check(); err != nil {
		return nil, err
	}
	t := tx.t
	tx.e.netDelay()
	ch := tx.e.store.Chain(k)

	// Read-your-own-writes fast path. Only transactions that have written
	// can hit it; promises are excluded here exactly as before (a promise
	// version is fulfilled through Write, not read back).
	if t.HasWrites() {
		ch.Lock()
		if v := ch.VersionBy(t); v != nil && !v.Promise {
			val := v.Value
			ch.Unlock()
			return val, nil
		}
		ch.Unlock()
	}

	// Top-down pass: every CC on the path may block or abort.
	if len(t.Path) == 1 {
		// Single-leaf (depth-1) tree: no amend chain, no proposal
		// threading — one CC, one lock acquisition.
		if err := t.Path[0].CC.PreRead(t, k); err != nil {
			return nil, tx.abortWith(err)
		}
		return tx.readLeaf(t.Path[0], k, ch)
	}
	for _, n := range t.Path {
		if err := n.CC.PreRead(t, k); err != nil {
			return nil, tx.abortWith(err)
		}
	}

	// Bottom-up pass: the leaf proposes, ancestors amend.
	var deadline time.Time
	for {
		ch.Lock()
		var proposal *core.Version
		var waitFor *core.WaitFor
		var err error
		for i := len(t.Path) - 1; i >= 0; i-- {
			proposal, err = t.Path[i].CC.AmendRead(t, k, ch, proposal)
			if err != nil {
				if w, ok := err.(*core.WaitFor); ok {
					waitFor = w
					break
				}
				ch.Unlock()
				return nil, tx.abortWith(err)
			}
		}
		if waitFor == nil {
			val, ferr := finishRead(t, proposal)
			ch.Unlock()
			if ferr != nil {
				return nil, tx.abortWith(ferr)
			}
			return val, nil
		}
		// The version is not readable yet: either a promised write
		// whose value has not arrived (§4.4.4) or a committing writer
		// whose outcome the snapshot depends on. Wait and retry.
		v := waitFor.V
		ch.Unlock()
		if err := tx.waitVersion(v, &deadline); err != nil {
			return nil, err
		}
	}
}

// readLeaf is Read's bottom-up pass specialized for depth-1 trees.
func (tx *Tx) readLeaf(n *core.Node, k core.Key, ch *core.Chain) ([]byte, error) {
	t := tx.t
	var deadline time.Time
	for {
		ch.Lock()
		proposal, err := n.CC.AmendRead(t, k, ch, nil)
		if err == nil {
			val, ferr := finishRead(t, proposal)
			ch.Unlock()
			if ferr != nil {
				return nil, tx.abortWith(ferr)
			}
			return val, nil
		}
		w, ok := err.(*core.WaitFor)
		if !ok {
			ch.Unlock()
			return nil, tx.abortWith(err)
		}
		v := w.V
		ch.Unlock()
		if err := tx.waitVersion(v, &deadline); err != nil {
			return nil, err
		}
	}
}

// finishRead extracts the value from an accepted proposal and records the
// cascading read-from dependency if the version is still pending. Called
// with the chain lock held and leaves it held; the caller unlocks and turns
// a non-nil error into an abort.
func finishRead(t *core.Txn, proposal *core.Version) ([]byte, error) {
	if proposal == nil {
		return nil, nil
	}
	if proposal.Pending() && proposal.Writer != t {
		// Read-from an uncommitted version: record the cascading
		// dependency while the chain is locked, so an abort of the
		// writer cannot slip in between.
		if err := t.AddDep(proposal.Writer, true); err != nil {
			return nil, err
		}
	}
	return proposal.Value, nil
}

// waitVersion blocks until v becomes readable (promise fulfilled or writer
// finished). The overall Read deadline is initialized lazily on the first
// wait, so wait-free reads never query the clock for it.
func (tx *Tx) waitVersion(v *core.Version, deadline *time.Time) error {
	if deadline.IsZero() {
		*deadline = time.Now().Add(tx.e.opts.LockTimeout)
	}
	remain := time.Until(*deadline)
	if remain <= 0 {
		return tx.abortWith(core.ErrTimeout)
	}
	waitCh := v.Ready()
	if waitCh == nil {
		waitCh = v.Writer.Done()
	}
	start := time.Now()
	timer := time.NewTimer(remain)
	select {
	case <-waitCh:
		timer.Stop()
		tx.e.env.Report(tx.t, v.Writer, start, time.Now())
		return nil
	case <-timer.C:
		tx.e.env.Report(tx.t, v.Writer, start, time.Now())
		return tx.abortWith(core.ErrTimeout)
	}
}

// Write installs (or overwrites) the transaction's version of k.
func (tx *Tx) Write(k core.Key, value []byte) error {
	if err := tx.check(); err != nil {
		return err
	}
	t := tx.t
	tx.e.netDelay()

	for _, n := range t.Path {
		if err := n.CC.PreWrite(t, k); err != nil {
			return tx.abortWith(err)
		}
	}

	ch := tx.e.store.Chain(k)
	grew := 0
	ch.Lock()
	v := ch.VersionBy(t)
	switch {
	case v != nil && v.Promise:
		// Fulfil the promise declared at start; readers waiting on
		// it wake up with the value.
		v.Fulfill(value)
		t.AddWrite(ch, v)
	case v != nil:
		// Second write of the same key: overwrite in place.
		v.Value = value
		ch.Unlock()
		return nil
	default:
		v = &core.Version{Writer: t, Value: value}
		grew = ch.Install(v)
		t.AddWrite(ch, v)
	}
	// Bottom-up pass: conflict checks and ordering metadata.
	for i := len(t.Path) - 1; i >= 0; i-- {
		if err := t.Path[i].CC.PostWrite(t, k, ch, v); err != nil {
			ch.Unlock()
			return tx.abortWith(err)
		}
	}
	ch.Unlock()
	if grew > 1 {
		// The chain now holds history; flag it for the incremental
		// collector. Outside the chain lock: MarkGC takes the storage
		// shard mutex, which must never nest inside a chain mutex.
		tx.e.store.MarkGC(ch)
	}
	return nil
}

// promiser is implemented by CC mechanisms supporting declared writes.
type promiser interface {
	Promise(t *core.Txn, ch *core.Chain)
}

// Promise declares keys the transaction will write (TSO promises, §4.4.4).
// Must be called before the first operation on those keys.
func (tx *Tx) Promise(keys ...core.Key) error {
	if err := tx.check(); err != nil {
		return err
	}
	for _, k := range keys {
		ch := tx.e.store.Chain(k)
		for _, n := range tx.t.Path {
			if p, ok := n.CC.(promiser); ok {
				ch.Lock()
				p.Promise(tx.t, ch)
				ch.Unlock()
			}
		}
		if ch.Len() > 1 {
			tx.e.store.MarkGC(ch)
		}
	}
	return nil
}

// Commit runs validation, the consistent-ordering dependency wait, the
// durability protocol, and the chained leaf-to-root commit phase.
func (tx *Tx) Commit() error {
	if err := tx.check(); err != nil {
		return err
	}
	t := tx.t

	// Consistent ordering (§4.2): wait for every recorded dependency to
	// commit; cascade if a read-from dependency aborted. This runs BEFORE
	// validation so that validation-time conflict checks (SSI's read-set
	// rescan) are separated from the commit point only by microseconds,
	// not by a potentially long dependency wait.
	if err := tx.waitDeps(); err != nil {
		return tx.abortWith(err)
	}

	// Validation phase, top-down.
	for _, n := range t.Path {
		if err := n.CC.Validate(t); err != nil {
			return tx.abortWith(err)
		}
	}

	// Durability: stage precommit records on every participating data
	// server's group-commit appender, then the coordinator's commit
	// record (§4.5.4). Staging is asynchronous — records from concurrent
	// committers coalesce into one append+flush per appender turn — so
	// the log never serializes the commit path; under SyncCommit the
	// wait happens inside walMgr.Commit, on the whole batch's single
	// fsync.
	var epoch uint64
	var ticket *wal.Ticket
	var walShards []int
	if tx.e.walMgr != nil {
		byShard := map[int][]wal.KV{}
		for _, w := range t.Writes() {
			// Chain.Shard is memoized at creation; no re-hash per write.
			byShard[w.Chain.Shard] = append(byShard[w.Chain.Shard], wal.KV{Key: w.Chain.Key, Value: w.V.Value})
		}
		if len(byShard) > 0 {
			var err error
			epoch, ticket, err = tx.e.walMgr.Precommit(t.ID, byShard)
			if err != nil {
				return tx.abortWith(fmt.Errorf("%w: wal: %v", core.ErrAborted, err))
			}
			for sh := range byShard {
				walShards = append(walShards, sh)
			}
		}
	}

	commitTS, ok := t.MarkCommittedNext(tx.e.oracle)
	if !ok {
		// Force-aborted while committing. The staged precommit records
		// will never get a commit record; stage abort markers so
		// checkpoint compaction can reclaim them (recovery discards the
		// transaction either way).
		if ticket != nil {
			tx.e.walMgr.Abort(t.ID, walShards)
		}
		return tx.abortWith(core.ErrReconfiguring)
	}
	if ticket != nil {
		// The transaction is already committed in memory; an append
		// failure means durability (not atomicity) is at risk. The WAL
		// batch observer counts every failed flush exactly once into
		// stats.walErrors — counting again here would tally one batch
		// error once per coalesced committer.
		//lint:allow syncerr -- flush failures are tallied once per batch by the WAL observer into stats.walErrors; per-committer checks would double-count
		tx.e.walMgr.Commit(t.ID, commitTS, epoch, ticket)
	}

	// Commit phase, chained leaf -> root, uninterrupted.
	for i := len(t.Path) - 1; i >= 0; i-- {
		t.Path[i].CC.Commit(t)
	}
	tx.e.unregister(t)

	// Synchronous durability: block until the group-commit batch holding
	// this transaction's records is flushed — AFTER the CC tree released
	// its state, so the log wait never throttles concurrency control
	// (committed-but-not-yet-durable transactions are indistinguishable
	// from durable ones to the CC mechanisms, §4.5.4). Only the client's
	// commit notification is delayed to coincide with the durable
	// notification.
	if ticket != nil && tx.e.walMgr.Synchronous() {
		// Flush failures are already in stats.walErrors via the batch
		// observer; the in-memory commit stands either way.
		//lint:allow syncerr -- Wait only delays the commit notification; its error is the batch flush error the observer already recorded
		ticket.Wait()
	}
	tx.e.stats.recordCommit(t)
	tx.finished = true
	// Recycle after the last engine-side read of t. PutTxn refuses
	// transactions whose pointer escaped (see core.Txn's reclamation rule).
	core.PutTxn(t)
	return nil
}

// waitDeps enforces consistent ordering at commit: the transaction commits
// only after every recorded dependency has committed (the generalization of
// the nexus lock release order). Each wait is reported to the profiler as a
// blocking event on the dependency's transaction type. Transactions with no
// recorded dependencies (every read hit committed history) skip the loop and
// its allocations entirely.
func (tx *Tx) waitDeps() error {
	t := tx.t
	if !t.HasDeps() {
		return nil
	}
	deadline := time.Now().Add(tx.e.opts.LockTimeout)
	seen := make(map[uint64]bool)
	for {
		progress := false
		for _, d := range t.Deps() {
			if seen[d.T.ID] {
				continue
			}
			seen[d.T.ID] = true
			progress = true
			if d.T.Finished() {
				if d.T.State() == core.Aborted && d.Read {
					return core.ErrCascade
				}
				continue
			}
			remain := time.Until(deadline)
			if remain <= 0 {
				return core.ErrTimeout
			}
			start := time.Now()
			timer := time.NewTimer(remain)
			select {
			case <-d.T.Done():
				timer.Stop()
			case <-timer.C:
				tx.e.env.Report(t, d.T, start, time.Now())
				return core.ErrTimeout
			}
			tx.e.env.Report(t, d.T, start, time.Now())
			if d.T.State() == core.Aborted && d.Read {
				return core.ErrCascade
			}
		}
		if !progress {
			return nil
		}
	}
}

// Rollback aborts the transaction. cause is recorded in the abort stats
// (nil means user abort).
func (tx *Tx) Rollback(cause error) {
	if tx.finished {
		return
	}
	if cause == nil {
		cause = core.ErrUserAbort
	}
	tx.abortWith(cause)
}

// abortWith finishes the transaction on its abort path and returns the
// (wrapped) cause. Idempotent with respect to force-aborts: the cleanup
// always runs exactly once, on the owner goroutine.
func (tx *Tx) abortWith(cause error) error {
	if tx.finished {
		return cause
	}
	tx.finished = true
	t := tx.t
	t.MarkAborted()
	// Remove installed versions so no new reader observes them; existing
	// readers cascade via their read-from dependencies.
	for _, w := range t.Writes() {
		w.Chain.Lock()
		w.Chain.Remove(w.V)
		w.Chain.Unlock()
	}
	// Abort phase, leaf -> root.
	for i := len(t.Path) - 1; i >= 0; i-- {
		t.Path[i].CC.Abort(t)
	}
	tx.e.unregister(t)
	tx.e.stats.recordAbort(t, cause)
	core.PutTxn(t)
	return cause
}
