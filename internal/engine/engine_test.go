package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func asU64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func bankSpecs() []*core.Spec {
	return []*core.Spec{
		{Name: "transfer", Tables: []string{"account"}, WriteTables: []string{"account"}},
		{Name: "deposit", Tables: []string{"account"}, WriteTables: []string{"account"}},
		{Name: "audit", ReadOnly: true, Tables: []string{"account"}},
	}
}

func newBank(t *testing.T, cfg *NodeSpec, accounts int) *Engine {
	t.Helper()
	e, err := New(Options{Shards: 4, LockTimeout: 2 * time.Second}, bankSpecs(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < accounts; i++ {
		e.Load(core.KeyOf("account", i), u64(1000))
	}
	return e
}

// runBank hammers the engine with concurrent transfers and audits, then
// checks conservation of money — a serializability witness.
func runBank(t *testing.T, e *Engine, accounts, workers, txnsEach int) {
	t.Helper()
	if testing.Short() {
		// Keep the CI -race job fast: contention-heavy configs (RP
		// audits especially) multiply lock-timeout waits under the race
		// detector's slowdown.
		txnsEach /= 4
	}
	defer e.Close()
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < txnsEach; i++ {
				from := rng.Intn(accounts)
				to := (from + 1 + rng.Intn(accounts-1)) % accounts
				amount := uint64(rng.Intn(10))
				var err error
				if i%5 == 4 {
					// Audit: snapshot sum must always be exact.
					err = e.RunTxn("audit", 0, func(tx *Tx) error {
						var sum uint64
						for a := 0; a < accounts; a++ {
							v, err := tx.Read(core.KeyOf("account", a))
							if err != nil {
								return err
							}
							sum += asU64(v)
						}
						if sum != uint64(accounts)*1000 {
							return fmt.Errorf("audit saw inconsistent total %d", sum)
						}
						return nil
					})
				} else {
					err = e.RunTxn("transfer", 0, func(tx *Tx) error {
						fv, err := tx.Read(core.KeyOf("account", from))
						if err != nil {
							return err
						}
						tv, err := tx.Read(core.KeyOf("account", to))
						if err != nil {
							return err
						}
						fb, tb := asU64(fv), asU64(tv)
						if fb < amount {
							return nil // insufficient funds, commit no-op
						}
						if err := tx.Write(core.KeyOf("account", from), u64(fb-amount)); err != nil {
							return err
						}
						return tx.Write(core.KeyOf("account", to), u64(tb+amount))
					})
				}
				if err != nil {
					errCh <- err
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("worker error: %v", err)
	}
	// Final conservation check.
	var sum uint64
	for a := 0; a < accounts; a++ {
		sum += asU64(e.ReadCommitted(core.KeyOf("account", a)))
	}
	if sum != uint64(accounts)*1000 {
		t.Fatalf("money not conserved: total %d, want %d", sum, accounts*1000)
	}
	if e.Stats().Snapshot().Commits == 0 {
		t.Fatal("no transactions committed")
	}
}

func TestBankMonolithic2PL(t *testing.T) {
	cfg := G(Kind2PL, []string{"transfer", "deposit", "audit"})
	runBank(t, newBank(t, cfg, 16), 16, 8, 150)
}

func TestBankInitialConfigSSI(t *testing.T) {
	cfg := G(KindSSI, nil,
		G(KindNone, []string{"audit"}),
		G(Kind2PL, []string{"transfer", "deposit"}))
	runBank(t, newBank(t, cfg, 16), 16, 8, 150)
}

func TestBankLeafSSI(t *testing.T) {
	cfg := G(KindSSI, []string{"transfer", "deposit", "audit"})
	runBank(t, newBank(t, cfg, 16), 16, 6, 120)
}

func TestBankLeafTSO(t *testing.T) {
	cfg := G(KindTSO, []string{"transfer", "deposit", "audit"})
	runBank(t, newBank(t, cfg, 16), 16, 6, 120)
}

func TestBankLeafRP(t *testing.T) {
	cfg := G(KindRP, []string{"transfer", "deposit", "audit"})
	runBank(t, newBank(t, cfg, 16), 16, 6, 120)
}

func TestBankThreeLayer(t *testing.T) {
	cfg := G(KindSSI, nil,
		G(KindNone, []string{"audit"}),
		G(Kind2PL, nil,
			G(KindRP, []string{"transfer"}),
			G(Kind2PL, []string{"deposit"})))
	runBank(t, newBank(t, cfg, 16), 16, 8, 150)
}

func TestBankBatchedSSIRoot(t *testing.T) {
	cfg := &NodeSpec{Kind: KindSSI, ForceBatched: true, Children: []*NodeSpec{
		G(Kind2PL, []string{"transfer", "audit"}),
		G(Kind2PL, []string{"deposit"}),
	}}
	runBank(t, newBank(t, cfg, 16), 16, 6, 100)
}

func TestReadYourOwnWrites(t *testing.T) {
	cfg := G(Kind2PL, []string{"transfer", "deposit", "audit"})
	e := newBank(t, cfg, 2)
	defer e.Close()
	err := e.RunTxn("transfer", 0, func(tx *Tx) error {
		if err := tx.Write(core.KeyOf("account", 0), u64(42)); err != nil {
			return err
		}
		v, err := tx.Read(core.KeyOf("account", 0))
		if err != nil {
			return err
		}
		if asU64(v) != 42 {
			return fmt.Errorf("read own write: got %d", asU64(v))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := asU64(e.ReadCommitted(core.KeyOf("account", 0))); got != 42 {
		t.Fatalf("committed value = %d, want 42", got)
	}
}

func TestRollbackDiscardsWrites(t *testing.T) {
	cfg := G(Kind2PL, []string{"transfer", "deposit", "audit"})
	e := newBank(t, cfg, 2)
	defer e.Close()
	userErr := errors.New("changed my mind")
	err := e.RunTxn("transfer", 0, func(tx *Tx) error {
		if err := tx.Write(core.KeyOf("account", 0), u64(1)); err != nil {
			return err
		}
		return userErr
	})
	if !errors.Is(err, userErr) {
		t.Fatalf("err = %v, want user error", err)
	}
	if got := asU64(e.ReadCommitted(core.KeyOf("account", 0))); got != 1000 {
		t.Fatalf("aborted write leaked: %d", got)
	}
}

func TestReconfigurePartialRestartUnderLoad(t *testing.T) {
	cfgA := G(KindSSI, nil,
		G(KindNone, []string{"audit"}),
		G(Kind2PL, []string{"transfer", "deposit"}))
	cfgB := G(KindSSI, nil,
		G(KindNone, []string{"audit"}),
		G(Kind2PL, nil,
			G(KindRP, []string{"transfer"}),
			G(Kind2PL, []string{"deposit"})))
	e := newBank(t, cfgA, 16)
	defer e.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				from := rng.Intn(16)
				to := (from + 1) % 16
				e.RunTxn("transfer", 0, func(tx *Tx) error {
					fv, err := tx.Read(core.KeyOf("account", from))
					if err != nil {
						return err
					}
					tv, err := tx.Read(core.KeyOf("account", to))
					if err != nil {
						return err
					}
					if asU64(fv) < 1 {
						return nil
					}
					if err := tx.Write(core.KeyOf("account", from), u64(asU64(fv)-1)); err != nil {
						return err
					}
					return tx.Write(core.KeyOf("account", to), u64(asU64(tv)+1))
				})
			}
		}(int64(w))
	}
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < 4; i++ {
		next := cfgB
		if i%2 == 1 {
			next = cfgA
		}
		if err := e.Reconfigure(next, PartialRestart); err != nil {
			t.Fatalf("reconfigure %d: %v", i, err)
		}
		time.Sleep(30 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	var sum uint64
	for a := 0; a < 16; a++ {
		sum += asU64(e.ReadCommitted(core.KeyOf("account", a)))
	}
	if sum != 16*1000 {
		t.Fatalf("money not conserved across reconfigurations: %d", sum)
	}
}

func TestReconfigureOnlineUpdateUnderLoad(t *testing.T) {
	cfgA := G(KindSSI, nil,
		G(KindNone, []string{"audit"}),
		G(Kind2PL, []string{"transfer", "deposit"}))
	cfgB := G(KindSSI, nil,
		G(KindNone, []string{"audit"}),
		G(Kind2PL, nil,
			G(KindRP, []string{"transfer"}),
			G(Kind2PL, []string{"deposit"})))
	e := newBank(t, cfgA, 16)
	defer e.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				a, b := rng.Intn(16), rng.Intn(16)
				if a == b {
					continue
				}
				e.RunTxn("transfer", 0, func(tx *Tx) error {
					av, err := tx.Read(core.KeyOf("account", a))
					if err != nil {
						return err
					}
					bv, err := tx.Read(core.KeyOf("account", b))
					if err != nil {
						return err
					}
					if asU64(av) < 1 {
						return nil
					}
					if err := tx.Write(core.KeyOf("account", a), u64(asU64(av)-1)); err != nil {
						return err
					}
					return tx.Write(core.KeyOf("account", b), u64(asU64(bv)+1))
				})
			}
		}(int64(w))
	}
	time.Sleep(50 * time.Millisecond)
	if err := e.Reconfigure(cfgB, OnlineUpdate); err != nil {
		t.Fatalf("online update: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := e.Reconfigure(cfgA, OnlineUpdate); err != nil {
		t.Fatalf("online update back: %v", err)
	}
	close(stop)
	wg.Wait()
	var sum uint64
	for a := 0; a < 16; a++ {
		sum += asU64(e.ReadCommitted(core.KeyOf("account", a)))
	}
	if sum != 16*1000 {
		t.Fatalf("money not conserved across online updates: %d", sum)
	}
}

func TestPromisesTSO(t *testing.T) {
	cfg := G(KindTSO, []string{"transfer", "deposit", "audit"})
	e := newBank(t, cfg, 4)
	defer e.Close()
	err := e.RunTxn("transfer", 0, func(tx *Tx) error {
		if err := tx.Promise(core.KeyOf("account", 0)); err != nil {
			return err
		}
		return tx.Write(core.KeyOf("account", 0), u64(7))
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := asU64(e.ReadCommitted(core.KeyOf("account", 0))); got != 7 {
		t.Fatalf("promised write = %d, want 7", got)
	}
}
