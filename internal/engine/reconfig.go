package engine

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// Protocol selects a reconfiguration protocol (§5.5).
type Protocol int

const (
	// PartialRestart quiesces the whole database, rebuilds the entire
	// concurrency-control module (fresh CC instances over the untouched
	// storage module), and resumes (§5.5.1). The three phases — clean-up,
	// prepare, apply — map to: gate + drain, buildTree, swap + reopen.
	PartialRestart Protocol = iota
	// OnlineUpdate replaces only the changed subtree of the CC tree,
	// quiescing only the transaction types routed through it (§5.5.2).
	// If the change reaches the root, it degrades to PartialRestart.
	OnlineUpdate
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	if p == OnlineUpdate {
		return "online-update"
	}
	return "partial-restart"
}

// Reconfigure switches the live MCC configuration to spec using the given
// protocol. Transactions of gated types are buffered (their Begin blocks)
// for the duration; ongoing transactions are drained, then force-aborted
// after Options.DrainTimeout.
func (e *Engine) Reconfigure(spec *NodeSpec, protocol Protocol) error {
	e.treeMu.Lock()
	defer e.treeMu.Unlock()

	if protocol == OnlineUpdate {
		if done, err := e.tryOnlineUpdate(spec); done || err != nil {
			return err
		}
		// Root-level change: fall through to a partial restart.
	}
	return e.partialRestart(spec)
}

// partialRestart implements the clean-up / prepare / apply phases of
// §5.5.1. The prepare step (building the new CC module) happens before the
// gate closes to shorten the pause; CC instances hold no storage state, so
// early construction is safe.
func (e *Engine) partialRestart(spec *NodeSpec) error {
	newTree, err := e.buildTree(spec)
	if err != nil {
		return err
	}
	// Clean-up phase: stop admitting transactions, drain ongoing ones.
	e.gate.Lock()
	defer e.gate.Unlock()
	if err := e.drain(nil); err != nil {
		return err
	}
	// Apply phase: swap the concurrency control module. The storage
	// module (all committed versions) is untouched; the new tree treats
	// existing data as committed history, exactly as the recovery
	// protocol's virtual root-level load (§4.5.4).
	e.tree = newTree
	e.refreshSnapSources(newTree)
	return nil
}

// tryOnlineUpdate performs the online update protocol if the configuration
// change is confined to a proper subtree. It reports done=false when the
// change is at the root (caller falls back to partial restart).
func (e *Engine) tryOnlineUpdate(spec *NodeSpec) (done bool, err error) {
	e.gate.RLock()
	oldSpec := e.tree.Spec
	e.gate.RUnlock()

	path, equal := diffSpec(oldSpec, spec)
	if equal {
		return true, nil // nothing to do
	}
	if len(path) == 0 {
		return false, nil // root-level change
	}

	// The affected transaction types: everything routed through the old
	// or new version of the changed subtree.
	oldSub, newSub := oldSpec, spec.Clone()
	for _, idx := range path {
		oldSub = oldSub.Children[idx]
	}
	newSubSpec := newSub
	for _, idx := range path {
		newSubSpec = newSubSpec.Children[idx]
	}
	affected := map[string]bool{}
	for _, t := range append(oldSub.AllTypes(), newSubSpec.AllTypes()...) {
		affected[t] = true
	}

	// Gate only the affected types; unaffected transactions keep running.
	e.gate.Lock()
	e.gate.blockedTypes = affected
	e.gate.Unlock()
	reopen := func() {
		e.gate.Lock()
		e.gate.blockedTypes = nil
		close(e.gate.reopen)
		e.gate.reopen = make(chan struct{})
		e.gate.Unlock()
	}
	if err := e.drainOutsideGate(func(t *core.Txn) bool { return affected[t.Type] }); err != nil {
		reopen()
		return true, err
	}

	// Splice the replacement subtree under a brief full admission pause
	// (routing tables are only read at Begin; active unaffected
	// transactions never consult them again).
	e.gate.Lock()
	parent := e.tree.Root
	for _, idx := range path[:len(path)-1] {
		if idx >= len(parent.Children) {
			e.gate.Unlock()
			reopen()
			return true, fmt.Errorf("engine: online update path out of range")
		}
		parent = parent.Children[idx]
	}
	idx := path[len(path)-1]
	if idx >= len(parent.Children) {
		e.gate.Unlock()
		reopen()
		return true, fmt.Errorf("engine: online update path out of range")
	}
	newNode, err := e.buildSubtree(newSubSpec, parent.Depth+1, parent)
	if err != nil {
		e.gate.Unlock()
		reopen()
		return true, err
	}
	parent.Children[idx] = newNode
	e.tree.Root.FinalizeRouting()
	e.tree.Spec = newSub
	e.refreshSnapSources(e.tree)
	e.gate.blockedTypes = nil
	close(e.gate.reopen)
	e.gate.reopen = make(chan struct{})
	e.gate.Unlock()
	return true, nil
}

// drain waits for matching active transactions to finish, force-aborting
// stragglers after Options.DrainTimeout. Must be called with gate.Lock held
// when filter is nil (full quiesce).
func (e *Engine) drain(filter func(*core.Txn) bool) error {
	return e.drainImpl(filter)
}

// drainOutsideGate drains without holding the gate write lock (online
// update: unaffected types must keep being admitted).
func (e *Engine) drainOutsideGate(filter func(*core.Txn) bool) error {
	return e.drainImpl(filter)
}

func (e *Engine) drainImpl(filter func(*core.Txn) bool) error {
	deadline := time.Now().Add(e.opts.DrainTimeout)
	for e.activeCount(filter) > 0 {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	// Force-abort stragglers (§5.5.1's optional force-abort): mark them
	// aborted; their owner goroutines perform the cleanup.
	e.forEachActive(func(t *core.Txn) {
		if filter == nil || filter(t) {
			t.MarkAborted()
		}
	})
	// Wait for owner-side cleanup, bounded by waits' own timeouts.
	final := time.Now().Add(e.opts.DrainTimeout + e.opts.LockTimeout)
	for e.activeCount(filter) > 0 {
		if time.Now().After(final) {
			return fmt.Errorf("engine: reconfiguration drain timed out with %d active transactions",
				e.activeCount(filter))
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}

// diffSpec compares two configurations. It returns equal=true when
// identical; otherwise path is the child-index path from the root to the
// single changed subtree (nil path = the root itself changed, or changes
// span multiple children).
func diffSpec(a, b *NodeSpec) (path []int, equal bool) {
	if a.Kind != b.Kind || a.ByInstance != b.ByInstance || a.Clones != b.Clones ||
		a.BatchSize != b.BatchSize || a.ForceBatched != b.ForceBatched ||
		len(a.Types) != len(b.Types) || len(a.Children) != len(b.Children) {
		return nil, false
	}
	for i := range a.Types {
		if a.Types[i] != b.Types[i] {
			return nil, false
		}
	}
	changed := -1
	var sub []int
	for i := range a.Children {
		p, eq := diffSpec(a.Children[i], b.Children[i])
		if eq {
			continue
		}
		if changed >= 0 {
			// Multiple changed children: treat the change as here.
			return nil, false
		}
		changed, sub = i, p
	}
	if changed < 0 {
		return nil, true
	}
	return append([]int{changed}, sub...), false
}
