package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/wal"
)

// Stats holds engine-wide counters. All fields are updated atomically; use
// Snapshot for consistent windows.
type Stats struct {
	commits       atomic.Uint64
	aborts        atomic.Uint64
	abortTimeout  atomic.Uint64
	abortConflict atomic.Uint64
	abortPivot    atomic.Uint64
	abortCascade  atomic.Uint64
	abortUser     atomic.Uint64
	walErrors     atomic.Uint64

	// Group-commit pipeline counters (fed by the WAL batch observer):
	// batches flushed, records coalesced into them, and cumulative
	// append+flush latency.
	walBatches      atomic.Uint64
	walBatchRecords atomic.Uint64
	walFlushNs      atomic.Uint64

	// Checkpoint / recovery counters: checkpoints completed, last
	// snapshot's size, cumulative log bytes dropped by compaction, failed
	// checkpoint attempts, and — set once at Recover — how many log
	// records the last recovery replayed (with checkpointing, the
	// post-frontier tail only) and the snapshot cut it started from.
	checkpoints        atomic.Uint64
	checkpointErrors   atomic.Uint64
	ckSnapshotBytes    atomic.Uint64
	ckTruncatedBytes   atomic.Uint64
	recoveryReplayed   atomic.Uint64
	recoverySnapshotTS atomic.Uint64

	mu      sync.Mutex
	perType map[string]*TypeStats
}

// TypeStats aggregates per-transaction-type results.
type TypeStats struct {
	Commits   atomic.Uint64
	Aborts    atomic.Uint64
	LatencyNs atomic.Uint64 // sum of commit latencies
}

func (s *Stats) typeStats(typ string) *TypeStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.perType == nil {
		s.perType = make(map[string]*TypeStats)
	}
	ts := s.perType[typ]
	if ts == nil {
		ts = &TypeStats{}
		s.perType[typ] = ts
	}
	return ts
}

func (s *Stats) recordCommit(t *core.Txn) {
	s.commits.Add(1)
	ts := s.typeStats(t.Type)
	ts.Commits.Add(1)
	ts.LatencyNs.Add(uint64(time.Since(t.Start).Nanoseconds()))
}

func (s *Stats) recordAbort(t *core.Txn, cause error) {
	s.aborts.Add(1)
	s.typeStats(t.Type).Aborts.Add(1)
	switch {
	case errors.Is(cause, core.ErrTimeout):
		s.abortTimeout.Add(1)
	case errors.Is(cause, core.ErrPivot):
		s.abortPivot.Add(1)
	case errors.Is(cause, core.ErrCascade):
		s.abortCascade.Add(1)
	case errors.Is(cause, core.ErrConflict):
		s.abortConflict.Add(1)
	default:
		s.abortUser.Add(1)
	}
}

// recordCheckpoint tallies one checkpoint attempt.
func (s *Stats) recordCheckpoint(res *wal.CheckpointResult, err error) {
	if err != nil {
		s.checkpointErrors.Add(1)
		return
	}
	s.checkpoints.Add(1)
	s.ckSnapshotBytes.Store(uint64(res.SnapshotBytes))
	s.ckTruncatedBytes.Add(uint64(res.TruncatedBytes()))
}

// recordRecovery publishes the last recovery's replay counters.
func (s *Stats) recordRecovery(st *wal.RecoveredState) {
	s.recoveryReplayed.Store(uint64(st.Replayed))
	s.recoverySnapshotTS.Store(st.SnapshotTS)
}

// recordWalBatch is the WAL group-commit observer: one coalesced batch of
// `records` log records was appended (and flushed, under SyncCommit) in d.
func (s *Stats) recordWalBatch(records int, d time.Duration, err error) {
	s.walBatches.Add(1)
	s.walBatchRecords.Add(uint64(records))
	s.walFlushNs.Add(uint64(d.Nanoseconds()))
	if err != nil {
		s.walErrors.Add(1)
	}
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	At            time.Time
	Commits       uint64
	Aborts        uint64
	AbortTimeout  uint64
	AbortConflict uint64
	AbortPivot    uint64
	AbortCascade  uint64
	// WAL group-commit pipeline counters (zero when durability is off).
	WalBatches      uint64
	WalBatchRecords uint64
	WalFlushNs      uint64
	WalErrors       uint64
	// Checkpoint / recovery counters (zero when durability is off or no
	// checkpoint ran). RecoveryReplayed is the number of log records the
	// last Recover replayed — with checkpointing, the post-frontier tail.
	Checkpoints              uint64
	CheckpointErrors         uint64
	CheckpointSnapshotBytes  uint64
	CheckpointTruncatedBytes uint64
	RecoveryReplayed         uint64
	RecoverySnapshotTS       uint64
	PerType                  map[string]TypeSnapshot
}

// TypeSnapshot is the per-type portion of a Snapshot.
type TypeSnapshot struct {
	Commits   uint64
	Aborts    uint64
	LatencyNs uint64
}

// Snapshot captures the current counters.
func (s *Stats) Snapshot() Snapshot {
	snap := Snapshot{
		At:                       time.Now(),
		Commits:                  s.commits.Load(),
		Aborts:                   s.aborts.Load(),
		AbortTimeout:             s.abortTimeout.Load(),
		AbortConflict:            s.abortConflict.Load(),
		AbortPivot:               s.abortPivot.Load(),
		AbortCascade:             s.abortCascade.Load(),
		WalBatches:               s.walBatches.Load(),
		WalBatchRecords:          s.walBatchRecords.Load(),
		WalFlushNs:               s.walFlushNs.Load(),
		WalErrors:                s.walErrors.Load(),
		Checkpoints:              s.checkpoints.Load(),
		CheckpointErrors:         s.checkpointErrors.Load(),
		CheckpointSnapshotBytes:  s.ckSnapshotBytes.Load(),
		CheckpointTruncatedBytes: s.ckTruncatedBytes.Load(),
		RecoveryReplayed:         s.recoveryReplayed.Load(),
		RecoverySnapshotTS:       s.recoverySnapshotTS.Load(),
		PerType:                  map[string]TypeSnapshot{},
	}
	s.mu.Lock()
	for typ, ts := range s.perType {
		snap.PerType[typ] = TypeSnapshot{
			Commits:   ts.Commits.Load(),
			Aborts:    ts.Aborts.Load(),
			LatencyNs: ts.LatencyNs.Load(),
		}
	}
	s.mu.Unlock()
	return snap
}

// Window summarizes the interval between two snapshots.
type Window struct {
	Duration   time.Duration
	Commits    uint64
	Aborts     uint64
	Throughput float64 // committed txn/sec
	AbortRate  float64 // aborts / (commits+aborts)
	// WalBatches is the number of group-commit batches flushed in the
	// window; WalMeanBatch is the mean records coalesced per batch and
	// WalMeanFlush the mean append+flush latency (both zero when
	// durability is off or no batch flushed).
	WalBatches   uint64
	WalMeanBatch float64
	WalMeanFlush time.Duration
	PerType      map[string]WindowType
}

// WindowType is the per-type portion of a Window.
type WindowType struct {
	Commits    uint64
	Aborts     uint64
	Throughput float64
	// MeanLatency is the mean commit latency over the window.
	MeanLatency time.Duration
}

// Since computes the window from an earlier snapshot to now.
func (s *Stats) Since(prev Snapshot) Window {
	cur := s.Snapshot()
	d := cur.At.Sub(prev.At)
	if d <= 0 {
		d = time.Nanosecond
	}
	w := Window{
		Duration: d,
		Commits:  cur.Commits - prev.Commits,
		Aborts:   cur.Aborts - prev.Aborts,
		PerType:  map[string]WindowType{},
	}
	w.Throughput = float64(w.Commits) / d.Seconds()
	if total := w.Commits + w.Aborts; total > 0 {
		w.AbortRate = float64(w.Aborts) / float64(total)
	}
	w.WalBatches = cur.WalBatches - prev.WalBatches
	if w.WalBatches > 0 {
		w.WalMeanBatch = float64(cur.WalBatchRecords-prev.WalBatchRecords) / float64(w.WalBatches)
		w.WalMeanFlush = time.Duration((cur.WalFlushNs - prev.WalFlushNs) / w.WalBatches)
	}
	for typ, c := range cur.PerType {
		p := prev.PerType[typ]
		wt := WindowType{
			Commits: c.Commits - p.Commits,
			Aborts:  c.Aborts - p.Aborts,
		}
		wt.Throughput = float64(wt.Commits) / d.Seconds()
		if wt.Commits > 0 {
			wt.MeanLatency = time.Duration((c.LatencyNs - p.LatencyNs) / wt.Commits)
		}
		w.PerType[typ] = wt
	}
	return w
}
