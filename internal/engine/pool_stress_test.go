package engine

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// TestTxnPoolStress hammers the exact shape transaction pooling optimizes —
// read-only transactions under optimized SSI over a NoCC group, which never
// escape and recycle through the pool — concurrently with 2PL writers whose
// Txns escape into version chains, plus background GC pruning those chains.
// Run under -race (the CI stress matrix does, with -count 5): a pooling bug
// (recycling a Txn a version or dependency edge still points at) shows up
// as a race report or as a reader observing torn/nonsense balances.
func TestTxnPoolStress(t *testing.T) {
	const accounts = 8
	cfg := G(KindSSI, nil,
		G(KindNone, []string{"audit"}),
		G(Kind2PL, []string{"transfer", "deposit"}))
	e, err := New(Options{
		Shards:      4,
		LockTimeout: 2 * time.Second,
		GCInterval:  5 * time.Millisecond, // keep the collector racing the pool
	}, bankSpecs(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	for i := 0; i < accounts; i++ {
		e.Load(core.KeyOf("account", i), u64(1000))
	}

	iters := 400
	if testing.Short() {
		iters = 100
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)

	// Writers: circular transfers preserve the total balance.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				from := (seed + i) % accounts
				to := (from + 1) % accounts
				err := e.RunTxn("transfer", 0, func(tx *Tx) error {
					fv, err := tx.Read(core.KeyOf("account", from))
					if err != nil {
						return err
					}
					tv, err := tx.Read(core.KeyOf("account", to))
					if err != nil {
						return err
					}
					if err := tx.Write(core.KeyOf("account", from), u64(asU64(fv)-1)); err != nil {
						return err
					}
					return tx.Write(core.KeyOf("account", to), u64(asU64(tv)+1))
				})
				if err != nil && !core.IsRetryable(err) {
					errCh <- err
					return
				}
			}
		}(w)
	}

	// Readers: pooled read-only audits; the snapshot sum is a serializability
	// and use-after-recycle witness in one.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := e.RunTxn("audit", 0, func(tx *Tx) error {
					var sum uint64
					for a := 0; a < accounts; a++ {
						v, err := tx.Read(core.KeyOf("account", a))
						if err != nil {
							return err
						}
						sum += asU64(v)
					}
					if sum != accounts*1000 {
						t.Errorf("audit saw sum %d, want %d", sum, accounts*1000)
					}
					return nil
				})
				if err != nil && !core.IsRetryable(err) {
					errCh <- err
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("unexpected error: %v", err)
	}
}
