package engine

import (
	"reflect"
	"testing"
)

func TestDiffSpecEqual(t *testing.T) {
	a := G(KindSSI, nil, G(KindNone, []string{"r"}), G(Kind2PL, []string{"w"}))
	b := a.Clone()
	if _, eq := diffSpec(a, b); !eq {
		t.Fatal("identical specs reported different")
	}
}

func TestDiffSpecChildChange(t *testing.T) {
	a := G(KindSSI, nil, G(KindNone, []string{"r"}), G(Kind2PL, []string{"w1", "w2"}))
	b := G(KindSSI, nil, G(KindNone, []string{"r"}),
		G(Kind2PL, nil, G(KindRP, []string{"w1"}), G(Kind2PL, []string{"w2"})))
	path, eq := diffSpec(a, b)
	if eq || !reflect.DeepEqual(path, []int{1}) {
		t.Fatalf("path=%v eq=%v", path, eq)
	}
}

func TestDiffSpecRootChange(t *testing.T) {
	a := G(KindSSI, nil, G(KindNone, []string{"r"}), G(Kind2PL, []string{"w"}))
	b := G(Kind2PL, nil, G(KindNone, []string{"r"}), G(Kind2PL, []string{"w"}))
	path, eq := diffSpec(a, b)
	if eq || path != nil {
		t.Fatalf("root change: path=%v eq=%v", path, eq)
	}
}

func TestDiffSpecMultipleChildrenChangedIsNodeLevel(t *testing.T) {
	a := G(KindSSI, nil, G(KindNone, []string{"r"}), G(Kind2PL, []string{"w"}))
	b := G(KindSSI, nil, G(Kind2PL, []string{"r"}), G(KindRP, []string{"w"}))
	path, eq := diffSpec(a, b)
	if eq || path != nil {
		t.Fatalf("multi-child change should be node-level: path=%v eq=%v", path, eq)
	}
}

func TestDiffSpecDeepChange(t *testing.T) {
	mk := func(kind Kind) *NodeSpec {
		return G(KindSSI, nil,
			G(KindNone, []string{"r"}),
			G(Kind2PL, nil,
				G(KindRP, []string{"a"}),
				G(kind, []string{"b"})))
	}
	path, eq := diffSpec(mk(Kind2PL), mk(KindTSO))
	if eq || !reflect.DeepEqual(path, []int{1, 1}) {
		t.Fatalf("path=%v eq=%v", path, eq)
	}
}

func TestNodeSpecCloneIsDeep(t *testing.T) {
	a := G(KindSSI, []string{"x"}, G(Kind2PL, []string{"y"}))
	b := a.Clone()
	b.Types[0] = "z"
	b.Children[0].Kind = KindRP
	if a.Types[0] != "x" || a.Children[0].Kind != Kind2PL {
		t.Fatal("clone aliases the original")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("clone not equal to original")
	}
}

func TestAllTypes(t *testing.T) {
	cfg := G(KindSSI, []string{"a"},
		G(KindNone, []string{"b"}),
		G(Kind2PL, nil, G(KindRP, []string{"c", "d"})))
	got := cfg.AllTypes()
	want := map[string]bool{"a": true, "b": true, "c": true, "d": true}
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
	for _, typ := range got {
		if !want[typ] {
			t.Fatalf("unexpected %s", typ)
		}
	}
}

func TestConfigStringRendersTree(t *testing.T) {
	cfg := G(KindSSI, nil,
		G(KindNone, []string{"os", "sl"}),
		G(Kind2PL, nil, G(KindRP, []string{"no", "pay"}), G(KindRP, []string{"del"})))
	want := "ssi[ none{os,sl} 2pl[ rp{no,pay} rp{del} ] ]"
	if got := cfg.String(); got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestOnlineUpdateEqualConfigIsNoop(t *testing.T) {
	cfg := G(KindSSI, nil, G(KindNone, []string{"audit"}), G(Kind2PL, []string{"transfer", "deposit"}))
	e := newBank(t, cfg, 4)
	defer e.Close()
	if err := e.Reconfigure(cfg.Clone(), OnlineUpdate); err != nil {
		t.Fatal(err)
	}
}

func TestReconfigureRejectsUnknownKind(t *testing.T) {
	cfg := G(KindSSI, nil, G(KindNone, []string{"audit"}), G(Kind2PL, []string{"transfer", "deposit"}))
	e := newBank(t, cfg, 4)
	defer e.Close()
	bad := cfg.Clone()
	bad.Children[1].Kind = "bogus"
	if err := e.Reconfigure(bad, PartialRestart); err == nil {
		t.Fatal("bogus kind accepted")
	}
	// The engine must still work on the old tree.
	if err := e.RunTxn("transfer", 0, func(tx *Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
