package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/profiler"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Engine is a running Tebaldi instance: one CC tree over a sharded
// multiversion store, with admission control for live reconfiguration.
type Engine struct {
	opts   Options
	oracle *oracle.Oracle
	store  *storage.Store
	prof   *profiler.Profiler
	env    *core.Env
	walMgr *wal.Manager

	specMu sync.RWMutex
	specs  map[string]*core.Spec

	// gate serializes admission against reconfiguration: Begin admits
	// under RLock; reconfiguration blocks admission under Lock and may
	// additionally block individual types (online update).
	//
	// tebaldi:locks after engine.Engine.treeMu
	gate struct {
		sync.RWMutex
		blockedTypes map[string]bool
		reopen       chan struct{}
	}
	tree *Tree // guarded by gate (written under gate.Lock)

	treeMu sync.Mutex // serializes whole reconfigurations

	active  [64]activeShard
	txnSeq  atomic.Uint64
	loadSeq atomic.Uint64
	nodeSeq atomic.Uint64
	stats   Stats

	// snapSources are the current tree's CC snapshot-lower-bound
	// callbacks (SSI batches, TSO batch queues); rebuilt on every tree
	// change and read lock-free by Watermark.
	snapSources atomic.Pointer[[]func() uint64]

	// ckMu serializes checkpoints against each other and against version
	// GC: the checkpoint scan needs "latest committed version <= cut" to
	// stay reachable on every chain for the duration of the scan.
	ckMu   sync.Mutex
	stopGC chan struct{}
	gcDone chan struct{}
	stopCK chan struct{}
	ckDone chan struct{}
	closed atomic.Bool
}

// snapshotSource is implemented by CC mechanisms whose transactions read at
// snapshots older than their begin timestamps (batching).
type snapshotSource interface {
	SnapshotLowerBound() uint64
}

// refreshSnapSources rebuilds the snapshot-lower-bound callback list from
// the current tree. Must be called whenever the tree changes (under the
// gate write lock or during construction).
func (e *Engine) refreshSnapSources(tree *Tree) {
	var src []func() uint64
	tree.Root.Walk(func(n *core.Node) {
		if ss, ok := n.CC.(snapshotSource); ok {
			src = append(src, ss.SnapshotLowerBound)
		}
	})
	e.snapSources.Store(&src)
}

type activeShard struct {
	// Innermost engine lock: held only across map ops by register/
	// unregister/snapshotActive, which run under admission (gate.RLock),
	// reconfiguration drains (treeMu) and checkpoint cuts (ckMu).
	//
	// tebaldi:locks after engine.Engine.gate engine.Engine.treeMu engine.Engine.ckMu
	mu   sync.Mutex
	txns map[uint64]*core.Txn
}

// New creates an engine with the given initial CC tree configuration and
// transaction type specs.
func New(opts Options, specs []*core.Spec, config *NodeSpec) (*Engine, error) {
	e := &Engine{
		opts:   opts.withDefaults(),
		oracle: oracle.New(),
		specs:  make(map[string]*core.Spec),
	}
	e.store = storage.New(e.opts.Shards)
	e.prof = profiler.New(e.opts.Profiling)
	for _, sp := range specs {
		e.specs[sp.Name] = sp
	}
	e.env = &core.Env{
		Oracle:      e.oracle,
		Reporter:    e.prof,
		LockTimeout: e.opts.LockTimeout,
		Specs:       e.specs,
		Watermark:   e.Watermark,
	}
	e.gate.reopen = make(chan struct{})
	for i := range e.active {
		e.active[i].txns = make(map[uint64]*core.Txn)
	}

	if e.opts.DurabilityDir != "" {
		m, err := wal.Open(wal.Options{
			Dir:           e.opts.DurabilityDir,
			Shards:        e.opts.Shards,
			EpochInterval: e.opts.GCPEpoch,
			SyncCommit:    e.opts.DurabilitySync,
			Observer:      e.stats.recordWalBatch,
			CrashHook:     e.opts.crashHook,
		})
		if err != nil {
			return nil, err
		}
		e.walMgr = m
	}

	tree, err := e.buildTree(config)
	if err != nil {
		if e.walMgr != nil {
			//lint:allow syncerr -- error-path teardown of a WAL that logged nothing yet; the buildTree error is what the caller needs
			e.walMgr.Close()
		}
		return nil, err
	}
	e.tree = tree
	e.refreshSnapSources(tree)

	if e.opts.GCInterval > 0 {
		e.stopGC = make(chan struct{})
		e.gcDone = make(chan struct{})
		go e.gcLoop()
	}
	if e.opts.CheckpointEvery > 0 && e.walMgr != nil {
		e.stopCK = make(chan struct{})
		e.ckDone = make(chan struct{})
		go e.ckLoop()
	}
	return e, nil
}

// Recover builds an engine whose storage is reconstructed from the WAL in
// opts.DurabilityDir (the recovery protocol of §4.5.4).
func Recover(opts Options, specs []*core.Spec, config *NodeSpec) (*Engine, *wal.RecoveredState, error) {
	o := opts.withDefaults()
	if o.DurabilityDir == "" {
		return nil, nil, fmt.Errorf("engine: Recover requires DurabilityDir")
	}
	st, err := wal.Recover(o.DurabilityDir, o.Shards)
	if err != nil {
		return nil, nil, err
	}
	e, err := New(opts, specs, config)
	if err != nil {
		return nil, nil, err
	}
	e.oracle.AdvanceTo(st.MaxTS + 1)
	for _, w := range st.Writes {
		e.loadVersion(w.Key, w.Value, w.CommitTS)
	}
	e.stats.recordRecovery(st)
	return e, st, nil
}

// Oracle exposes the timestamp oracle.
func (e *Engine) Oracle() core.Oracle { return e.oracle }

// Store exposes the multiversion store.
func (e *Engine) Store() *storage.Store { return e.store }

// Profiler exposes the blocking-event profiler.
func (e *Engine) Profiler() *profiler.Profiler { return e.prof }

// Stats exposes the engine counters.
func (e *Engine) Stats() *Stats { return &e.stats }

// Wal exposes the durability manager (nil when durability is off).
func (e *Engine) Wal() *wal.Manager { return e.walMgr }

// Spec returns the registered spec for a transaction type (nil if unknown).
func (e *Engine) Spec(name string) *core.Spec {
	e.specMu.RLock()
	defer e.specMu.RUnlock()
	return e.specs[name]
}

// Specs returns all registered specs.
func (e *Engine) Specs() []*core.Spec {
	e.specMu.RLock()
	defer e.specMu.RUnlock()
	out := make([]*core.Spec, 0, len(e.specs))
	for _, s := range e.specs {
		out = append(out, s)
	}
	return out
}

// Config returns (a copy of) the current CC tree configuration.
func (e *Engine) Config() *NodeSpec {
	e.gate.RLock()
	defer e.gate.RUnlock()
	return e.tree.Spec.Clone()
}

// ConfigString renders the live CC tree.
func (e *Engine) ConfigString() string {
	e.gate.RLock()
	defer e.gate.RUnlock()
	return e.tree.Root.String()
}

// Begin starts a transaction of the given registered type. part is the
// instance-partition input (0 when unused). Begin blocks while a
// reconfiguration has gated this type.
func (e *Engine) Begin(typ string, part uint64) (*Tx, error) {
	if e.closed.Load() {
		return nil, fmt.Errorf("engine: closed")
	}
	var t *core.Txn
	for {
		e.gate.RLock()
		if e.gate.blockedTypes[typ] {
			ch := e.gate.reopen
			e.gate.RUnlock()
			<-ch
			continue
		}
		// Pooled transaction: Path/Slots keep their backing arrays from a
		// previous life (see core.PutTxn's reclamation rule).
		t = core.GetTxn(e.txnSeq.Add(1), typ, part, e.oracle.Next())
		t.Path = e.tree.Root.AppendPath(t, t.Path)
		if cap(t.Slots) >= len(t.Path) {
			t.Slots = t.Slots[:len(t.Path)]
		} else {
			t.Slots = make([]any, len(t.Path))
		}
		e.register(t)
		e.gate.RUnlock()
		break
	}
	tx := &Tx{e: e, t: t, id: t.ID}
	for _, n := range t.Path {
		if err := n.CC.Begin(t); err != nil {
			return nil, tx.abortWith(err)
		}
	}
	return tx, nil
}

// RunTxn executes fn in a transaction of the given type, retrying on
// system-initiated aborts with randomized backoff (the paper's 5ms SSI
// backoff is scaled by contention).
func (e *Engine) RunTxn(typ string, part uint64, fn func(*Tx) error) error {
	for attempt := 0; ; attempt++ {
		if e.closed.Load() {
			return fmt.Errorf("engine: closed")
		}
		tx, err := e.Begin(typ, part)
		if err == nil {
			err = fn(tx)
			if err == nil {
				err = tx.Commit()
			} else {
				tx.Rollback(err)
			}
		}
		if err == nil {
			return nil
		}
		if !core.IsRetryable(err) {
			return err
		}
		// Randomized backoff, growing with consecutive aborts.
		max := 200 * (attempt + 1)
		if max > 5000 {
			max = 5000
		}
		time.Sleep(time.Duration(rand.Intn(max)+50) * time.Microsecond)
	}
}

func (e *Engine) register(t *core.Txn) {
	s := &e.active[t.ID%64]
	s.mu.Lock()
	//lint:allow poolescape -- the active registry is mu-guarded and unregister removes the entry before release/PutTxn, so no reference survives into the next pool life
	s.txns[t.ID] = t
	s.mu.Unlock()
}

func (e *Engine) unregister(t *core.Txn) {
	s := &e.active[t.ID%64]
	s.mu.Lock()
	delete(s.txns, t.ID)
	s.mu.Unlock()
}

// forEachActive visits active transactions.
func (e *Engine) forEachActive(f func(*core.Txn)) {
	for i := range e.active {
		s := &e.active[i]
		s.mu.Lock()
		for _, t := range s.txns {
			f(t)
		}
		s.mu.Unlock()
	}
}

// activeCount counts active transactions matching filter (nil = all).
func (e *Engine) activeCount(filter func(*core.Txn) bool) int {
	n := 0
	e.forEachActive(func(t *core.Txn) {
		if filter == nil || filter(t) {
			n++
		}
	})
	return n
}

// ActiveTxns counts transactions currently registered (begun, neither
// committed nor aborted). The networked front end exports it as a gauge and
// session-lifecycle tests assert it drops to zero after client disconnects.
func (e *Engine) ActiveTxns() int { return e.activeCount(nil) }

// Watermark is the lower bound of any snapshot a current or future
// transaction may read at: the minimum of active transactions' begin
// timestamps and the CC tree's open batch snapshots (an SSI/TSO batch
// snapshot can predate every active transaction's begin). It is the GC
// horizon and the reader-record pruning bound.
func (e *Engine) Watermark() uint64 {
	wm := uint64(math.MaxUint64)
	e.forEachActive(func(t *core.Txn) {
		if t.BeginTS < wm {
			wm = t.BeginTS
		}
	})
	if src := e.snapSources.Load(); src != nil {
		for _, f := range *src {
			if b := f(); b < wm {
				wm = b
			}
		}
	}
	if wm == math.MaxUint64 {
		return e.oracle.Last()
	}
	return wm
}

func (e *Engine) gcLoop() {
	defer close(e.gcDone)
	tick := time.NewTicker(e.opts.GCInterval)
	defer tick.Stop()
	for {
		select {
		case <-e.stopGC:
			return
		case <-tick.C:
			// ckMu pauses GC while a checkpoint scans the chains: GC
			// running under a newer watermark could prune the very
			// versions the checkpoint cut still needs. Only chains the
			// write path flagged as multi-version are visited; the old
			// full-keyspace sweep every tick dominated CPU profiles.
			e.ckMu.Lock()
			e.store.GCPending(e.Watermark())
			e.ckMu.Unlock()
		}
	}
}

func (e *Engine) ckLoop() {
	defer close(e.ckDone)
	tick := time.NewTicker(e.opts.CheckpointEvery)
	defer tick.Stop()
	for {
		select {
		case <-e.stopCK:
			return
		case <-tick.C:
			// Errors are counted (stats.checkpointErrors); the next
			// tick retries. The log keeps growing until one succeeds,
			// which is the durable-by-default failure mode.
			e.Checkpoint()
		}
	}
}

// Checkpoint snapshots the committed state at a watermark-consistent cut
// into per-shard snapshot files, publishes the checkpoint frontier through
// the WAL pipeline, and compacts the logs down to the post-cut tail
// (§4.5.4's "logs are pruned by log truncation at checkpoints", which the
// paper outsources to the storage layer). Safe to call concurrently with
// running transactions: the cut is the GC watermark, below which no
// transaction is still active, so the snapshot is a consistent prefix of
// the commit order; everything above it stays in the log.
func (e *Engine) Checkpoint() error {
	if e.walMgr == nil {
		return fmt.Errorf("engine: checkpoint requires durability (Options.DurabilityDir)")
	}
	e.ckMu.Lock()
	defer e.ckMu.Unlock()
	// Every transaction with commitTS <= the watermark has fully finished:
	// were such a transaction still registered, the watermark would be at
	// or below its begin timestamp, which is strictly below its commit
	// timestamp — a contradiction. Transactions committing during the scan
	// draw commit timestamps above the watermark, so the cut is frozen.
	snapTS := e.Watermark()
	perShard := make([][]wal.SnapshotEntry, e.store.NumShards())
	e.store.ForEach(func(c *core.Chain) {
		c.Lock()
		v := c.LatestCommittedBefore(snapTS)
		if v == nil {
			c.Unlock()
			return
		}
		val, cts := v.Value, v.CommitTS()
		c.Unlock()
		perShard[c.Shard] = append(perShard[c.Shard], wal.SnapshotEntry{Key: c.Key, Value: val, CommitTS: cts})
	})
	res, err := e.walMgr.Checkpoint(snapTS, perShard)
	e.stats.recordCheckpoint(res, err)
	return err
}

// netDelay simulates the TC <-> DS round trip.
func (e *Engine) netDelay() {
	if e.opts.NetworkDelay > 0 {
		time.Sleep(e.opts.NetworkDelay)
	}
}

// loadVersion installs a committed version outside any CC tree (bulk load /
// recovery). The synthetic writer has an empty path, so every CC treats the
// version as plain committed history.
func (e *Engine) loadVersion(k core.Key, value []byte, commitTS uint64) {
	w := core.NewTxn(math.MaxUint64-e.loadSeq.Add(1), "_load", 0, 0)
	w.MarkShared() // retained by the installed version; never pool-eligible
	w.MarkCommitted(commitTS)
	ch := e.store.Chain(k)
	ch.Lock()
	n := ch.Install(&core.Version{Writer: w, Value: value})
	ch.Unlock()
	if n > 1 {
		// Recovery replays several writes of the same key onto one chain;
		// flag it so the incremental collector visits it (the write path
		// only flags chains it grows itself).
		e.store.MarkGC(ch)
	}
}

// Load bulk-loads a committed key-value pair (initial database population).
func (e *Engine) Load(k core.Key, value []byte) {
	e.loadVersion(k, value, e.oracle.Next())
}

// ReadCommitted returns the latest committed value of k outside any
// transaction (test and tooling helper).
func (e *Engine) ReadCommitted(k core.Key) []byte {
	ch := e.store.Lookup(k)
	if ch == nil {
		return nil
	}
	ch.Lock()
	defer ch.Unlock()
	if v := ch.LatestCommitted(); v != nil {
		return v.Value
	}
	return nil
}

// Close stops background services and flushes the WAL.
func (e *Engine) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	if e.stopCK != nil {
		close(e.stopCK)
		<-e.ckDone
	}
	if e.stopGC != nil {
		close(e.stopGC)
		<-e.gcDone
	}
	if e.walMgr != nil {
		return e.walMgr.Close()
	}
	return nil
}
