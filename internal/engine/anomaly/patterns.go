package anomaly

import "strconv"

// All returns every named anomaly pattern the suite guards.
func All() []*Pattern {
	return []*Pattern{
		DirtyRead(),
		DirtyWrite(),
		NonRepeatableRead(),
		PhantomRead(),
		LostUpdate(),
		WriteSkew(),
		ReadOnlyAnomaly(),
	}
}

func atoi(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}

func itoa(n int) string { return strconv.Itoa(n) }
