package anomaly

// PhantomRead (ANSI P3): t1 scans a predicate twice and t2 commits an
// insert satisfying it in between, so a row materialises mid-transaction.
// The store is point-access, so the predicate is modelled as a scan over a
// fixed keyset {p0,p1,p2} with absence encoded as the empty value — the
// same way key-range phantoms reduce to next-key reads. Admitted by read
// committed; serializable trees must either give t1 a stable scan or keep
// one of the two out.
func PhantomRead() *Pattern {
	return &Pattern{
		Name:    "phantom-read",
		Initial: map[string]string{"p0": "a", "p1": "b"},
		Txns: []Txn{
			{Name: "t1", Ops: []Op{R("p0"), R("p1"), R("p2"), R("p0"), R("p1"), R("p2"), C()}},
			{Name: "t2", Ops: []Op{W("p2", "c"), C()}},
		},
		Schedule: []string{"t1", "t1", "t1", "t2", "t2", "t1", "t1", "t1", "t1"},
		Anomalous: func(o *Outcome) bool {
			r := o.ReadsOf("t1")
			return o.Committed["t1"] && len(r) == 6 && r[2] == "" && r[5] == "c"
		},
		ReadCommitted: true,
	}
}
