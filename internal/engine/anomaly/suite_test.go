package anomaly

import (
	"fmt"
	"testing"
)

// TestPatternsEncodeAnomalies validates the patterns themselves: the
// adversarial schedule really produces the anomaly when nothing regulates
// it (single-version, no isolation), and the serial execution does not.
func TestPatternsEncodeAnomalies(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if o := SimulateNoIsolation(p); !p.Anomalous(o) {
				t.Errorf("no-isolation run does not exhibit the anomaly: %+v", o)
			}
			if o := SimulateSerial(p); p.Anomalous(o) {
				t.Errorf("serial run exhibits the anomaly: %+v", o)
			}
		})
	}
}

// TestForbiddenOutcomesImpossible runs every pattern's adversarial schedule
// against every serializable tree: the anomaly must not appear, and the
// committed transactions must be view-equivalent to some serial order.
func TestForbiddenOutcomesImpossible(t *testing.T) {
	for _, p := range All() {
		for _, tr := range SerializableTrees() {
			p, tr := p, tr
			t.Run(fmt.Sprintf("%s/%s", p.Name, tr.Name), func(t *testing.T) {
				t.Parallel()
				o, err := Run(p, tr.Build(typeNames(p)), p.Schedule, false)
				if err != nil {
					t.Fatal(err)
				}
				if p.Anomalous(o) {
					t.Fatalf("anomaly reached on %s: %+v (errs %v)", tr.Name, o, o.Errs)
				}
				order, err := CheckSerializable(p, o)
				if err != nil {
					t.Fatalf("outcome not serializable on %s: %v\noutcome: %+v (errs %v)",
						tr.Name, err, o, o.Errs)
				}
				t.Logf("serialized as %s", orDash(order))
			})
		}
	}
}

// TestAllowedOutcomesReachable runs every pattern's serial schedule against
// every serializable tree: with no interleaving there is nothing to
// regulate, so every transaction must complete exactly as the serial
// simulation predicts (no mechanism may forbid the allowed outcome).
func TestAllowedOutcomesReachable(t *testing.T) {
	for _, p := range All() {
		for _, tr := range SerializableTrees() {
			p, tr := p, tr
			t.Run(fmt.Sprintf("%s/%s", p.Name, tr.Name), func(t *testing.T) {
				t.Parallel()
				o, err := Run(p, tr.Build(typeNames(p)), p.SerialSchedule(), true)
				if err != nil {
					t.Fatal(err)
				}
				want := SimulateSerial(p)
				if diff := diffOutcome(p, want, o); diff != "" {
					t.Fatalf("serial schedule diverged on %s: %s (errs %v)", tr.Name, diff, o.Errs)
				}
			})
		}
	}
}

// TestAnomaliesReachableUnderReadCommitted is the executable negative
// control: on the None-under-SSI control tree (plain read-committed
// visibility, no conflict regulation) the read-committed-admitted
// anomalies must actually happen under the adversarial schedule — proving
// the suite's schedules drive the engine into the danger zone and it is
// the serializable mechanisms, not the driver, preventing the anomalies.
func TestAnomaliesReachableUnderReadCommitted(t *testing.T) {
	for _, p := range All() {
		p := p
		if !p.ReadCommitted {
			continue
		}
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			o, err := Run(p, ReadCommittedTree(typeNames(p)), p.Schedule, true)
			if err != nil {
				t.Fatal(err)
			}
			if !p.Anomalous(o) {
				t.Fatalf("anomaly not reached under read committed: %+v (errs %v)", o, o.Errs)
			}
		})
	}
}

func typeNames(p *Pattern) []string {
	var names []string
	for _, tx := range p.Txns {
		names = append(names, tx.Name)
	}
	return names
}

func orDash(s string) string {
	if s == "" {
		return "(empty)"
	}
	return s
}

func diffOutcome(p *Pattern, want, got *Outcome) string {
	for _, tx := range p.Txns {
		if want.Committed[tx.Name] != got.Committed[tx.Name] {
			return fmt.Sprintf("txn %s committed=%v, want %v",
				tx.Name, got.Committed[tx.Name], want.Committed[tx.Name])
		}
		if !equalReads(want.Reads[tx.Name], got.Reads[tx.Name]) {
			return fmt.Sprintf("txn %s reads=%v, want %v",
				tx.Name, got.Reads[tx.Name], want.Reads[tx.Name])
		}
	}
	for _, k := range p.Keys() {
		if want.Final[k] != got.Final[k] {
			return fmt.Sprintf("final %s=%q, want %q", k, got.Final[k], want.Final[k])
		}
	}
	return ""
}
