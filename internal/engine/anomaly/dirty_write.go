package anomaly

// DirtyWrite (ANSI P0 / G0): the writes of two transactions interleave on
// two keys, leaving a final state mixing both — x from one writer, y from
// the other — which no serial order can produce.
//
// The engine's multiversion store makes this anomaly structurally
// impossible even without concurrency control (each transaction installs
// its own versions and the final state per key follows commit-timestamp
// order, which is total per transaction), so like dirty-read its only
// reachability witness is the single-version no-isolation simulator.
func DirtyWrite() *Pattern {
	return &Pattern{
		Name:    "dirty-write",
		Initial: map[string]string{"x": "0", "y": "0"},
		Txns: []Txn{
			{Name: "t1", Ops: []Op{W("x", "1"), W("y", "1"), C()}},
			{Name: "t2", Ops: []Op{W("x", "2"), W("y", "2"), C()}},
		},
		Schedule:  []string{"t1", "t2", "t2", "t1", "t1", "t2"},
		Anomalous: func(o *Outcome) bool { return o.Final["x"] != o.Final["y"] },
	}
}
