// Package anomaly is an executable catalogue of the classic transaction
// anomalies, each expressed as a named interleaving pattern with an oracle
// for the outcomes a serializable mechanism may produce. The suite runs
// every pattern against every leaf CC mechanism and a matrix of nested CC
// trees (see trees.go), asserting that forbidden outcomes are impossible
// and that allowed outcomes stay reachable. The per-anomaly pattern-file
// layout follows the per-anomaly test structure of go-test-pgssi.
//
// The package is a deterministic schedule driver: a failing interleaving
// must fail identically on every run. tebaldivet's detguard analyzer
// enforces this (no wall clock, no global rand, no map-order dependence).
//
// tebaldi:deterministic
package anomaly

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// table is the single logical table all patterns operate on. Predicate
// (phantom) patterns are expressed as scans over a fixed keyset, since the
// store is point-access.
const table = "t"

// OpKind enumerates the schedule step kinds.
type OpKind int

// The step kinds a transaction program is built from.
const (
	OpRead OpKind = iota
	OpWrite
	OpCommit
	OpAbort
)

// Op is one step of a transaction program. Write values are functions of
// the values the transaction has read so far, which keeps programs
// deterministic and lets the oracle re-execute them serially.
type Op struct {
	Kind OpKind
	Key  string
	// Val computes the written value from the reads observed so far.
	Val func(reads []string) string
}

// R reads key k.
func R(k string) Op { return Op{Kind: OpRead, Key: k} }

// W writes the constant v to key k.
func W(k, v string) Op {
	return Op{Kind: OpWrite, Key: k, Val: func([]string) string { return v }}
}

// WF writes f(reads-so-far) to key k (read-modify-write steps).
func WF(k string, f func(reads []string) string) Op {
	return Op{Kind: OpWrite, Key: k, Val: f}
}

// C commits the transaction.
func C() Op { return Op{Kind: OpCommit} }

// A aborts the transaction (a user abort — the program intends to roll
// back, as in the dirty-read pattern).
func A() Op { return Op{Kind: OpAbort} }

// Txn is one named transaction program. Name doubles as the transaction
// TYPE registered with the engine, so trees can route the pattern's
// transactions into different subtrees.
type Txn struct {
	Name string
	Ops  []Op
}

// Pattern is one named anomaly: programs, the adversarial interleaving
// that produces the anomaly absent concurrency control, and a predicate
// recognising the anomalous outcome.
type Pattern struct {
	Name    string
	Initial map[string]string
	Txns    []Txn
	// Schedule is the adversarial interleaving: each entry names a
	// transaction and dispatches its next program step.
	Schedule []string
	// Anomalous reports whether an outcome exhibits the anomaly. The
	// suite asserts it never holds under a serializable tree, and that
	// it does hold under the no-isolation simulator (and, where the
	// anomaly is admitted by read committed, under the engine's
	// read-committed control tree).
	Anomalous func(o *Outcome) bool
	// ReadCommitted reports that plain read-committed visibility admits
	// the anomaly, so the suite asserts it reachable on the engine's
	// control tree (None group under an optimized SSI root).
	ReadCommitted bool
}

// SerialSchedule returns the non-interleaved schedule: every transaction
// runs start-to-finish in program order.
func (p *Pattern) SerialSchedule() []string {
	var s []string
	for _, t := range p.Txns {
		for range t.Ops {
			s = append(s, t.Name)
		}
	}
	return s
}

// Keys returns every key the pattern touches, sorted.
func (p *Pattern) Keys() []string {
	set := map[string]bool{}
	for k := range p.Initial {
		set[k] = true
	}
	for _, t := range p.Txns {
		for _, op := range t.Ops {
			if op.Key != "" {
				set[op.Key] = true
			}
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (p *Pattern) txn(name string) *Txn {
	for i := range p.Txns {
		if p.Txns[i].Name == name {
			return &p.Txns[i]
		}
	}
	return nil
}

// Outcome is what one execution of a pattern produced: which transactions
// committed, what each read observed (successful reads only, in program
// order), the first error per transaction, and the final committed state.
type Outcome struct {
	Committed map[string]bool
	Reads     map[string][]string
	Errs      map[string]error
	Final     map[string]string
}

// ReadsOf returns t's observed reads ("" when it read nothing).
func (o *Outcome) ReadsOf(t string) []string { return o.Reads[t] }

// stepGrace is how long the driver waits for a dispatched step before
// assuming the mechanism blocked it and moving to the next schedule entry.
// Steps never sleep, so anything slower than this is a real CC block.
const stepGrace = 25 * time.Millisecond

// runner drives one transaction program on its own goroutine (Tx methods
// are single-goroutine by contract). Steps arrive over a queue so the
// driver can keep scheduling other transactions while this one is blocked
// inside a CC wait.
type runner struct {
	name string
	part uint64
	ops  []Op

	queue chan int        // op indices, dispatched in program order
	acks  []chan struct{} // closed when the corresponding op finishes
	done  chan struct{}

	mu    sync.Mutex
	reads []string
	err   error
	state string // "", "committed", "aborted"
}

func (r *runner) run(e *engine.Engine) {
	defer close(r.done)
	var tx *engine.Tx
	for idx := range r.queue {
		op := r.ops[idx]
		r.mu.Lock()
		failed := r.err != nil
		r.mu.Unlock()
		if failed {
			// The transaction already auto-aborted on an earlier
			// error; drain the remaining steps.
			close(r.acks[idx])
			continue
		}
		if tx == nil {
			t, err := e.Begin(r.name, r.part)
			if err != nil {
				r.fail(err)
				close(r.acks[idx])
				continue
			}
			tx = t
		}
		switch op.Kind {
		case OpRead:
			v, err := tx.Read(core.Key{Table: table, Row: op.Key})
			if err != nil {
				r.fail(err)
			} else {
				r.mu.Lock()
				r.reads = append(r.reads, string(v))
				r.mu.Unlock()
			}
		case OpWrite:
			r.mu.Lock()
			val := op.Val(append([]string(nil), r.reads...))
			r.mu.Unlock()
			if err := tx.Write(core.Key{Table: table, Row: op.Key}, []byte(val)); err != nil {
				r.fail(err)
			}
		case OpCommit:
			if err := tx.Commit(); err != nil {
				r.fail(err)
			} else {
				r.mu.Lock()
				r.state = "committed"
				r.mu.Unlock()
			}
		case OpAbort:
			tx.Rollback(nil)
			r.mu.Lock()
			r.state = "aborted"
			r.mu.Unlock()
		}
		close(r.acks[idx])
	}
	if tx != nil {
		r.mu.Lock()
		unfinished := r.state == "" && r.err == nil
		r.mu.Unlock()
		if unfinished {
			tx.Rollback(nil)
		}
	}
}

func (r *runner) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.state = "aborted"
	r.mu.Unlock()
}

// Run executes the pattern's transactions under the given CC tree following
// schedule. With strict false, blocked steps do not stall the driver: after
// stepGrace the next schedule entry runs, and the blocked step completes
// (or times out inside the engine) whenever the mechanism lets it. With
// strict true, the driver waits for every step — only valid for schedules
// that cannot block (serial runs, the read-committed control), where it
// makes the outcome deterministic regardless of machine load. Run returns
// once every transaction has finished.
func Run(p *Pattern, cfg *engine.NodeSpec, schedule []string, strict bool) (*Outcome, error) {
	var specs []*core.Spec
	for _, t := range p.Txns {
		specs = append(specs, &core.Spec{
			Name:        t.Name,
			Tables:      []string{table},
			WriteTables: []string{table},
		})
	}
	e, err := engine.New(engine.Options{
		Shards:      4,
		LockTimeout: 250 * time.Millisecond,
		GCInterval:  -1, // deterministic runs: no background GC
		BatchAge:    time.Nanosecond,
	}, specs, cfg)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	for k, v := range p.Initial {
		e.Load(core.Key{Table: table, Row: k}, []byte(v))
	}

	runners := map[string]*runner{}
	for i, t := range p.Txns {
		r := &runner{
			name:  t.Name,
			part:  uint64(i),
			ops:   t.Ops,
			queue: make(chan int, len(t.Ops)),
			done:  make(chan struct{}),
		}
		for range t.Ops {
			r.acks = append(r.acks, make(chan struct{}))
		}
		runners[t.Name] = r
		go r.run(e)
	}

	next := map[string]int{}
	for _, name := range schedule {
		r := runners[name]
		if r == nil {
			return nil, fmt.Errorf("schedule names unknown txn %q", name)
		}
		idx := next[name]
		if idx >= len(r.ops) {
			return nil, fmt.Errorf("schedule overruns txn %q", name)
		}
		next[name] = idx + 1
		r.queue <- idx
		wait := stepGrace
		if strict {
			wait = 10 * time.Second
		}
		select {
		case <-r.acks[idx]:
		case <-time.After(wait):
			if strict {
				return nil, fmt.Errorf("strict schedule: txn %q blocked at step %d", name, idx)
			}
			// Blocked inside the mechanism; later steps (or the
			// engine's lock timeout) will release it.
		}
	}
	for _, t := range p.Txns {
		if next[t.Name] != len(t.Ops) {
			return nil, fmt.Errorf("schedule leaves txn %q at step %d/%d", t.Name, next[t.Name], len(t.Ops))
		}
	}

	// Iterate the pattern's declared txn order, not the runner map: a
	// deadline hit must name the same stuck transaction on every run.
	deadline := time.After(10 * time.Second)
	for _, t := range p.Txns {
		r := runners[t.Name]
		close(r.queue)
		select {
		case <-r.done:
		case <-deadline:
			return nil, fmt.Errorf("txn %q did not finish (driver deadline)", r.name)
		}
	}

	o := &Outcome{
		Committed: map[string]bool{},
		Reads:     map[string][]string{},
		Errs:      map[string]error{},
		Final:     map[string]string{},
	}
	for name, r := range runners {
		r.mu.Lock()
		o.Committed[name] = r.state == "committed"
		o.Reads[name] = append([]string(nil), r.reads...)
		o.Errs[name] = r.err
		r.mu.Unlock()
	}
	for _, k := range p.Keys() {
		o.Final[k] = string(e.ReadCommitted(core.Key{Table: table, Row: k}))
	}
	return o, nil
}
