package anomaly

// LostUpdate (P4): both transactions read the same balance and apply an
// increment; if both commit, one increment vanishes (final 15 instead of
// 20). This is THE anomaly behind both fixed CC bugs — the hot-4layer
// w_ytd/d_ytd drift and the TSO-non-leaf double read — which makes it the
// suite's most load-bearing pattern. Admitted by read committed.
func LostUpdate() *Pattern {
	inc := func(reads []string) string { return itoa(atoi(reads[len(reads)-1]) + 5) }
	return &Pattern{
		Name:    "lost-update",
		Initial: map[string]string{"x": "10"},
		Txns: []Txn{
			{Name: "t1", Ops: []Op{R("x"), WF("x", inc), C()}},
			{Name: "t2", Ops: []Op{R("x"), WF("x", inc), C()}},
		},
		Schedule: []string{"t1", "t2", "t1", "t1", "t2", "t2"},
		Anomalous: func(o *Outcome) bool {
			return o.Committed["t1"] && o.Committed["t2"] && o.Final["x"] == "15"
		},
		ReadCommitted: true,
	}
}
