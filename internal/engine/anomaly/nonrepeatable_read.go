package anomaly

// NonRepeatableRead (ANSI P2 "fuzzy read"): t1 reads x twice and a
// committed write by t2 slips in between, so the two reads disagree within
// one transaction. Admitted by read committed; forbidden from serializable
// histories (there is no serial position for t1 that explains both reads).
func NonRepeatableRead() *Pattern {
	return &Pattern{
		Name:    "non-repeatable-read",
		Initial: map[string]string{"x": "0"},
		Txns: []Txn{
			{Name: "t1", Ops: []Op{R("x"), R("x"), C()}},
			{Name: "t2", Ops: []Op{W("x", "1"), C()}},
		},
		Schedule: []string{"t1", "t2", "t2", "t1", "t1"},
		Anomalous: func(o *Outcome) bool {
			r := o.ReadsOf("t1")
			return o.Committed["t1"] && len(r) == 2 && r[0] != r[1]
		},
		ReadCommitted: true,
	}
}
