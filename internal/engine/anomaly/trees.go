package anomaly

import "repro/internal/engine"

// TreeSpec names one CC tree shape of the matrix. Build receives the
// pattern's transaction type names (one per transaction, in declaration
// order) and assigns them to the shape's groups; nested shapes split the
// types across children round-robin so the cross-child mechanism is
// actually exercised.
type TreeSpec struct {
	Name  string
	Build func(types []string) *engine.NodeSpec
}

func split(types []string) (even, odd []string) {
	for i, t := range types {
		if i%2 == 0 {
			even = append(even, t)
		} else {
			odd = append(odd, t)
		}
	}
	return even, odd
}

// SerializableTrees is the matrix every anomaly must be impossible on:
// each leaf mechanism alone, plus nested shapes including the two
// previously-buggy ones (RP over RP|2PL from hot-4layer, TSO over 2PL
// children) and a partition-by-instance tree.
func SerializableTrees() []TreeSpec {
	return []TreeSpec{
		{"leaf-2pl", func(types []string) *engine.NodeSpec {
			return engine.G(engine.Kind2PL, types)
		}},
		{"leaf-ssi", func(types []string) *engine.NodeSpec {
			return engine.G(engine.KindSSI, types)
		}},
		{"leaf-rp", func(types []string) *engine.NodeSpec {
			return engine.G(engine.KindRP, types)
		}},
		{"leaf-tso", func(types []string) *engine.NodeSpec {
			return engine.G(engine.KindTSO, types)
		}},
		{"2pl-over-rp", func(types []string) *engine.NodeSpec {
			even, odd := split(types)
			return engine.G(engine.Kind2PL, nil,
				engine.G(engine.KindRP, even),
				engine.G(engine.KindRP, odd))
		}},
		// The hot-4layer core: RP regulating an RP group against a 2PL
		// group (bug (1)'s shape).
		{"rp-over-rp-2pl", func(types []string) *engine.NodeSpec {
			even, odd := split(types)
			return engine.G(engine.KindRP, nil,
				engine.G(engine.KindRP, even),
				engine.G(engine.Kind2PL, odd))
		}},
		// TSO as a non-leaf over 2PL children (bug (2)'s shape).
		{"tso-nonleaf", func(types []string) *engine.NodeSpec {
			even, odd := split(types)
			return engine.G(engine.KindTSO, nil,
				engine.G(engine.Kind2PL, even),
				engine.G(engine.Kind2PL, odd))
		}},
		{"ssi-batched", func(types []string) *engine.NodeSpec {
			even, odd := split(types)
			s := engine.G(engine.KindSSI, nil,
				engine.G(engine.Kind2PL, even),
				engine.G(engine.Kind2PL, odd))
			s.ForceBatched = true
			return s
		}},
		// Partition-by-instance (§5.4.2): transactions route to clones by
		// instance partition; the driver assigns each transaction its
		// declaration index as partition, so cross-clone conflicts hit
		// the root 2PL while same-clone pairs are the SSI leaf's.
		{"by-instance-2pl", func(types []string) *engine.NodeSpec {
			return &engine.NodeSpec{
				Kind:       engine.Kind2PL,
				ByInstance: true,
				Clones:     2,
				Children:   []*engine.NodeSpec{engine.G(engine.KindSSI, types)},
			}
		}},
	}
}

// ReadCommittedTree is the negative-control tree: a None group under an
// SSI root running in optimized mode. Update transactions read
// latest-committed state with no conflict regulation at all (same-child
// conflicts are delegated to the None leaf, which regulates nothing) —
// i.e. plain read committed. Patterns flagged ReadCommitted must exhibit
// their anomaly here.
func ReadCommittedTree(types []string) *engine.NodeSpec {
	return engine.G(engine.KindSSI, nil, engine.G(engine.KindNone, types))
}
