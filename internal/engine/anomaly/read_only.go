package anomaly

// ReadOnlyAnomaly (Fekete/O'Neil/O'Neil): checking account x and savings
// account y, both 0. t1 deposits 20 into savings; t2 withdraws 10 from
// checking, paying a 1 overdraft penalty if the combined balance cannot
// cover it; t3 is a pure reader. The anomalous history commits all three
// with t3 observing (x=0, y=20) yet a final x of -11: t3's view forces
// t1 < t3 < t2 in any serial order, but then t2 would have seen the
// deposit and charged no penalty. The read-only t3 is what makes the
// history non-serializable. Admitted by read committed (and SI).
func ReadOnlyAnomaly() *Pattern {
	withdraw := func(reads []string) string {
		x, y := atoi(reads[0]), atoi(reads[1])
		if x+y >= 10 {
			return itoa(x - 10)
		}
		return itoa(x - 11) // overdraft penalty
	}
	deposit := func(reads []string) string { return itoa(atoi(reads[0]) + 20) }
	return &Pattern{
		Name:    "read-only-anomaly",
		Initial: map[string]string{"x": "0", "y": "0"},
		Txns: []Txn{
			{Name: "t1", Ops: []Op{R("y"), WF("y", deposit), C()}},
			{Name: "t2", Ops: []Op{R("x"), R("y"), WF("x", withdraw), C()}},
			{Name: "t3", Ops: []Op{R("x"), R("y"), C()}},
		},
		Schedule: []string{
			"t2", "t2", // t2 reads x=0, y=0
			"t1", "t1", "t1", // t1 deposits and commits
			"t3", "t3", "t3", // t3 sees the deposit but not the withdrawal
			"t2", "t2", // t2 withdraws with penalty and commits
		},
		Anomalous: func(o *Outcome) bool {
			r := o.ReadsOf("t3")
			return o.Committed["t1"] && o.Committed["t2"] && o.Committed["t3"] &&
				len(r) == 2 && r[0] == "0" && r[1] == "20" && o.Final["x"] == "-11"
		},
		ReadCommitted: true,
	}
}
