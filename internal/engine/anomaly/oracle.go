package anomaly

import (
	"fmt"
	"strings"
)

// This file is the suite's oracle: pattern programs are deterministic
// (write values are functions of prior reads), so any claimed execution can
// be re-run abstractly. Three checks come out of that:
//
//   - SimulateSerial: the outcome of running the programs one at a time in
//     declaration order — every tree must be able to produce it when given
//     the serial schedule (allowed outcomes stay reachable).
//   - CheckSerializable: whether an outcome's committed transactions are
//     view-equivalent to SOME serial order (reads and final state both
//     match). This is what "forbidden outcome" means for a serializable
//     tree: the anomaly predicate must not hold, and the outcome must
//     equal one of the serial executions.
//   - SimulateNoIsolation: the interleaved schedule run against a single
//     shared single-version state (read-uncommitted, in-place writes with
//     rollback pre-images). Every pattern must exhibit its anomaly here,
//     proving the schedule actually encodes it.

// applyTxn runs one program against state, returning its reads and
// buffering its writes; committed programs apply their writes, aborting
// ones do not.
func applyTxn(t *Txn, state map[string]string) (reads []string, commit bool) {
	writes := map[string]string{}
	read := func(k string) string {
		if v, ok := writes[k]; ok {
			return v
		}
		return state[k]
	}
	commit = false
	for _, op := range t.Ops {
		switch op.Kind {
		case OpRead:
			reads = append(reads, read(op.Key))
		case OpWrite:
			writes[op.Key] = op.Val(append([]string(nil), reads...))
		case OpCommit:
			commit = true
		case OpAbort:
			commit = false
		}
	}
	if commit {
		for k, v := range writes {
			state[k] = v
		}
	}
	return reads, commit
}

// SimulateSerial returns the outcome of executing the programs serially in
// declaration order.
func SimulateSerial(p *Pattern) *Outcome {
	state := map[string]string{}
	for k, v := range p.Initial {
		state[k] = v
	}
	o := &Outcome{
		Committed: map[string]bool{},
		Reads:     map[string][]string{},
		Errs:      map[string]error{},
		Final:     map[string]string{},
	}
	for i := range p.Txns {
		t := &p.Txns[i]
		reads, committed := applyTxn(t, state)
		o.Reads[t.Name] = reads
		o.Committed[t.Name] = committed
	}
	for _, k := range p.Keys() {
		o.Final[k] = state[k]
	}
	return o
}

// CheckSerializable reports whether o's committed transactions are
// view-equivalent to some serial order of exactly those transactions: their
// observed reads and the final committed state must match a serial
// re-execution. On success it returns the witnessing order; on failure, a
// diagnostic.
func CheckSerializable(p *Pattern, o *Outcome) (string, error) {
	var committed []string
	for _, t := range p.Txns {
		if o.Committed[t.Name] {
			committed = append(committed, t.Name)
		}
	}
	var diag string
	for _, order := range permutations(committed) {
		state := map[string]string{}
		for k, v := range p.Initial {
			state[k] = v
		}
		ok := true
		for _, name := range order {
			reads, _ := applyTxn(p.txn(name), state)
			if !equalReads(reads, o.Reads[name]) {
				ok = false
				diag = fmt.Sprintf("order %v: txn %s read %v, expected %v",
					order, name, o.Reads[name], reads)
				break
			}
		}
		if !ok {
			continue
		}
		for _, k := range p.Keys() {
			if state[k] != o.Final[k] {
				ok = false
				diag = fmt.Sprintf("order %v: final %s=%q, expected %q",
					order, k, o.Final[k], state[k])
				break
			}
		}
		if ok {
			return strings.Join(order, "<"), nil
		}
	}
	if len(committed) == 0 {
		return "", nil // nothing committed: trivially serializable
	}
	return "", fmt.Errorf("no serial order of %v explains the outcome (last mismatch: %s)", committed, diag)
}

func equalReads(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func permutations(names []string) [][]string {
	if len(names) == 0 {
		return [][]string{{}}
	}
	var out [][]string
	for i := range names {
		rest := make([]string, 0, len(names)-1)
		rest = append(rest, names[:i]...)
		rest = append(rest, names[i+1:]...)
		for _, sub := range permutations(rest) {
			out = append(out, append([]string{names[i]}, sub...))
		}
	}
	return out
}

// SimulateNoIsolation executes the pattern's interleaved schedule against a
// single-version shared state with no concurrency control at all: reads see
// the latest write (committed or not), writes apply in place, aborts
// restore pre-images. This is the anomaly's "it really happens" witness.
func SimulateNoIsolation(p *Pattern) *Outcome {
	state := map[string]string{}
	for k, v := range p.Initial {
		state[k] = v
	}
	type tstate struct {
		reads     []string
		preimages map[string]string
		committed bool
	}
	ts := map[string]*tstate{}
	for _, t := range p.Txns {
		ts[t.Name] = &tstate{preimages: map[string]string{}}
	}
	next := map[string]int{}
	for _, name := range p.Schedule {
		t := p.txn(name)
		s := ts[name]
		op := t.Ops[next[name]]
		next[name]++
		switch op.Kind {
		case OpRead:
			s.reads = append(s.reads, state[op.Key])
		case OpWrite:
			if _, saved := s.preimages[op.Key]; !saved {
				s.preimages[op.Key] = state[op.Key]
			}
			state[op.Key] = op.Val(append([]string(nil), s.reads...))
		case OpCommit:
			s.committed = true
		case OpAbort:
			for k, v := range s.preimages {
				state[k] = v
			}
		}
	}
	o := &Outcome{
		Committed: map[string]bool{},
		Reads:     map[string][]string{},
		Errs:      map[string]error{},
		Final:     map[string]string{},
	}
	for name, s := range ts {
		o.Committed[name] = s.committed
		o.Reads[name] = s.reads
	}
	for _, k := range p.Keys() {
		o.Final[k] = state[k]
	}
	return o
}
