package anomaly

// DirtyRead (ANSI P1 / G1a "aborted read"): t2 reads t1's uncommitted
// write, t1 rolls back, t2 commits having observed a value that never
// existed.
//
// A serializable tree may let t2 observe the pending write (RP and TSO
// deliberately expose uncommitted state), but then t2 carries a read-from
// dependency and t1's abort must cascade — t2 can commit only if it read
// the committed "0". Read committed also forbids this one, so the only
// reachability witness is the no-isolation simulator.
func DirtyRead() *Pattern {
	return &Pattern{
		Name:    "dirty-read",
		Initial: map[string]string{"x": "0"},
		Txns: []Txn{
			{Name: "t1", Ops: []Op{W("x", "1"), A()}},
			{Name: "t2", Ops: []Op{R("x"), C()}},
		},
		Schedule:  []string{"t1", "t2", "t1", "t2"},
		Anomalous: func(o *Outcome) bool { return o.Committed["t2"] && o.ReadsOf("t2")[0] == "1" },
	}
}
