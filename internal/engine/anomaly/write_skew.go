package anomaly

// WriteSkew (A5B): both transactions read {x,y} under the constraint
// "x + y >= 1" and each zeroes a different key; serially either one would
// see the other's write and the constraint logic would stop it, but under
// snapshot-style isolation both commit and the constraint breaks. The
// classic SI anomaly — admitted by read committed and snapshot isolation,
// forbidden by every serializable tree.
func WriteSkew() *Pattern {
	return &Pattern{
		Name:    "write-skew",
		Initial: map[string]string{"x": "1", "y": "1"},
		Txns: []Txn{
			{Name: "t1", Ops: []Op{R("x"), R("y"), W("x", "0"), C()}},
			{Name: "t2", Ops: []Op{R("x"), R("y"), W("y", "0"), C()}},
		},
		Schedule: []string{"t1", "t1", "t2", "t2", "t1", "t2", "t1", "t2"},
		// The skew is that BOTH writers saw the constraint satisfied
		// (x+y=2) and committed: serially the later one observes the
		// earlier zero, so these reads identify the non-serializable
		// history (final state alone cannot — (0,0) is also the serial
		// result of two unconditional writes).
		Anomalous: func(o *Outcome) bool {
			both := func(r []string) bool { return len(r) >= 2 && r[0] == "1" && r[1] == "1" }
			return o.Committed["t1"] && o.Committed["t2"] &&
				both(o.ReadsOf("t1")) && both(o.ReadsOf("t2")) &&
				o.Final["x"] == "0" && o.Final["y"] == "0"
		},
		ReadCommitted: true,
	}
}
