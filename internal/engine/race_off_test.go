//go:build !race

package engine

// raceDetectorEnabled reports whether this test binary was built with the
// race detector (used to skip tests with known race-timing-exposed bugs).
const raceDetectorEnabled = false
