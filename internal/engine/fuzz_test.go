package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// Randomized serializability fuzz over mixed CC trees: an SSI root
// federating 2PL and RP transfer leaves, a read-only audit group, and a
// partition-by-instance TSO subtree — the full federation shape of §5.4.
// Concurrent random transfers (and audits) run against one account table;
// the committed history is recorded and verified with the conflict-graph
// cycle check of serializability_test.go, NOT against a fixed expected
// order: the federation admits many serial orders for the same input, and
// any acyclic DSG certifies one of them. Balance conservation is asserted
// on top (a cycle-free history could still lose money to a lost update if
// the recording itself were wrong).

const xferInitial = 1000

// encAcct encodes (writer txn id, balance); decAcct parses it back. Writer
// id 0 is the initial load.
func encAcct(writer uint64, bal int64) []byte {
	return []byte(fmt.Sprintf("%d %d", writer, bal))
}

func decAcct(t *testing.T, b []byte) (uint64, int64) {
	var w uint64
	var bal int64
	if _, err := fmt.Sscanf(string(b), "%d %d", &w, &bal); err != nil {
		// Errorf, not Fatalf: decAcct runs on worker goroutines.
		t.Errorf("malformed account value %q: %v", b, err)
	}
	return w, bal
}

// transferConfig builds the mixed tree: SSI root over (audit | 2PL nexus
// over RP+2PL transfer leaves | per-partition TSO clones).
func transferConfig(parts int) *NodeSpec {
	return G(KindSSI, nil,
		G(KindNone, []string{"audit"}),
		G(Kind2PL, nil,
			G(KindRP, []string{"xfer_rp"}),
			G(Kind2PL, []string{"xfer_2pl"})),
		&NodeSpec{Kind: Kind2PL, ByInstance: true, Clones: parts,
			Children: []*NodeSpec{G(KindTSO, []string{"xfer_tso"})}},
	)
}

func transferSpecs() []*core.Spec {
	return []*core.Spec{
		{Name: "xfer_2pl", Tables: []string{"acct"}, WriteTables: []string{"acct"}},
		{Name: "xfer_rp", Tables: []string{"acct"}, WriteTables: []string{"acct"}},
		{Name: "xfer_tso", Tables: []string{"acct"}, WriteTables: []string{"acct"}, InstanceDomain: 4},
		{Name: "audit", ReadOnly: true, Tables: []string{"acct"}},
	}
}

// runTransferFuzz drives the workload for one seed and returns the history.
func runTransferFuzz(t *testing.T, seed int64, accounts, parts, workers, txnsEach int) {
	t.Helper()
	e, err := New(Options{Shards: 4, LockTimeout: 3 * time.Second}, transferSpecs(), transferConfig(parts))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < accounts; i++ {
		e.Load(core.KeyOf("acct", i), encAcct(0, xferInitial))
	}
	perPart := accounts / parts

	h := &history{eng: e}
	types := []string{"xfer_2pl", "xfer_rp", "xfer_tso", "audit"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(workerSeed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(workerSeed))
			for i := 0; i < txnsEach; i++ {
				typ := types[rng.Intn(len(types))]
				var part uint64
				var a, b int
				switch typ {
				case "xfer_tso":
					// TSO conflicts partition by instance: both
					// accounts of a TSO transfer stay inside one
					// partition, as InstanceDomain declares.
					p := rng.Intn(parts)
					part = uint64(p)
					oa := rng.Intn(perPart)
					ob := rng.Intn(perPart - 1)
					if ob >= oa {
						ob++
					}
					a, b = p*perPart+oa, p*perPart+ob
				default:
					a = rng.Intn(accounts)
					b = rng.Intn(accounts - 1)
					if b >= a {
						b++
					}
				}
				obs := &obsTxn{writes: map[core.Key]uint64{}}
				keyA, keyB := core.KeyOf("acct", a), core.KeyOf("acct", b)
				err := e.RunTxn(typ, part, func(tx *Tx) error {
					obs.reads = obs.reads[:0]
					obs.id = tx.ID()
					obs.typ = typ
					obs.beginTS = tx.Txn().BeginTS
					obs.txn = tx.Txn()
					if typ == "audit" {
						// Read-only scan over a few accounts.
						n := 2 + rng.Intn(4)
						for j := 0; j < n; j++ {
							k := core.KeyOf("acct", rng.Intn(accounts))
							v, err := tx.Read(k)
							if err != nil {
								return err
							}
							w, _ := decAcct(t, v)
							obs.reads = append(obs.reads, obsRead{key: k, writer: w})
						}
						return nil
					}
					va, err := tx.Read(keyA)
					if err != nil {
						return err
					}
					wa, balA := decAcct(t, va)
					obs.reads = append(obs.reads, obsRead{key: keyA, writer: wa})
					vb, err := tx.Read(keyB)
					if err != nil {
						return err
					}
					wb, balB := decAcct(t, vb)
					obs.reads = append(obs.reads, obsRead{key: keyB, writer: wb})
					amt := int64(1 + rng.Intn(20))
					if err := tx.Write(keyA, encAcct(tx.ID(), balA-amt)); err != nil {
						return err
					}
					return tx.Write(keyB, encAcct(tx.ID(), balB+amt))
				})
				if err == nil {
					cts := obs.txn.CommitTS()
					if typ != "audit" {
						obs.writes[keyA] = cts
						obs.writes[keyB] = cts
					}
					h.add(obs)
				}
			}
		}(seed*1000 + int64(w))
	}
	wg.Wait()

	if len(h.txns) == 0 {
		t.Fatal("no transactions committed")
	}
	// Conservation: the committed balances must sum to the initial total.
	var sum int64
	for i := 0; i < accounts; i++ {
		_, bal := decAcct(t, e.ReadCommitted(core.KeyOf("acct", i)))
		sum += bal
	}
	if want := int64(accounts) * xferInitial; sum != want {
		t.Fatalf("seed %d: money not conserved: sum %d, want %d", seed, sum, want)
	}
	checkSerializable(t, h)
}

// TestTransferSerializabilityFuzz runs the randomized transfer workload
// over several seeds on the mixed SSI/2PL/RP/TSO+PBI tree.
func TestTransferSerializabilityFuzz(t *testing.T) {
	workers, txns := 8, 40
	if testing.Short() {
		workers, txns = 4, 20
	}
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runTransferFuzz(t, seed, 16, 4, workers, txns)
		})
	}
}

// FuzzTransferSerializability is the native fuzz entry point: go's fuzzer
// mutates the seed (and with it every random choice in the workload);
// `go test` runs the corpus below, `go test -fuzz=Transfer` explores.
func FuzzTransferSerializability(f *testing.F) {
	f.Add(int64(7))
	f.Add(int64(42))
	f.Add(int64(20260728))
	f.Fuzz(func(t *testing.T, seed int64) {
		runTransferFuzz(t, seed, 12, 4, 4, 15)
	})
}
