package engine

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/wal"
)

// Engine-level crash-point torture: the WAL crash hook is driven through
// the full stack (engine commit protocol + checkpointer), so crash images
// are captured not only at append/flush/seal boundaries but also inside
// checkpoints — snapshot publication, frontier markers, manifest rename and
// the log-compaction write/sync/rename. A crash mid-compaction must leave
// either the complete old log or the complete new one; either way every
// sync-acknowledged commit must survive recovery, with no torn or
// double-applied state.

type tortureAck struct {
	ts  uint64
	val string
}

func tortureCopyDir(t testing.TB, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, de.Name()))
		if err != nil {
			if os.IsNotExist(err) {
				continue // renamed away mid-copy: a crash there loses it too
			}
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, de.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTortureCrashPointsAcrossCheckpoints(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	images := t.TempDir()

	var ackMu sync.Mutex
	acked := map[string]tortureAck{}         // key -> newest acknowledged write
	ledger := map[string]map[string]uint64{} // key -> val -> commitTS (0 = not committed)
	type img struct {
		dir, point string
		acked      map[string]tortureAck
	}
	var imgMu sync.Mutex
	var imgs []img
	hits := map[string]int{}
	captured := map[string]int{}
	const perPoint = 3
	// ckPauseMu serializes appender-side image captures against whole
	// checkpoints: a copy taken from an appender goroutine while the
	// checkpointer concurrently publishes checkpoint n+1 (rename manifest,
	// compact, delete snap-n) could mix files from two checkpoints into a
	// state no single-instant crash can produce. Checkpoint-side points
	// (ck.*/compact.*) fire on the checkpointer goroutine itself, which
	// already holds the lock — the copy there IS a single instant of the
	// checkpoint procedure.
	//
	// Harness lock order: the capture hook takes the bookkeeping mutexes
	// and the checkpointer calls Checkpoint (ckMu, and activeShard.mu
	// transitively) while holding ckPauseMu.
	//
	// tebaldi:locks order engine.ckPauseMu < engine.ackMu
	// tebaldi:locks order engine.ckPauseMu < engine.imgMu
	// tebaldi:locks order engine.ckPauseMu < engine.Engine.ckMu
	var ckPauseMu sync.Mutex
	hook := func(point string) {
		imgMu.Lock()
		hits[point]++
		h := hits[point]
		// Exponentially spaced captures so images sample the whole run,
		// not just its first milliseconds.
		if captured[point] >= perPoint || h&(h-1) != 0 {
			imgMu.Unlock()
			return
		}
		captured[point]++
		n := len(imgs)
		imgs = append(imgs, img{point: point})
		imgMu.Unlock()

		appenderSide := !strings.HasPrefix(point, "ck.") && !strings.HasPrefix(point, "compact.")
		if appenderSide {
			// TryLock, not Lock: the checkpointer holds ckPauseMu while
			// waiting for appender tickets, so an appender-side hook
			// blocking on it would deadlock the pipeline. Skipping the
			// capture (and un-counting it, so a later hit retries) is
			// fine — a crash image is only meaningful at an instant we
			// can reason about.
			//lint:allow unlockpath -- released below under the same appenderSide flag, which cannot change in between
			if !ckPauseMu.TryLock() {
				imgMu.Lock()
				captured[point]--
				imgMu.Unlock()
				return
			}
		}
		ackMu.Lock()
		snap := make(map[string]tortureAck, len(acked))
		for k, v := range acked {
			snap[k] = v
		}
		ackMu.Unlock()
		dst := filepath.Join(images, fmt.Sprintf("img-%03d-%s", n, strings.ReplaceAll(point, "/", "_")))
		tortureCopyDir(t, dir, dst)
		if appenderSide {
			ckPauseMu.Unlock()
		}

		imgMu.Lock()
		imgs[n].dir = dst
		imgs[n].acked = snap
		imgMu.Unlock()
	}

	opts := Options{
		Shards:         shards,
		LockTimeout:    2 * time.Second,
		DurabilityDir:  dir,
		DurabilitySync: true,
		GCPEpoch:       3 * time.Millisecond,
		crashHook:      hook,
	}
	specs := []*core.Spec{{Name: "inc", Tables: []string{"kv"}, WriteTables: []string{"kv"}}}
	e, err := New(opts, specs, G(Kind2PL, []string{"inc"}))
	if err != nil {
		t.Fatal(err)
	}

	workers, txnsEach, checkpoints := 6, 50, 6
	if testing.Short() {
		workers, txnsEach, checkpoints = 4, 20, 3
	}

	// Checkpointer: repeated checkpoints during the workload so the
	// compaction crash points fire while commits race them.
	ckDone := make(chan int)
	stopCK := make(chan struct{})
	go func() {
		ran := 0
		for {
			select {
			case <-stopCK:
				ckDone <- ran
				return
			default:
				ckPauseMu.Lock()
				err := e.Checkpoint()
				ckPauseMu.Unlock()
				if err == nil {
					ran++
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()

	var attemptSeq atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < txnsEach; i++ {
				key := core.KeyOf("kv", rng.Intn(12))
				var txn *core.Txn
				var val string
				err := e.RunTxn("inc", 0, func(tx *Tx) error {
					txn = tx.Txn()
					val = fmt.Sprintf("a%d", attemptSeq.Add(1))
					// Ledger entry before the write can reach any log:
					// recovery may surface any attempted value, but
					// only with its writer's true commit timestamp.
					ackMu.Lock()
					if ledger[key.String()] == nil {
						ledger[key.String()] = map[string]uint64{}
					}
					ledger[key.String()][val] = 0
					ackMu.Unlock()
					if _, err := tx.Read(key); err != nil {
						return err
					}
					return tx.Write(key, []byte(val))
				})
				if err != nil {
					continue
				}
				ts := txn.CommitTS()
				ackMu.Lock()
				ledger[key.String()][val] = ts
				if cur := acked[key.String()]; ts > cur.ts {
					acked[key.String()] = tortureAck{ts: ts, val: val}
				}
				ackMu.Unlock()
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	// Keep checkpointing until the compaction crash points fired enough.
	deadline := time.Now().Add(3 * time.Second)
	for {
		imgMu.Lock()
		enough := captured["compact.renamed"] > 0 && captured["ck.manifest"] > 0
		ran := 0
		for _, p := range []string{"ck.snapshot", "ck.frontier", "ck.manifest"} {
			ran += hits[p]
		}
		imgMu.Unlock()
		if (enough && ran >= checkpoints) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stopCK)
	ranCk := <-ckDone
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if ranCk < 2 {
		t.Fatalf("only %d checkpoints completed — compaction barely exercised", ranCk)
	}

	imgMu.Lock()
	verify := make([]img, 0, len(imgs))
	for _, im := range imgs {
		if im.dir != "" {
			verify = append(verify, im)
		}
	}
	pts := map[string]bool{}
	for p := range captured {
		pts[p] = true
	}
	imgMu.Unlock()
	if len(verify) == 0 {
		t.Fatal("no crash images captured")
	}
	for _, must := range []string{"ck.snapshot", "ck.manifest", "compact.written", "compact.synced", "compact.renamed"} {
		if !pts[must] {
			t.Errorf("no crash image captured at the %q boundary", must)
		}
	}

	for _, im := range verify {
		st, err := wal.Recover(im.dir, shards)
		if err != nil {
			t.Fatalf("image %s (%s): recovery failed: %v", im.dir, im.point, err)
		}
		got := map[string]tortureAck{}
		for _, w := range st.Writes {
			got[w.Key.String()] = tortureAck{ts: w.CommitTS, val: string(w.Value)}
		}
		for key, want := range im.acked {
			g, ok := got[key]
			if !ok {
				t.Fatalf("image %s: sync-acknowledged commit of %s (ts %d) lost (crash %s left neither old nor new state)",
					im.point, key, want.ts, im.point)
			}
			if g.ts < want.ts {
				t.Fatalf("image %s: %s recovered at ts %d, older than acknowledged ts %d",
					im.point, key, g.ts, want.ts)
			}
		}
		for key, g := range got {
			ts, ok := ledger[key][g.val]
			if !ok {
				t.Fatalf("image %s: %s recovered torn/foreign value %q", im.point, key, g.val)
			}
			if ts == 0 {
				t.Fatalf("image %s: %s recovered value %q from a transaction that never committed",
					im.point, key, g.val)
			}
			if ts != g.ts {
				t.Fatalf("image %s: %s value %q recovered at ts %d but committed at ts %d (double/mis-applied)",
					im.point, key, g.val, g.ts, ts)
			}
		}
	}
	t.Logf("verified %d crash images (%d checkpoints) across points %v", len(verify), ranCk, pts)
}

// TestRecoverFromMidCompactionImage pins the old-log-or-new-log guarantee
// deterministically: capture exactly one image before the compaction rename
// and one after, and recover both into full engines.
func TestRecoverFromMidCompactionImage(t *testing.T) {
	dir := t.TempDir()
	images := t.TempDir()
	var imgMu sync.Mutex
	caught := map[string]string{}
	hook := func(point string) {
		if point != "compact.synced" && point != "compact.renamed" {
			return
		}
		imgMu.Lock()
		defer imgMu.Unlock()
		if _, ok := caught[point]; ok {
			return
		}
		dst := filepath.Join(images, strings.ReplaceAll(point, "/", "_"))
		tortureCopyDir(t, dir, dst)
		caught[point] = dst
	}
	opts := Options{
		Shards:         2,
		LockTimeout:    2 * time.Second,
		DurabilityDir:  dir,
		DurabilitySync: true,
		GCPEpoch:       5 * time.Millisecond,
		crashHook:      hook,
	}
	specs := []*core.Spec{{Name: "put", Tables: []string{"kv"}, WriteTables: []string{"kv"}}}
	e, err := New(opts, specs, G(Kind2PL, []string{"put"}))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for i := 0; i < 50; i++ {
		k := core.KeyOf("kv", i%10)
		v := fmt.Sprintf("v%d", i)
		if err := e.RunTxn("put", 0, func(tx *Tx) error { return tx.Write(k, []byte(v)) }); err != nil {
			t.Fatal(err)
		}
		want[k.String()] = v
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	imgMu.Lock()
	pre, post := caught["compact.synced"], caught["compact.renamed"]
	imgMu.Unlock()
	if pre == "" || post == "" {
		t.Fatalf("missing compaction images: %v", caught)
	}
	for name, im := range map[string]string{"old log (pre-rename)": pre, "new log (post-rename)": post} {
		opts2 := opts
		opts2.DurabilityDir = im
		opts2.crashHook = nil
		e2, _, err := Recover(opts2, specs, G(Kind2PL, []string{"put"}))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for k, v := range want {
			row := strings.TrimPrefix(k, "kv/")
			if got := string(e2.ReadCommitted(core.Key{Table: "kv", Row: row})); got != v {
				t.Fatalf("%s: %s = %q, want %q", name, k, got, v)
			}
		}
		e2.Close()
	}
}
