package engine

import (
	"testing"
	"time"

	"repro/internal/core"
)

// Deterministic regressions for the two race-timing CC bugs fixed in this
// tree. Both are reproduced by client-driven interleaving on a single
// goroutine — no sleeps, no scheduler dependence — so the fixes cannot
// silently regress even in builds without the race detector.

// TestRPNonLeafKeepsSameChildProposal pins bug (1): in the hot-4layer
// RP-over-(RP|2PL) nesting, the non-leaf RP dropped a same-child
// step-committed pending proposal (its first-clause guard required
// !StepCommitted) and its candidate scan skipped all same-child versions,
// substituting stale committed history. A payment-shaped transaction
// pipelining behind another thus read the warehouse's OLD balance while
// later reading the district's NEW one — the w_ytd/d_ytd drift.
//
// The interleaving: p1 writes table w, then table d (entering d's step
// step-commits and exposes the w write); p2 then reads w. The leaf RP
// correctly proposes p1's exposed pending write; the non-leaf RP must keep
// that proposal, not replace it with the committed initial value.
func TestRPNonLeafKeepsSameChildProposal(t *testing.T) {
	specs := []*core.Spec{
		{Name: "p", Tables: []string{"w", "d"}, WriteTables: []string{"w", "d"}},
		{Name: "h", Tables: []string{"w", "d"}, WriteTables: []string{"w", "d"}},
	}
	cfg := G(KindRP, nil, G(KindRP, []string{"p"}), G(Kind2PL, []string{"h"}))
	e, err := New(Options{Shards: 2, LockTimeout: 2 * time.Second, GCInterval: -1}, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	kw := core.KeyOf("w", 0)
	kd := core.KeyOf("d", 0)
	e.Load(kw, []byte("init-w"))
	e.Load(kd, []byte("init-d"))

	p1, err := e.Begin("p", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Write(kw, []byte("p1-w")); err != nil {
		t.Fatal(err)
	}
	// Entering table d's pipeline step exposes (step-commits) the w write
	// and releases its intra-step lock.
	if err := p1.Write(kd, []byte("p1-d")); err != nil {
		t.Fatal(err)
	}

	p2, err := e.Begin("p", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p2.Read(kw)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "p1-w" {
		t.Fatalf("p2 read w = %q, want the exposed pipeline-predecessor write %q (stale read: bug (1))",
			got, "p1-w")
	}

	if err := p1.Commit(); err != nil {
		t.Fatal(err)
	}
	if got, err := p2.Read(kd); err != nil || string(got) != "p1-d" {
		t.Fatalf("p2 read d = %q, %v; want %q", got, err, "p1-d")
	}
	if err := p2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestTSONonLeafSameBatchRTS pins bug (2): TSO as a non-leaf skipped
// same-group versions when applying the read-timestamp rule, so a
// same-batch writer could supersede a version a larger-timestamped
// cross-batch reader had already read — a committed lost update (the
// tso-nonleaf DSG cycles under -race).
//
// The interleaving: a1 and a2 share a batch (timestamp T); a1 writes x and
// commits; b1, in a later batch, reads a1's version (recording its read
// timestamp on it); a2 then writes x at the same batch timestamp T,
// superseding the version b1 read. The write must be refused.
func TestTSONonLeafSameBatchRTS(t *testing.T) {
	specs := []*core.Spec{
		{Name: "a", Tables: []string{"t"}, WriteTables: []string{"t"}},
		{Name: "b", Tables: []string{"t"}, WriteTables: []string{"t"}},
	}
	cfg := G(KindTSO, nil, G(Kind2PL, []string{"a"}), G(Kind2PL, []string{"b"}))
	e, err := New(Options{
		Shards:      2,
		LockTimeout: 2 * time.Second,
		GCInterval:  -1,
		// Keep the a-batch open across the whole interleaving so a1 and
		// a2 genuinely share one timestamp.
		BatchAge: time.Hour,
	}, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	kx := core.KeyOf("t", 0)
	e.Load(kx, []byte("init"))

	a1, err := e.Begin("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := e.Begin("a", 0) // joins a1's batch
	if err != nil {
		t.Fatal(err)
	}
	if err := a1.Write(kx, []byte("a1")); err != nil {
		t.Fatal(err)
	}
	if err := a1.Commit(); err != nil {
		t.Fatal(err)
	}

	b1, err := e.Begin("b", 0) // later batch, larger timestamp
	if err != nil {
		t.Fatal(err)
	}
	got, err := b1.Read(kx)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "a1" {
		t.Fatalf("b1 read %q, want %q", got, "a1")
	}

	// a2 writes at the shared batch timestamp, behind b1's read. Admitting
	// this write is the lost update: b1 (serialized after the whole
	// a-batch) would have missed it.
	if err := a2.Write(kx, []byte("a2")); err == nil {
		t.Fatalf("a2's write behind b1's read was admitted (lost update: bug (2))")
	}

	if err := b1.Commit(); err != nil {
		t.Fatal(err)
	}
	if v := e.ReadCommitted(kx); string(v) != "a1" {
		t.Fatalf("final x = %q, want %q", v, "a1")
	}
}
