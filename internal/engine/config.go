// Package engine orchestrates Tebaldi's hierarchical Modular Concurrency
// Control: it builds CC trees from declarative configurations, drives every
// transaction through the four-phase / two-pass execution protocol (§4.3.1),
// enforces consistent ordering at commit time, and hosts the storage, GC,
// durability, profiling and reconfiguration machinery.
package engine

import (
	"fmt"
	"time"

	"repro/internal/cc/nocc"
	"repro/internal/cc/rp"
	"repro/internal/cc/ssi"
	"repro/internal/cc/tso"
	"repro/internal/cc/twopl"
	"repro/internal/core"
)

// Kind names a CC mechanism.
type Kind string

// The CC mechanisms Tebaldi ships (§4.4).
const (
	KindNone Kind = "none" // empty CC (read-only groups)
	Kind2PL  Kind = "2pl"  // two-phase locking / nexus locks
	KindRP   Kind = "rp"   // runtime pipelining
	KindSSI  Kind = "ssi"  // serializable snapshot isolation
	KindTSO  Kind = "tso"  // multiversion timestamp ordering
)

// NodeSpec declaratively describes one node of a CC tree. A tree
// configuration is a *NodeSpec for the root.
type NodeSpec struct {
	// Kind selects the mechanism.
	Kind Kind
	// Types are the transaction types assigned directly to this node
	// (leaf groups).
	Types []string
	// Children are the delegated subgroups.
	Children []*NodeSpec
	// ByInstance routes transactions among children by instance partition
	// (Txn.Part) instead of by type. Combined with Clones it implements
	// partition-by-instance (§5.4.2).
	ByInstance bool
	// Clones expands Children[0] into this many identical children
	// (requires ByInstance).
	Clones int
	// BatchSize overrides the SSI/TSO consistent-ordering batch size.
	BatchSize int
	// ForceBatched disables SSI's optimized-mode detection (evaluation of
	// batching costs).
	ForceBatched bool
}

// G is a convenience constructor: G(kind, types, children...).
func G(kind Kind, types []string, children ...*NodeSpec) *NodeSpec {
	return &NodeSpec{Kind: kind, Types: types, Children: children}
}

// Clone deep-copies the spec.
func (s *NodeSpec) Clone() *NodeSpec {
	if s == nil {
		return nil
	}
	c := *s
	c.Types = append([]string(nil), s.Types...)
	c.Children = nil
	for _, ch := range s.Children {
		c.Children = append(c.Children, ch.Clone())
	}
	return &c
}

// Equal reports structural equality (used by the online-update diff).
func (s *NodeSpec) Equal(o *NodeSpec) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.Kind != o.Kind || s.ByInstance != o.ByInstance || s.Clones != o.Clones ||
		s.BatchSize != o.BatchSize || s.ForceBatched != o.ForceBatched ||
		len(s.Types) != len(o.Types) || len(s.Children) != len(o.Children) {
		return false
	}
	for i := range s.Types {
		if s.Types[i] != o.Types[i] {
			return false
		}
	}
	for i := range s.Children {
		if !s.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// AllTypes returns every transaction type assigned in the spec's subtree.
func (s *NodeSpec) AllTypes() []string {
	out := append([]string(nil), s.Types...)
	for _, c := range s.Children {
		out = append(out, c.AllTypes()...)
	}
	return out
}

// String renders the configuration compactly.
func (s *NodeSpec) String() string {
	n := &core.Node{Types: s.Types, ByInstance: s.ByInstance}
	n.CC = fakeCC(string(s.Kind))
	for _, c := range s.Children {
		n.Children = append(n.Children, specToRenderNode(c))
	}
	return n.String()
}

func specToRenderNode(s *NodeSpec) *core.Node {
	n := &core.Node{Types: s.Types, ByInstance: s.ByInstance}
	n.CC = fakeCC(string(s.Kind))
	children := s.Children
	if s.ByInstance && s.Clones > 1 && len(s.Children) == 1 {
		children = make([]*NodeSpec, s.Clones)
		for i := range children {
			children[i] = s.Children[0]
		}
	}
	for _, c := range children {
		n.Children = append(n.Children, specToRenderNode(c))
	}
	return n
}

type fakeCC string

func (f fakeCC) Name() string                       { return string(f) }
func (f fakeCC) Begin(*core.Txn) error              { return nil }
func (f fakeCC) PreRead(*core.Txn, core.Key) error  { return nil }
func (f fakeCC) PreWrite(*core.Txn, core.Key) error { return nil }
func (f fakeCC) Validate(*core.Txn) error           { return nil }
func (f fakeCC) Commit(*core.Txn)                   {}
func (f fakeCC) Abort(*core.Txn)                    {}
func (f fakeCC) AmendRead(t *core.Txn, k core.Key, ch *core.Chain, p *core.Version) (*core.Version, error) {
	return p, nil
}
func (f fakeCC) PostWrite(*core.Txn, core.Key, *core.Chain, *core.Version) error { return nil }

// Tree is a built, runnable CC tree.
type Tree struct {
	Root *Node2
	Spec *NodeSpec
}

// Node2 aliases core.Node (kept distinct in the engine's API surface).
type Node2 = core.Node

// buildTree materializes a NodeSpec into core Nodes with CC instances.
func (e *Engine) buildTree(spec *NodeSpec) (*Tree, error) {
	spec = spec.Clone()
	root, err := e.buildSubtree(spec, 0, nil)
	if err != nil {
		return nil, err
	}
	root.FinalizeRouting()
	return &Tree{Root: root, Spec: spec}, nil
}

// buildSubtree materializes one subtree rooted at depth, instantiating CC
// mechanisms bottom-up (RP's static analysis and SSI's optimized-mode
// detection read the completed subtree structure).
func (e *Engine) buildSubtree(s *NodeSpec, depth int, parent *core.Node) (*core.Node, error) {
	n := &core.Node{
		ID:         int(e.nodeSeq.Add(1)),
		Depth:      depth,
		Parent:     parent,
		Types:      append([]string(nil), s.Types...),
		ByInstance: s.ByInstance,
	}
	children := s.Children
	if s.ByInstance && s.Clones > 1 {
		if len(s.Children) != 1 {
			return nil, fmt.Errorf("engine: Clones requires exactly one child template")
		}
		children = make([]*NodeSpec, s.Clones)
		for i := range children {
			children[i] = s.Children[0].Clone()
		}
	}
	for _, cs := range children {
		cn, err := e.buildSubtree(cs, depth+1, n)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, cn)
	}
	cc, err := e.newCC(s, n)
	if err != nil {
		return nil, err
	}
	n.CC = cc
	return n, nil
}

func (e *Engine) newCC(s *NodeSpec, n *core.Node) (core.CC, error) {
	switch s.Kind {
	case KindNone:
		return nocc.New(), nil
	case Kind2PL:
		return twopl.New(e.env, n), nil
	case KindRP:
		return rp.New(e.env, n), nil
	case KindSSI:
		return ssi.New(e.env, n, ssi.Options{
			BatchSize:    s.BatchSize,
			ForceBatched: s.ForceBatched,
			BatchAge:     e.opts.BatchAge,
		}), nil
	case KindTSO:
		return tso.New(e.env, n, tso.Options{BatchSize: s.BatchSize, BatchAge: e.opts.BatchAge}), nil
	default:
		return nil, fmt.Errorf("engine: unknown CC kind %q", s.Kind)
	}
}

// Options configure an Engine.
type Options struct {
	// Shards is the number of data servers (storage partitions).
	Shards int
	// LockTimeout bounds lock/pipeline/dependency waits; expiry aborts
	// the waiter (deadlock resolution, §4.4.1).
	LockTimeout time.Duration
	// GCInterval is the period of the version garbage collector
	// (§4.5.3); 0 disables background GC.
	GCInterval time.Duration
	// Profiling enables the blocking-event profiler (§5.3).
	Profiling bool
	// BatchAge bounds SSI/TSO batch lifetimes.
	BatchAge time.Duration
	// NetworkDelay, when > 0, is slept on every storage operation to
	// simulate the TC <-> DS network round trip of the paper's cluster.
	NetworkDelay time.Duration
	// DurabilityDir enables the WAL durability module (§4.5.4), logging
	// to this directory.
	DurabilityDir string
	// DurabilitySync forces synchronous flushing (default: asynchronous
	// GCP-epoch flushing).
	DurabilitySync bool
	// GCPEpoch is the GCP epoch length for asynchronous flushing.
	GCPEpoch time.Duration
	// CheckpointEvery, when > 0, runs a consistent checkpoint (snapshot at
	// the GC watermark + log compaction) on this period, bounding both the
	// on-disk log and recovery replay. Requires DurabilityDir. Explicit
	// checkpoints via Engine.Checkpoint work either way.
	CheckpointEvery time.Duration
	// DrainTimeout bounds reconfiguration quiescing before ongoing
	// transactions are force-aborted (§5.5.1).
	DrainTimeout time.Duration

	// crashHook, when set (crash-point torture tests only), is passed to
	// the WAL as its fault-injection hook.
	crashHook func(point string)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Shards <= 0 {
		out.Shards = 16
	}
	if out.LockTimeout <= 0 {
		out.LockTimeout = 100 * time.Millisecond
	}
	if out.GCInterval < 0 {
		out.GCInterval = 0
	} else if out.GCInterval == 0 {
		out.GCInterval = 50 * time.Millisecond
	}
	if out.DrainTimeout <= 0 {
		out.DrainTimeout = 2 * out.LockTimeout
	}
	return out
}
