package engine

import (
	"testing"
	"time"

	"repro/internal/core"
)

// Hot-path microbenchmarks mirroring the alloc_test.go budgets. The CI
// bench-smoke job runs these with -benchtime=1x -benchmem on every push —
// not for stable timings (one iteration proves nothing about speed) but so
// the allocs/op columns are printed and eyeballable next to the enforced
// AllocsPerRun budgets, and so the benchmark bodies themselves can't bitrot.

func benchEngine(b *testing.B, specs []*core.Spec, cfg *NodeSpec) *Engine {
	b.Helper()
	e, err := New(Options{Shards: 4, LockTimeout: 2 * time.Second, GCInterval: -1}, specs, cfg)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	b.Cleanup(func() { e.Close() })
	return e
}

// BenchmarkHotPathRead — repeat read of a committed key inside one open
// transaction, single-leaf 2PL tree (the depth-1 fast path; 0 allocs/op).
func BenchmarkHotPathRead(b *testing.B) {
	specs := []*core.Spec{{Name: "op", Tables: []string{"t"}, WriteTables: []string{"t"}}}
	e := benchEngine(b, specs, G(Kind2PL, []string{"op"}))
	k := core.KeyOf("t", 1)
	e.Load(k, []byte("v"))
	tx, err := e.Begin("op", 0)
	if err != nil {
		b.Fatalf("Begin: %v", err)
	}
	defer tx.Rollback(nil)
	if _, err := tx.Read(k); err != nil {
		b.Fatalf("Read: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tx.Read(k); err != nil {
			b.Fatalf("Read: %v", err)
		}
	}
}

// BenchmarkHotPathReadOnlyTxn — full begin/read/commit read-only cycle on
// the YCSB-C shape (optimized SSI over NoCC); the transaction recycles
// through the pool each iteration.
func BenchmarkHotPathReadOnlyTxn(b *testing.B) {
	specs := []*core.Spec{
		{Name: "ro", ReadOnly: true, Tables: []string{"t"}},
		{Name: "upd", Tables: []string{"t"}, WriteTables: []string{"t"}},
	}
	e := benchEngine(b, specs,
		G(KindSSI, nil, G(KindNone, []string{"ro"}), G(Kind2PL, []string{"upd"})))
	k := core.KeyOf("t", 1)
	e.Load(k, []byte("v"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := e.Begin("ro", 0)
		if err != nil {
			b.Fatalf("Begin: %v", err)
		}
		if _, err := tx.Read(k); err != nil {
			b.Fatalf("Read: %v", err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatalf("Commit: %v", err)
		}
	}
}

// BenchmarkHotPathWriteTxn — begin/write/commit under a single-leaf 2PL
// tree (no durability; the CC-side write cost). Background GC stays on:
// every commit adds a version to the same chain, and without pruning the
// commit-time chain walk grows O(b.N) and dominates the measurement.
func BenchmarkHotPathWriteTxn(b *testing.B) {
	specs := []*core.Spec{{Name: "op", Tables: []string{"t"}, WriteTables: []string{"t"}}}
	e, err := New(Options{Shards: 4, LockTimeout: 2 * time.Second, GCInterval: 5 * time.Millisecond}, specs, G(Kind2PL, []string{"op"}))
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	b.Cleanup(func() { e.Close() })
	k := core.KeyOf("t", 1)
	e.Load(k, []byte("v0"))
	val := []byte("v1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := e.Begin("op", 0)
		if err != nil {
			b.Fatalf("Begin: %v", err)
		}
		if err := tx.Write(k, val); err != nil {
			b.Fatalf("Write: %v", err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatalf("Commit: %v", err)
		}
	}
}
