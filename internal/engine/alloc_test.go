package engine

import (
	"testing"
	"time"

	"repro/internal/core"
)

// Allocation budgets for the transaction hot path. These are regression
// tripwires, not aspirations: each budget is the measured cost of the
// current implementation plus a little slack, so an accidental per-op
// allocation (a lazily-built map turned eager, a closure capture, a
// fmt.Sprintf on the happy path) fails CI instead of silently rotting the
// perf work. Run with -run AllocBudget -v to see the measured values.

// newAllocEngine builds an engine with background GC disabled so the only
// allocations AllocsPerRun sees are the hot path's own.
func newAllocEngine(t *testing.T, specs []*core.Spec, cfg *NodeSpec) *Engine {
	t.Helper()
	e, err := New(Options{Shards: 4, LockTimeout: 2 * time.Second, GCInterval: -1}, specs, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func checkBudget(t *testing.T, what string, budget float64, f func()) {
	t.Helper()
	got := testing.AllocsPerRun(200, f)
	t.Logf("%s: %.1f allocs/op (budget %.0f)", what, got, budget)
	if got > budget {
		t.Errorf("%s: %.1f allocs/op exceeds budget %.0f", what, got, budget)
	}
}

// TestAllocBudgetRepeatRead: re-reading a committed key inside an open
// transaction under a single-leaf 2PL tree is allocation-free — the lock is
// already held, the chain is memoized by the shard index, and the depth-1
// fast path proposes the version without building per-phase state.
func TestAllocBudgetRepeatRead(t *testing.T) {
	specs := []*core.Spec{{Name: "op", Tables: []string{"t"}, WriteTables: []string{"t"}}}
	e := newAllocEngine(t, specs, G(Kind2PL, []string{"op"}))
	k := core.KeyOf("t", 1)
	e.Load(k, []byte("v"))

	tx, err := e.Begin("op", 0)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	defer tx.Rollback(nil)
	if _, err := tx.Read(k); err != nil { // first read pays the lock acquisition
		t.Fatalf("Read: %v", err)
	}
	checkBudget(t, "repeat read, single-leaf 2PL", 0, func() {
		if _, err := tx.Read(k); err != nil {
			t.Fatalf("Read: %v", err)
		}
	})
}

// TestAllocBudgetReadOnlyCycle: a full begin/read/commit read-only cycle on
// the YCSB-C shape — optimized SSI over a NoCC read-only group — where the
// transaction recycles through the pool. Budget covers the Tx handle and the
// SSI slot; the Txn itself, its Path/Slots backing arrays, and the done
// channel must all come from the pool or stay unallocated.
func TestAllocBudgetReadOnlyCycle(t *testing.T) {
	specs := []*core.Spec{
		{Name: "ro", ReadOnly: true, Tables: []string{"t"}},
		{Name: "upd", Tables: []string{"t"}, WriteTables: []string{"t"}},
	}
	e := newAllocEngine(t, specs,
		G(KindSSI, nil, G(KindNone, []string{"ro"}), G(Kind2PL, []string{"upd"})))
	k := core.KeyOf("t", 1)
	e.Load(k, []byte("v"))

	checkBudget(t, "begin/read/commit read-only, SSI[NoCC 2PL]", 4, func() {
		tx, err := e.Begin("ro", 0)
		if err != nil {
			t.Fatalf("Begin: %v", err)
		}
		if _, err := tx.Read(k); err != nil {
			t.Fatalf("Read: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	})
}

// TestAllocBudgetWriteCycle: begin/write/commit under a single-leaf 2PL
// tree. Writers escape into version chains so they are never pooled; the
// budget covers the Txn, Tx handle, lock table entries, the version, and
// the write-set entry.
func TestAllocBudgetWriteCycle(t *testing.T) {
	specs := []*core.Spec{{Name: "op", Tables: []string{"t"}, WriteTables: []string{"t"}}}
	e := newAllocEngine(t, specs, G(Kind2PL, []string{"op"}))
	k := core.KeyOf("t", 1)
	e.Load(k, []byte("v0"))
	val := []byte("v1")

	checkBudget(t, "begin/write/commit, single-leaf 2PL", 20, func() {
		tx, err := e.Begin("op", 0)
		if err != nil {
			t.Fatalf("Begin: %v", err)
		}
		if err := tx.Write(k, val); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	})
}
