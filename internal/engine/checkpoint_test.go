package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/wal"
)

func logBytes(t *testing.T, dir string) int64 {
	t.Helper()
	var n int64
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		if filepath.Ext(de.Name()) != ".log" {
			continue
		}
		info, err := de.Info()
		if err != nil {
			t.Fatal(err)
		}
		n += info.Size()
	}
	return n
}

var ckSpecs = []*core.Spec{{Name: "put", Tables: []string{"kv"}, WriteTables: []string{"kv"}}}

func ckOptions(dir string) Options {
	return Options{
		Shards:        4,
		LockTimeout:   2 * time.Second,
		DurabilityDir: dir,
		GCPEpoch:      5 * time.Millisecond,
	}
}

// TestCheckpointBoundsLogAndReplay is the acceptance check: after N
// committed transactions with checkpointing, the on-disk log stays bounded
// and recovery replays only post-frontier records (asserted through the
// recovery-replay stats counter).
func TestCheckpointBoundsLogAndReplay(t *testing.T) {
	dir := t.TempDir()
	e, err := New(ckOptions(dir), ckSpecs, G(Kind2PL, []string{"put"}))
	if err != nil {
		t.Fatal(err)
	}
	const keys = 32
	commit := func(n int) {
		for i := 0; i < n; i++ {
			k := core.KeyOf("kv", i%keys)
			err := e.RunTxn("put", 0, func(tx *Tx) error {
				return tx.Write(k, []byte(fmt.Sprintf("round-value-%d", i)))
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	var firstRound int64
	for round := 0; round < 4; round++ {
		commit(200)
		if err := e.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		size := logBytes(t, dir)
		if round == 0 {
			firstRound = size
		} else if size > 3*firstRound+8192 {
			t.Fatalf("round %d: log grew to %d bytes (first round %d) — compaction is not bounding it", round, size, firstRound)
		}
	}
	snap := e.Stats().Snapshot()
	if snap.Checkpoints != 4 || snap.CheckpointErrors != 0 {
		t.Fatalf("checkpoints=%d errors=%d", snap.Checkpoints, snap.CheckpointErrors)
	}
	if snap.CheckpointTruncatedBytes == 0 {
		t.Fatal("compaction truncated nothing")
	}
	if snap.CheckpointSnapshotBytes == 0 {
		t.Fatal("no snapshot bytes recorded")
	}

	// A small tail after the last checkpoint, then restart.
	commit(10)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, st, err := Recover(ckOptions(dir), ckSpecs, G(Kind2PL, []string{"put"}))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if st.SnapshotTS == 0 {
		t.Fatal("recovery did not start from the checkpoint snapshot")
	}
	// The tail holds only the 10 post-checkpoint transactions (one
	// precommit + one commit record each); everything older is covered by
	// the snapshot. Allow a little slack for commit records of
	// pre-checkpoint transactions that were still queued at the cut.
	replayed := e2.Stats().Snapshot().RecoveryReplayed
	if replayed != uint64(st.Replayed) {
		t.Fatalf("stats counter %d != recovered state %d", replayed, st.Replayed)
	}
	if replayed == 0 || replayed > 60 {
		t.Fatalf("replayed %d records — not a tail-only recovery of ~20", replayed)
	}
	for i := 0; i < keys; i++ {
		got := string(e2.ReadCommitted(core.KeyOf("kv", i)))
		if got == "" {
			t.Fatalf("key %d lost across checkpointed recovery", i)
		}
	}
	// Keys 0..9 were rewritten by the 10-transaction tail; their recovered
	// values must be the tail's, not the checkpoint's.
	for i := 0; i < 10; i++ {
		got := string(e2.ReadCommitted(core.KeyOf("kv", i)))
		if got != fmt.Sprintf("round-value-%d", i) {
			t.Fatalf("kv/%d = %q, want tail value round-value-%d", i, got, i)
		}
	}
}

// TestCheckpointEveryRunsInBackground exercises Options.CheckpointEvery.
func TestCheckpointEveryRunsInBackground(t *testing.T) {
	dir := t.TempDir()
	opts := ckOptions(dir)
	opts.CheckpointEvery = 10 * time.Millisecond
	e, err := New(opts, ckSpecs, G(Kind2PL, []string{"put"}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		err := e.RunTxn("put", 0, func(tx *Tx) error {
			return tx.Write(core.KeyOf("kv", i%8), []byte(fmt.Sprintf("v%d", i)))
		})
		if err != nil {
			t.Fatal(err)
		}
		if i%50 == 49 {
			time.Sleep(15 * time.Millisecond)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for e.Stats().Snapshot().Checkpoints == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	snap := e.Stats().Snapshot()
	if snap.Checkpoints == 0 {
		t.Fatal("background checkpointer never ran")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := wal.Recover(dir, opts.Shards)
	if err != nil {
		t.Fatal(err)
	}
	if st.SnapshotTS == 0 {
		t.Fatal("no published checkpoint found after background checkpointing")
	}
	got := map[string]bool{}
	for _, w := range st.Writes {
		got[w.Key.Row] = true
	}
	for i := 0; i < 8; i++ {
		if !got[fmt.Sprintf("%d", i)] {
			t.Fatalf("key kv/%d missing after recovery", i)
		}
	}
}

// TestCheckpointRequiresDurability pins the error path.
func TestCheckpointRequiresDurability(t *testing.T) {
	e, err := New(Options{Shards: 2}, ckSpecs, G(Kind2PL, []string{"put"}))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Checkpoint(); err == nil {
		t.Fatal("checkpoint without durability must fail")
	}
}
