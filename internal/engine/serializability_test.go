package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// This file checks the central correctness claim of hierarchical MCC
// (Definition 4.2.1 + consistent ordering, §4.2): committed histories are
// serializable. We record, per committed transaction, its read-from edges
// (which writer version each read observed) and per-key write order (by
// commit timestamp), build the Direct Serialization Graph, and assert it is
// acyclic. Aborted-read freedom is checked directly: a committed transaction
// must never have observed a version whose writer ultimately aborted.

type obsRead struct {
	key    core.Key
	writer uint64 // 0 = initial load
}

type obsTxn struct {
	id      uint64
	typ     string
	beginTS uint64
	snap    string
	txn     *core.Txn
	reads   []obsRead
	writes  map[core.Key]uint64 // key -> commitTS
}

type history struct {
	mu   sync.Mutex
	txns []*obsTxn
	eng  *Engine
}

func (h *history) add(t *obsTxn) {
	h.mu.Lock()
	h.txns = append(h.txns, t)
	h.mu.Unlock()
}

// runHistory executes a random update workload over `keys` keys under the
// given tree, recording observations, and returns the committed history.
func runHistory(t *testing.T, cfg *NodeSpec, types []string, keys, workers, txnsEach int) *history {
	t.Helper()
	if testing.Short() {
		// Keep the CI -race job reliable: under the race detector's
		// slowdown the 3s lock timeout behaves like a fraction of
		// itself, and high-contention configs (RP especially) can spend
		// minutes in timeout-abort-retry churn at full load.
		if txnsEach /= 4; txnsEach < 10 {
			txnsEach = 10
		}
	}
	specs := []*core.Spec{}
	for _, typ := range types {
		specs = append(specs, &core.Spec{
			Name:        typ,
			Tables:      []string{"h"},
			WriteTables: []string{"h"},
		})
	}
	e, err := New(Options{Shards: 4, LockTimeout: 3 * time.Second}, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < keys; i++ {
		e.Load(core.KeyOf("h", i), encodeWriter(0))
	}

	h := &history{eng: e}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < txnsEach; i++ {
				typ := types[rng.Intn(len(types))]
				nOps := 2 + rng.Intn(4)
				readSet := make([]int, nOps)
				writeSet := make([]int, 0, nOps)
				for j := range readSet {
					readSet[j] = rng.Intn(keys)
				}
				for j := 0; j < nOps; j++ {
					if rng.Intn(2) == 0 {
						writeSet = append(writeSet, rng.Intn(keys))
					}
				}
				obs := &obsTxn{writes: map[core.Key]uint64{}}
				err := e.RunTxn(typ, uint64(rng.Intn(8)), func(tx *Tx) error {
					obs.reads = obs.reads[:0]
					obs.id = tx.ID()
					obs.typ = tx.Txn().Type
					obs.beginTS = tx.Txn().BeginTS
					obs.txn = tx.Txn()
					obs.snap = fmt.Sprintf("%v", tx.Txn().Slots[0])
					for _, k := range readSet {
						key := core.KeyOf("h", k)
						v, err := tx.Read(key)
						if err != nil {
							return err
						}
						obs.reads = append(obs.reads, obsRead{key: key, writer: decodeWriter(v)})
					}
					for _, k := range writeSet {
						key := core.KeyOf("h", k)
						if err := tx.Write(key, encodeWriter(tx.ID())); err != nil {
							return err
						}
					}
					return nil
				})
				if err == nil {
					// The commit timestamp comes straight from
					// the committed transaction: version chains
					// may already be garbage-collected.
					cts := obs.txn.CommitTS()
					for _, k := range writeSet {
						obs.writes[core.KeyOf("h", k)] = cts
					}
					h.add(obs)
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	return h
}

func encodeWriter(id uint64) []byte {
	return []byte(fmt.Sprintf("%d", id))
}

func decodeWriter(b []byte) uint64 {
	var id uint64
	fmt.Sscanf(string(b), "%d", &id)
	return id
}

// checkSerializable builds the DSG and fails on cycles or aborted reads.
func checkSerializable(t *testing.T, h *history) {
	t.Helper()
	h.mu.Lock()
	defer h.mu.Unlock()

	byID := map[uint64]*obsTxn{}
	for _, tx := range h.txns {
		byID[tx.id] = tx
	}
	// Aborted-read freedom: every observed writer must be committed (or
	// the initial load).
	committedWriters := map[uint64]bool{0: true}
	for _, tx := range h.txns {
		committedWriters[tx.id] = true
	}
	// Per-key committed write order by commit timestamp.
	type kw struct {
		id uint64
		ts uint64
	}
	keyWrites := map[core.Key][]kw{}
	for _, tx := range h.txns {
		for k, ts := range tx.writes {
			keyWrites[k] = append(keyWrites[k], kw{tx.id, ts})
		}
	}
	for k := range keyWrites {
		ws := keyWrites[k]
		for i := range ws {
			for j := i + 1; j < len(ws); j++ {
				if ws[j].ts < ws[i].ts {
					ws[i], ws[j] = ws[j], ws[i]
				}
			}
		}
		keyWrites[k] = ws
	}
	succOf := func(k core.Key, id uint64) (uint64, bool) {
		ws := keyWrites[k]
		for i, w := range ws {
			if w.id == id {
				if i+1 < len(ws) {
					return ws[i+1].id, true
				}
				return 0, false
			}
		}
		// Writer not in committed set (initial load): successor is the
		// first committed writer.
		if id == 0 && len(ws) > 0 {
			return ws[0].id, true
		}
		return 0, false
	}

	// DSG edges.
	adj := map[uint64]map[uint64]bool{}
	edge := func(a, b uint64) {
		if a == b || a == 0 || b == 0 {
			return
		}
		if adj[a] == nil {
			adj[a] = map[uint64]bool{}
		}
		adj[a][b] = true
	}
	for _, tx := range h.txns {
		for _, r := range tx.reads {
			if !committedWriters[r.writer] {
				t.Fatalf("txn %d read from writer %d which is not committed (aborted read!)",
					tx.id, r.writer)
			}
			// wr: writer -> reader.
			edge(r.writer, tx.id)
			// rw: reader -> next writer of that key.
			if succ, ok := succOf(r.key, r.writer); ok {
				edge(tx.id, succ)
			}
		}
		for k := range tx.writes {
			// ww: this writer -> next writer.
			if succ, ok := succOf(k, tx.id); ok {
				edge(tx.id, succ)
			}
		}
	}

	// Cycle detection (iterative DFS, colors).
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[uint64]int{}
	var stack []uint64
	for start := range adj {
		if color[start] != white {
			continue
		}
		stack = append(stack[:0], start)
		type frame struct {
			node uint64
			next []uint64
		}
		frames := []frame{}
		push := func(n uint64) {
			color[n] = gray
			var succ []uint64
			for s := range adj[n] {
				succ = append(succ, s)
			}
			frames = append(frames, frame{node: n, next: succ})
		}
		push(start)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if len(f.next) == 0 {
				color[f.node] = black
				frames = frames[:len(frames)-1]
				continue
			}
			n := f.next[len(f.next)-1]
			f.next = f.next[:len(f.next)-1]
			switch color[n] {
			case white:
				push(n)
			case gray:
				// Extract and print the cycle for debugging.
				var cyc []uint64
				for i := len(frames) - 1; i >= 0; i-- {
					cyc = append(cyc, frames[i].node)
					if frames[i].node == n {
						break
					}
				}
				keys := map[core.Key]bool{}
				for _, id := range cyc {
					tx := byID[id]
					t.Logf("txn %d type=%s begin=%d slot0=%s: reads=%v writes=%v",
						id, tx.typ, tx.beginTS, tx.snap, tx.reads, tx.writes)
					for _, r := range tx.reads {
						keys[r.key] = true
					}
					for k := range tx.writes {
						keys[k] = true
					}
				}
				for k := range keys {
					c := h.eng.Store().Lookup(k)
					if c == nil {
						continue
					}
					//lint:allow lockorder -- failure-path diagnostics dump chains under the history lock; the test is already aborting
					c.Lock()
					var desc []string
					for _, v := range c.Versions() {
						desc = append(desc, fmt.Sprintf("w%d@%d(%s)", v.Writer.ID, v.CommitTS(), v.Writer.State()))
					}
					c.Unlock()
					t.Logf("chain %s: %v", k, desc)
				}
				t.Fatalf("DSG cycle detected through txn %d: cycle %v", n, cyc)
			}
		}
	}
}

func serializabilityConfigs() map[string]*NodeSpec {
	return map[string]*NodeSpec{
		"leaf-2pl": G(Kind2PL, []string{"u1", "u2"}),
		"leaf-ssi": G(KindSSI, []string{"u1", "u2"}),
		"leaf-tso": G(KindTSO, []string{"u1", "u2"}),
		"leaf-rp":  G(KindRP, []string{"u1", "u2"}),
		"nexus-2pl-over-rp": G(Kind2PL, nil,
			G(KindRP, []string{"u1"}),
			G(Kind2PL, []string{"u2"})),
		"batched-ssi": {Kind: KindSSI, ForceBatched: true, BatchSize: 8, Children: []*NodeSpec{
			G(Kind2PL, []string{"u1"}),
			G(Kind2PL, []string{"u2"}),
		}},
		"tso-nonleaf": G(KindTSO, nil,
			G(Kind2PL, []string{"u1"}),
			G(Kind2PL, []string{"u2"})),
		"rp-over-2pl": G(KindRP, nil,
			G(Kind2PL, []string{"u1"}),
			G(Kind2PL, []string{"u2"})),
		"three-layer": G(KindSSI, nil,
			G(KindNone, nil),
			G(Kind2PL, nil,
				G(KindRP, []string{"u1"}),
				G(KindTSO, []string{"u2"}))),
		"by-instance-tso": {Kind: Kind2PL, Children: []*NodeSpec{{
			Kind: Kind2PL, ByInstance: true, Clones: 4,
			Children: []*NodeSpec{G(KindTSO, []string{"u1", "u2"})},
		}}},
	}
}

// TestSerializabilityAcrossTrees is the core property test: random
// read/write workloads over every CC tree shape we ship must produce
// acyclic DSGs and no aborted reads. SSI shapes run at moderated contention:
// snapshot isolation's abort rate under adversarial hot-key write loads is
// real protocol behaviour (the paper's ww-* results), and drowning it in
// retries only slows the test without sharpening the property.
func TestSerializabilityAcrossTrees(t *testing.T) {
	for name, cfg := range serializabilityConfigs() {
		cfg := cfg
		keys, workers, txns := 12, 8, 60
		if name == "leaf-ssi" || name == "batched-ssi" {
			keys, workers, txns = 24, 4, 40
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			h := runHistory(t, cfg, []string{"u1", "u2"}, keys, workers, txns)
			if len(h.txns) == 0 {
				t.Fatal("no transactions committed")
			}
			checkSerializable(t, h)
		})
	}
}

// TestSerializabilityHighContention narrows the key space to maximize
// conflicts on the lock- and timestamp-based trees.
func TestSerializabilityHighContention(t *testing.T) {
	for _, name := range []string{"leaf-tso", "nexus-2pl-over-rp", "three-layer"} {
		cfg := serializabilityConfigs()[name]
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			h := runHistory(t, cfg, []string{"u1", "u2"}, 3, 6, 50)
			checkSerializable(t, h)
		})
	}
	// Batched SSI gets a slightly wider key space (snapshot aborts make
	// 3-key hot loops crawl) but still heavy contention.
	t.Run("batched-ssi", func(t *testing.T) {
		t.Parallel()
		h := runHistory(t, serializabilityConfigs()["batched-ssi"], []string{"u1", "u2"}, 8, 4, 30)
		checkSerializable(t, h)
	})
}
