// Package tpcc implements the TPC-C workload as adapted by the Tebaldi paper
// (§4.6): a transactional key-value schema (no scans — the customer-name
// scan is removed and a secondary-index table locates a customer's latest
// order), populated at a configurable warehouse count, with the five
// standard transactions plus the hot_item extension of §4.6.3.
//
// Transaction bodies follow the table access orders declared in their specs;
// Runtime Pipelining's static analysis derives its pipeline steps from those
// orders (this mirrors RP's preprocessing, which reorders operations to fit
// a global table order).
package tpcc

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/tebaldi"
)

// Scale configures the generated database.
type Scale struct {
	Warehouses int
	Districts  int // per warehouse
	Customers  int // per district
	Items      int
}

// DefaultScale mirrors the paper's contention-heavy setup: ten warehouses.
// Items and customers are scaled down from the TPC-C standard (100k/3k) to
// keep in-memory population fast; contention lives on the warehouse,
// district and stock rows, which are kept exact.
func DefaultScale() Scale {
	return Scale{Warehouses: 10, Districts: 10, Customers: 120, Items: 1000}
}

// Transaction type names.
const (
	TxnNewOrder    = "new_order"
	TxnPayment     = "payment"
	TxnDelivery    = "delivery"
	TxnOrderStatus = "order_status"
	TxnStockLevel  = "stock_level"
	TxnHotItem     = "hot_item"
)

// Specs returns the static transaction descriptions (table access orders
// feed RP's analysis). The hot_item spec is included only when withHotItem.
func Specs(withHotItem bool) []*tebaldi.Spec {
	specs := []*tebaldi.Spec{
		{
			Name:        TxnNewOrder,
			Tables:      []string{"warehouse", "district", "customer", "order", "new_order", "cust_idx", "item", "stock", "order_line"},
			WriteTables: []string{"district", "order", "new_order", "cust_idx", "stock", "order_line"},
			Weight:      0.45,
		},
		{
			Name:        TxnPayment,
			Tables:      []string{"warehouse", "district", "customer", "history"},
			WriteTables: []string{"warehouse", "district", "customer", "history"},
			Weight:      0.43,
		},
		{
			Name:        TxnDelivery,
			Tables:      []string{"new_order", "order", "order_line", "customer"},
			WriteTables: []string{"new_order", "order", "customer"},
			Weight:      0.04,
		},
		{
			Name:     TxnOrderStatus,
			ReadOnly: true,
			Tables:   []string{"cust_idx", "customer", "order", "order_line"},
			Weight:   0.04,
		},
		{
			Name:     TxnStockLevel,
			ReadOnly: true,
			Tables:   []string{"district", "order", "order_line", "stock"},
			Weight:   0.04,
		},
	}
	if withHotItem {
		specs = append(specs, &tebaldi.Spec{
			Name:        TxnHotItem,
			Tables:      []string{"district", "order", "order_line", "item_stats"},
			WriteTables: []string{"item_stats"},
			Weight:      0.041,
		})
	}
	return specs
}

// ---- row codecs (compact binary, no reflection) ----

func encU64s(vals ...uint64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], v)
	}
	return b
}

func decU64(b []byte, i int) uint64 {
	if len(b) < (i+1)*8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b[i*8:])
}

// Keys.

func warehouseKey(w int) tebaldi.Key          { return tebaldi.KeyOf("warehouse", w) }
func districtKey(w, d int) tebaldi.Key        { return tebaldi.KeyOf("district", w, d) }
func customerKey(w, d, c int) tebaldi.Key     { return tebaldi.KeyOf("customer", w, d, c) }
func orderKey(w, d, o int) tebaldi.Key        { return tebaldi.KeyOf("order", w, d, o) }
func newOrderPtrKey(w, d int) tebaldi.Key     { return tebaldi.KeyOf("new_order", w, d) }
func custIdxKey(w, d, c int) tebaldi.Key      { return tebaldi.KeyOf("cust_idx", w, d, c) }
func itemKey(i int) tebaldi.Key               { return tebaldi.KeyOf("item", i) }
func stockKey(w, i int) tebaldi.Key           { return tebaldi.KeyOf("stock", w, i) }
func orderLineKey(w, d, o, l int) tebaldi.Key { return tebaldi.KeyOf("order_line", w, d, o, l) }
func itemStatsKey(i int) tebaldi.Key          { return tebaldi.KeyOf("item_stats", i) }
func historyKey(w, d int, id uint64) tebaldi.Key {
	return tebaldi.K("history", fmt.Sprintf("%d.%d.%d", w, d, id))
}

// Load populates the database. Initial orders: each district starts with
// `seedOrders` delivered-less orders so delivery and stock_level have work.
func Load(db *tebaldi.DB, sc Scale) {
	const seedOrders = 25
	for w := 0; w < sc.Warehouses; w++ {
		// warehouse: [ytd, tax‰]
		db.Load(warehouseKey(w), encU64s(0, 7))
		for i := 0; i < sc.Items; i++ {
			// stock: [quantity, ytd]
			db.Load(stockKey(w, i), encU64s(50, 0))
		}
		for d := 0; d < sc.Districts; d++ {
			// district: [ytd, tax‰, next_o_id]
			db.Load(districtKey(w, d), encU64s(0, 8, seedOrders))
			// new_order queue pointer: [first_undelivered]
			db.Load(newOrderPtrKey(w, d), encU64s(0))
			for c := 0; c < sc.Customers; c++ {
				// customer: [balance, ytd_payment, payment_cnt, delivery_cnt]
				db.Load(customerKey(w, d, c), encU64s(1000, 0, 0, 0))
			}
			rng := rand.New(rand.NewSource(int64(w*100 + d)))
			for o := 0; o < seedOrders; o++ {
				cid := rng.Intn(sc.Customers)
				nl := 5 + rng.Intn(6)
				// order: [c_id, ol_cnt, carrier]
				db.Load(orderKey(w, d, o), encU64s(uint64(cid), uint64(nl), 0))
				db.Load(custIdxKey(w, d, cid), encU64s(uint64(o)))
				for l := 0; l < nl; l++ {
					item := rng.Intn(sc.Items)
					// order_line: [item, qty, amount]
					db.Load(orderLineKey(w, d, o, l), encU64s(uint64(item), 5, 100))
				}
			}
		}
	}
	for i := 0; i < sc.Items; i++ {
		// item: [price, im_id]
		db.Load(itemKey(i), encU64s(uint64(100+i%900), uint64(i)))
		db.Load(itemStatsKey(i), encU64s(0))
	}
}
