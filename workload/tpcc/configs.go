package tpcc

import "repro/tebaldi"

// The CC tree configurations evaluated in §4.6.1 (Figure 4.6) and §4.6.3.

// ConfigMono2PL is the monolithic two-phase-locking baseline.
func ConfigMono2PL() *tebaldi.Config {
	return tebaldi.Leaf(tebaldi.TwoPL,
		TxnNewOrder, TxnPayment, TxnDelivery, TxnOrderStatus, TxnStockLevel)
}

// ConfigMonoSSI is the monolithic serializable-snapshot-isolation baseline.
func ConfigMonoSSI() *tebaldi.Config {
	return tebaldi.Leaf(tebaldi.SSI,
		TxnNewOrder, TxnPayment, TxnDelivery, TxnOrderStatus, TxnStockLevel)
}

// ConfigCallas1 is Callas' original grouping (Fig 4.6a): 2PL cross-group
// over RP{NO,PAY}, RP{DEL} and the read-only group. Cross-group read-write
// conflicts between stock_level and new_order/payment throttle it.
func ConfigCallas1() *tebaldi.Config {
	return tebaldi.Inner(tebaldi.TwoPL,
		tebaldi.Leaf(tebaldi.RP, TxnNewOrder, TxnPayment),
		tebaldi.Leaf(tebaldi.RP, TxnDelivery),
		tebaldi.Leaf(tebaldi.None, TxnOrderStatus, TxnStockLevel),
	)
}

// ConfigCallas2 moves stock_level into the first RP group (Fig 4.6b),
// trading cross-group conflicts for a coarser pipeline.
func ConfigCallas2() *tebaldi.Config {
	return tebaldi.Inner(tebaldi.TwoPL,
		tebaldi.Leaf(tebaldi.RP, TxnNewOrder, TxnPayment, TxnStockLevel),
		tebaldi.Leaf(tebaldi.RP, TxnDelivery),
		tebaldi.Leaf(tebaldi.None, TxnOrderStatus),
	)
}

// ConfigTebaldi2Layer (Fig 4.6c): SSI cross-group separating the read-only
// transactions from one RP update group.
func ConfigTebaldi2Layer() *tebaldi.Config {
	return tebaldi.Inner(tebaldi.SSI,
		tebaldi.Leaf(tebaldi.None, TxnOrderStatus, TxnStockLevel),
		tebaldi.Leaf(tebaldi.RP, TxnNewOrder, TxnPayment, TxnDelivery),
	)
}

// ConfigTebaldi3Layer (Fig 4.6d): SSI over {read-only} and a 2PL subtree
// federating RP{NO,PAY} with RP{DEL} — the paper's best manual grouping.
func ConfigTebaldi3Layer() *tebaldi.Config {
	return tebaldi.Inner(tebaldi.SSI,
		tebaldi.Leaf(tebaldi.None, TxnOrderStatus, TxnStockLevel),
		tebaldi.Inner(tebaldi.TwoPL,
			tebaldi.Leaf(tebaldi.RP, TxnNewOrder, TxnPayment),
			tebaldi.Leaf(tebaldi.RP, TxnDelivery),
		),
	)
}

// ConfigHot3Layer keeps the three-layer tree and folds hot_item into the
// new_order/payment RP group (§4.6.3, first option — a coarser pipeline).
func ConfigHot3Layer() *tebaldi.Config {
	return tebaldi.Inner(tebaldi.SSI,
		tebaldi.Leaf(tebaldi.None, TxnOrderStatus, TxnStockLevel),
		tebaldi.Inner(tebaldi.TwoPL,
			tebaldi.Leaf(tebaldi.RP, TxnNewOrder, TxnPayment, TxnHotItem),
			tebaldi.Leaf(tebaldi.RP, TxnDelivery),
		),
	)
}

// ConfigHot4Layer gives hot_item its own group with RP as the cross-group
// mechanism against new_order/payment (§4.6.3, second option — Tebaldi's
// extensibility showcase).
func ConfigHot4Layer() *tebaldi.Config {
	return tebaldi.Inner(tebaldi.SSI,
		tebaldi.Leaf(tebaldi.None, TxnOrderStatus, TxnStockLevel),
		tebaldi.Inner(tebaldi.TwoPL,
			tebaldi.Inner(tebaldi.RP,
				tebaldi.Leaf(tebaldi.RP, TxnNewOrder, TxnPayment),
				tebaldi.Leaf(tebaldi.TwoPL, TxnHotItem),
			),
			tebaldi.Leaf(tebaldi.RP, TxnDelivery),
		),
	)
}

// ConfigPairSameGroup runs new_order and stock_level in one RP group
// (Table 3.1, column 1).
func ConfigPairSameGroup() *tebaldi.Config {
	return tebaldi.Leaf(tebaldi.RP, TxnNewOrder, TxnStockLevel)
}

// ConfigPairSeparate2PL separates them with 2PL cross-group (Table 3.1,
// columns 2/3; deadlocks depend on the access orders of the two types).
func ConfigPairSeparate2PL() *tebaldi.Config {
	return tebaldi.Inner(tebaldi.TwoPL,
		tebaldi.Leaf(tebaldi.RP, TxnNewOrder),
		tebaldi.Leaf(tebaldi.None, TxnStockLevel),
	)
}

// ConfigPairSeparateSSI uses a multiversioned cross-group mechanism for the
// same split (the "what the cross-group mechanism should have been" probe of
// §3.4.1/§5.3.1).
func ConfigPairSeparateSSI() *tebaldi.Config {
	return tebaldi.Inner(tebaldi.SSI,
		tebaldi.Leaf(tebaldi.None, TxnStockLevel),
		tebaldi.Leaf(tebaldi.RP, TxnNewOrder),
	)
}
