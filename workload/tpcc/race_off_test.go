//go:build !race

package tpcc

// raceDetectorEnabled reports whether this test binary was built with the
// race detector (used to skip tests with known race-timing-exposed bugs).
const raceDetectorEnabled = false
