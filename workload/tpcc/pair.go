package tpcc

import (
	"math/rand"

	"repro/tebaldi"
)

// This file supports the Table 3.1 experiment (§3.4.1): new_order and
// stock_level run alone, under four grouping regimes. The "deadlock"
// variant reproduces runtime pipelining's preferred access order for
// new_order — stock before district — which deadlocks against stock_level's
// district-before-stock order at a 2PL cross-group layer; the "no deadlock"
// variant uses the district-first order.

// TxnNewOrderSF is the stock-first new_order variant.
const TxnNewOrderSF = "new_order_sf"

// PairSpecs returns the specs for the two-transaction experiment. When
// deadlock is true, new_order is replaced by its stock-first variant.
func PairSpecs(deadlock bool) []*tebaldi.Spec {
	specs := Specs(false)
	out := specs[:0]
	for _, s := range specs {
		if s.Name == TxnNewOrder || s.Name == TxnStockLevel {
			out = append(out, s)
		}
	}
	if deadlock {
		for _, s := range out {
			if s.Name == TxnNewOrder {
				s.Name = TxnNewOrderSF
				s.Tables = []string{"warehouse", "customer", "item", "stock",
					"district", "order", "new_order", "cust_idx", "order_line"}
			}
		}
	}
	return out
}

// PairConfig builds the grouping for one Table 3.1 column.
//   - "same":      RP{NO, SL} in one group
//   - "deadlock":  2PL[ RP{NO_sf}, None{SL} ] with stock-first new_order
//   - "separate":  2PL[ RP{NO},    None{SL} ]
//   - "noconflict": same tree as "separate"; disjoint warehouses come from
//     the generator.
func PairConfig(mode string) *tebaldi.Config {
	switch mode {
	case "same":
		return tebaldi.Leaf(tebaldi.RP, TxnNewOrder, TxnStockLevel)
	case "deadlock":
		return tebaldi.Inner(tebaldi.TwoPL,
			tebaldi.Leaf(tebaldi.RP, TxnNewOrderSF),
			tebaldi.Leaf(tebaldi.None, TxnStockLevel))
	default: // "separate", "noconflict"
		return tebaldi.Inner(tebaldi.TwoPL,
			tebaldi.Leaf(tebaldi.RP, TxnNewOrder),
			tebaldi.Leaf(tebaldi.None, TxnStockLevel))
	}
}

// PairGen returns a generator emitting 50/50 new_order / stock_level.
// stockFirst switches new_order to the deadlock-prone access order. When
// disjoint is true, new_order draws warehouses from the lower half and
// stock_level from the upper half (the "Separate - No Conflict" column).
func (c *Client) PairGen(stockFirst, disjoint bool) func(rng *rand.Rand) Op {
	w := c.Scale.Warehouses
	return func(rng *rand.Rand) Op {
		noLo, noHi, slLo, slHi := 0, w, 0, w
		if disjoint {
			noLo, noHi, slLo, slHi = 0, w/2, w/2, w
		}
		if rng.Intn(2) == 0 {
			if stockFirst {
				return c.newOrderStockFirst(rng, noLo, noHi)
			}
			return c.newOrderRange(rng, noLo, noHi)
		}
		return c.stockLevelRange(rng, slLo, slHi)
	}
}

func (c *Client) newOrderRange(rng *rand.Rand, lo, hi int) Op {
	in := inputs{w: lo + rng.Intn(hi-lo), d: rng.Intn(c.Scale.Districts), c: rng.Intn(c.Scale.Customers)}
	return c.newOrderAt(in, rng, false)
}

func (c *Client) newOrderStockFirst(rng *rand.Rand, lo, hi int) Op {
	in := inputs{w: lo + rng.Intn(hi-lo), d: rng.Intn(c.Scale.Districts), c: rng.Intn(c.Scale.Customers)}
	return c.newOrderAt(in, rng, true)
}

func (c *Client) stockLevelRange(rng *rand.Rand, lo, hi int) Op {
	for {
		op := c.StockLevel(rng)
		if int(op.Part) >= lo && int(op.Part) < hi {
			return op
		}
	}
}

// newOrderAt builds a new_order at fixed inputs; stockFirst selects the
// deadlock-prone access order (stock and order tables before district).
func (c *Client) newOrderAt(in inputs, rng *rand.Rand, stockFirst bool) Op {
	items, qty := pickItems(rng, c.Scale.Items)
	nl := len(items)
	typ := TxnNewOrder
	if stockFirst {
		typ = TxnNewOrderSF
	}
	fn := func(tx *tebaldi.Tx) error {
		if _, err := tx.Read(warehouseKey(in.w)); err != nil {
			return err
		}
		readDistrict := func() (uint64, error) {
			drow, err := tx.Read(districtKey(in.w, in.d))
			if err != nil {
				return 0, err
			}
			oid := decU64(drow, 2)
			return oid, tx.Write(districtKey(in.w, in.d),
				encU64s(decU64(drow, 0), decU64(drow, 1), oid+1))
		}
		touchStock := func() error {
			for i, it := range items {
				srow, err := tx.Read(stockKey(in.w, it))
				if err != nil {
					return err
				}
				q := decU64(srow, 0)
				if q < uint64(qty[i])+10 {
					q += 91
				}
				if err := tx.Write(stockKey(in.w, it),
					encU64s(q-uint64(qty[i]), decU64(srow, 1)+uint64(qty[i]))); err != nil {
					return err
				}
			}
			return nil
		}
		writeOrder := func(oid uint64) error {
			if err := tx.Write(orderKey(in.w, in.d, int(oid)),
				encU64s(uint64(in.c), uint64(nl), 0)); err != nil {
				return err
			}
			if err := tx.Write(tebaldi.KeyOf("new_order", in.w, in.d, int(oid)), encU64s(1)); err != nil {
				return err
			}
			return tx.Write(custIdxKey(in.w, in.d, in.c), encU64s(oid))
		}
		writeLines := func(oid uint64) error {
			for i, it := range items {
				if err := tx.Write(orderLineKey(in.w, in.d, int(oid), i),
					encU64s(uint64(it), uint64(qty[i]), 100)); err != nil {
					return err
				}
			}
			return nil
		}
		readItems := func() error {
			for _, it := range items {
				if _, err := tx.Read(itemKey(it)); err != nil {
					return err
				}
			}
			return nil
		}

		if stockFirst {
			// warehouse, customer, item, stock, order tables, then
			// district last — RP's preferred order, deadlock-prone
			// against stock_level at a 2PL cross-group layer.
			if _, err := tx.Read(customerKey(in.w, in.d, in.c)); err != nil {
				return err
			}
			if err := readItems(); err != nil {
				return err
			}
			if err := touchStock(); err != nil {
				return err
			}
			// Order ids must still come from district; in the
			// reordered variant RP uses a reconnaissance-style
			// pre-assigned id derived from the district counter
			// read at the end.
			oid, err := readDistrict()
			if err != nil {
				return err
			}
			if err := writeOrder(oid); err != nil {
				return err
			}
			return writeLines(oid)
		}
		oid, err := readDistrict()
		if err != nil {
			return err
		}
		if _, err := tx.Read(customerKey(in.w, in.d, in.c)); err != nil {
			return err
		}
		if err := writeOrder(oid); err != nil {
			return err
		}
		if err := readItems(); err != nil {
			return err
		}
		if err := touchStock(); err != nil {
			return err
		}
		return writeLines(oid)
	}
	return Op{Type: typ, Part: uint64(in.w), Fn: fn}
}
