package tpcc

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/tebaldi"
)

func smallScale() Scale {
	return Scale{Warehouses: 2, Districts: 2, Customers: 20, Items: 50}
}

func openSmall(t *testing.T, cfg *tebaldi.Config, hot bool) (*tebaldi.DB, *Client) {
	t.Helper()
	db, err := tebaldi.Open(tebaldi.Options{Shards: 4, LockTimeout: 3 * time.Second},
		Specs(hot), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := smallScale()
	Load(db, sc)
	return db, NewClient(db, sc)
}

// hammer runs the mix concurrently and returns committed count.
func hammer(t *testing.T, db *tebaldi.DB, c *Client, mix func(*rand.Rand) Op, workers, each int) {
	t.Helper()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < each; i++ {
				if err := c.Execute(mix(rng)); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()
}

func u64At(b []byte, i int) uint64 {
	if len(b) < (i+1)*8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b[i*8:])
}

// checkMoneyFlow verifies the TPC-C money invariant on a quiesced database:
// warehouse YTD equals the sum of its districts' YTDs (payment updates both
// atomically).
func checkMoneyFlow(t *testing.T, db *tebaldi.DB, sc Scale) {
	t.Helper()
	for w := 0; w < sc.Warehouses; w++ {
		wytd := u64At(db.ReadCommitted(warehouseKey(w)), 0)
		var dytd uint64
		for d := 0; d < sc.Districts; d++ {
			dytd += u64At(db.ReadCommitted(districtKey(w, d)), 0)
		}
		if wytd != dytd {
			t.Fatalf("warehouse %d: w_ytd %d != sum(d_ytd) %d — payment atomicity broken",
				w, wytd, dytd)
		}
	}
}

// checkOrders verifies order-flow invariants: district next_o_id matches the
// dense range of existing orders, and every order has its declared lines.
func checkOrders(t *testing.T, db *tebaldi.DB, sc Scale) {
	t.Helper()
	for w := 0; w < sc.Warehouses; w++ {
		for d := 0; d < sc.Districts; d++ {
			next := int(u64At(db.ReadCommitted(districtKey(w, d)), 2))
			for o := 0; o < next; o++ {
				orow := db.ReadCommitted(orderKey(w, d, o))
				if orow == nil {
					t.Fatalf("w%d d%d: order %d missing below next_o_id %d", w, d, o, next)
				}
				nl := int(u64At(orow, 1))
				for l := 0; l < nl; l++ {
					if db.ReadCommitted(orderLineKey(w, d, o, l)) == nil {
						t.Fatalf("w%d d%d o%d: line %d missing (of %d)", w, d, o, l, nl)
					}
				}
			}
			if db.ReadCommitted(orderKey(w, d, next)) != nil {
				t.Fatalf("w%d d%d: order exists at next_o_id %d", w, d, next)
			}
		}
	}
}

func configsUnderTest() map[string]*tebaldi.Config {
	return map[string]*tebaldi.Config{
		"mono-2pl":       ConfigMono2PL(),
		"mono-ssi":       ConfigMonoSSI(),
		"callas-1":       ConfigCallas1(),
		"callas-2":       ConfigCallas2(),
		"tebaldi-2layer": ConfigTebaldi2Layer(),
		"tebaldi-3layer": ConfigTebaldi3Layer(),
	}
}

// TestTPCCInvariantsAcrossConfigs runs the full mix under every evaluated
// configuration and checks cross-table invariants — the workload-level
// serializability witness.
func TestTPCCInvariantsAcrossConfigs(t *testing.T) {
	for name, cfg := range configsUnderTest() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			db, c := openSmall(t, cfg, false)
			defer db.Close()
			hammer(t, db, c, c.Mix, 6, 40)
			if err := c.Check(db); err != nil {
				t.Fatal(err)
			}
			checkMoneyFlow(t, db, c.Scale)
			checkOrders(t, db, c.Scale)
			if db.Stats().Snapshot().Commits == 0 {
				t.Fatal("nothing committed")
			}
		})
	}
}

func TestTPCCHotItemConfigs(t *testing.T) {
	for name, cfg := range map[string]*tebaldi.Config{
		"hot-3layer": ConfigHot3Layer(),
		"hot-4layer": ConfigHot4Layer(),
	} {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			db, c := openSmall(t, cfg, true)
			defer db.Close()
			hammer(t, db, c, c.HotMix, 4, 30)
			checkMoneyFlow(t, db, c.Scale)
			if err := c.Check(db); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTPCCPairConfigs(t *testing.T) {
	for _, mode := range []string{"same", "separate", "noconflict"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			t.Parallel()
			db, err := tebaldi.Open(tebaldi.Options{Shards: 4, LockTimeout: 3 * time.Second},
				PairSpecs(false), PairConfig(mode))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			sc := smallScale()
			Load(db, sc)
			c := NewClient(db, sc)
			pg := c.PairGen(false, mode == "noconflict")
			hammer(t, db, c, func(rng *rand.Rand) Op { return pg(rng) }, 4, 30)
			checkOrders(t, db, sc)
		})
	}
}

// TestTPCCDeadlockVariantMakesProgress: the stock-first variant deadlocks at
// the cross-group 2PL, but timeouts must keep the system live.
func TestTPCCDeadlockVariantMakesProgress(t *testing.T) {
	db, err := tebaldi.Open(tebaldi.Options{Shards: 4, LockTimeout: 100 * time.Millisecond},
		PairSpecs(true), PairConfig("deadlock"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sc := smallScale()
	Load(db, sc)
	c := NewClient(db, sc)
	pg := c.PairGen(true, false)
	hammer(t, db, c, func(rng *rand.Rand) Op { return pg(rng) }, 4, 10)
	if db.Stats().Snapshot().Commits == 0 {
		t.Fatal("deadlock variant made no progress")
	}
	checkOrders(t, db, sc)
}

func TestSpecsTableOrdersMatchTransactions(t *testing.T) {
	// The declared access orders must cover every table each transaction
	// touches (RP's analysis relies on them).
	specs := Specs(true)
	byName := map[string][]string{}
	for _, s := range specs {
		byName[s.Name] = s.Tables
	}
	want := map[string][]string{
		TxnPayment:  {"warehouse", "district", "customer", "history"},
		TxnDelivery: {"new_order", "order", "order_line", "customer"},
	}
	for name, tables := range want {
		got := byName[name]
		if len(got) != len(tables) {
			t.Fatalf("%s tables = %v", name, got)
		}
		for i := range tables {
			if got[i] != tables[i] {
				t.Fatalf("%s tables = %v, want %v", name, got, tables)
			}
		}
	}
}
