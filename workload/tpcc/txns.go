package tpcc

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"repro/tebaldi"
)

// Client generates and executes TPC-C transactions against a database. It is
// safe for concurrent use; each goroutine should use its own *rand.Rand.
type Client struct {
	DB    *tebaldi.DB
	Scale Scale
	// histSeq generates unique history row ids.
	histSeq atomic.Uint64
}

// NewClient builds a client for a database populated at the given scale.
func NewClient(db *tebaldi.DB, sc Scale) *Client { return &Client{DB: db, Scale: sc} }

// pickItems draws 5-15 distinct item ids, sorted ascending — ordered lock
// acquisition on stock rows prevents intra-step deadlocks between new_order
// instances, as in standard TPC-C implementations.
func pickItems(rng *rand.Rand, nItems int) (items, qty []int) {
	nl := 5 + rng.Intn(11)
	seen := map[int]bool{}
	for len(items) < nl {
		it := rng.Intn(nItems)
		if !seen[it] {
			seen[it] = true
			items = append(items, it)
		}
	}
	sort.Ints(items)
	qty = make([]int, nl)
	for i := range qty {
		qty[i] = 1 + rng.Intn(10)
	}
	return items, qty
}

// Op is one generated transaction: run via DB.Run(Type, Part, Fn).
type Op struct {
	Type string
	Part uint64
	Fn   func(*tebaldi.Tx) error
}

// Execute runs the op with automatic retry.
func (c *Client) Execute(op Op) error { return c.DB.Run(op.Type, op.Part, op.Fn) }

// Mix draws a transaction from the standard TPC-C mix (§4.6.1):
// 45% new_order, 43% payment, 4% each of delivery/order_status/stock_level.
func (c *Client) Mix(rng *rand.Rand) Op {
	r := rng.Float64()
	switch {
	case r < 0.45:
		return c.NewOrder(rng)
	case r < 0.88:
		return c.Payment(rng)
	case r < 0.92:
		return c.Delivery(rng)
	case r < 0.96:
		return c.OrderStatus(rng)
	default:
		return c.StockLevel(rng)
	}
}

// HotMix is the §4.6.3 mix: 41.8% new_order, 41.8% payment, 4.1% each of the
// rest including hot_item.
func (c *Client) HotMix(rng *rand.Rand) Op {
	r := rng.Float64()
	switch {
	case r < 0.418:
		return c.NewOrder(rng)
	case r < 0.836:
		return c.Payment(rng)
	case r < 0.877:
		return c.Delivery(rng)
	case r < 0.918:
		return c.OrderStatus(rng)
	case r < 0.959:
		return c.StockLevel(rng)
	default:
		return c.HotItem(rng)
	}
}

// PairMix draws only new_order / stock_level (the Table 3.1 experiment).
func (c *Client) PairMix(rng *rand.Rand) Op {
	if rng.Intn(2) == 0 {
		return c.NewOrder(rng)
	}
	return c.StockLevel(rng)
}

// restrictWarehouse, when >= 0, pins transaction inputs to one warehouse
// (the "Separate - No Conflict" scenario of Table 3.1 assigns disjoint
// warehouses per type).
type inputs struct {
	w, d, c int
}

func (c *Client) pick(rng *rand.Rand) inputs {
	return inputs{
		w: rng.Intn(c.Scale.Warehouses),
		d: rng.Intn(c.Scale.Districts),
		c: rng.Intn(c.Scale.Customers),
	}
}

// NewOrder builds a new_order transaction: create an order of 5-15 lines,
// updating district's next order id and the per-item stock rows. Operations
// are ordered warehouse -> district -> customer -> order -> new_order ->
// cust_idx -> item* -> stock* -> order_line* to satisfy RP's pipeline.
func (c *Client) NewOrder(rng *rand.Rand) Op {
	in := c.pick(rng)
	items, qty := pickItems(rng, c.Scale.Items)
	nl := len(items)
	fn := func(tx *tebaldi.Tx) error {
		wrow, err := tx.Read(warehouseKey(in.w))
		if err != nil {
			return err
		}
		_ = decU64(wrow, 1) // w_tax
		drow, err := tx.Read(districtKey(in.w, in.d))
		if err != nil {
			return err
		}
		oid := decU64(drow, 2)
		if err := tx.Write(districtKey(in.w, in.d),
			encU64s(decU64(drow, 0), decU64(drow, 1), oid+1)); err != nil {
			return err
		}
		crow, err := tx.Read(customerKey(in.w, in.d, in.c))
		if err != nil {
			return err
		}
		_ = crow
		if err := tx.Write(orderKey(in.w, in.d, int(oid)),
			encU64s(uint64(in.c), uint64(nl), 0)); err != nil {
			return err
		}
		// new_order marker: bump nothing, order existence is the queue;
		// touch the pointer row's table via a per-order marker key.
		if err := tx.Write(tebaldi.KeyOf("new_order", in.w, in.d, int(oid)), encU64s(1)); err != nil {
			return err
		}
		if err := tx.Write(custIdxKey(in.w, in.d, in.c), encU64s(oid)); err != nil {
			return err
		}
		prices := make([]uint64, nl)
		for i, it := range items {
			irow, err := tx.Read(itemKey(it))
			if err != nil {
				return err
			}
			prices[i] = decU64(irow, 0)
		}
		for i, it := range items {
			srow, err := tx.Read(stockKey(in.w, it))
			if err != nil {
				return err
			}
			q := decU64(srow, 0)
			if q < uint64(qty[i])+10 {
				q += 91
			}
			if err := tx.Write(stockKey(in.w, it),
				encU64s(q-uint64(qty[i]), decU64(srow, 1)+uint64(qty[i]))); err != nil {
				return err
			}
		}
		for i, it := range items {
			amount := prices[i] * uint64(qty[i])
			if err := tx.Write(orderLineKey(in.w, in.d, int(oid), i),
				encU64s(uint64(it), uint64(qty[i]), amount)); err != nil {
				return err
			}
		}
		return nil
	}
	return Op{Type: TxnNewOrder, Part: uint64(in.w), Fn: fn}
}

// Payment builds a payment transaction: update warehouse/district YTD and
// the customer balance, and append a history row.
func (c *Client) Payment(rng *rand.Rand) Op {
	in := c.pick(rng)
	amount := uint64(1 + rng.Intn(5000))
	hid := c.histSeq.Add(1)
	fn := func(tx *tebaldi.Tx) error {
		wrow, err := tx.Read(warehouseKey(in.w))
		if err != nil {
			return err
		}
		if err := tx.Write(warehouseKey(in.w),
			encU64s(decU64(wrow, 0)+amount, decU64(wrow, 1))); err != nil {
			return err
		}
		drow, err := tx.Read(districtKey(in.w, in.d))
		if err != nil {
			return err
		}
		if err := tx.Write(districtKey(in.w, in.d),
			encU64s(decU64(drow, 0)+amount, decU64(drow, 1), decU64(drow, 2))); err != nil {
			return err
		}
		crow, err := tx.Read(customerKey(in.w, in.d, in.c))
		if err != nil {
			return err
		}
		bal := decU64(crow, 0)
		if bal < amount {
			bal = 0
		} else {
			bal -= amount
		}
		if err := tx.Write(customerKey(in.w, in.d, in.c),
			encU64s(bal, decU64(crow, 1)+amount, decU64(crow, 2)+1, decU64(crow, 3))); err != nil {
			return err
		}
		return tx.Write(historyKey(in.w, in.d, hid), encU64s(uint64(in.c), amount))
	}
	return Op{Type: TxnPayment, Part: uint64(in.w), Fn: fn}
}

// Delivery builds a delivery transaction: deliver the oldest undelivered
// order in each district of a warehouse (batched by table for RP: new_order
// pointers first, then orders, then order lines, then customers).
func (c *Client) Delivery(rng *rand.Rand) Op {
	w := rng.Intn(c.Scale.Warehouses)
	carrier := uint64(1 + rng.Intn(10))
	nd := c.Scale.Districts
	fn := func(tx *tebaldi.Tx) error {
		oids := make([]int64, nd)
		for d := 0; d < nd; d++ {
			ptr, err := tx.Read(newOrderPtrKey(w, d))
			if err != nil {
				return err
			}
			next := decU64(ptr, 0)
			// Check the per-order marker; absent means nothing to
			// deliver in this district.
			marker, err := tx.Read(tebaldi.KeyOf("new_order", w, d, int(next)))
			if err != nil {
				return err
			}
			if marker == nil {
				oids[d] = -1
				continue
			}
			oids[d] = int64(next)
			if err := tx.Write(newOrderPtrKey(w, d), encU64s(next+1)); err != nil {
				return err
			}
		}
		cids := make([]uint64, nd)
		counts := make([]uint64, nd)
		for d := 0; d < nd; d++ {
			if oids[d] < 0 {
				continue
			}
			orow, err := tx.Read(orderKey(w, d, int(oids[d])))
			if err != nil {
				return err
			}
			if orow == nil {
				oids[d] = -1
				continue
			}
			cids[d] = decU64(orow, 0)
			counts[d] = decU64(orow, 1)
			if err := tx.Write(orderKey(w, d, int(oids[d])),
				encU64s(cids[d], counts[d], carrier)); err != nil {
				return err
			}
		}
		sums := make([]uint64, nd)
		for d := 0; d < nd; d++ {
			if oids[d] < 0 {
				continue
			}
			for l := 0; l < int(counts[d]); l++ {
				ol, err := tx.Read(orderLineKey(w, d, int(oids[d]), l))
				if err != nil {
					return err
				}
				sums[d] += decU64(ol, 2)
			}
		}
		for d := 0; d < nd; d++ {
			if oids[d] < 0 {
				continue
			}
			crow, err := tx.Read(customerKey(w, d, int(cids[d])))
			if err != nil {
				return err
			}
			if err := tx.Write(customerKey(w, d, int(cids[d])),
				encU64s(decU64(crow, 0)+sums[d], decU64(crow, 1),
					decU64(crow, 2), decU64(crow, 3)+1)); err != nil {
				return err
			}
		}
		return nil
	}
	return Op{Type: TxnDelivery, Part: uint64(w), Fn: fn}
}

// OrderStatus builds the read-only order_status transaction, locating the
// customer's latest order through the secondary-index table (the paper's
// adaptation replacing the name scan).
func (c *Client) OrderStatus(rng *rand.Rand) Op {
	in := c.pick(rng)
	fn := func(tx *tebaldi.Tx) error {
		idx, err := tx.Read(custIdxKey(in.w, in.d, in.c))
		if err != nil {
			return err
		}
		if idx == nil {
			return nil // customer has no orders yet
		}
		oid := decU64(idx, 0)
		if _, err := tx.Read(customerKey(in.w, in.d, in.c)); err != nil {
			return err
		}
		orow, err := tx.Read(orderKey(in.w, in.d, int(oid)))
		if err != nil {
			return err
		}
		if orow == nil {
			return nil
		}
		for l := 0; l < int(decU64(orow, 1)); l++ {
			if _, err := tx.Read(orderLineKey(in.w, in.d, int(oid), l)); err != nil {
				return err
			}
		}
		return nil
	}
	return Op{Type: TxnOrderStatus, Part: uint64(in.w), Fn: fn}
}

// StockLevel builds the read-only stock_level transaction: examine the order
// lines of the last 20 orders of a district and count low-stock items
// (Figure 3.1 / 5.3).
func (c *Client) StockLevel(rng *rand.Rand) Op {
	w := rng.Intn(c.Scale.Warehouses)
	d := rng.Intn(c.Scale.Districts)
	threshold := uint64(10 + rng.Intn(11))
	fn := func(tx *tebaldi.Tx) error {
		drow, err := tx.Read(districtKey(w, d))
		if err != nil {
			return err
		}
		next := int(decU64(drow, 2))
		lo := next - 20
		if lo < 0 {
			lo = 0
		}
		type lineRef struct{ o, l int }
		var lines []lineRef
		for o := lo; o < next; o++ {
			orow, err := tx.Read(orderKey(w, d, o))
			if err != nil {
				return err
			}
			if orow == nil {
				continue
			}
			for l := 0; l < int(decU64(orow, 1)); l++ {
				lines = append(lines, lineRef{o, l})
			}
		}
		seen := map[uint64]bool{}
		var items []int
		for _, lr := range lines {
			ol, err := tx.Read(orderLineKey(w, d, lr.o, lr.l))
			if err != nil {
				return err
			}
			if ol != nil && !seen[decU64(ol, 0)] {
				seen[decU64(ol, 0)] = true
				items = append(items, int(decU64(ol, 0)))
			}
		}
		// Sorted stock access, matching new_order's lock order.
		sort.Ints(items)
		low := 0
		for _, it := range items {
			srow, err := tx.Read(stockKey(w, it))
			if err != nil {
				return err
			}
			if decU64(srow, 0) < threshold {
				low++
			}
		}
		return nil
	}
	return Op{Type: TxnStockLevel, Part: uint64(w), Fn: fn}
}

// HotItem builds the §4.6.3 extension transaction (Figure 4.9): sample
// recent orders and bump per-item sale counters.
func (c *Client) HotItem(rng *rand.Rand) Op {
	w := rng.Intn(c.Scale.Warehouses)
	d := rng.Intn(c.Scale.Districts)
	fn := func(tx *tebaldi.Tx) error {
		drow, err := tx.Read(districtKey(w, d))
		if err != nil {
			return err
		}
		next := int(decU64(drow, 2))
		if next == 0 {
			return nil
		}
		oid := next - 1
		orow, err := tx.Read(orderKey(w, d, oid))
		if err != nil {
			return err
		}
		if orow == nil {
			return nil
		}
		n := int(decU64(orow, 1))
		items := make([]int, 0, n)
		for l := 0; l < n; l++ {
			ol, err := tx.Read(orderLineKey(w, d, oid, l))
			if err != nil {
				return err
			}
			if ol != nil {
				items = append(items, int(decU64(ol, 0)))
			}
		}
		sort.Ints(items) // ordered item_stats locking across hot_item instances
		for _, it := range items {
			srow, err := tx.Read(itemStatsKey(it))
			if err != nil {
				return err
			}
			if err := tx.Write(itemStatsKey(it), encU64s(decU64(srow, 0)+1)); err != nil {
				return err
			}
		}
		return nil
	}
	return Op{Type: TxnHotItem, Part: uint64(w), Fn: fn}
}

// Check verifies cross-table invariants on a quiesced database (test hook):
// district next_o_id never below the delivery pointer, and customer payment
// counters consistent with history row count would require scans, so we
// check the cheap invariant set.
func (c *Client) Check(db *tebaldi.DB) error {
	for w := 0; w < c.Scale.Warehouses; w++ {
		for d := 0; d < c.Scale.Districts; d++ {
			drow := db.ReadCommitted(districtKey(w, d))
			ptr := db.ReadCommitted(newOrderPtrKey(w, d))
			if decU64(ptr, 0) > decU64(drow, 2) {
				return fmt.Errorf("w%d d%d: delivery pointer %d beyond next_o_id %d",
					w, d, decU64(ptr, 0), decU64(drow, 2))
			}
		}
	}
	return nil
}
