// Package seats implements the SEATS airline-reservation workload as adapted
// by the Tebaldi paper (§4.6.2): customer-name scans are removed in favour of
// secondary-index tables, the flight count is reduced to 50 to concentrate
// contention, each "flight" has 30,000 seats, and find_open_seats probes 30
// seats.
//
// The update transactions (new_reservation, delete_reservation,
// update_reservation) contend on per-flight state; Tebaldi's best
// configuration pipelines them with one TSO instance per flight under a 2PL
// cross-group parent, with SSI separating the read-only transactions
// (Figures 4.8 and 5.15).
package seats

import (
	"encoding/binary"
	"math/rand"
	"sync/atomic"

	"repro/tebaldi"
)

// Scale configures the generated database.
type Scale struct {
	Flights   int
	Seats     int // per flight
	Customers int
}

// DefaultScale mirrors the paper's adapted parameters.
func DefaultScale() Scale { return Scale{Flights: 50, Seats: 30000, Customers: 2000} }

// Transaction type names.
const (
	TxnNewReservation    = "new_reservation"
	TxnDeleteReservation = "delete_reservation"
	TxnUpdateReservation = "update_reservation"
	TxnUpdateCustomer    = "update_customer"
	TxnFindFlights       = "find_flights"
	TxnFindOpenSeats     = "find_open_seats"
)

// Specs returns the transaction type descriptions. The reservation types
// declare the flight count as their instance domain, enabling
// partition-by-instance (§5.4.2, Table 5.1).
func Specs(sc Scale) []*tebaldi.Spec {
	return []*tebaldi.Spec{
		{
			Name:           TxnNewReservation,
			Tables:         []string{"flight", "seat_idx", "reservation", "cust_idx"},
			WriteTables:    []string{"flight", "seat_idx", "reservation", "cust_idx"},
			InstanceDomain: sc.Flights,
			Weight:         0.35,
		},
		{
			Name:           TxnDeleteReservation,
			Tables:         []string{"cust_idx", "reservation", "seat_idx", "flight"},
			WriteTables:    []string{"cust_idx", "reservation", "seat_idx", "flight"},
			InstanceDomain: sc.Flights,
			Weight:         0.15,
		},
		{
			Name:           TxnUpdateReservation,
			Tables:         []string{"cust_idx", "reservation"},
			WriteTables:    []string{"reservation"},
			InstanceDomain: sc.Flights,
			Weight:         0.10,
		},
		{
			Name:        TxnUpdateCustomer,
			Tables:      []string{"customer"},
			WriteTables: []string{"customer"},
			Weight:      0.10,
		},
		{Name: TxnFindFlights, ReadOnly: true, Tables: []string{"flight"}, Weight: 0.15},
		{Name: TxnFindOpenSeats, ReadOnly: true, Tables: []string{"flight", "seat_idx"}, Weight: 0.15},
	}
}

func u64s(vals ...uint64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], v)
	}
	return b
}

func dec(b []byte, i int) uint64 {
	if len(b) < (i+1)*8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b[i*8:])
}

func flightKey(f int) tebaldi.Key      { return tebaldi.KeyOf("flight", f) }
func seatKey(f, s int) tebaldi.Key     { return tebaldi.KeyOf("seat_idx", f, s) }
func custKey(c int) tebaldi.Key        { return tebaldi.KeyOf("customer", c) }
func custIdxKey(c int) tebaldi.Key     { return tebaldi.KeyOf("cust_idx", c) }
func reservationKey(r int) tebaldi.Key { return tebaldi.KeyOf("reservation", r) }

// Load populates flights, customers and empty seat indexes. Seat index rows
// are created lazily (absent row = free seat) to keep load time proportional
// to flights, not seats.
func Load(db *tebaldi.DB, sc Scale) {
	for f := 0; f < sc.Flights; f++ {
		// flight: [seats_left, base_price]
		db.Load(flightKey(f), u64s(uint64(sc.Seats), uint64(100+f)))
	}
	for c := 0; c < sc.Customers; c++ {
		// customer: [balance, frequent_flyer_miles]
		db.Load(custKey(c), u64s(1000, 0))
	}
}

// Client generates SEATS transactions.
type Client struct {
	DB     *tebaldi.DB
	Scale  Scale
	resSeq atomic.Uint64
}

// NewClient builds a client.
func NewClient(db *tebaldi.DB, sc Scale) *Client { return &Client{DB: db, Scale: sc} }

// Op is one generated transaction.
type Op struct {
	Type string
	Part uint64
	Fn   func(*tebaldi.Tx) error
}

// Execute runs the op with automatic retry.
func (c *Client) Execute(op Op) error { return c.DB.Run(op.Type, op.Part, op.Fn) }

// Mix draws from the SEATS transaction mix.
func (c *Client) Mix(rng *rand.Rand) Op {
	r := rng.Float64()
	switch {
	case r < 0.35:
		return c.NewReservation(rng)
	case r < 0.50:
		return c.DeleteReservation(rng)
	case r < 0.60:
		return c.UpdateReservation(rng)
	case r < 0.70:
		return c.UpdateCustomer(rng)
	case r < 0.85:
		return c.FindFlights(rng)
	default:
		return c.FindOpenSeats(rng)
	}
}

// NewReservation reserves a random free seat on a flight for a customer.
func (c *Client) NewReservation(rng *rand.Rand) Op {
	cust := rng.Intn(c.Scale.Customers)
	// Customers are loyal to one flight (cust mod flights): reservation
	// conflicts then partition perfectly by flight, which is the paper's
	// premise for per-flight TSO groups ("transactions that access
	// different flights rarely conflict", §4.6.2) — and it lets the
	// customer-keyed delete/update transactions route to the correct
	// flight group at start time from their input alone.
	f := cust % c.Scale.Flights
	seat := rng.Intn(c.Scale.Seats)
	rid := int(c.resSeq.Add(1))
	fn := func(tx *tebaldi.Tx) error {
		// Declare the flight-row write up front (TSO promises, §4.4.4):
		// concurrent readers wait for the value instead of aborting
		// this writer under the read-timestamp rule.
		if err := tx.Promise(flightKey(f)); err != nil {
			return err
		}
		frow, err := tx.Read(flightKey(f))
		if err != nil {
			return err
		}
		left := dec(frow, 0)
		if left == 0 {
			return nil // flight full
		}
		srow, err := tx.Read(seatKey(f, seat))
		if err != nil {
			return err
		}
		if srow != nil && dec(srow, 0) != 0 {
			return nil // seat taken
		}
		if err := tx.Write(flightKey(f), u64s(left-1, dec(frow, 1))); err != nil {
			return err
		}
		if err := tx.Write(seatKey(f, seat), u64s(uint64(rid))); err != nil {
			return err
		}
		// reservation: [flight, seat, customer, attrs]
		if err := tx.Write(reservationKey(rid),
			u64s(uint64(f), uint64(seat), uint64(cust), 0)); err != nil {
			return err
		}
		return tx.Write(custIdxKey(cust), u64s(uint64(rid)))
	}
	return Op{Type: TxnNewReservation, Part: uint64(f), Fn: fn}
}

// DeleteReservation cancels a customer's latest reservation.
func (c *Client) DeleteReservation(rng *rand.Rand) Op {
	cust := rng.Intn(c.Scale.Customers)
	// The flight is unknown until the reservation is read; per the paper,
	// transactions are assigned to instance groups at start time by their
	// input, so delete keyed by customer uses a derived flight hint. We
	// use cust as the partition source — cross-flight conflicts are rare
	// and handled by the cross-group 2PL anyway (§4.6.2).
	fn := func(tx *tebaldi.Tx) error {
		idx, err := tx.Read(custIdxKey(cust))
		if err != nil {
			return err
		}
		if idx == nil || dec(idx, 0) == 0 {
			return nil // nothing to cancel
		}
		rid := int(dec(idx, 0))
		rrow, err := tx.Read(reservationKey(rid))
		if err != nil {
			return err
		}
		if rrow == nil || dec(rrow, 3) == ^uint64(0) {
			return nil
		}
		f, seat := int(dec(rrow, 0)), int(dec(rrow, 1))
		// Mark cancelled.
		if err := tx.Write(reservationKey(rid),
			u64s(dec(rrow, 0), dec(rrow, 1), dec(rrow, 2), ^uint64(0))); err != nil {
			return err
		}
		if err := tx.Write(custIdxKey(cust), u64s(0)); err != nil {
			return err
		}
		if err := tx.Write(seatKey(f, seat), u64s(0)); err != nil {
			return err
		}
		frow, err := tx.Read(flightKey(f))
		if err != nil {
			return err
		}
		return tx.Write(flightKey(f), u64s(dec(frow, 0)+1, dec(frow, 1)))
	}
	return Op{Type: TxnDeleteReservation, Part: uint64(cust % c.Scale.Flights), Fn: fn}
}

// UpdateReservation flips an attribute on a customer's reservation.
func (c *Client) UpdateReservation(rng *rand.Rand) Op {
	cust := rng.Intn(c.Scale.Customers)
	attr := uint64(rng.Intn(4) + 1)
	fn := func(tx *tebaldi.Tx) error {
		idx, err := tx.Read(custIdxKey(cust))
		if err != nil {
			return err
		}
		if idx == nil || dec(idx, 0) == 0 {
			return nil
		}
		rid := int(dec(idx, 0))
		rrow, err := tx.Read(reservationKey(rid))
		if err != nil {
			return err
		}
		if rrow == nil || dec(rrow, 3) == ^uint64(0) {
			return nil
		}
		return tx.Write(reservationKey(rid),
			u64s(dec(rrow, 0), dec(rrow, 1), dec(rrow, 2), attr))
	}
	return Op{Type: TxnUpdateReservation, Part: uint64(cust % c.Scale.Flights), Fn: fn}
}

// UpdateCustomer bumps a customer's frequent-flyer miles.
func (c *Client) UpdateCustomer(rng *rand.Rand) Op {
	cust := rng.Intn(c.Scale.Customers)
	fn := func(tx *tebaldi.Tx) error {
		crow, err := tx.Read(custKey(cust))
		if err != nil {
			return err
		}
		return tx.Write(custKey(cust), u64s(dec(crow, 0), dec(crow, 1)+100))
	}
	return Op{Type: TxnUpdateCustomer, Part: uint64(cust), Fn: fn}
}

// FindFlights reads a band of flights (read-only, long-ish).
func (c *Client) FindFlights(rng *rand.Rand) Op {
	start := rng.Intn(c.Scale.Flights)
	fn := func(tx *tebaldi.Tx) error {
		for i := 0; i < 10; i++ {
			f := (start + i) % c.Scale.Flights
			if _, err := tx.Read(flightKey(f)); err != nil {
				return err
			}
		}
		return nil
	}
	return Op{Type: TxnFindFlights, Part: uint64(start), Fn: fn}
}

// FindOpenSeats probes 30 seats of one flight (the paper's adapted size).
func (c *Client) FindOpenSeats(rng *rand.Rand) Op {
	f := rng.Intn(c.Scale.Flights)
	base := rng.Intn(c.Scale.Seats)
	fn := func(tx *tebaldi.Tx) error {
		if _, err := tx.Read(flightKey(f)); err != nil {
			return err
		}
		for i := 0; i < 30; i++ {
			s := (base + i*37) % c.Scale.Seats
			if _, err := tx.Read(seatKey(f, s)); err != nil {
				return err
			}
		}
		return nil
	}
	return Op{Type: TxnFindOpenSeats, Part: uint64(f), Fn: fn}
}

// ---- configurations (§4.6.2, Figures 4.8 / 5.15) ----

// ConfigMono2PL is the monolithic 2PL baseline.
func ConfigMono2PL() *tebaldi.Config {
	return tebaldi.Leaf(tebaldi.TwoPL,
		TxnNewReservation, TxnDeleteReservation, TxnUpdateReservation,
		TxnUpdateCustomer, TxnFindFlights, TxnFindOpenSeats)
}

// Config2Layer separates read-only transactions with SSI; 2PL regulates the
// update transactions.
func Config2Layer() *tebaldi.Config {
	return tebaldi.Inner(tebaldi.SSI,
		tebaldi.Leaf(tebaldi.None, TxnFindFlights, TxnFindOpenSeats),
		tebaldi.Leaf(tebaldi.TwoPL,
			TxnNewReservation, TxnDeleteReservation, TxnUpdateReservation, TxnUpdateCustomer),
	)
}

// Config3Layer adds per-flight TSO pipelining of the reservation
// transactions under a 2PL cross-group parent (the paper's best grouping).
func Config3Layer(sc Scale) *tebaldi.Config {
	perFlight := tebaldi.PartitionByInstance(tebaldi.TwoPL, sc.Flights,
		tebaldi.Leaf(tebaldi.TSO, TxnNewReservation, TxnDeleteReservation, TxnUpdateReservation))
	two := tebaldi.Inner(tebaldi.TwoPL, perFlight, tebaldi.Leaf(tebaldi.TwoPL, TxnUpdateCustomer))
	return tebaldi.Inner(tebaldi.SSI,
		tebaldi.Leaf(tebaldi.None, TxnFindFlights, TxnFindOpenSeats),
		two,
	)
}

// Config3LayerSingleTSO is the Table 5.1 counterpart without
// partition-by-instance: one TSO group for all flights.
func Config3LayerSingleTSO() *tebaldi.Config {
	return tebaldi.Inner(tebaldi.SSI,
		tebaldi.Leaf(tebaldi.None, TxnFindFlights, TxnFindOpenSeats),
		tebaldi.Inner(tebaldi.TwoPL,
			tebaldi.Leaf(tebaldi.TSO,
				TxnNewReservation, TxnDeleteReservation, TxnUpdateReservation),
			tebaldi.Leaf(tebaldi.TwoPL, TxnUpdateCustomer),
		),
	)
}
