package seats

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/tebaldi"
)

func smallScale() Scale { return Scale{Flights: 4, Seats: 200, Customers: 60} }

func openSmall(t *testing.T, cfg *tebaldi.Config) (*tebaldi.DB, *Client) {
	t.Helper()
	sc := smallScale()
	db, err := tebaldi.Open(tebaldi.Options{Shards: 4, LockTimeout: 3 * time.Second},
		Specs(sc), cfg)
	if err != nil {
		t.Fatal(err)
	}
	Load(db, sc)
	return db, NewClient(db, sc)
}

// checkSeats verifies the central SEATS invariant on a quiesced database:
// flight seats_left + booked seats == total seats, and the seat index agrees
// with the reservation table.
func checkSeats(t *testing.T, db *tebaldi.DB, sc Scale) {
	t.Helper()
	for f := 0; f < sc.Flights; f++ {
		var booked uint64
		for s := 0; s < sc.Seats; s++ {
			v := db.ReadCommitted(seatKey(f, s))
			if v == nil || dec(v, 0) == 0 {
				continue
			}
			booked++
			rid := int(dec(v, 0))
			rrow := db.ReadCommitted(reservationKey(rid))
			if rrow == nil {
				t.Fatalf("flight %d seat %d: index points at missing reservation %d", f, s, rid)
			}
			if int(dec(rrow, 0)) != f || int(dec(rrow, 1)) != s {
				t.Fatalf("reservation %d disagrees with seat index (%d,%d)", rid, f, s)
			}
			if dec(rrow, 3) == ^uint64(0) {
				t.Fatalf("flight %d seat %d: index points at cancelled reservation %d", f, s, rid)
			}
		}
		left := dec(db.ReadCommitted(flightKey(f)), 0)
		if left+booked != uint64(sc.Seats) {
			t.Fatalf("flight %d: seats_left %d + booked %d != %d", f, left, booked, sc.Seats)
		}
	}
}

func TestSEATSInvariantsAcrossConfigs(t *testing.T) {
	sc := smallScale()
	for name, cfg := range map[string]*tebaldi.Config{
		"mono-2pl":       ConfigMono2PL(),
		"2layer":         Config2Layer(),
		"3layer-pbi":     Config3Layer(sc),
		"3layer-one-tso": Config3LayerSingleTSO(),
	} {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			db, c := openSmall(t, cfg)
			defer db.Close()
			var wg sync.WaitGroup
			for w := 0; w < 6; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < 50; i++ {
						if err := c.Execute(c.Mix(rng)); err != nil {
							t.Error(err)
							return
						}
					}
				}(int64(w) + 1)
			}
			wg.Wait()
			checkSeats(t, db, sc)
			snap := db.Stats().Snapshot()
			if snap.Commits == 0 {
				t.Fatal("nothing committed")
			}
		})
	}
}

func TestCustomerLoyaltyPartitionsConflicts(t *testing.T) {
	sc := smallScale()
	c := &Client{Scale: sc}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		op := c.NewReservation(rng)
		if op.Part >= uint64(sc.Flights) {
			t.Fatalf("part %d out of flight domain", op.Part)
		}
	}
}

func TestSpecsInstanceDomain(t *testing.T) {
	sc := DefaultScale()
	for _, s := range Specs(sc) {
		switch s.Name {
		case TxnNewReservation, TxnDeleteReservation, TxnUpdateReservation:
			if s.InstanceDomain != sc.Flights {
				t.Fatalf("%s instance domain = %d", s.Name, s.InstanceDomain)
			}
		case TxnFindFlights, TxnFindOpenSeats:
			if !s.ReadOnly {
				t.Fatalf("%s should be read-only", s.Name)
			}
		}
	}
}
