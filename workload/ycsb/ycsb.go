// Package ycsb implements a YCSB-style key-value workload (Cooper et al.,
// SoCC 2010) over Tebaldi: the A (update-heavy, 50/50), B (read-heavy,
// 95/5) and C (read-only) core mixes, with zipfian or uniform request
// distributions over a single `usertable`.
//
// The paper's evaluation uses TPC-C and SEATS; YCSB adds the write-heavy
// scenario those lack, which is what the durability module's group-commit
// pipeline is measured against (EXPERIMENTS.md): under YCSB-A with
// synchronous durability every committer reaches the log, so log batching —
// not concurrency control — decides throughput.
//
// Each generated transaction performs OpsPerTxn point operations. A
// transaction whose drawn operations are all reads runs as the read-only
// type TxnRead (eligible for no-CC read-only groups under an SSI root);
// any write makes it TxnUpdate.
package ycsb

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand"

	"repro/tebaldi"
)

// Table is the single YCSB table.
const Table = "usertable"

// Transaction type names.
const (
	TxnRead   = "ycsb_read"
	TxnUpdate = "ycsb_update"
)

// Distributions.
const (
	Zipfian = "zipfian"
	Uniform = "uniform"
)

// Workload describes one YCSB variant. The zero value is completed by
// withDefaults: 64k records, 4 ops/txn, zipfian with theta 0.99, 100-byte
// values.
type Workload struct {
	// Records is the number of rows loaded into usertable.
	Records int
	// OpsPerTxn is the number of point operations per transaction.
	OpsPerTxn int
	// ReadProportion is the per-operation probability of a read (the rest
	// are updates): 0.5 for A, 0.95 for B, 1.0 for C.
	ReadProportion float64
	// Distribution selects the key chooser: Zipfian (default) or Uniform.
	Distribution string
	// Theta is the zipfian skew (YCSB default 0.99).
	Theta float64
	// ValueSize is the written value length in bytes.
	ValueSize int
}

// A returns the YCSB-A core workload: update-heavy, 50% reads / 50%
// updates, zipfian.
func A() Workload { return Workload{ReadProportion: 0.5} }

// B returns the YCSB-B core workload: read-heavy, 95% reads, zipfian.
func B() Workload { return Workload{ReadProportion: 0.95} }

// C returns the YCSB-C core workload: read-only, zipfian.
func C() Workload { return Workload{ReadProportion: 1.0} }

func (w Workload) withDefaults() Workload {
	if w.Records <= 0 {
		w.Records = 1 << 16
	}
	if w.OpsPerTxn <= 0 {
		w.OpsPerTxn = 4
	}
	if w.Distribution == "" {
		w.Distribution = Zipfian
	}
	if w.Theta <= 0 {
		w.Theta = 0.99
	}
	if w.ValueSize <= 0 {
		w.ValueSize = 100
	}
	return w
}

// Specs returns the workload's transaction type specs.
func (w Workload) Specs() []*tebaldi.Spec {
	return []*tebaldi.Spec{
		{Name: TxnRead, ReadOnly: true, Tables: []string{Table}},
		{Name: TxnUpdate, Tables: []string{Table}, WriteTables: []string{Table}},
	}
}

// Config returns the default CC tree for YCSB: SSI at the root separating
// the read-only group (no CC) from a 2PL update group — the initial
// configuration of §5.2, which is also what the paper's configurator would
// start from for a two-type workload.
func (w Workload) Config() *tebaldi.Config {
	return tebaldi.Inner(tebaldi.SSI,
		tebaldi.Leaf(tebaldi.None, TxnRead),
		tebaldi.Leaf(tebaldi.TwoPL, TxnUpdate))
}

// ConfigMono2PL returns a monolithic 2PL baseline configuration.
func (w Workload) ConfigMono2PL() *tebaldi.Config {
	return tebaldi.Leaf(tebaldi.TwoPL, TxnRead, TxnUpdate)
}

// Op is one generated transaction.
type Op struct {
	Type string
	Part uint64
	Fn   func(*tebaldi.Tx) error
}

// Client generates YCSB transactions. Safe for concurrent use: the chooser
// state is immutable after construction and all randomness comes from the
// caller's rng.
type Client struct {
	w       Workload
	chooser chooser
}

// New builds a client (precomputing the zipfian constants).
func New(w Workload) *Client {
	w = w.withDefaults()
	c := &Client{w: w}
	switch w.Distribution {
	case Uniform:
		c.chooser = uniform{n: w.Records}
	default:
		c.chooser = newZipfian(w.Records, w.Theta)
	}
	return c
}

// Workload returns the (default-completed) workload description.
func (c *Client) Workload() Workload { return c.w }

// Load populates usertable with Records rows.
func (c *Client) Load(db *tebaldi.DB) {
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, c.w.ValueSize)
	for i := 0; i < c.w.Records; i++ {
		rng.Read(buf)
		v := make([]byte, len(buf))
		copy(v, buf)
		db.Load(tebaldi.KeyOf(Table, i), v)
	}
}

// Mix draws one transaction: OpsPerTxn point operations, each a read with
// probability ReadProportion, over chooser-distributed keys. Keys are
// deduplicated (a duplicate zipfian draw with any write becomes one write)
// and accessed in sorted order — the standard discipline for running YCSB
// over a locking CC: lock acquisition order is deterministic, so hot-key
// contention produces waits, not spurious deadlock-by-timeout storms.
func (c *Client) Mix(rng *rand.Rand) Op {
	n := c.w.OpsPerTxn
	// Dedup + sort via insertion into a small sorted slice: transactions
	// are a handful of ops, so this beats the map + sort.Ints machinery
	// that used to dominate the client-side allocation profile.
	keys := make([]int, 0, n)
	writes := make([]bool, 0, n)
	allRead := true
	for i := 0; i < n; i++ {
		k := c.chooser.next(rng)
		w := rng.Float64() >= c.w.ReadProportion
		if w {
			allRead = false
		}
		pos := len(keys)
		dup := false
		for j, kj := range keys {
			if kj == k {
				pos, dup = j, true
				break
			}
			if kj > k {
				pos = j
				break
			}
		}
		if dup {
			writes[pos] = writes[pos] || w
			continue
		}
		keys = append(keys, 0)
		writes = append(writes, false)
		copy(keys[pos+1:], keys[pos:])
		copy(writes[pos+1:], writes[pos:])
		keys[pos], writes[pos] = k, w
	}
	typ := TxnUpdate
	if allRead {
		typ = TxnRead
	}
	var val []byte
	if !allRead {
		val = make([]byte, c.w.ValueSize)
		rng.Read(val)
	}
	return Op{Type: typ, Fn: func(tx *tebaldi.Tx) error {
		for i, k := range keys {
			key := tebaldi.KeyOf(Table, k)
			if writes[i] {
				if err := tx.Write(key, val); err != nil {
					return err
				}
			} else if _, err := tx.Read(key); err != nil {
				return err
			}
		}
		return nil
	}}
}

// ---- key choosers ----

type chooser interface {
	next(rng *rand.Rand) int
}

type uniform struct{ n int }

func (u uniform) next(rng *rand.Rand) int { return rng.Intn(u.n) }

// zipfian is the standard YCSB zipfian generator (Gray et al.'s rejection
// inversion constants), scrambled by an FNV hash so the hot keys spread
// over the whole keyspace instead of clustering at low row ids.
type zipfian struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

func newZipfian(n int, theta float64) *zipfian {
	z := &zipfian{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	zeta2 := zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z
}

func zeta(n int, theta float64) float64 {
	var sum float64
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipfian) next(rng *rand.Rand) int {
	u := rng.Float64()
	uz := u * z.zetan
	var rank int
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if rank >= z.n {
		rank = z.n - 1
	}
	return scramble(rank, z.n)
}

// scramble maps a zipfian rank to a stable pseudo-random row id.
func scramble(rank, n int) int {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(rank))
	h.Write(b[:])
	return int(h.Sum64() % uint64(n))
}
