package ycsb

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/tebaldi"
)

func smallWorkload(w Workload) Workload {
	w.Records = 2048
	w.ValueSize = 32
	return w
}

func TestMixesRun(t *testing.T) {
	for _, m := range []struct {
		name string
		w    Workload
	}{
		{"A", A()}, {"B", B()}, {"C", C()},
		{"A-uniform", func() Workload { w := A(); w.Distribution = Uniform; return w }()},
	} {
		t.Run(m.name, func(t *testing.T) {
			c := New(smallWorkload(m.w))
			db, err := tebaldi.Open(tebaldi.Options{Shards: 4, LockTimeout: 2 * time.Second},
				m.w.Specs(), m.w.Config())
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			c.Load(db)
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 50; i++ {
				op := c.Mix(rng)
				if err := db.Run(op.Type, op.Part, op.Fn); err != nil {
					t.Fatal(err)
				}
			}
			if db.Stats().Snapshot().Commits == 0 {
				t.Fatal("nothing committed")
			}
		})
	}
}

func TestReadOnlyClassification(t *testing.T) {
	c := New(smallWorkload(C()))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if op := c.Mix(rng); op.Type != TxnRead {
			t.Fatalf("YCSB-C generated a %s transaction", op.Type)
		}
	}
	c = New(smallWorkload(A()))
	sawUpdate := false
	for i := 0; i < 100; i++ {
		if c.Mix(rng).Type == TxnUpdate {
			sawUpdate = true
		}
	}
	if !sawUpdate {
		t.Fatal("YCSB-A generated no update transactions")
	}
}

// TestZipfianSkew checks the chooser is actually skewed: with theta 0.99
// the most popular key should draw far more than uniform share, and all
// draws must stay in range.
func TestZipfianSkew(t *testing.T) {
	const n = 1000
	const draws = 200000
	z := newZipfian(n, 0.99)
	rng := rand.New(rand.NewSource(7))
	counts := make(map[int]int)
	for i := 0; i < draws; i++ {
		k := z.next(rng)
		if k < 0 || k >= n {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Uniform share would be draws/n = 200; the zipfian head should be
	// well over 10x that.
	if max < 10*draws/n {
		t.Fatalf("distribution not skewed: hottest key drawn %d times", max)
	}
	// Scrambling must not lose keys entirely on moderate samples.
	if len(counts) < n/10 {
		t.Fatalf("only %d distinct keys drawn", len(counts))
	}
}

func TestUniformCoverage(t *testing.T) {
	u := uniform{n: 100}
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[u.next(rng)]++
	}
	for k, c := range counts {
		if math.Abs(float64(c)-1000) > 400 {
			t.Fatalf("key %d drawn %d times (expected ~1000)", k, c)
		}
	}
}

// TestRunsUnderDurability drives YCSB-A under both durability modes and
// verifies committed writes survive recovery.
func TestRunsUnderDurability(t *testing.T) {
	for _, sync := range []bool{false, true} {
		name := "Async"
		if sync {
			name = "SyncCommit"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			w := smallWorkload(A())
			c := New(w)
			opts := tebaldi.Options{
				Shards:         4,
				LockTimeout:    2 * time.Second,
				DurabilityDir:  dir,
				DurabilitySync: sync,
				GCPEpoch:       10 * time.Millisecond,
			}
			db, err := tebaldi.Open(opts, w.Specs(), w.Config())
			if err != nil {
				t.Fatal(err)
			}
			c.Load(db)
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 40; i++ {
				op := c.Mix(rng)
				if err := db.Run(op.Type, op.Part, op.Fn); err != nil {
					t.Fatal(err)
				}
			}
			committed := db.Stats().Snapshot().Commits
			if !sync {
				wal := db.Engine().Wal()
				wal.WaitDurable(wal.Epoch())
			}
			db.Close()

			db2, st, err := tebaldi.Recover(opts, w.Specs(), w.Config())
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			if st.Committed == 0 && committed > 0 {
				t.Fatalf("recovered no transactions out of %d committed", committed)
			}
		})
	}
}
