package micro

import (
	"math/rand"
	"testing"
	"time"

	"repro/tebaldi"
)

func TestCrossGroupRuns(t *testing.T) {
	for _, ro := range []bool{false, true} {
		for _, cross := range []tebaldi.Kind{tebaldi.TwoPL, tebaldi.SSI, tebaldi.RP} {
			cg := CrossGroup{SharedRows: 20, ReadOnlyT1: ro}
			db, err := tebaldi.Open(tebaldi.Options{Shards: 4, LockTimeout: 2 * time.Second},
				cg.Specs(), cg.Config(cross))
			if err != nil {
				t.Fatalf("ro=%v cross=%s: %v", ro, cross, err)
			}
			cg.Load(db)
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 30; i++ {
				op := cg.Mix(rng)
				if err := db.Run(op.Type, op.Part, op.Fn); err != nil {
					t.Fatalf("ro=%v cross=%s: %v", ro, cross, err)
				}
			}
			if db.Stats().Snapshot().Commits == 0 {
				t.Fatal("nothing committed")
			}
			db.Close()
		}
	}
}

func TestOverheadKeysNeverConflict(t *testing.T) {
	ov := &Overhead{}
	rng := rand.New(rand.NewSource(1))
	for name, cfg := range ov.Configs() {
		db, err := tebaldi.Open(tebaldi.Options{Shards: 4}, ov.Specs(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 0; i < 20; i++ {
			op := ov.Next(rng)
			if err := db.Run(op.Type, op.Part, op.Fn); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		snap := db.Stats().Snapshot()
		if snap.Aborts != 0 {
			t.Fatalf("%s: conflict-free workload aborted %d times", name, snap.Aborts)
		}
		db.Close()
	}
}

func TestThreeLayerConfigsRun(t *testing.T) {
	tl := ThreeLayer{}
	for name, cfg := range tl.Configs() {
		db, err := tebaldi.Open(tebaldi.Options{Shards: 4, LockTimeout: 2 * time.Second},
			tl.Specs(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tl.Load(db)
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 30; i++ {
			op := tl.Mix(rng)
			if err := db.Run(op.Type, op.Part, op.Fn); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		db.Close()
	}
}
