// Package micro implements the microbenchmarks of §4.6.4 and §4.6.5:
//
//   - the cross-group CC comparison (Figure 4.10): two groups whose
//     transactions conflict on a shared table at a tunable rate, write-write
//     or read-write, under different cross-group mechanisms;
//   - the two-layer vs three-layer scenario (Figure 4.11): a read-only T1,
//     a pipelinable T2 and a rarely-conflicting T3 that no single
//     cross-group mechanism can serve;
//   - the layering-overhead workload (Table 4.1): a conflict-free
//     seven-write transaction run under increasingly deep hierarchies.
package micro

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync/atomic"

	"repro/tebaldi"
)

func val(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// ---- Figure 4.10: cross-group CC comparison ----

// CrossGroup is the two-group conflict workload. Each update transaction
// performs seven writes: one to the shared table (size SharedRows, so the
// conflict rate is 1/SharedRows), one to a ten-row group-local table, and
// five to a 10,000-row rarely-conflicting table.
type CrossGroup struct {
	SharedRows int
	ReadOnlyT1 bool // rw-* variants replace group 1 with a read-only reader
}

// Transaction type names.
const (
	TxnCG1 = "cg_t1"
	TxnCG2 = "cg_t2"
)

// Specs returns the workload's transaction specs.
func (w CrossGroup) Specs() []*tebaldi.Spec {
	t1 := &tebaldi.Spec{
		Name:        TxnCG1,
		Tables:      []string{"shared", "local1", "low"},
		WriteTables: []string{"shared", "local1", "low"},
	}
	if w.ReadOnlyT1 {
		t1.ReadOnly = true
		t1.WriteTables = nil
	}
	return []*tebaldi.Spec{t1, {
		Name:        TxnCG2,
		Tables:      []string{"shared", "local2", "low"},
		WriteTables: []string{"shared", "local2", "low"},
	}}
}

// Load populates the tables.
func (w CrossGroup) Load(db *tebaldi.DB) {
	for i := 0; i < w.SharedRows; i++ {
		db.Load(tebaldi.KeyOf("shared", i), val(0))
	}
	for i := 0; i < 10; i++ {
		db.Load(tebaldi.KeyOf("local1", i), val(0))
		db.Load(tebaldi.KeyOf("local2", i), val(0))
	}
	for i := 0; i < 10000; i++ {
		db.Load(tebaldi.KeyOf("low", i), val(0))
	}
}

// Op is one generated transaction.
type Op struct {
	Type string
	Part uint64
	Fn   func(*tebaldi.Tx) error
}

// Mix draws T1 or T2 with equal probability.
func (w CrossGroup) Mix(rng *rand.Rand) Op {
	if rng.Intn(2) == 0 {
		return w.t1(rng)
	}
	return w.t2(rng)
}

func (w CrossGroup) t1(rng *rand.Rand) Op {
	shared := rng.Intn(w.SharedRows)
	local := rng.Intn(10)
	low := make([]int, 5)
	for i := range low {
		low[i] = rng.Intn(10000)
	}
	if w.ReadOnlyT1 {
		return Op{Type: TxnCG1, Fn: func(tx *tebaldi.Tx) error {
			if _, err := tx.Read(tebaldi.KeyOf("shared", shared)); err != nil {
				return err
			}
			if _, err := tx.Read(tebaldi.KeyOf("local1", local)); err != nil {
				return err
			}
			for _, l := range low {
				if _, err := tx.Read(tebaldi.KeyOf("low", l)); err != nil {
					return err
				}
			}
			return nil
		}}
	}
	return Op{Type: TxnCG1, Fn: w.updateFn("local1", shared, local, low)}
}

func (w CrossGroup) t2(rng *rand.Rand) Op {
	shared := rng.Intn(w.SharedRows)
	local := rng.Intn(10)
	low := make([]int, 5)
	for i := range low {
		low[i] = rng.Intn(10000)
	}
	return Op{Type: TxnCG2, Fn: w.updateFn("local2", shared, local, low)}
}

func (w CrossGroup) updateFn(localTable string, shared, local int, low []int) func(*tebaldi.Tx) error {
	return func(tx *tebaldi.Tx) error {
		if err := tx.Write(tebaldi.KeyOf("shared", shared), val(1)); err != nil {
			return err
		}
		if err := tx.Write(tebaldi.KeyOf(localTable, local), val(1)); err != nil {
			return err
		}
		for _, l := range low {
			if err := tx.Write(tebaldi.KeyOf("low", l), val(1)); err != nil {
				return err
			}
		}
		return nil
	}
}

// Config builds the two-layer tree with the given cross-group mechanism.
func (w CrossGroup) Config(cross tebaldi.Kind) *tebaldi.Config {
	g1 := tebaldi.Leaf(tebaldi.RP, TxnCG1)
	if w.ReadOnlyT1 {
		g1 = tebaldi.Leaf(tebaldi.None, TxnCG1)
	}
	return tebaldi.Inner(cross, g1, tebaldi.Leaf(tebaldi.RP, TxnCG2))
}

// ---- Table 4.1: layering overhead ----

// Overhead is the conflict-free seven-write workload.
type Overhead struct {
	seq atomic.Uint64
}

// TxnW7 is the single transaction type.
const TxnW7 = "w7"

// Specs returns the workload's transaction spec.
func (w *Overhead) Specs() []*tebaldi.Spec {
	return []*tebaldi.Spec{{
		Name:        TxnW7,
		Tables:      []string{"ov"},
		WriteTables: []string{"ov"},
	}}
}

// Next builds one transaction writing seven fresh keys (never conflicts).
func (w *Overhead) Next(rng *rand.Rand) Op {
	base := w.seq.Add(7)
	return Op{Type: TxnW7, Fn: func(tx *tebaldi.Tx) error {
		for i := uint64(0); i < 7; i++ {
			k := tebaldi.K("ov", fmt.Sprint(base+i))
			if err := tx.Write(k, val(base+i)); err != nil {
				return err
			}
		}
		return nil
	}}
}

// Configs returns the Table 4.1 hierarchy variants, keyed by name.
func (w *Overhead) Configs() map[string]*tebaldi.Config {
	return map[string]*tebaldi.Config{
		"stand-alone RP": tebaldi.Leaf(tebaldi.RP, TxnW7),
		"2PL - RP":       tebaldi.Inner(tebaldi.TwoPL, tebaldi.Leaf(tebaldi.RP, TxnW7)),
		"SSI - RP":       tebaldi.Inner(tebaldi.SSI, tebaldi.Leaf(tebaldi.RP, TxnW7)),
		"RP - RP":        tebaldi.Inner(tebaldi.RP, tebaldi.Leaf(tebaldi.RP, TxnW7)),
	}
}

// ---- Figure 4.11: two-layer vs three-layer ----

// ThreeLayer is the §4.6.4 hierarchical-application scenario. Table A has
// ten rows (hot); tables B..E have 10,000 rows each (cold).
type ThreeLayer struct{}

// Transaction type names.
const (
	TxnTL1 = "tl_t1" // read-only: 1 row of A, 10 rows of B..E
	TxnTL2 = "tl_t2" // writes A, then one key in each of B..E
	TxnTL3 = "tl_t3" // reads B..E, writes back to B
)

// Specs returns the three transaction specs.
func (ThreeLayer) Specs() []*tebaldi.Spec {
	return []*tebaldi.Spec{
		{Name: TxnTL1, ReadOnly: true, Tables: []string{"A", "B", "C", "D", "E"}},
		{Name: TxnTL2, Tables: []string{"A", "B", "C", "D", "E"},
			WriteTables: []string{"A", "B", "C", "D", "E"}},
		// T3 revisits B (read B..E, then write back to B): the revisit
		// is declared so RP's analysis merges B..E into one step when
		// T3 shares an RP group (the paper's "less efficient pipeline").
		{Name: TxnTL3, Tables: []string{"B", "C", "D", "E", "B"},
			WriteTables: []string{"B"}},
	}
}

// Load populates the tables.
func (ThreeLayer) Load(db *tebaldi.DB) {
	for i := 0; i < 10; i++ {
		db.Load(tebaldi.KeyOf("A", i), val(0))
	}
	for _, t := range []string{"B", "C", "D", "E"} {
		for i := 0; i < 10000; i++ {
			db.Load(tebaldi.KeyOf(t, i), val(0))
		}
	}
}

// Mix draws T1/T2/T3 with equal probability.
func (w ThreeLayer) Mix(rng *rand.Rand) Op {
	switch rng.Intn(3) {
	case 0:
		return w.t1(rng)
	case 1:
		return w.t2(rng)
	default:
		return w.t3(rng)
	}
}

func (ThreeLayer) t1(rng *rand.Rand) Op {
	a := rng.Intn(10)
	cold := make([]int, 10)
	for i := range cold {
		cold[i] = rng.Intn(10000)
	}
	tables := []string{"B", "C", "D", "E"}
	return Op{Type: TxnTL1, Fn: func(tx *tebaldi.Tx) error {
		if _, err := tx.Read(tebaldi.KeyOf("A", a)); err != nil {
			return err
		}
		// Reads grouped by table, honouring the declared access order
		// (A, B, C, D, E) so runtime pipelining can chop the
		// transaction when T1 shares an RP group (two-layer-3).
		for ti, tbl := range tables {
			for i := ti; i < len(cold); i += len(tables) {
				if _, err := tx.Read(tebaldi.KeyOf(tbl, cold[i])); err != nil {
					return err
				}
			}
		}
		return nil
	}}
}

func (ThreeLayer) t2(rng *rand.Rand) Op {
	a := rng.Intn(10)
	cold := make([]int, 4)
	for i := range cold {
		cold[i] = rng.Intn(10000)
	}
	tables := []string{"B", "C", "D", "E"}
	return Op{Type: TxnTL2, Fn: func(tx *tebaldi.Tx) error {
		if err := tx.Write(tebaldi.KeyOf("A", a), val(1)); err != nil {
			return err
		}
		for i, t := range tables {
			if err := tx.Write(tebaldi.KeyOf(t, cold[i]), val(1)); err != nil {
				return err
			}
		}
		return nil
	}}
}

func (ThreeLayer) t3(rng *rand.Rand) Op {
	cold := make([]int, 4)
	for i := range cold {
		cold[i] = rng.Intn(10000)
	}
	tables := []string{"B", "C", "D", "E"}
	return Op{Type: TxnTL3, Fn: func(tx *tebaldi.Tx) error {
		for i, t := range tables {
			if _, err := tx.Read(tebaldi.KeyOf(t, cold[i])); err != nil {
				return err
			}
		}
		return tx.Write(tebaldi.KeyOf("B", cold[0]), val(1))
	}}
}

// Configs returns the Figure 4.11 tree variants, keyed by name.
func (ThreeLayer) Configs() map[string]*tebaldi.Config {
	return map[string]*tebaldi.Config{
		// Tebaldi's three-layer solution.
		"three-layer": tebaldi.Inner(tebaldi.SSI,
			tebaldi.Leaf(tebaldi.None, TxnTL1),
			tebaldi.Inner(tebaldi.TwoPL,
				tebaldi.Leaf(tebaldi.RP, TxnTL2),
				tebaldi.Leaf(tebaldi.TwoPL, TxnTL3))),
		// SSI cross-group, T2 and T3 separate (batching engaged).
		"two-layer-1": tebaldi.Inner(tebaldi.SSI,
			tebaldi.Leaf(tebaldi.None, TxnTL1),
			tebaldi.Leaf(tebaldi.RP, TxnTL2),
			tebaldi.Leaf(tebaldi.TwoPL, TxnTL3)),
		// SSI cross-group, T2 and T3 together (coarser pipeline).
		"two-layer-2": tebaldi.Inner(tebaldi.SSI,
			tebaldi.Leaf(tebaldi.None, TxnTL1),
			tebaldi.Leaf(tebaldi.RP, TxnTL2, TxnTL3)),
		// 2PL cross-group, T1 pipelined with T2.
		"two-layer-3": tebaldi.Inner(tebaldi.TwoPL,
			tebaldi.Leaf(tebaldi.RP, TxnTL1, TxnTL2),
			tebaldi.Leaf(tebaldi.TwoPL, TxnTL3)),
		// 2PL cross-group, all separate.
		"two-layer-4": tebaldi.Inner(tebaldi.TwoPL,
			tebaldi.Leaf(tebaldi.None, TxnTL1),
			tebaldi.Leaf(tebaldi.RP, TxnTL2),
			tebaldi.Leaf(tebaldi.TwoPL, TxnTL3)),
	}
}
