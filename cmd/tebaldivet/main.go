// Command tebaldivet is the repo's domain-specific vet tool: eight static
// analyzers that turn the engine's concurrency and durability invariants
// into compile-time checks (see internal/analysis/tebaldivet).
//
// Two modes:
//
//	go run ./cmd/tebaldivet ./...          # standalone, whole-module
//	go vet -vettool=$(which tebaldivet) ./...  # unitchecker protocol
//
// The standalone mode loads packages itself (stdlib-only go/packages
// substitute, see internal/analysis/load), runs one fact-sharing session
// over the dependency-ordered package list, and dedups findings reported at
// the same position by multiple compilation units. The vettool mode
// implements the cmd/go unitchecker contract: -V=full fingerprinting,
// -flags, analyzing one package per JSON .cfg file, and threading
// interprocedural facts between package invocations through .vetx files.
//
// Findings are suppressed by an adjacent justified annotation:
//
//	//lint:allow <analyzer> -- <why this is safe>
//
// Standalone flags:
//
//	-sarif FILE     also write findings as SARIF 2.1.0 (GitHub code scanning)
//	-staleallow     audit mode: flag //lint:allow comments whose analyzer no
//	                longer fires at that site
//	-escapepoints   print the poolescape-derived *core.Txn escape-point list
//
// Exit status: 0 clean, 1 unsuppressed findings (or stale allows under
// -staleallow), 2 findings (vettool), 3 driver error.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/load"
	"repro/internal/analysis/poolescape"
	"repro/internal/analysis/sarif"
	"repro/internal/analysis/tebaldivet"
)

func main() {
	args := os.Args[1:]
	for _, a := range args {
		if a == "-V=full" || a == "-V" {
			printVersion()
			return
		}
		if a == "-flags" {
			// No tool flags are forwarded by go vet.
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}

	fs := flag.NewFlagSet("tebaldivet", flag.ExitOnError)
	sarifOut := fs.String("sarif", "", "write findings as SARIF 2.1.0 to `file`")
	staleAllow := fs.Bool("staleallow", false, "audit //lint:allow comments whose analyzer no longer fires")
	escapePoints := fs.Bool("escapepoints", false, "print the derived *core.Txn escape-point list and exit")
	fs.Parse(args)
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(standalone(patterns, *sarifOut, *staleAllow, *escapePoints))
}

// printVersion implements the `-V=full` fingerprint cmd/go uses to build
// cache keys for vet results: name, "version", and a content hash of the
// executable.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%x\n", os.Args[0], h.Sum(nil)[:16])
}

// diagKey identifies a finding for cross-package dedup: the same file can be
// analyzed in more than one compilation unit (a package and its test
// variant), and a finding is one finding no matter how many units surfaced
// it.
type diagKey struct {
	file     string
	line     int
	col      int
	analyzer string
	message  string
}

// siteKey identifies a //lint:allow comment for the staleness audit.
type siteKey struct {
	file     string
	line     int
	analyzer string
}

// standalone loads the module packages matching patterns and analyzes them
// in one fact-sharing session, dependency order first.
func standalone(patterns []string, sarifOut string, staleAllow, escapePoints bool) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tebaldivet:", err)
		return 3
	}
	pkgs, err := load.Packages(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tebaldivet:", err)
		return 3
	}
	analyzers := tebaldivet.All()
	session := framework.NewSession()

	var fset *token.FileSet
	seen := map[diagKey]bool{}
	var diags []framework.Diagnostic
	sites := map[siteKey]token.Pos{}
	usedSites := map[siteKey]bool{}

	for _, p := range pkgs {
		fset = p.Fset
		if p.IllTyped {
			// Degrade, don't abort: report the broken package and analyze
			// the rest. Analyzers need complete type info, so the package
			// itself is skipped.
			fmt.Fprintf(os.Stderr, "tebaldivet: skipping %s: %v\n", p.ImportPath, p.Err)
			continue
		}
		if p.Types == nil || p.Info == nil {
			continue
		}
		res, err := session.Run(p.Fset, p.Files, p.Types, p.Info, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tebaldivet: %s: %v\n", p.ImportPath, err)
			return 3
		}
		for _, d := range res.Diags {
			pos := p.Fset.Position(d.Pos)
			k := diagKey{pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message}
			if seen[k] {
				continue
			}
			seen[k] = true
			diags = append(diags, d)
		}
		for _, s := range res.Allows {
			pos := p.Fset.Position(s.Pos)
			sites[siteKey{pos.Filename, pos.Line, s.Analyzer}] = s.Pos
		}
		for _, d := range res.Suppressed {
			// The allow that fired sits on the finding's line or the line
			// above it; both are live.
			pos := p.Fset.Position(d.Pos)
			usedSites[siteKey{pos.Filename, pos.Line, d.Analyzer}] = true
			usedSites[siteKey{pos.Filename, pos.Line - 1, d.Analyzer}] = true
		}
	}

	if escapePoints {
		for _, name := range poolescape.EscapePoints(session.Facts()) {
			fmt.Println(name)
		}
		return 0
	}

	for _, d := range diags {
		fmt.Printf("%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}

	stale := 0
	if staleAllow {
		var keys []siteKey
		for k := range sites {
			if !usedSites[k] {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].file != keys[j].file {
				return keys[i].file < keys[j].file
			}
			if keys[i].line != keys[j].line {
				return keys[i].line < keys[j].line
			}
			return keys[i].analyzer < keys[j].analyzer
		})
		for _, k := range keys {
			stale++
			fmt.Printf("%s: stale suppression: //lint:allow %s no longer matches a finding\n",
				fset.Position(sites[k]), k.analyzer)
		}
	}

	if sarifOut != "" {
		log := sarif.Build(wd, fset, analyzers, diags)
		f, err := os.Create(sarifOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tebaldivet:", err)
			return 3
		}
		if err := sarif.Write(f, log); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "tebaldivet:", err)
			return 3
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "tebaldivet:", err)
			return 3
		}
	}

	if len(diags) > 0 || stale > 0 {
		switch {
		case stale > 0 && len(diags) > 0:
			fmt.Fprintf(os.Stderr, "tebaldivet: %d finding(s), %d stale suppression(s)\n", len(diags), stale)
		case stale > 0:
			fmt.Fprintf(os.Stderr, "tebaldivet: %d stale suppression(s)\n", stale)
		default:
			fmt.Fprintf(os.Stderr, "tebaldivet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// vetConfig is the JSON configuration cmd/go hands a vettool for each
// package (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single package described by the cfg file. The
// session's fact store is seeded from the dependencies' .vetx files and
// re-serialized into VetxOutput, so interprocedural summaries flow between
// per-package tool invocations exactly as they do standalone.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tebaldivet:", err)
		return 3
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "tebaldivet: parsing %s: %v\n", cfgPath, err)
		return 3
	}

	session := framework.NewSession()
	for dep, vetx := range cfg.PackageVetx {
		payload, err := os.ReadFile(vetx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tebaldivet: reading facts of %s: %v\n", dep, err)
			return 3
		}
		if err := session.Facts().Decode(payload); err != nil {
			fmt.Fprintf(os.Stderr, "tebaldivet: facts of %s: %v\n", dep, err)
			return 3
		}
	}

	// writeVetx persists the session facts (dependency facts plus whatever
	// this unit exported); cmd/go expects the file even when it is empty.
	writeVetx := func() int {
		if cfg.VetxOutput == "" {
			return 0
		}
		payload, err := session.Facts().Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tebaldivet:", err)
			return 3
		}
		if err := os.WriteFile(cfg.VetxOutput, payload, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "tebaldivet:", err)
			return 3
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx()
			}
			fmt.Fprintln(os.Stderr, "tebaldivet:", err)
			return 3
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: cfg.GoVersion,
	}
	info := load.NewInfo()
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx()
		}
		fmt.Fprintf(os.Stderr, "tebaldivet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 3
	}
	res, err := session.Run(fset, files, tpkg, info, tebaldivet.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "tebaldivet: %s: %v\n", cfg.ImportPath, err)
		return 3
	}
	if code := writeVetx(); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range res.Diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(res.Diags) > 0 {
		return 2
	}
	return 0
}
