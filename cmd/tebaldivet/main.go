// Command tebaldivet is the repo's domain-specific vet tool: five static
// analyzers that turn the engine's concurrency and durability invariants
// into compile-time checks (see internal/analysis/tebaldivet).
//
// Two modes:
//
//	go run ./cmd/tebaldivet ./...          # standalone, whole-module
//	go vet -vettool=$(which tebaldivet) ./...  # unitchecker protocol
//
// The standalone mode loads packages itself (stdlib-only go/packages
// substitute, see internal/analysis/load). The vettool mode implements the
// cmd/go unitchecker contract: -V=full fingerprinting, -flags, and
// analyzing one package per JSON .cfg file.
//
// Findings are suppressed by an adjacent justified annotation:
//
//	//lint:allow <analyzer> -- <why this is safe>
//
// Exit status: 0 clean, 1 findings (standalone), 2 findings (vettool).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/load"
	"repro/internal/analysis/tebaldivet"
)

func main() {
	args := os.Args[1:]
	for _, a := range args {
		if a == "-V=full" || a == "-V" {
			printVersion()
			return
		}
		if a == "-flags" {
			// No tool flags are forwarded by go vet.
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args))
}

// printVersion implements the `-V=full` fingerprint cmd/go uses to build
// cache keys for vet results: name, "version", and a content hash of the
// executable.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%x\n", os.Args[0], h.Sum(nil)[:16])
}

// standalone loads the module packages matching patterns and analyzes them.
func standalone(patterns []string) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tebaldivet:", err)
		return 3
	}
	pkgs, err := load.Packages(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tebaldivet:", err)
		return 3
	}
	found := 0
	for _, p := range pkgs {
		diags, err := framework.Run(p.Fset, p.Files, p.Types, p.Info, tebaldivet.All())
		if err != nil {
			fmt.Fprintf(os.Stderr, "tebaldivet: %s: %v\n", p.ImportPath, err)
			return 3
		}
		for _, d := range diags {
			found++
			fmt.Printf("%s: %s [%s]\n", p.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "tebaldivet: %d finding(s)\n", found)
		return 1
	}
	return 0
}

// vetConfig is the JSON configuration cmd/go hands a vettool for each
// package (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single package described by the cfg file.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tebaldivet:", err)
		return 3
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "tebaldivet: parsing %s: %v\n", cfgPath, err)
		return 3
	}
	// We carry no cross-package facts, but cmd/go expects the output file.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "tebaldivet:", err)
			return 3
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "tebaldivet:", err)
			return 3
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: cfg.GoVersion,
	}
	info := load.NewInfo()
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "tebaldivet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 3
	}
	diags, err := framework.Run(fset, files, tpkg, info, tebaldivet.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "tebaldivet: %s: %v\n", cfg.ImportPath, err)
		return 3
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
