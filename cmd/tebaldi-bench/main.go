// Command tebaldi-bench regenerates the tables and figures of the Tebaldi
// paper's evaluation (§4.6, §5.6). Each experiment id maps to one runner in
// internal/bench; see DESIGN.md for the per-experiment index.
//
// Usage:
//
//	tebaldi-bench [-quick] [experiment ...]
//	tebaldi-bench -list
//
// With no experiment arguments, all experiments run in order.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"

	"repro/internal/bench"
)

var experiments = map[string]func(bench.Params) error{
	"table3.1": bench.Table31,
	"fig4.7":   bench.Fig47,
	"fig4.8":   bench.Fig48,
	"sec4.6.3": bench.Sec463,
	"fig4.10":  bench.Fig410,
	"fig4.11":  bench.Fig411,
	"table4.1": bench.Table41,
	"table4.2": bench.Table42,
	"fig5.5":   bench.Fig55,
	"fig5.11":  bench.Fig511,
	"fig5.14":  bench.Fig514,
	"fig5.17":  bench.Fig517,
	"table5.1": bench.Table51,
	"fig5.19":  bench.Fig519,
	"table5.2": bench.Table52,
	"ycsb":     bench.YCSB,
	"recovery": bench.Recovery,
	"serve":    bench.Serve,
}

var order = []string{
	"table3.1", "fig4.7", "fig4.8", "sec4.6.3", "fig4.10", "fig4.11",
	"table4.1", "table4.2", "fig5.5", "fig5.11", "fig5.14", "fig5.17",
	"table5.1", "fig5.19", "table5.2", "ycsb", "recovery", "serve",
}

func main() {
	quick := flag.Bool("quick", false, "small client counts and short windows")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jsonOut := flag.String("json", "", "write machine-readable results to FILE (experiments that support it)")
	target := flag.String("target", "", "drive an already running tebaldi-server at this address (serve experiment)")
	profDir := flag.String("pprof", "", "write cpu.pprof/heap.pprof covering the whole run to DIR (see DESIGN.md, profiling workflow)")
	flag.Parse()

	if *profDir != "" {
		if err := os.MkdirAll(*profDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			os.Exit(1)
		}
		cpuF, err := os.Create(filepath.Join(*profDir, "cpu.pprof"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			cpuF.Close()
			heapF, err := os.Create(filepath.Join(*profDir, "heap.pprof"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
				return
			}
			runtime.GC() // up-to-date allocation stats in the heap profile
			if err := pprof.WriteHeapProfile(heapF); err != nil {
				fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			}
			heapF.Close()
		}()
	}

	if *list {
		ids := make([]string, 0, len(experiments))
		for id := range experiments {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = order
	}
	p := bench.Params{Out: os.Stdout, Quick: *quick, Target: *target}
	if *jsonOut != "" {
		p.Collect = &bench.Snapshot{Quick: *quick}
	}
	for _, id := range ids {
		run, ok := experiments[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("\n==================== %s ====================\n", id)
		if err := run(p); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
	}
	if p.Collect != nil {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		if err := p.Collect.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nwrote %s\n", *jsonOut)
	}
}
