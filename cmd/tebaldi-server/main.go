// Command tebaldi-server exposes a Tebaldi database over TCP, speaking the
// length-prefixed binary protocol of internal/server (BEGIN/GET/PUT/COMMIT/
// ABORT with multiplexed sessions), with a Prometheus-style /metrics
// endpoint on a second port.
//
// The server registers a generic key-value schema: transaction type
// "update" (read-write) and "readonly" (read-only) over table "kv",
// federated by the paper's §5.2 starting configuration — SSI at the root
// separating the read-only group from a 2PL update group. Drive it with
// `tebaldi-bench -target <addr> serve` or any internal/server client.
//
// Usage:
//
//	tebaldi-server [-addr host:port] [-metrics host:port] [-preload n]
//	               [-shards n] [-lock-timeout d] [-durability dir] [-sync]
//	               [-checkpoint-every d] [-drain d]
//
// On SIGINT/SIGTERM the server drains: new transactions are rejected,
// in-flight commits complete, then connections close.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/tebaldi"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7421", "protocol listen address")
	metricsAddr := flag.String("metrics", "127.0.0.1:7423", "metrics listen address (empty = disabled)")
	preload := flag.Int("preload", 100000, "keys kv/k0..kN-1 preloaded with 100-byte values")
	shards := flag.Int("shards", 16, "storage shards")
	lockTimeout := flag.Duration("lock-timeout", 400*time.Millisecond, "lock/dependency wait bound")
	durability := flag.String("durability", "", "WAL directory (empty = in-memory only)")
	sync := flag.Bool("sync", false, "synchronous commits (wait for the group-commit flush)")
	checkpointEvery := flag.Duration("checkpoint-every", 0, "periodic checkpoint interval (0 = off; requires -durability)")
	drain := flag.Duration("drain", 10*time.Second, "shutdown drain timeout")
	flag.Parse()

	if err := run(*addr, *metricsAddr, *preload, *shards, *lockTimeout, *durability, *sync, *checkpointEvery, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "tebaldi-server: %v\n", err)
		os.Exit(1)
	}
}

// Specs returns the generic KV transaction types the server registers.
func specs() []*tebaldi.Spec {
	return []*tebaldi.Spec{
		{Name: "update", Tables: []string{"kv"}, WriteTables: []string{"kv"}},
		{Name: "readonly", ReadOnly: true, Tables: []string{"kv"}},
	}
}

func run(addr, metricsAddr string, preload, shards int, lockTimeout time.Duration, durability string, sync bool, checkpointEvery, drain time.Duration) error {
	db, err := tebaldi.Open(tebaldi.Options{
		Shards:          shards,
		LockTimeout:     lockTimeout,
		DurabilityDir:   durability,
		DurabilitySync:  sync,
		CheckpointEvery: checkpointEvery,
	}, specs(), nil)
	if err != nil {
		return err
	}
	defer db.Close()

	val := make([]byte, 100)
	for i := range val {
		val[i] = 'x'
	}
	for i := 0; i < preload; i++ {
		db.Load(tebaldi.K("kv", fmt.Sprintf("k%d", i)), val)
	}

	srv := server.New(db, server.Options{})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The "listening on" line is a tiny readiness protocol: spawners
	// (bench, CI smoke) wait for it and parse the resolved address, which
	// matters when -addr ends in :0.
	fmt.Printf("tebaldi-server listening on %s (tree %s, %d keys preloaded)\n",
		ln.Addr(), db.ConfigString(), preload)

	var metricsSrv *http.Server
	if metricsAddr != "" {
		mln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			ln.Close()
			return err
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.MetricsHandler())
		// Live profiling endpoints on the (loopback-by-default) metrics
		// listener: `go tool pprof http://.../debug/pprof/profile` against
		// a serving instance is the workflow that drove the hot-path
		// optimization pass (DESIGN.md, profiling workflow).
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		metricsSrv = &http.Server{Handler: mux}
		fmt.Printf("metrics on http://%s/metrics (pprof on /debug/pprof/)\n", mln.Addr())
		go func() {
			metricsSrv.Serve(mln)
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("received %s, draining (timeout %s)...\n", sig, drain)
		if err := srv.Shutdown(drain); err != nil {
			return err
		}
		if metricsSrv != nil {
			metricsSrv.Close()
		}
		fmt.Println("drained cleanly")
		return nil
	}
}
