package repro

// One benchmark per table and figure of the paper's evaluation (§4.6, §5.6).
// Each benchmark measures per-transaction cost (ns/op inverts to throughput)
// under a parallel closed loop at the configuration(s) the experiment
// compares; the full parameter sweeps with the paper-shaped output live in
// `go run ./cmd/tebaldi-bench`. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results.

import (
	"math/rand"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"repro/tebaldi"
	"repro/workload/micro"
	"repro/workload/seats"
	"repro/workload/tpcc"
	"repro/workload/ycsb"
)

func benchOptions() tebaldi.Options {
	return tebaldi.Options{Shards: 16, LockTimeout: 2 * time.Second}
}

// shortTrim keeps only the first case of a multi-config benchmark family
// under -short, so `go test -short -run xxx -bench .` is a CI-sized smoke
// run: every family still executes (one database build + one measured
// configuration) without sweeping the full matrix.
func shortTrim[T any](cases []T) []T {
	if testing.Short() && len(cases) > 1 {
		return cases[:1]
	}
	return cases
}

// runParallel drives b.N transactions from gen across parallel clients.
func runParallel(b *testing.B, db *tebaldi.DB, gen func(rng *rand.Rand) (string, uint64, func(*tebaldi.Tx) error)) {
	b.Helper()
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			typ, part, fn := gen(rng)
			if err := db.Run(typ, part, fn); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	w := db.Stats().Snapshot()
	if w.Commits+w.Aborts > 0 {
		b.ReportMetric(float64(w.Aborts)/float64(w.Commits+w.Aborts), "aborts/txn")
	}
}

func tpccBench(b *testing.B, cfg *tebaldi.Config, hot bool) {
	db, err := tebaldi.Open(benchOptions(), tpcc.Specs(hot), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	sc := tpcc.DefaultScale()
	tpcc.Load(db, sc)
	c := tpcc.NewClient(db, sc)
	runParallel(b, db, func(rng *rand.Rand) (string, uint64, func(*tebaldi.Tx) error) {
		var op tpcc.Op
		if hot {
			op = c.HotMix(rng)
		} else {
			op = c.Mix(rng)
		}
		return op.Type, op.Part, op.Fn
	})
}

// BenchmarkTable31_Grouping — Table 3.1: new_order/stock_level grouping.
func BenchmarkTable31_Grouping(b *testing.B) {
	for _, m := range shortTrim([]struct {
		name     string
		deadlock bool
		disjoint bool
		mode     string
	}{
		{"SameGroup", false, false, "same"},
		{"SeparateNoDeadlock", false, false, "separate"},
		{"SeparateNoConflict", false, true, "noconflict"},
	}) {
		b.Run(m.name, func(b *testing.B) {
			db, err := tebaldi.Open(benchOptions(), tpcc.PairSpecs(m.deadlock), tpcc.PairConfig(m.mode))
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			sc := tpcc.DefaultScale()
			tpcc.Load(db, sc)
			c := tpcc.NewClient(db, sc)
			pg := c.PairGen(m.deadlock, m.disjoint)
			runParallel(b, db, func(rng *rand.Rand) (string, uint64, func(*tebaldi.Tx) error) {
				op := pg(rng)
				return op.Type, op.Part, op.Fn
			})
		})
	}
}

// BenchmarkFig47_TPCC — Figure 4.7: TPC-C across the six configurations.
func BenchmarkFig47_TPCC(b *testing.B) {
	for _, cf := range shortTrim([]struct {
		name string
		cfg  *tebaldi.Config
	}{
		{"Mono2PL", tpcc.ConfigMono2PL()},
		{"MonoSSI", tpcc.ConfigMonoSSI()},
		{"Callas1", tpcc.ConfigCallas1()},
		{"Callas2", tpcc.ConfigCallas2()},
		{"Tebaldi2Layer", tpcc.ConfigTebaldi2Layer()},
		{"Tebaldi3Layer", tpcc.ConfigTebaldi3Layer()},
	}) {
		b.Run(cf.name, func(b *testing.B) { tpccBench(b, cf.cfg, false) })
	}
}

// BenchmarkFig48_SEATS — Figure 4.8: SEATS across the three configurations.
func BenchmarkFig48_SEATS(b *testing.B) {
	sc := seats.DefaultScale()
	for _, cf := range shortTrim([]struct {
		name string
		cfg  *tebaldi.Config
	}{
		{"Mono2PL", seats.ConfigMono2PL()},
		{"TwoLayer", seats.Config2Layer()},
		{"ThreeLayerPerFlightTSO", seats.Config3Layer(sc)},
	}) {
		b.Run(cf.name, func(b *testing.B) {
			db, err := tebaldi.Open(benchOptions(), seats.Specs(sc), cf.cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			seats.Load(db, sc)
			c := seats.NewClient(db, sc)
			runParallel(b, db, func(rng *rand.Rand) (string, uint64, func(*tebaldi.Tx) error) {
				op := c.Mix(rng)
				return op.Type, op.Part, op.Fn
			})
		})
	}
}

// BenchmarkSec463_HotItem — §4.6.3: extensibility, 3-layer vs 4-layer.
func BenchmarkSec463_HotItem(b *testing.B) {
	for _, cf := range shortTrim([]struct {
		name string
		cfg  *tebaldi.Config
	}{
		{"ThreeLayerMerged", tpcc.ConfigHot3Layer()},
		{"FourLayerOwnGroup", tpcc.ConfigHot4Layer()},
	}) {
		b.Run(cf.name, func(b *testing.B) { tpccBench(b, cf.cfg, true) })
	}
}

// BenchmarkFig410_CrossGroup — Figure 4.10: cross-group CC comparison.
func BenchmarkFig410_CrossGroup(b *testing.B) {
	for _, wl := range shortTrim([]struct {
		name   string
		shared int
		ro     bool
	}{
		{"rw5", 20, true},
		{"ww5", 20, false},
	}) {
		for _, cross := range shortTrim([]tebaldi.Kind{tebaldi.TwoPL, tebaldi.SSI, tebaldi.RP}) {
			cg := micro.CrossGroup{SharedRows: wl.shared, ReadOnlyT1: wl.ro}
			b.Run(wl.name+"_"+string(cross), func(b *testing.B) {
				db, err := tebaldi.Open(benchOptions(), cg.Specs(), cg.Config(cross))
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()
				cg.Load(db)
				runParallel(b, db, func(rng *rand.Rand) (string, uint64, func(*tebaldi.Tx) error) {
					op := cg.Mix(rng)
					return op.Type, op.Part, op.Fn
				})
			})
		}
	}
}

// BenchmarkFig411_ThreeLayer — Figure 4.11: two-layer vs three-layer.
func BenchmarkFig411_ThreeLayer(b *testing.B) {
	tl := micro.ThreeLayer{}
	cfgs := tl.Configs()
	for _, name := range shortTrim([]string{"three-layer", "two-layer-1", "two-layer-2", "two-layer-3", "two-layer-4"}) {
		cfg := cfgs[name]
		b.Run(name, func(b *testing.B) {
			db, err := tebaldi.Open(benchOptions(), tl.Specs(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			tl.Load(db)
			runParallel(b, db, func(rng *rand.Rand) (string, uint64, func(*tebaldi.Tx) error) {
				op := tl.Mix(rng)
				return op.Type, op.Part, op.Fn
			})
		})
	}
}

// BenchmarkTable41_LayerOverhead — Table 4.1: cost of extra layers on a
// conflict-free workload.
func BenchmarkTable41_LayerOverhead(b *testing.B) {
	ov := &micro.Overhead{}
	cfgs := ov.Configs()
	for _, name := range shortTrim([]string{"stand-alone RP", "2PL - RP", "SSI - RP", "RP - RP"}) {
		cfg := cfgs[name]
		b.Run(name, func(b *testing.B) {
			db, err := tebaldi.Open(benchOptions(), ov.Specs(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			runParallel(b, db, func(rng *rand.Rand) (string, uint64, func(*tebaldi.Tx) error) {
				op := ov.Next(rng)
				return op.Type, op.Part, op.Fn
			})
		})
	}
}

// BenchmarkTable42_Durability — Table 4.2: durability overhead on TPC-C.
func BenchmarkTable42_Durability(b *testing.B) {
	for _, on := range shortTrim([]bool{false, true}) {
		name := "Off"
		if on {
			name = "OnAsync"
		}
		b.Run(name, func(b *testing.B) {
			opts := benchOptions()
			if on {
				dir, err := os.MkdirTemp("", "tebaldi-bench-wal-*")
				if err != nil {
					b.Fatal(err)
				}
				defer os.RemoveAll(dir)
				opts.DurabilityDir = dir
				opts.GCPEpoch = 100 * time.Millisecond
			}
			db, err := tebaldi.Open(opts, tpcc.Specs(false), tpcc.ConfigTebaldi3Layer())
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			sc := tpcc.DefaultScale()
			tpcc.Load(db, sc)
			c := tpcc.NewClient(db, sc)
			runParallel(b, db, func(rng *rand.Rand) (string, uint64, func(*tebaldi.Tx) error) {
				op := c.Mix(rng)
				return op.Type, op.Part, op.Fn
			})
		})
	}
}

func ycsbBench(b *testing.B, w ycsb.Workload, opts tebaldi.Options) {
	c := ycsb.New(w)
	db, err := tebaldi.Open(opts, w.Specs(), w.Config())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	c.Load(db)
	runParallel(b, db, func(rng *rand.Rand) (string, uint64, func(*tebaldi.Tx) error) {
		op := c.Mix(rng)
		return op.Type, op.Part, op.Fn
	})
}

// BenchmarkYCSB — the YCSB core mixes (A update-heavy, B read-heavy,
// C read-only) without durability: the CC-side cost of the workload.
func BenchmarkYCSB(b *testing.B) {
	for _, m := range shortTrim([]struct {
		name string
		w    ycsb.Workload
	}{
		{"A", ycsb.A()}, {"B", ycsb.B()}, {"C", ycsb.C()},
	}) {
		b.Run(m.name, func(b *testing.B) { ycsbBench(b, m.w, benchOptions()) })
	}
}

// BenchmarkYCSB_Durability — YCSB-A under the durability module: the
// group-commit pipeline measured where it matters (write-heavy, every
// committer reaches the log). SyncCommit couples commit notification to
// the flush (the paper's synchronous baseline); Async decouples them via
// GCP epochs (§4.5.4).
func BenchmarkYCSB_Durability(b *testing.B) {
	for _, m := range shortTrim([]struct {
		name string
		sync bool
	}{
		{"SyncCommit", true},
		{"Async", false},
	}) {
		b.Run(m.name, func(b *testing.B) {
			opts := benchOptions()
			dir, err := os.MkdirTemp("", "tebaldi-ycsb-wal-*")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			opts.DurabilityDir = dir
			opts.DurabilitySync = m.sync
			opts.GCPEpoch = 100 * time.Millisecond
			ycsbBench(b, ycsb.A(), opts)
		})
	}
}

// BenchmarkFig55_ProfilingCaseStudy — Figure 5.5 substrate: payment +
// stock_level under the RP/2PL configuration that hides the bottleneck from
// latency-based profiling.
func BenchmarkFig55_ProfilingCaseStudy(b *testing.B) {
	opts := benchOptions()
	opts.Profiling = true
	cfg := tebaldi.Inner(tebaldi.TwoPL,
		tebaldi.Leaf(tebaldi.RP, tpcc.TxnPayment),
		tebaldi.Leaf(tebaldi.None, tpcc.TxnStockLevel))
	db, err := tebaldi.Open(opts, tpcc.Specs(false), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	sc := tpcc.DefaultScale()
	tpcc.Load(db, sc)
	c := tpcc.NewClient(db, sc)
	runParallel(b, db, func(rng *rand.Rand) (string, uint64, func(*tebaldi.Tx) error) {
		var op tpcc.Op
		if rng.Float64() < 0.8 {
			op = c.Payment(rng)
		} else {
			op = c.StockLevel(rng)
		}
		return op.Type, op.Part, op.Fn
	})
}

// BenchmarkFig517_ProfilerOverhead — Figure 5.17: profiling on vs off.
func BenchmarkFig517_ProfilerOverhead(b *testing.B) {
	for _, prof := range shortTrim([]bool{false, true}) {
		name := "Off"
		if prof {
			name = "On"
		}
		b.Run(name, func(b *testing.B) {
			opts := benchOptions()
			opts.Profiling = prof
			db, err := tebaldi.Open(opts, tpcc.Specs(false), tpcc.ConfigTebaldi3Layer())
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			sc := tpcc.DefaultScale()
			tpcc.Load(db, sc)
			c := tpcc.NewClient(db, sc)
			runParallel(b, db, func(rng *rand.Rand) (string, uint64, func(*tebaldi.Tx) error) {
				op := c.Mix(rng)
				return op.Type, op.Part, op.Fn
			})
		})
	}
}

// BenchmarkTable51_PartitionByInstance — Table 5.1: SEATS with one TSO group
// vs per-flight TSO instances.
func BenchmarkTable51_PartitionByInstance(b *testing.B) {
	sc := seats.DefaultScale()
	for _, cf := range shortTrim([]struct {
		name string
		cfg  *tebaldi.Config
	}{
		{"SingleTSO", seats.Config3LayerSingleTSO()},
		{"PerFlightTSO", seats.Config3Layer(sc)},
	}) {
		b.Run(cf.name, func(b *testing.B) {
			db, err := tebaldi.Open(benchOptions(), seats.Specs(sc), cf.cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			seats.Load(db, sc)
			c := seats.NewClient(db, sc)
			runParallel(b, db, func(rng *rand.Rand) (string, uint64, func(*tebaldi.Tx) error) {
				op := c.Mix(rng)
				return op.Type, op.Part, op.Fn
			})
		})
	}
}

// BenchmarkFig519_Reconfiguration — Figure 5.19 substrate: TPC-C running
// across a live 2-layer -> 3-layer reconfiguration per protocol.
func BenchmarkFig519_Reconfiguration(b *testing.B) {
	for _, proto := range shortTrim([]struct {
		name string
		p    tebaldi.ReconfigProtocol
	}{
		{"PartialRestart", tebaldi.PartialRestart},
		{"OnlineUpdate", tebaldi.OnlineUpdate},
	}) {
		b.Run(proto.name, func(b *testing.B) {
			db, err := tebaldi.Open(benchOptions(), tpcc.Specs(false), tpcc.ConfigTebaldi2Layer())
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			sc := tpcc.DefaultScale()
			tpcc.Load(db, sc)
			c := tpcc.NewClient(db, sc)
			done := make(chan struct{})
			go func() {
				defer close(done)
				time.Sleep(20 * time.Millisecond)
				db.Reconfigure(tpcc.ConfigTebaldi3Layer(), proto.p)
			}()
			runParallel(b, db, func(rng *rand.Rand) (string, uint64, func(*tebaldi.Tx) error) {
				op := c.Mix(rng)
				return op.Type, op.Part, op.Fn
			})
			<-done
		})
	}
}

// BenchmarkTable52_SingleMachine — Table 5.2 substitute: single-shard
// monolithic CCs vs the Tebaldi tree.
func BenchmarkTable52_SingleMachine(b *testing.B) {
	for _, cf := range shortTrim([]struct {
		name string
		cfg  *tebaldi.Config
	}{
		{"Mono2PL", tpcc.ConfigMono2PL()},
		{"MonoSSI", tpcc.ConfigMonoSSI()},
		{"Tebaldi3Layer", tpcc.ConfigTebaldi3Layer()},
	}) {
		b.Run(cf.name, func(b *testing.B) {
			opts := benchOptions()
			opts.Shards = 1
			db, err := tebaldi.Open(opts, tpcc.Specs(false), cf.cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			sc := tpcc.DefaultScale()
			tpcc.Load(db, sc)
			c := tpcc.NewClient(db, sc)
			runParallel(b, db, func(rng *rand.Rand) (string, uint64, func(*tebaldi.Tx) error) {
				op := c.Mix(rng)
				return op.Type, op.Part, op.Fn
			})
		})
	}
}

// BenchmarkFig511_Autoconf — Figure 5.11 substrate: one analysis+proposal
// pass of the automatic configurator against live TPC-C (the full iterative
// run is cmd/tebaldi-bench fig5.11).
func BenchmarkFig511_Autoconf(b *testing.B) {
	opts := benchOptions()
	opts.Profiling = true
	db, err := tebaldi.Open(opts, tpcc.Specs(false), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	sc := tpcc.DefaultScale()
	tpcc.Load(db, sc)
	c := tpcc.NewClient(db, sc)
	runParallel(b, db, func(rng *rand.Rand) (string, uint64, func(*tebaldi.Tx) error) {
		op := c.Mix(rng)
		return op.Type, op.Part, op.Fn
	})
}
